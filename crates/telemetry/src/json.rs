//! A serde-free JSON value model with a writer and a strict parser.
//!
//! Objects are ordered `Vec<(String, JsonValue)>`, not hash maps — key
//! order is exactly insertion order, so serialisation is deterministic
//! (asm-lint R1) and round-trips byte-for-byte. The parser is a strict
//! recursive-descent over the RFC 8259 grammar; it exists so the trace and
//! stats files this crate emits can be schema-checked in tests without an
//! external JSON dependency.

use std::fmt::Write as _;

/// A JSON document value.
#[derive(Debug, Clone)]
pub enum JsonValue {
    /// `null` (also what non-finite numbers serialise as).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; written via Rust's shortest-round-trip `f64` display.
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object with *ordered* members.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience: a number from any unsigned counter.
    #[must_use]
    pub fn num_u64(v: u64) -> Self {
        JsonValue::Num(v as f64)
    }

    /// Convenience: a string value.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Self {
        JsonValue::Str(s.into())
    }

    /// Looks up a member of an object by key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array elements, when this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The numeric value, when this is a number.
    #[must_use]
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, when this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serialises to compact JSON (no whitespace).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self);
        out
    }

    /// Serialises with two-space indentation (for committed artefacts and
    /// human diffing).
    #[must_use]
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        write_pretty(&mut out, self, 0);
        out.push('\n');
        out
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_num(out: &mut String, n: f64) {
    if n.is_finite() {
        let _ = write!(out, "{n}");
    } else {
        // JSON has no NaN/Infinity; null is the conventional stand-in.
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &JsonValue) {
    match v {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Num(n) => write_num(out, *n),
        JsonValue::Str(s) => write_escaped(out, s),
        JsonValue::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        JsonValue::Obj(members) => {
            out.push('{');
            for (i, (k, val)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, v: &JsonValue, indent: usize) {
    match v {
        JsonValue::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        JsonValue::Obj(members) if !members.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in members.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_escaped(out, k);
                out.push_str(": ");
                write_pretty(out, val, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(out, other),
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
///
/// Returns a [`ParseError`] on any deviation from the JSON grammar.
pub fn parse(input: &str) -> Result<JsonValue, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, ParseError> {
        self.expect_byte(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, ParseError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes in one go.
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\' && b >= 0x20) {
                self.pos += 1;
            }
            if self.pos > start {
                let run = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?;
                out.push_str(run);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs are not needed for anything
                            // this crate emits; reject rather than mangle.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &JsonValue) {
        let once = v.to_json();
        let parsed = parse(&once).expect("writer output must parse");
        assert_eq!(once, parsed.to_json(), "round-trip changed the document");
    }

    #[test]
    fn writes_and_parses_every_value_kind() {
        let doc = JsonValue::Obj(vec![
            ("null".into(), JsonValue::Null),
            ("yes".into(), JsonValue::Bool(true)),
            ("no".into(), JsonValue::Bool(false)),
            ("int".into(), JsonValue::num_u64(42)),
            ("float".into(), JsonValue::Num(1.25)),
            ("neg".into(), JsonValue::Num(-0.5)),
            ("str".into(), JsonValue::str("hi \"there\"\n\t\\")),
            (
                "arr".into(),
                JsonValue::Arr(vec![JsonValue::num_u64(1), JsonValue::str("x")]),
            ),
            (
                "obj".into(),
                JsonValue::Obj(vec![("k".into(), JsonValue::num_u64(9))]),
            ),
            ("empty_arr".into(), JsonValue::Arr(vec![])),
            ("empty_obj".into(), JsonValue::Obj(vec![])),
        ]);
        round_trip(&doc);
        round_trip(&parse(&doc.to_json_pretty()).expect("pretty output must parse"));
    }

    #[test]
    fn integer_valued_floats_print_without_fraction() {
        assert_eq!(JsonValue::num_u64(5_000_000).to_json(), "5000000");
        assert_eq!(JsonValue::Num(1.0).to_json(), "1");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(JsonValue::Num(f64::NAN).to_json(), "null");
        assert_eq!(JsonValue::Num(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn parser_preserves_member_order() {
        let v = parse(r#"{"z":1,"a":2,"m":3}"#).expect("valid object parses");
        assert_eq!(v.to_json(), r#"{"z":1,"a":2,"m":3}"#);
    }

    #[test]
    fn parser_handles_escapes_and_whitespace() {
        let v = parse(" { \"a\\n\" : [ 1 , 2.5e1 , \"\\u0041\" ] } ").expect("parses");
        let arr = v.get("a\n").and_then(JsonValue::as_arr).expect("member");
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].as_str(), Some("A"));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("'single'").is_err());
        assert!(parse("\"unterminated").is_err());
        let err = parse("nul").expect_err("truncated literal must fail");
        assert!(err.to_string().contains("at byte"));
    }

    #[test]
    fn float_formatting_round_trips_values_exactly() {
        for &x in &[0.1, 1.0 / 3.0, 123_456_789.123_456, 1e-9, 2.5e30] {
            let text = JsonValue::Num(x).to_json();
            let back = parse(&text)
                .expect("number parses")
                .as_num()
                .expect("is a number");
            assert_eq!(x.to_bits(), back.to_bits(), "{text} did not round-trip");
        }
    }
}
