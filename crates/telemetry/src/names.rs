//! Central registry of probe names.
//!
//! Every telemetry counter/series/span family in the workspace is named
//! here, in one module, instead of as string literals scattered through
//! the simulation crates. Probe names are stringly-typed by design (the
//! registry and series set key on them, and external consumers join on
//! them in `stats.json`/CSV outputs), which makes a typo'd name fail
//! *silently* — the probe registers, increments, and is simply never read
//! by anything. Centralizing the constructors turns that failure mode
//! into a compile error: `asm-lint` rule R13 bans inline dotted-name
//! literals in simulation crates, so a new probe must be added here,
//! where its neighbours make a misspelling conspicuous.
//!
//! Naming scheme (dot-separated, `{family}.{instance}.{metric}`):
//!
//! - `llc.app{i}.*` — shared-cache counters per application
//! - `app{i}.*` — per-application estimator series
//! - `core{i}.*` — per-core gauges
//! - `dram.ch{c}.bank{b}.*` — per-bank gauges
//! - `sys.*` — whole-system gauges
//! - `attrib.app{i}.*` — ground-truth cycle-attribution counters
//! - `attrib.app{v}.blame.app{o}` — per-quantum blame-matrix series

/// Whole-system executed-cycle gauge.
pub const SYS_EXECUTED_CYCLES: &str = "sys.executed_cycles";
/// Whole-system dropped-writeback gauge.
pub const SYS_DROPPED_WRITEBACKS: &str = "sys.dropped_writebacks";

/// LLC hits counter for application `i`.
#[must_use]
pub fn llc_app_hits(i: usize) -> String {
    format!("llc.app{i}.hits")
}

/// LLC misses counter for application `i`.
#[must_use]
pub fn llc_app_misses(i: usize) -> String {
    format!("llc.app{i}.misses")
}

/// Cross-application LLC evictions caused by application `i`.
#[must_use]
pub fn llc_app_evictions_caused(i: usize) -> String {
    format!("llc.app{i}.evictions_caused")
}

/// Estimated-slowdown series for application `i`.
#[must_use]
pub fn app_est_slowdown(i: usize) -> String {
    format!("app{i}.est_slowdown")
}

/// Actual-slowdown series for application `i` (runner-joined).
#[must_use]
pub fn app_actual_slowdown(i: usize) -> String {
    format!("app{i}.actual_slowdown")
}

/// Shared-run cache-access-rate series for application `i`.
#[must_use]
pub fn app_car_shared(i: usize) -> String {
    format!("app{i}.car_shared")
}

/// Alone-run cache-access-rate series for application `i`.
#[must_use]
pub fn app_car_alone(i: usize) -> String {
    format!("app{i}.car_alone")
}

/// ATS miss-rate series for application `i`.
#[must_use]
pub fn app_ats_miss_rate(i: usize) -> String {
    format!("app{i}.ats_miss_rate")
}

/// Per-quantum interference-cycle series for application `i`.
#[must_use]
pub fn app_interference_cycles(i: usize) -> String {
    format!("app{i}.interference_cycles")
}

/// An arbitrary per-application series name, `app{i}.{metric}` — for
/// consumers (like the sampling fingerprinter) that look up a family of
/// per-app series by metric suffix.
#[must_use]
pub fn app_series(i: usize, metric: &str) -> String {
    format!("app{i}.{metric}")
}

/// Reorder-buffer stall-episode gauge for core `i`.
#[must_use]
pub fn core_rob_stalls(i: usize) -> String {
    format!("core{i}.rob_stalls")
}

/// Retired-instruction gauge for core `i`.
#[must_use]
pub fn core_retired(i: usize) -> String {
    format!("core{i}.retired")
}

/// Issued-memory-operation gauge for core `i`.
#[must_use]
pub fn core_mem_ops(i: usize) -> String {
    format!("core{i}.mem_ops")
}

/// Row-hit gauge for channel `ch`, bank `b`.
#[must_use]
pub fn dram_bank_row_hits(ch: usize, b: usize) -> String {
    format!("dram.ch{ch}.bank{b}.row_hits")
}

/// Row-miss gauge for channel `ch`, bank `b`.
#[must_use]
pub fn dram_bank_row_misses(ch: usize, b: usize) -> String {
    format!("dram.ch{ch}.bank{b}.row_misses")
}

/// Ground-truth attribution counter: cumulative cycles of application
/// `i` attributed to ledger component `component` (an `asm-attrib`
/// component name, e.g. `dram_frfcfs`).
#[must_use]
pub fn attrib_component(i: usize, component: &str) -> String {
    format!("attrib.app{i}.{component}")
}

/// Per-quantum blame-matrix series: cycles of victim `v` blamed on
/// offender `o` in each quantum.
#[must_use]
pub fn attrib_blame(v: usize, o: usize) -> String {
    format!("attrib.app{v}.blame.app{o}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_compose_the_documented_scheme() {
        assert_eq!(llc_app_hits(3), "llc.app3.hits");
        assert_eq!(app_est_slowdown(0), "app0.est_slowdown");
        assert_eq!(app_series(2, "est_slowdown"), app_est_slowdown(2));
        assert_eq!(dram_bank_row_hits(1, 7), "dram.ch1.bank7.row_hits");
        assert_eq!(attrib_component(1, "dram_frfcfs"), "attrib.app1.dram_frfcfs");
        assert_eq!(attrib_blame(0, 2), "attrib.app0.blame.app2");
    }
}
