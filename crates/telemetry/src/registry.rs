//! The counter/gauge registry: flat `u64` arena + static handle
//! registration.
//!
//! Probe sites hold a [`CounterId`] and call [`Registry::add`] — one
//! bounds-checked indexed add, no name lookup, no branching on whether
//! telemetry is enabled. A disabled registry aliases every handle onto a
//! single scratch slot whose value is never observable (snapshots are
//! empty), so the enabled and disabled hot paths execute the *same*
//! instruction sequence; only what is reported differs.

/// Handle to one registered counter. Obtained from
/// [`Registry::register`]; cheap to copy and store in per-app vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(u32);

/// A hierarchical-name counter registry over a flat `u64` arena.
///
/// # Examples
///
/// ```
/// use asm_telemetry::Registry;
/// let mut r = Registry::enabled();
/// let hits = r.register("llc.app0.hits");
/// r.add(hits, 3);
/// assert_eq!(r.snapshot(), vec![("llc.app0.hits".to_string(), 3)]);
///
/// let mut off = Registry::disabled();
/// let h = off.register("llc.app0.hits");
/// off.add(h, 3); // same indexed add, lands in the scratch slot
/// assert!(off.snapshot().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct Registry {
    enabled: bool,
    /// Registered names, parallel to `values` when enabled. Disabled
    /// registries keep this empty (and `values` holds one scratch slot).
    names: Vec<String>,
    values: Vec<u64>,
}

impl Registry {
    /// A registry that records nothing: every registration returns a
    /// handle onto one shared scratch slot and snapshots are empty.
    #[must_use]
    pub fn disabled() -> Self {
        Registry {
            enabled: false,
            names: Vec::new(),
            values: vec![0],
        }
    }

    /// A live registry.
    #[must_use]
    pub fn enabled() -> Self {
        Registry {
            enabled: true,
            names: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Whether this registry records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Registers `name` and returns its handle. Registering the same name
    /// twice returns the existing handle (registration is setup-time code;
    /// the linear scan never runs on the simulation path).
    pub fn register(&mut self, name: &str) -> CounterId {
        if !self.enabled {
            return CounterId(0);
        }
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return CounterId(i as u32);
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.values.push(0);
        CounterId(id)
    }

    /// Adds `n` to the counter — one indexed add, enabled or not.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.values[id.0 as usize] += n;
    }

    /// Sets the counter to an absolute value (gauge semantics).
    #[inline]
    pub fn set(&mut self, id: CounterId, v: u64) {
        self.values[id.0 as usize] = v;
    }

    /// Registers `name` (if needed) and sets it — convenience for
    /// end-of-run gauges pulled from component state.
    pub fn set_named(&mut self, name: &str, v: u64) {
        let id = self.register(name);
        self.set(id, v);
    }

    /// The counter's current value (0 when disabled: the scratch slot is
    /// not readable through this API).
    #[must_use]
    pub fn get(&self, id: CounterId) -> u64 {
        if self.enabled {
            self.values[id.0 as usize]
        } else {
            0
        }
    }

    /// Serializes the counter values for checkpointing. Names are written
    /// too, as a structural cross-check: the restore target re-registers
    /// the same counters during construction, so [`restore_state`]
    /// (Self::restore_state) validates rather than rebuilds them.
    pub fn save_state(&self, w: &mut asm_simcore::persist::StateWriter) {
        w.bool(self.enabled);
        w.usize(self.names.len());
        for (name, &value) in self.names.iter().zip(&self.values) {
            w.str(name);
            w.u64(value);
        }
    }

    /// Restores counter values captured by [`save_state`]
    /// (Self::save_state) into a registry with the same registrations.
    ///
    /// # Errors
    ///
    /// Propagates reader errors; `Corrupt` when the enabled flag or the
    /// registered names disagree.
    pub fn restore_state(
        &mut self,
        r: &mut asm_simcore::persist::StateReader<'_>,
    ) -> Result<(), asm_simcore::persist::PersistError> {
        use asm_simcore::persist::PersistError;
        let corrupt = |what: &str| PersistError::Corrupt(what.to_owned());
        if r.bool()? != self.enabled {
            return Err(corrupt("registry enabled flag mismatch"));
        }
        if r.usize()? != self.names.len() {
            return Err(corrupt("registered counter count mismatch"));
        }
        for (name, value) in self.names.iter().zip(&mut self.values) {
            if r.str()? != name {
                return Err(corrupt("registered counter name mismatch"));
            }
            *value = r.u64()?;
        }
        Ok(())
    }

    /// All `(name, value)` pairs, sorted by name. Empty when disabled.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        if !self.enabled {
            return Vec::new();
        }
        let mut out: Vec<(String, u64)> = self
            .names
            .iter()
            .cloned()
            .zip(self.values.iter().copied())
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_registry_counts_per_handle() {
        let mut r = Registry::enabled();
        let a = r.register("a.x");
        let b = r.register("a.y");
        r.add(a, 2);
        r.add(b, 5);
        r.add(a, 1);
        assert_eq!(r.get(a), 3);
        assert_eq!(r.get(b), 5);
        assert_eq!(
            r.snapshot(),
            vec![("a.x".to_string(), 3), ("a.y".to_string(), 5)]
        );
    }

    #[test]
    fn duplicate_registration_returns_same_handle() {
        let mut r = Registry::enabled();
        let a = r.register("dup");
        let b = r.register("dup");
        assert_eq!(a, b);
        r.add(a, 1);
        r.add(b, 1);
        assert_eq!(r.get(a), 2);
    }

    #[test]
    fn disabled_registry_aliases_the_scratch_slot_and_reports_nothing() {
        let mut r = Registry::disabled();
        let a = r.register("a");
        let b = r.register("b");
        assert_eq!(a, b);
        r.add(a, 10);
        r.add(b, 10);
        assert_eq!(r.get(a), 0);
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn snapshot_is_name_sorted_not_registration_ordered() {
        let mut r = Registry::enabled();
        r.register("z.last");
        r.register("a.first");
        r.set_named("m.mid", 7);
        let names: Vec<String> = r.snapshot().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a.first", "m.mid", "z.last"]);
    }

    #[test]
    fn gauge_set_overwrites() {
        let mut r = Registry::enabled();
        let g = r.register("gauge");
        r.set(g, 100);
        r.set(g, 42);
        assert_eq!(r.get(g), 42);
    }
}
