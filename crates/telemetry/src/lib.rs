#![warn(missing_docs)]
//! Deterministic observability for the ASM reproduction.
//!
//! Three layers, all keyed on *simulation* cycles only (no wall clock —
//! asm-lint R4 applies to this crate like any other simulation crate):
//!
//! - [`Registry`]: a counter/gauge registry with hierarchical dotted names
//!   (`core3.rob_stalls`, `dram.ch0.bank5.row_hits`,
//!   `llc.app2.evictions_caused`) backed by a flat `u64` arena. Handles
//!   ([`CounterId`]) are registered up front; an increment is one indexed
//!   add. A *disabled* registry maps every registration onto a single
//!   scratch slot, so the probe sites stay branch-free — the same indexed
//!   add executes whether telemetry is on or off, and the off state is
//!   observationally a no-op (empty snapshot; pinned byte-identical by the
//!   experiment differential tests).
//! - [`SeriesSet`]: per-quantum time series sampled into fixed-capacity
//!   ring buffers (cycle, value) — estimated vs. actual slowdown,
//!   `CAR_alone`/`CAR_shared`, ATS-sampled miss rates, per-app bank-level
//!   interference cycles.
//! - [`Tracer`]: a sim-time event tracer that renders to Chrome
//!   trace-event JSON (viewable in Perfetto / `chrome://tracing`), with
//!   simulation cycles reported as microseconds.
//!
//! The [`json`] module is a dependency-free JSON value model with a
//! writer and a strict recursive-descent parser; everything this crate
//! exports serialises through it (no serde in the workspace).

pub mod json;
pub mod names;
pub mod registry;
pub mod series;
pub mod trace;

pub use json::JsonValue;
pub use registry::{CounterId, Registry};
pub use series::{SeriesId, SeriesSet};
pub use trace::{TraceEvent, Tracer};

/// Default ring capacity for per-quantum series: large enough that every
/// realistic run (even `--full` with millions of cycles per quantum) keeps
/// all samples, small enough to bound memory when someone runs billions.
pub const DEFAULT_SERIES_CAPACITY: usize = 4096;

/// Default cap on buffered trace events; beyond it events are counted as
/// dropped rather than stored (the cap keeps full-scale traced runs
/// bounded in memory).
pub const DEFAULT_TRACE_LIMIT: usize = 1 << 20;
