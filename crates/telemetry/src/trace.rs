//! Sim-time event tracer emitting Chrome trace-event JSON.
//!
//! Events are timestamped in simulation cycles, reported to the viewer as
//! microseconds (`ts`/`dur` fields) — one cycle renders as one µs in
//! Perfetto or `chrome://tracing`, so relative durations read correctly
//! and determinism is preserved (no wall clock anywhere; asm-lint R4).
//!
//! Two event shapes cover everything the simulator emits:
//!
//! - *instant* events (`ph: "i"`) for point decisions — epoch owner picks,
//!   cache repartitions, quantum boundaries;
//! - *complete* events (`ph: "X"`) for spans — per-quantum summaries and
//!   (optionally 1-in-N sampled) memory request lifecycles.

use crate::json::JsonValue;

/// One Chrome trace-event record.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Event name (shown on the slice).
    pub name: String,
    /// Category tag, e.g. `"sched"`, `"quantum"`, `"mem"`.
    pub cat: &'static str,
    /// Phase: `'i'` instant or `'X'` complete.
    pub ph: char,
    /// Start timestamp in simulation cycles (rendered as µs).
    pub ts: u64,
    /// Duration in cycles; only meaningful for `'X'` events.
    pub dur: u64,
    /// Process id lane; the simulator uses 0 for the system.
    pub pid: u64,
    /// Thread id lane; the simulator uses the app/core index.
    pub tid: u64,
    /// Extra key/value payload shown in the event details pane.
    pub args: Vec<(String, JsonValue)>,
}

impl TraceEvent {
    fn to_json(&self) -> JsonValue {
        let mut members = vec![
            ("name".to_owned(), JsonValue::str(self.name.clone())),
            ("cat".to_owned(), JsonValue::str(self.cat)),
            ("ph".to_owned(), JsonValue::str(self.ph.to_string())),
            ("ts".to_owned(), JsonValue::num_u64(self.ts)),
        ];
        if self.ph == 'X' {
            members.push(("dur".to_owned(), JsonValue::num_u64(self.dur)));
        }
        members.push(("pid".to_owned(), JsonValue::num_u64(self.pid)));
        members.push(("tid".to_owned(), JsonValue::num_u64(self.tid)));
        if !self.args.is_empty() {
            members.push(("args".to_owned(), JsonValue::Obj(self.args.clone())));
        }
        JsonValue::Obj(members)
    }
}

/// Collects [`TraceEvent`]s up to a fixed limit and serialises them as a
/// Chrome trace-event JSON document.
///
/// # Examples
///
/// ```
/// use asm_telemetry::Tracer;
/// let mut t = Tracer::new(1);
/// t.instant("epoch_owner", "sched", 10_000, 0, vec![]);
/// let doc = asm_telemetry::json::parse(&t.to_json()).expect("valid JSON");
/// assert_eq!(doc.get("traceEvents").and_then(|v| v.as_arr()).map(<[_]>::len), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct Tracer {
    enabled: bool,
    /// Keep request lifecycles whose id is `0 (mod sample)`.
    sample: u64,
    limit: usize,
    events: Vec<TraceEvent>,
    dropped: u64,
}

impl Tracer {
    /// A tracer that records nothing.
    #[must_use]
    pub fn off() -> Self {
        Tracer {
            enabled: false,
            sample: 0,
            limit: 0,
            events: Vec::new(),
            dropped: 0,
        }
    }

    /// A live tracer keeping request lifecycles sampled 1-in-`sample`
    /// (by request id; 1 keeps every request) and buffering up to
    /// [`crate::DEFAULT_TRACE_LIMIT`] events.
    ///
    /// # Panics
    ///
    /// Panics if `sample` is zero.
    #[must_use]
    pub fn new(sample: u64) -> Self {
        Self::with_limit(sample, crate::DEFAULT_TRACE_LIMIT)
    }

    /// Like [`Tracer::new`] with an explicit event cap.
    ///
    /// # Panics
    ///
    /// Panics if `sample` is zero.
    #[must_use]
    pub fn with_limit(sample: u64, limit: usize) -> Self {
        assert!(sample > 0, "trace sample period must be positive");
        Tracer {
            enabled: true,
            sample,
            limit,
            events: Vec::new(),
            dropped: 0,
        }
    }

    /// Whether this tracer records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Whether the request with this id should get a lifecycle event
    /// (cheap modulo check for probe sites to gate span construction on).
    #[must_use]
    pub fn sample_request(&self, id: u64) -> bool {
        self.enabled && id % self.sample == 0
    }

    fn push(&mut self, ev: TraceEvent) {
        if !self.enabled {
            return;
        }
        if self.events.len() >= self.limit {
            self.dropped += 1;
            return;
        }
        self.events.push(ev);
    }

    /// Records an instant event.
    pub fn instant(
        &mut self,
        name: &str,
        cat: &'static str,
        ts: u64,
        tid: u64,
        args: Vec<(String, JsonValue)>,
    ) {
        self.push(TraceEvent {
            name: name.to_owned(),
            cat,
            ph: 'i',
            ts,
            dur: 0,
            pid: 0,
            tid,
            args,
        });
    }

    /// Records a complete (span) event covering `[ts, ts + dur)`.
    // asm-lint: allow(R9): opt-in trace recording — callers gate on
    // `is_enabled`/`sample_request`, so the name copy only happens for
    // requests actually being traced
    pub fn complete(
        &mut self,
        name: &str,
        cat: &'static str,
        ts: u64,
        dur: u64,
        tid: u64,
        args: Vec<(String, JsonValue)>,
    ) {
        self.push(TraceEvent {
            name: name.to_owned(),
            cat,
            ph: 'X',
            ts,
            dur,
            pid: 0,
            tid,
            args,
        });
    }

    /// The buffered events, in emission order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events discarded because the buffer hit its limit.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders the Chrome trace-event document:
    /// `{"traceEvents": [...], "displayTimeUnit": "ms", ...}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let events: Vec<JsonValue> = self.events.iter().map(TraceEvent::to_json).collect();
        let mut members = vec![
            ("traceEvents".to_owned(), JsonValue::Arr(events)),
            ("displayTimeUnit".to_owned(), JsonValue::str("ms")),
            (
                "otherData".to_owned(),
                JsonValue::Obj(vec![
                    ("clock".to_owned(), JsonValue::str("sim_cycles_as_us")),
                    ("dropped".to_owned(), JsonValue::num_u64(self.dropped)),
                ]),
            ),
        ];
        if !self.enabled {
            members.truncate(1);
        }
        JsonValue::Obj(members).to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn instant_and_complete_events_render_chrome_schema() {
        let mut t = Tracer::new(1);
        t.instant(
            "epoch_owner",
            "sched",
            1000,
            2,
            vec![("owner".to_owned(), JsonValue::num_u64(2))],
        );
        t.complete("req", "mem", 500, 120, 1, vec![]);
        let doc = json::parse(&t.to_json()).expect("tracer output parses");
        let events = doc
            .get("traceEvents")
            .and_then(JsonValue::as_arr)
            .expect("has traceEvents array");
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("ph").and_then(JsonValue::as_str), Some("i"));
        assert_eq!(events[0].get("ts").and_then(JsonValue::as_num), Some(1000.0));
        assert_eq!(events[1].get("ph").and_then(JsonValue::as_str), Some("X"));
        assert_eq!(events[1].get("dur").and_then(JsonValue::as_num), Some(120.0));
    }

    #[test]
    fn sampling_keeps_one_in_n_request_ids() {
        let t = Tracer::new(4);
        let kept: Vec<u64> = (0..10).filter(|&id| t.sample_request(id)).collect();
        assert_eq!(kept, vec![0, 4, 8]);
        assert!(!Tracer::off().sample_request(0));
    }

    #[test]
    fn limit_counts_dropped_events() {
        let mut t = Tracer::with_limit(1, 2);
        for i in 0..5 {
            t.instant("e", "sched", i, 0, vec![]);
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 3);
        let doc = json::parse(&t.to_json()).expect("parses");
        let dropped = doc
            .get("otherData")
            .and_then(|o| o.get("dropped"))
            .and_then(JsonValue::as_num);
        assert_eq!(dropped, Some(3.0));
    }

    #[test]
    fn disabled_tracer_records_nothing_and_emits_empty_doc() {
        let mut t = Tracer::off();
        t.instant("e", "sched", 0, 0, vec![]);
        t.complete("e", "mem", 0, 1, 0, vec![]);
        assert!(t.events().is_empty());
        assert_eq!(t.to_json(), r#"{"traceEvents":[]}"#);
    }
}
