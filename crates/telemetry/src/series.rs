//! Per-quantum/epoch time series in fixed-capacity ring buffers, keyed on
//! simulation cycles.
//!
//! A disabled [`SeriesSet`] hands out a sentinel [`SeriesId`] that targets
//! no buffer, so pushes are no-ops without an enabled-flag branch at the
//! call site (the `get_mut` miss *is* the branch, and it is the same code
//! path an out-of-range id would take).

use asm_simcore::Cycle;

/// Handle to one registered series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesId(u32);

/// One named time series: parallel (cycle, value) rings.
#[derive(Debug, Clone)]
struct Series {
    name: String,
    cycles: Vec<Cycle>,
    values: Vec<f64>,
    /// Ring start index once the buffer has wrapped.
    start: usize,
    /// Samples evicted because the ring was full.
    dropped: u64,
}

/// A collection of sim-time series sharing one ring capacity.
///
/// # Examples
///
/// ```
/// use asm_telemetry::SeriesSet;
/// let mut s = SeriesSet::enabled(8);
/// let id = s.register("app0.est_slowdown");
/// s.push(id, 5_000_000, 1.25);
/// assert_eq!(s.samples(id), vec![(5_000_000, 1.25)]);
/// ```
#[derive(Debug, Clone)]
pub struct SeriesSet {
    enabled: bool,
    capacity: usize,
    series: Vec<Series>,
}

impl SeriesSet {
    /// A set that records nothing; registrations return a sentinel id and
    /// pushes are no-ops.
    #[must_use]
    pub fn disabled() -> Self {
        SeriesSet {
            enabled: false,
            capacity: 0,
            series: Vec::new(),
        }
    }

    /// A live set whose rings hold up to `capacity` samples each.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn enabled(capacity: usize) -> Self {
        assert!(capacity > 0, "series capacity must be positive");
        SeriesSet {
            enabled: true,
            capacity,
            series: Vec::new(),
        }
    }

    /// Whether this set records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Registers a series (idempotent per name) and returns its handle.
    pub fn register(&mut self, name: &str) -> SeriesId {
        if !self.enabled {
            return SeriesId(u32::MAX);
        }
        if let Some(i) = self.series.iter().position(|s| s.name == name) {
            return SeriesId(i as u32);
        }
        let id = self.series.len() as u32;
        self.series.push(Series {
            name: name.to_owned(),
            cycles: Vec::new(),
            values: Vec::new(),
            start: 0,
            dropped: 0,
        });
        SeriesId(id)
    }

    /// Appends a sample; evicts the oldest when the ring is full. No-op on
    /// a disabled set (the sentinel id resolves to no buffer).
    pub fn push(&mut self, id: SeriesId, cycle: Cycle, value: f64) {
        let cap = self.capacity;
        let Some(s) = self.series.get_mut(id.0 as usize) else {
            return;
        };
        if s.cycles.len() < cap {
            s.cycles.push(cycle);
            s.values.push(value);
        } else {
            s.cycles[s.start] = cycle;
            s.values[s.start] = value;
            s.start = (s.start + 1) % cap;
            s.dropped += 1;
        }
    }

    /// Registered series names, in registration order.
    #[must_use]
    pub fn names(&self) -> Vec<&str> {
        self.series.iter().map(|s| s.name.as_str()).collect()
    }

    /// The handle for `name`, if registered.
    #[must_use]
    pub fn id_of(&self, name: &str) -> Option<SeriesId> {
        self.series
            .iter()
            .position(|s| s.name == name)
            .map(|i| SeriesId(i as u32))
    }

    /// The series' samples in chronological order (unwrapping the ring).
    #[must_use]
    pub fn samples(&self, id: SeriesId) -> Vec<(Cycle, f64)> {
        let Some(s) = self.series.get(id.0 as usize) else {
            return Vec::new();
        };
        let n = s.cycles.len();
        (0..n)
            .map(|k| {
                let i = (s.start + k) % n.max(1);
                (s.cycles[i], s.values[i])
            })
            .collect()
    }

    /// Just the values, chronological (for sparkline rendering).
    #[must_use]
    pub fn values(&self, id: SeriesId) -> Vec<f64> {
        self.samples(id).into_iter().map(|(_, v)| v).collect()
    }

    /// Samples evicted from the named ring so far.
    #[must_use]
    pub fn dropped(&self, id: SeriesId) -> u64 {
        self.series.get(id.0 as usize).map_or(0, |s| s.dropped)
    }

    /// Names of series whose rings have wrapped (evicted at least one
    /// sample), in registration order. A wrapped ring silently loses its
    /// oldest samples, so any consumer reconstructing a whole-run
    /// aggregate from `samples` — the sampling tier's per-interval
    /// fingerprint features, say — is reading a truncated history;
    /// callers surface these names as a warning.
    #[must_use]
    pub fn wrapped_names(&self) -> Vec<&str> {
        self.series
            .iter()
            .filter(|s| s.dropped > 0)
            .map(|s| s.name.as_str())
            .collect()
    }

    /// Serializes every series' ring contents for checkpointing. As with
    /// [`crate::Registry`], names are written as a structural cross-check
    /// against the restore target's own registrations.
    pub fn save_state(&self, w: &mut asm_simcore::persist::StateWriter) {
        w.bool(self.enabled);
        w.usize(self.series.len());
        for s in &self.series {
            w.str(&s.name);
            w.u64_slice(&s.cycles);
            w.f64_slice(&s.values);
            w.usize(s.start);
            w.u64(s.dropped);
        }
    }

    /// Restores ring contents captured by [`save_state`]
    /// (Self::save_state) into a set with the same registrations.
    ///
    /// # Errors
    ///
    /// Propagates reader errors; `Corrupt` when the enabled flag, the
    /// registered names, or any ring shape disagrees.
    pub fn restore_state(
        &mut self,
        r: &mut asm_simcore::persist::StateReader<'_>,
    ) -> Result<(), asm_simcore::persist::PersistError> {
        use asm_simcore::persist::PersistError;
        let corrupt = |what: &str| PersistError::Corrupt(what.to_owned());
        if r.bool()? != self.enabled {
            return Err(corrupt("series enabled flag mismatch"));
        }
        if r.usize()? != self.series.len() {
            return Err(corrupt("registered series count mismatch"));
        }
        for s in &mut self.series {
            if r.str()? != s.name {
                return Err(corrupt("registered series name mismatch"));
            }
            let cycles = r.u64_vec()?;
            let values = r.f64_vec()?;
            let start = r.usize()?;
            let dropped = r.u64()?;
            if cycles.len() != values.len() || cycles.len() > self.capacity {
                return Err(corrupt("series ring shape mismatch"));
            }
            if start != 0 && start >= cycles.len() {
                return Err(corrupt("series ring start out of range"));
            }
            s.cycles = cycles;
            s.values = values;
            s.start = start;
            s.dropped = dropped;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back_in_order() {
        let mut s = SeriesSet::enabled(4);
        let id = s.register("x");
        for k in 0..3u64 {
            s.push(id, k * 10, k as f64);
        }
        assert_eq!(s.samples(id), vec![(0, 0.0), (10, 1.0), (20, 2.0)]);
        assert_eq!(s.dropped(id), 0);
    }

    #[test]
    fn ring_evicts_oldest_when_full() {
        let mut s = SeriesSet::enabled(3);
        let id = s.register("x");
        for k in 0..5u64 {
            s.push(id, k, k as f64);
        }
        assert_eq!(s.samples(id), vec![(2, 2.0), (3, 3.0), (4, 4.0)]);
        assert_eq!(s.dropped(id), 2);
    }

    #[test]
    fn wrapped_names_lists_only_wrapped_rings() {
        let mut s = SeriesSet::enabled(2);
        let a = s.register("a");
        let b = s.register("b");
        for k in 0..3u64 {
            s.push(a, k, k as f64);
        }
        s.push(b, 0, 0.0);
        assert_eq!(s.wrapped_names(), vec!["a"]);
        // Exactly at capacity is not a wrap: no sample was lost.
        s.push(b, 1, 1.0);
        assert_eq!(s.wrapped_names(), vec!["a"]);
    }

    #[test]
    fn wrap_state_survives_save_restore() {
        let mut s = SeriesSet::enabled(2);
        let id = s.register("x");
        for k in 0..4u64 {
            s.push(id, k, k as f64);
        }
        let mut w = asm_simcore::persist::StateWriter::new("series-test", 1);
        s.save_state(&mut w);
        let bytes = w.finish();

        let mut t = SeriesSet::enabled(2);
        let tid = t.register("x");
        let mut r = asm_simcore::persist::StateReader::new(&bytes, "series-test", 1)
            .expect("fresh artefact parses");
        t.restore_state(&mut r).expect("same registrations restore");
        assert_eq!(t.dropped(tid), 2);
        assert_eq!(t.wrapped_names(), vec!["x"]);
        assert_eq!(t.samples(tid), s.samples(id));
    }

    #[test]
    fn disabled_set_is_a_total_no_op() {
        let mut s = SeriesSet::disabled();
        let id = s.register("x");
        s.push(id, 1, 1.0);
        assert!(s.samples(id).is_empty());
        assert!(s.names().is_empty());
    }

    #[test]
    fn register_is_idempotent_per_name() {
        let mut s = SeriesSet::enabled(2);
        let a = s.register("same");
        let b = s.register("same");
        assert_eq!(a, b);
        assert_eq!(s.names(), vec!["same"]);
    }

    #[test]
    fn id_of_finds_registered_series() {
        let mut s = SeriesSet::enabled(2);
        let a = s.register("a");
        assert_eq!(s.id_of("a"), Some(a));
        assert_eq!(s.id_of("missing"), None);
    }
}
