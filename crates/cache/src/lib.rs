#![warn(missing_docs)]
//! Cache substrate for the ASM reproduction.
//!
//! This crate provides every cache-side structure the paper's evaluation
//! depends on:
//!
//! - [`SetAssocCache`]: a set-associative cache with true-LRU replacement,
//!   per-application ownership tracking, and optional way partitioning with
//!   UCP-style replacement enforcement — used for both the private L1s and
//!   the shared last-level cache (Table 2).
//! - [`AuxiliaryTagStore`]: the per-application auxiliary tag store (ATS) of
//!   §3.2/§4.2 that tracks the state the shared cache *would* have had if
//!   the application ran alone. Supports full coverage or set sampling
//!   (§4.4), and maintains per-recency-position hit counters, which give the
//!   hit curves used by UCP and ASM-Cache (§7.1).
//! - [`PollutionFilter`]: the Bloom-filter pollution filter FST uses to
//!   identify contention misses (§2.1).
//! - [`lookahead_partition`]: the Utility-based Cache Partitioning
//!   look-ahead allocation algorithm, generic over the utility curve so it
//!   serves both UCP (miss utility) and ASM-Cache (slowdown utility).
//!
//! # Examples
//!
//! ```
//! use asm_cache::{CacheGeometry, SetAssocCache};
//! use asm_simcore::{AppId, LineAddr};
//!
//! let geom = CacheGeometry::new(64, 4);
//! let mut cache = SetAssocCache::new(geom, 2);
//! let app = AppId::new(0);
//! let line = LineAddr::new(0x100);
//! assert!(!cache.access(line, app, false).hit); // cold miss
//! assert!(cache.access(line, app, false).hit); // now resident
//! ```

pub mod ats;
pub mod geometry;
pub mod partition;
pub mod pollution;
pub mod reference;
pub(crate) mod scan;
pub mod set_assoc;

pub use ats::{AtsOutcome, AuxiliaryTagStore};
pub use geometry::CacheGeometry;
pub use partition::{lookahead_partition, BenefitCurves, WayPartition};
pub use pollution::PollutionFilter;
pub use reference::{RefAts, RefLruCache};
pub use set_assoc::{AccessOutcome, EvictedLine, LineRef, ResidentLine, SetAssocCache};
