//! Cache geometry: number of sets and ways, and the set-index mapping.

use asm_simcore::{LineAddr, LINE_BYTES};

/// The shape of a set-associative cache: `sets × ways` lines of 64 bytes.
///
/// # Examples
///
/// ```
/// use asm_cache::CacheGeometry;
/// // The paper's main shared cache: 2 MB, 16-way (Table 2).
/// let llc = CacheGeometry::from_capacity(2 * 1024 * 1024, 16);
/// assert_eq!(llc.sets(), 2048);
/// assert_eq!(llc.ways(), 16);
/// assert_eq!(llc.capacity_bytes(), 2 * 1024 * 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    sets: usize,
    ways: usize,
}

impl CacheGeometry {
    /// Creates a geometry with the given number of sets and ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is zero or not a power of two, or if `ways` is zero.
    #[must_use]
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "sets must be a power of two"
        );
        assert!(ways > 0, "ways must be positive");
        CacheGeometry { sets, ways }
    }

    /// Creates a geometry from a capacity in bytes and an associativity,
    /// assuming 64-byte lines.
    ///
    /// # Panics
    ///
    /// Panics if the resulting set count is zero or not a power of two.
    #[must_use]
    pub fn from_capacity(capacity_bytes: u64, ways: usize) -> Self {
        let lines = capacity_bytes / LINE_BYTES;
        let sets = (lines as usize) / ways;
        Self::new(sets, ways)
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity (ways per set).
    #[must_use]
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total capacity in bytes (64-byte lines).
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        (self.sets * self.ways) as u64 * LINE_BYTES
    }

    /// Maps a line address to its set index (low-order line bits).
    #[inline]
    #[must_use]
    pub fn set_index(&self, line: LineAddr) -> usize {
        (line.raw() as usize) & (self.sets - 1)
    }

    /// Returns the tag stored for `line` (the bits above the set index).
    #[inline]
    #[must_use]
    pub fn tag(&self, line: LineAddr) -> u64 {
        line.raw() >> self.sets.trailing_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_geometry_matches_table2() {
        // 64 KB, 4-way, 64 B lines -> 256 sets.
        let g = CacheGeometry::from_capacity(64 * 1024, 4);
        assert_eq!(g.sets(), 256);
        assert_eq!(g.ways(), 4);
    }

    #[test]
    fn set_index_wraps_over_sets() {
        let g = CacheGeometry::new(16, 2);
        assert_eq!(g.set_index(LineAddr::new(5)), 5);
        assert_eq!(g.set_index(LineAddr::new(16 + 5)), 5);
    }

    #[test]
    fn tag_distinguishes_same_set_lines() {
        let g = CacheGeometry::new(16, 2);
        let a = LineAddr::new(5);
        let b = LineAddr::new(16 + 5);
        assert_eq!(g.set_index(a), g.set_index(b));
        assert_ne!(g.tag(a), g.tag(b));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_sets() {
        let _ = CacheGeometry::new(100, 4);
    }

    #[test]
    fn capacity_round_trips() {
        for (cap, ways) in [(1u64 << 20, 16), (2 << 20, 16), (4 << 20, 16)] {
            let g = CacheGeometry::from_capacity(cap, ways);
            assert_eq!(g.capacity_bytes(), cap);
        }
    }
}
