//! A set-associative cache with true-LRU replacement, per-application line
//! ownership, and optional way partitioning.
//!
//! The same structure models both the private L1 caches and the shared
//! last-level cache of the paper's system (Table 2). For the shared cache,
//! each line remembers the application that inserted it, which enables
//! - way-partition *enforcement* (UCP-style: an application that reaches its
//!   way quota in a set replaces its own LRU line),
//! - pollution detection (an eviction caused by a *different* application
//!   feeds FST's pollution filter).

use asm_simcore::{AppId, LineAddr};

use crate::geometry::CacheGeometry;
use crate::partition::WayPartition;

/// A line evicted by an insertion, reported so the owner can be credited
/// with a writeback and/or a pollution-filter update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// The address of the evicted line.
    pub line: LineAddr,
    /// The application that owned the evicted line.
    pub owner: AppId,
    /// Whether the line was dirty (requires a writeback to memory).
    pub dirty: bool,
}

/// The result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// On a hit, the LRU-stack position of the line (0 = most recently
    /// used). `None` on a miss.
    pub hit_recency: Option<usize>,
    /// On a miss that displaced a valid line, the displaced line.
    pub eviction: Option<EvictedLine>,
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    owner: AppId,
    dirty: bool,
}

/// A set-associative cache with true-LRU replacement.
///
/// Lines are inserted at access time (allocate-on-miss); the *timing* of the
/// fill is modelled by the surrounding system, which keeps the tag state
/// deterministic and independent of memory latency.
///
/// # Examples
///
/// ```
/// use asm_cache::{CacheGeometry, SetAssocCache};
/// use asm_simcore::{AppId, LineAddr};
///
/// let mut c = SetAssocCache::new(CacheGeometry::new(4, 2), 1);
/// let app = AppId::new(0);
/// assert!(!c.access(LineAddr::new(0), app, false).hit);
/// assert!(!c.access(LineAddr::new(4), app, false).hit); // same set
/// assert!(c.access(LineAddr::new(0), app, false).hit);
/// // Inserting a third line in the 2-way set evicts the LRU line (4).
/// let out = c.access(LineAddr::new(8), app, false);
/// assert_eq!(out.eviction.unwrap().line, LineAddr::new(4));
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geometry: CacheGeometry,
    /// Each set is an LRU stack: index 0 is the most recently used way.
    sets: Vec<Vec<Way>>,
    partition: Option<WayPartition>,
    app_count: usize,
    /// Lines currently owned per application, maintained incrementally at
    /// every insertion, eviction, ownerless replacement, and invalidation
    /// so [`occupancy`](Self::occupancy) is O(1) instead of a full-cache
    /// scan (it is consulted on mechanism hot paths every quantum).
    occupancy: Vec<usize>,
}

impl SetAssocCache {
    /// Creates an empty cache for a system with `app_count` applications.
    #[must_use]
    pub fn new(geometry: CacheGeometry, app_count: usize) -> Self {
        SetAssocCache {
            geometry,
            sets: vec![Vec::new(); geometry.sets()],
            partition: None,
            app_count,
            occupancy: vec![0; app_count],
        }
    }

    /// Returns the cache geometry.
    #[must_use]
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Returns the number of applications this cache was configured for.
    #[must_use]
    pub fn app_count(&self) -> usize {
        self.app_count
    }

    /// Installs (or clears, with `None`) a way partition. Enforcement is
    /// lazy, as in UCP: resident lines are not flushed; instead replacement
    /// decisions steer each application toward its quota.
    ///
    /// # Panics
    ///
    /// Panics if the partition was built for a different way count or
    /// application count.
    pub fn set_partition(&mut self, partition: Option<WayPartition>) {
        if let Some(p) = &partition {
            assert_eq!(
                p.total_ways(),
                self.geometry.ways(),
                "partition way count mismatch"
            );
            assert_eq!(
                p.app_count(),
                self.app_count,
                "partition app count mismatch"
            );
        }
        self.partition = partition;
    }

    /// Returns the active partition, if any.
    #[must_use]
    pub fn partition(&self) -> Option<&WayPartition> {
        self.partition.as_ref()
    }

    /// Accesses `line` on behalf of `app`, updating LRU state and inserting
    /// the line on a miss. Returns hit/miss, the hit's recency position, and
    /// any eviction the insertion caused.
    pub fn access(&mut self, line: LineAddr, app: AppId, is_write: bool) -> AccessOutcome {
        if let Some(pos) = self.touch(line, is_write) {
            return AccessOutcome {
                hit: true,
                hit_recency: Some(pos),
                eviction: None,
            };
        }
        AccessOutcome {
            hit: false,
            hit_recency: None,
            eviction: self.insert_absent(line, app, is_write),
        }
    }

    /// The hit half of [`access`](Self::access): if `line` is resident,
    /// promotes it to MRU (marking it dirty on a write) and returns its
    /// previous LRU-stack position; if absent, mutates nothing and returns
    /// `None`. One set scan — callers that would otherwise
    /// [`probe`](Self::probe) and then `access` on a hit (the L1 fast path)
    /// do half the work.
    pub fn touch(&mut self, line: LineAddr, is_write: bool) -> Option<usize> {
        let set = &mut self.sets[self.geometry.set_index(line)];
        let tag = self.geometry.tag(line);
        let pos = set.iter().position(|w| w.tag == tag)?;
        // Promote to MRU with a single rotate instead of remove + insert
        // (which would shift the tail of the set twice).
        set[..=pos].rotate_right(1);
        set[0].dirty |= is_write;
        Some(pos)
    }

    /// The miss half of [`access`](Self::access): inserts `line` — which
    /// must not be resident — at MRU for `app`, returning the displaced
    /// line if the set was full. Skips the residency scan, so callers that
    /// already established absence (via [`probe`](Self::probe) or
    /// [`touch`](Self::touch)) do not pay for it again.
    pub fn insert_absent(
        &mut self,
        line: LineAddr,
        app: AppId,
        is_write: bool,
    ) -> Option<EvictedLine> {
        let set_idx = self.geometry.set_index(line);
        let tag = self.geometry.tag(line);
        let ways = self.geometry.ways();
        let set = &mut self.sets[set_idx];
        debug_assert!(
            set.iter().all(|w| w.tag != tag),
            "insert_absent on a resident line"
        );

        let new_way = Way {
            tag,
            owner: app,
            dirty: is_write,
        };
        if let Some(c) = self.occupancy.get_mut(app.index()) {
            *c += 1;
        }
        if set.len() < ways {
            set.push(new_way);
            set.rotate_right(1);
            return None;
        }

        let victim_pos = Self::pick_victim(set, app, self.partition.as_ref());
        let victim = set[victim_pos];
        set[..=victim_pos].rotate_right(1);
        set[0] = new_way;
        if let Some(c) = self.occupancy.get_mut(victim.owner.index()) {
            *c -= 1;
        }
        Some(EvictedLine {
            line: Self::reconstruct(self.geometry, victim.tag, set_idx),
            owner: victim.owner,
            dirty: victim.dirty,
        })
    }

    /// Checks residency without updating any state.
    #[must_use]
    pub fn probe(&self, line: LineAddr) -> bool {
        let set = &self.sets[self.geometry.set_index(line)];
        let tag = self.geometry.tag(line);
        set.iter().any(|w| w.tag == tag)
    }

    /// Removes `line` if resident, returning whether it was dirty.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<bool> {
        let set_idx = self.geometry.set_index(line);
        let tag = self.geometry.tag(line);
        let set = &mut self.sets[set_idx];
        let pos = set.iter().position(|w| w.tag == tag)?;
        let way = set.remove(pos);
        if let Some(c) = self.occupancy.get_mut(way.owner.index()) {
            *c -= 1;
        }
        Some(way.dirty)
    }

    /// Returns how many lines `app` currently holds across the whole cache.
    /// O(1): read from the incrementally maintained per-application
    /// counters (cross-checked against [`occupancy_scan`]
    /// (Self::occupancy_scan) by randomized tests).
    #[must_use]
    pub fn occupancy(&self, app: AppId) -> usize {
        self.occupancy.get(app.index()).copied().unwrap_or(0)
    }

    /// Recomputes `app`'s occupancy by scanning every set. Linear in cache
    /// size — the reference implementation the O(1) counters are validated
    /// against.
    #[must_use]
    pub fn occupancy_scan(&self, app: AppId) -> usize {
        self.sets
            .iter()
            .map(|s| s.iter().filter(|w| w.owner == app).count())
            .sum()
    }

    /// Picks the victim way index for an insertion by `app`.
    ///
    /// Without a partition this is the global LRU way. With a partition it
    /// follows UCP's enforcement: if the inserting application has reached
    /// its quota in this set, it victimises its own LRU line; otherwise the
    /// LRU line of any application holding more than its quota; otherwise
    /// the global LRU line.
    fn pick_victim(set: &[Way], app: AppId, partition: Option<&WayPartition>) -> usize {
        let Some(partition) = partition else {
            return set.len() - 1;
        };
        let own_quota = partition.ways_for(app);
        let own_occupancy = set.iter().filter(|w| w.owner == app).count();
        if own_occupancy >= own_quota && own_occupancy > 0 {
            // At (or over) quota: replace own LRU line (search from the LRU
            // end). This also confines zero-quota applications to at most
            // one transient line per set.
            if let Some(rpos) = set.iter().rposition(|w| w.owner == app) {
                return rpos;
            }
        }
        // Replace the LRU line of an over-quota application.
        let mut occupancy = vec![0usize; partition.app_count()];
        for w in set {
            occupancy[w.owner.index()] += 1;
        }
        if let Some(rpos) = set
            .iter()
            .rposition(|w| occupancy[w.owner.index()] > partition.ways_for(w.owner))
        {
            return rpos;
        }
        set.len() - 1
    }

    fn reconstruct(geometry: CacheGeometry, tag: u64, set_idx: usize) -> LineAddr {
        LineAddr::new((tag << geometry.sets().trailing_zeros()) | set_idx as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(sets: usize, ways: usize, apps: usize) -> SetAssocCache {
        SetAssocCache::new(CacheGeometry::new(sets, ways), apps)
    }

    fn same_set_line(sets: usize, set: usize, k: u64) -> LineAddr {
        LineAddr::new(k * sets as u64 + set as u64)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = cache(8, 2, 1);
        let a = AppId::new(0);
        let l = LineAddr::new(42);
        assert!(!c.access(l, a, false).hit);
        let out = c.access(l, a, false);
        assert!(out.hit);
        assert_eq!(out.hit_recency, Some(0));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = cache(4, 2, 1);
        let a = AppId::new(0);
        let l0 = same_set_line(4, 1, 0);
        let l1 = same_set_line(4, 1, 1);
        let l2 = same_set_line(4, 1, 2);
        c.access(l0, a, false);
        c.access(l1, a, false);
        c.access(l0, a, false); // l1 becomes LRU
        let out = c.access(l2, a, false);
        assert_eq!(out.eviction.unwrap().line, l1);
        assert!(c.probe(l0));
        assert!(!c.probe(l1));
    }

    #[test]
    fn hit_recency_reports_stack_position() {
        let mut c = cache(4, 4, 1);
        let a = AppId::new(0);
        let lines: Vec<_> = (0..4).map(|k| same_set_line(4, 0, k)).collect();
        for &l in &lines {
            c.access(l, a, false);
        }
        // lines[0] is now at LRU position 3.
        assert_eq!(c.access(lines[0], a, false).hit_recency, Some(3));
        // And after that access, it's MRU.
        assert_eq!(c.access(lines[0], a, false).hit_recency, Some(0));
    }

    #[test]
    fn write_marks_dirty_and_eviction_reports_it() {
        let mut c = cache(4, 1, 1);
        let a = AppId::new(0);
        let l0 = same_set_line(4, 2, 0);
        let l1 = same_set_line(4, 2, 1);
        c.access(l0, a, true);
        let ev = c.access(l1, a, false).eviction.unwrap();
        assert_eq!(ev.line, l0);
        assert!(ev.dirty);
    }

    #[test]
    fn read_then_write_hit_dirties_line() {
        let mut c = cache(4, 2, 1);
        let a = AppId::new(0);
        let l0 = same_set_line(4, 0, 0);
        let l1 = same_set_line(4, 0, 1);
        c.access(l0, a, false);
        c.access(l0, a, true); // dirty via write hit
        c.access(l1, a, false);
        let ev = c.access(same_set_line(4, 0, 2), a, false).eviction.unwrap();
        assert_eq!(ev.line, l0);
        assert!(ev.dirty);
    }

    #[test]
    fn eviction_reports_original_owner() {
        let mut c = cache(4, 1, 2);
        let a0 = AppId::new(0);
        let a1 = AppId::new(1);
        c.access(same_set_line(4, 0, 0), a0, false);
        let ev = c
            .access(same_set_line(4, 0, 1), a1, false)
            .eviction
            .unwrap();
        assert_eq!(ev.owner, a0);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = cache(4, 2, 1);
        let a = AppId::new(0);
        let l = LineAddr::new(9);
        c.access(l, a, true);
        assert_eq!(c.invalidate(l), Some(true));
        assert!(!c.probe(l));
        assert_eq!(c.invalidate(l), None);
    }

    #[test]
    fn partition_confines_over_quota_app() {
        let mut c = cache(1, 4, 2);
        let a0 = AppId::new(0);
        let a1 = AppId::new(1);
        c.set_partition(Some(WayPartition::new(vec![2, 2])));
        // app0 fills its 2 ways, then keeps inserting: it must victimise
        // itself, never touching app1's lines.
        c.access(LineAddr::new(0), a0, false);
        c.access(LineAddr::new(1), a0, false);
        c.access(LineAddr::new(2), a1, false);
        c.access(LineAddr::new(3), a1, false);
        for k in 4..10 {
            let ev = c.access(LineAddr::new(k), a0, false).eviction.unwrap();
            assert_eq!(ev.owner, a0, "app0 should evict only its own lines");
        }
        assert!(c.probe(LineAddr::new(2)));
        assert!(c.probe(LineAddr::new(3)));
    }

    #[test]
    fn partition_reclaims_from_over_quota_app() {
        let mut c = cache(1, 4, 2);
        let a0 = AppId::new(0);
        let a1 = AppId::new(1);
        // app0 fills all 4 ways without a partition.
        for k in 0..4 {
            c.access(LineAddr::new(k), a0, false);
        }
        // Now partition 2/2: app1's inserts must reclaim from app0.
        c.set_partition(Some(WayPartition::new(vec![2, 2])));
        let ev = c.access(LineAddr::new(100), a1, false).eviction.unwrap();
        assert_eq!(ev.owner, a0);
        let ev = c.access(LineAddr::new(101), a1, false).eviction.unwrap();
        assert_eq!(ev.owner, a0);
        // app1 at quota: next insert victimises its own lines.
        let ev = c.access(LineAddr::new(102), a1, false).eviction.unwrap();
        assert_eq!(ev.owner, a1);
    }

    #[test]
    fn zero_quota_app_still_makes_progress() {
        // An app with a zero allocation replaces the LRU of over-quota apps
        // (or global LRU) rather than deadlocking.
        let mut c = cache(1, 2, 2);
        let a0 = AppId::new(0);
        let a1 = AppId::new(1);
        c.set_partition(Some(WayPartition::new(vec![2, 0])));
        c.access(LineAddr::new(0), a0, false);
        c.access(LineAddr::new(1), a0, false);
        let out = c.access(LineAddr::new(2), a1, false);
        assert!(!out.hit);
        assert!(out.eviction.is_some());
    }

    #[test]
    #[should_panic(expected = "partition way count mismatch")]
    fn partition_way_count_validated() {
        let mut c = cache(4, 4, 2);
        c.set_partition(Some(WayPartition::new(vec![1, 2])));
    }

    #[test]
    fn occupancy_counters_match_scan_under_random_traffic() {
        use asm_simcore::SimRng;
        let mut rng = SimRng::seed_from(0xC0FFEE);
        let apps = 4;
        let mut c = cache(64, 8, apps);
        let check = |c: &SetAssocCache| {
            for a in 0..apps {
                let app = AppId::new(a);
                assert_eq!(
                    c.occupancy(app),
                    c.occupancy_scan(app),
                    "counter drifted from scan for app {a}"
                );
            }
        };
        for i in 0..50_000u64 {
            let app = AppId::new((rng.next_u64() % apps as u64) as usize);
            let line = LineAddr::new(rng.next_u64() % 4_096);
            match rng.next_u64() % 16 {
                0 => {
                    let _ = c.invalidate(line);
                }
                1 => {
                    let _ = c.touch(line, rng.next_u64() % 2 == 0);
                }
                2 => {
                    if !c.probe(line) {
                        let _ = c.insert_absent(line, app, rng.next_u64() % 2 == 0);
                    }
                }
                3 => {
                    // Partition churn: quotas must not desync the counters.
                    let quotas = match rng.next_u64() % 3 {
                        0 => vec![2, 2, 2, 2],
                        1 => vec![5, 1, 1, 1],
                        _ => vec![8, 0, 0, 0],
                    };
                    let p = (rng.next_u64() % 2 == 0).then(|| WayPartition::new(quotas));
                    c.set_partition(p);
                }
                _ => {
                    let _ = c.access(line, app, rng.next_u64() % 2 == 0);
                }
            }
            if i % 1_000 == 0 {
                check(&c);
            }
        }
        check(&c);
    }

    #[test]
    fn touch_plus_insert_absent_equals_access() {
        use asm_simcore::SimRng;
        // The split fast path (probe/touch + insert_absent) must evolve the
        // cache exactly like the fused `access` — same hits, recencies,
        // evictions, and final contents.
        let mut rng = SimRng::seed_from(0x5117);
        let mut fused = cache(16, 4, 2);
        let mut split = cache(16, 4, 2);
        for _ in 0..20_000u64 {
            let app = AppId::new((rng.next_u64() % 2) as usize);
            let line = LineAddr::new(rng.next_u64() % 512);
            let is_write = rng.next_u64() % 2 == 0;
            let a = fused.access(line, app, is_write);
            let b = match split.touch(line, is_write) {
                Some(pos) => AccessOutcome {
                    hit: true,
                    hit_recency: Some(pos),
                    eviction: None,
                },
                None => AccessOutcome {
                    hit: false,
                    hit_recency: None,
                    eviction: split.insert_absent(line, app, is_write),
                },
            };
            assert_eq!(a, b);
        }
        for l in 0..512 {
            let line = LineAddr::new(l);
            assert_eq!(fused.probe(line), split.probe(line));
        }
    }

    #[test]
    fn occupancy_counts_lines_per_app() {
        let mut c = cache(8, 2, 2);
        let a0 = AppId::new(0);
        let a1 = AppId::new(1);
        c.access(LineAddr::new(0), a0, false);
        c.access(LineAddr::new(1), a0, false);
        c.access(LineAddr::new(2), a1, false);
        assert_eq!(c.occupancy(a0), 2);
        assert_eq!(c.occupancy(a1), 1);
    }

    #[test]
    fn reconstructed_eviction_address_is_exact() {
        let mut c = cache(8, 1, 1);
        let a = AppId::new(0);
        let l = LineAddr::new(0xABCD_EF01);
        c.access(l, a, false);
        let conflicting = LineAddr::new(l.raw() + 8); // same set, different tag
        let ev = c.access(conflicting, a, false).eviction.unwrap();
        assert_eq!(ev.line, l);
    }
}
