//! A set-associative cache with true-LRU replacement, per-application line
//! ownership, and optional way partitioning.
//!
//! The same structure models both the private L1 caches and the shared
//! last-level cache of the paper's system (Table 2). For the shared cache,
//! each line remembers the application that inserted it, which enables
//! - way-partition *enforcement* (UCP-style: an application that reaches its
//!   way quota in a set replaces its own LRU line),
//! - pollution detection (an eviction caused by a *different* application
//!   feeds FST's pollution filter).
//!
//! # Memory layout
//!
//! The tag store is a flat structure-of-arrays arena (DESIGN.md §8
//! "Tag-store memory layout"): one contiguous `Box<[u64]>` of tags, one
//! packed per-line metadata word (`valid | dirty | owner`), and one
//! recency-rank byte per line. Way `w` of set `s` lives at flat index
//! `s * ways + w`, so a set's tags occupy a couple of cache lines and a
//! lookup is a short linear scan with no pointer chasing. Recency is
//! encoded as per-line *ranks* (0 = MRU … fill-1 = LRU) instead of a
//! physically ordered stack: promoting a line renumbers a few rank bytes
//! and never moves tag or metadata payloads. Rank order is exactly the
//! LRU-stack order of the previous `Vec<Vec<Way>>` representation, so
//! every hit/miss outcome, recency position and victim choice is
//! bit-identical (pinned against [`crate::reference::RefLruCache`] by the
//! model-based differential tests).

use asm_simcore::{AppId, LineAddr};

use crate::geometry::CacheGeometry;
use crate::partition::WayPartition;
use crate::scan::{by_ways, find_way, first_byte_match, ways_of, NO_RANK};

/// A line evicted by an insertion, reported so the owner can be credited
/// with a writeback and/or a pollution-filter update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// The address of the evicted line.
    pub line: LineAddr,
    /// The application that owned the evicted line.
    pub owner: AppId,
    /// Whether the line was dirty (requires a writeback to memory).
    pub dirty: bool,
}

/// The result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// On a hit, the LRU-stack position of the line (0 = most recently
    /// used). `None` on a miss.
    pub hit_recency: Option<usize>,
    /// On a miss that displaced a valid line, the displaced line.
    pub eviction: Option<EvictedLine>,
}

/// A resident line reported by [`SetAssocCache::lines`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResidentLine {
    /// The line's address.
    pub line: LineAddr,
    /// The application that inserted it.
    pub owner: AppId,
    /// Whether the line is dirty.
    pub dirty: bool,
    /// The set the line resides in.
    pub set: usize,
    /// The line's LRU-stack position within its set (0 = MRU).
    pub recency: usize,
}

/// An opaque handle to a resident line, returned by
/// [`SetAssocCache::find`] and consumed by [`SetAssocCache::promote`].
///
/// The handle stays valid across *promotions* of other lines (hits and
/// write-hit absorptions reorder ranks but never move payloads in the
/// flat arena); it is invalidated by any insertion or invalidation in the
/// same set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineRef {
    /// Flat index of the set's first way (pre-computed so `promote` does
    /// no division).
    base: usize,
    /// Flat index of the line itself.
    slot: usize,
}

/// Packed metadata word: `valid | dirty | owner` (owner in the high bits).
const VALID: u32 = 1;
const DIRTY: u32 = 1 << 1;
const OWNER_SHIFT: u32 = 2;

/// A set-associative cache with true-LRU replacement.
///
/// Lines are inserted at access time (allocate-on-miss); the *timing* of the
/// fill is modelled by the surrounding system, which keeps the tag state
/// deterministic and independent of memory latency.
///
/// # Examples
///
/// ```
/// use asm_cache::{CacheGeometry, SetAssocCache};
/// use asm_simcore::{AppId, LineAddr};
///
/// let mut c = SetAssocCache::new(CacheGeometry::new(4, 2), 1);
/// let app = AppId::new(0);
/// assert!(!c.access(LineAddr::new(0), app, false).hit);
/// assert!(!c.access(LineAddr::new(4), app, false).hit); // same set
/// assert!(c.access(LineAddr::new(0), app, false).hit);
/// // Inserting a third line in the 2-way set evicts the LRU line (4).
/// let out = c.access(LineAddr::new(8), app, false);
/// assert_eq!(out.eviction.unwrap().line, LineAddr::new(4));
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geometry: CacheGeometry,
    /// Tags, way `w` of set `s` at flat index `s * ways + w`.
    tags: Box<[u64]>,
    /// Packed `valid | dirty | owner` word per line, same indexing.
    meta: Box<[u32]>,
    /// Recency rank per line: 0 = MRU, `fill - 1` = LRU, [`NO_RANK`] when
    /// the way is empty. Within a set the valid ranks are always a
    /// permutation of `0..fill`.
    rank: Box<[u8]>,
    /// Valid lines per set.
    fill: Box<[u8]>,
    partition: Option<WayPartition>,
    app_count: usize,
    /// Lines currently owned per application, maintained incrementally at
    /// every insertion, eviction, ownerless replacement, and invalidation
    /// so [`occupancy`](Self::occupancy) is O(1) instead of a full-cache
    /// scan (it is consulted on mechanism hot paths every quantum).
    occupancy: Vec<usize>,
    /// Reusable per-application set-occupancy scratch for partitioned
    /// victim selection — sized to the partition's app count, zeroed per
    /// use, so the miss path never allocates.
    victim_scratch: Vec<usize>,
}

impl SetAssocCache {
    /// Creates an empty cache for a system with `app_count` applications.
    ///
    /// # Panics
    ///
    /// Panics if the associativity exceeds 255 (recency ranks are stored
    /// as single bytes).
    #[must_use]
    pub fn new(geometry: CacheGeometry, app_count: usize) -> Self {
        assert!(
            geometry.ways() <= usize::from(u8::MAX),
            "associativity above 255 does not fit the rank-byte encoding"
        );
        let lines = geometry.sets() * geometry.ways();
        SetAssocCache {
            geometry,
            tags: vec![0; lines].into_boxed_slice(),
            meta: vec![0; lines].into_boxed_slice(),
            rank: vec![NO_RANK; lines].into_boxed_slice(),
            fill: vec![0; geometry.sets()].into_boxed_slice(),
            partition: None,
            app_count,
            occupancy: vec![0; app_count],
            victim_scratch: Vec::new(),
        }
    }

    /// Returns the cache geometry.
    #[must_use]
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Returns the number of applications this cache was configured for.
    #[must_use]
    pub fn app_count(&self) -> usize {
        self.app_count
    }

    /// Installs (or clears, with `None`) a way partition. Enforcement is
    /// lazy, as in UCP: resident lines are not flushed; instead replacement
    /// decisions steer each application toward its quota.
    ///
    /// # Panics
    ///
    /// Panics if the partition was built for a different way count or
    /// application count.
    pub fn set_partition(&mut self, partition: Option<WayPartition>) {
        if let Some(p) = &partition {
            assert_eq!(
                p.total_ways(),
                self.geometry.ways(),
                "partition way count mismatch"
            );
            assert_eq!(
                p.app_count(),
                self.app_count,
                "partition app count mismatch"
            );
        }
        self.partition = partition;
    }

    /// Returns the active partition, if any.
    #[must_use]
    pub fn partition(&self) -> Option<&WayPartition> {
        self.partition.as_ref()
    }

    /// Accesses `line` on behalf of `app`, updating LRU state and inserting
    /// the line on a miss. Returns hit/miss, the hit's recency position, and
    /// any eviction the insertion caused. Fused: the set index, tag, and
    /// set base are computed once and feed both the hit and the miss half
    /// (the split [`touch`](Self::touch)/[`insert_absent`](Self::insert_absent)
    /// pair recomputes them between the halves).
    #[inline]
    pub fn access(&mut self, line: LineAddr, app: AppId, is_write: bool) -> AccessOutcome {
        by_ways!(self, access_w(line, app, is_write))
    }

    #[inline]
    fn access_w<const W: usize>(
        &mut self,
        line: LineAddr,
        app: AppId,
        is_write: bool,
    ) -> AccessOutcome {
        let set_idx = self.geometry.set_index(line);
        let tag = self.geometry.tag(line);
        let ways = ways_of::<W>(self.geometry);
        let base = set_idx * ways;
        let found = find_way::<W>(
            &self.tags[base..base + ways],
            &self.rank[base..base + ways],
            tag,
        );
        if let Some(w) = found {
            return AccessOutcome {
                hit: true,
                hit_recency: Some(self.promote_slot::<W>(base, base + w, is_write)),
                eviction: None,
            };
        }
        AccessOutcome {
            hit: false,
            hit_recency: None,
            eviction: self.fill_absent::<W>(set_idx, tag, app, is_write),
        }
    }

    /// Scans `line`'s set for a resident copy, returning the set's base
    /// and the line's flat index. Sub-slices keep the per-way loads free
    /// of bounds checks; the search itself is [`find_way`].
    #[inline]
    fn scan_w<const W: usize>(&self, line: LineAddr) -> Option<(usize, usize)> {
        let base = self.geometry.set_index(line) * ways_of::<W>(self.geometry);
        let tag = self.geometry.tag(line);
        let ways = ways_of::<W>(self.geometry);
        find_way::<W>(
            &self.tags[base..base + ways],
            &self.rank[base..base + ways],
            tag,
        )
        .map(|w| (base, base + w))
    }

    /// Dynamically-sized [`scan_w`](Self::scan_w) for the cold paths.
    #[inline]
    fn scan(&self, line: LineAddr) -> Option<(usize, usize)> {
        self.scan_w::<0>(line)
    }

    /// Bumps every rank below `limit` in the set at `base` one deeper
    /// ([`crate::scan::bump_ranks_below`] over the set's rank row).
    #[inline]
    fn bump_ranks_below<const W: usize>(&mut self, base: usize, limit: u8) {
        let ways = ways_of::<W>(self.geometry);
        crate::scan::bump_ranks_below(&mut self.rank[base..base + ways], limit);
    }

    /// Flat index of the first way in the set at `base` whose rank equals
    /// `needle` — the victim search (rank `ways - 1`) and the empty-way
    /// search ([`NO_RANK`]), via [`first_byte_match`].
    #[inline]
    fn first_rank_match<const W: usize>(&self, base: usize, needle: u8) -> usize {
        let ways = ways_of::<W>(self.geometry);
        base + first_byte_match::<W>(&self.rank[base..base + ways], needle)
    }

    /// Promotes the line at flat index `i` (in the set at `base`) to MRU,
    /// returning its previous rank. Only rank bytes move; tags and
    /// metadata stay put. Re-touching the MRU line (the common case in
    /// looping access streams) skips the rank renumbering entirely.
    #[inline]
    fn promote_slot<const W: usize>(&mut self, base: usize, i: usize, is_write: bool) -> usize {
        let old = self.rank[i];
        if is_write {
            self.meta[i] |= DIRTY;
        }
        if old != 0 {
            self.bump_ranks_below::<W>(base, old);
            self.rank[i] = 0;
        }
        old as usize
    }

    /// The hit half of [`access`](Self::access): if `line` is resident,
    /// promotes it to MRU (marking it dirty on a write) and returns its
    /// previous LRU-stack position; if absent, mutates nothing and returns
    /// `None`. One set scan — callers that would otherwise
    /// [`probe`](Self::probe) and then `access` on a hit (the L1 fast path)
    /// do half the work.
    #[inline]
    pub fn touch(&mut self, line: LineAddr, is_write: bool) -> Option<usize> {
        by_ways!(self, touch_w(line, is_write))
    }

    #[inline]
    fn touch_w<const W: usize>(&mut self, line: LineAddr, is_write: bool) -> Option<usize> {
        let (base, i) = self.scan_w::<W>(line)?;
        Some(self.promote_slot::<W>(base, i, is_write))
    }

    /// Locates `line` without mutating any state, returning a handle that
    /// [`promote`](Self::promote) turns into the hit half of an access.
    /// Splitting lookup from promotion lets a caller interleave a
    /// side-effect check (e.g. the LLC stall check) between the two
    /// without paying for a second set scan.
    #[inline]
    #[must_use]
    pub fn find(&self, line: LineAddr) -> Option<LineRef> {
        by_ways!(self, scan_w(line)).map(|(base, slot)| LineRef { base, slot })
    }

    /// Promotes the line behind `handle` to MRU (marking it dirty on a
    /// write) and returns its LRU-stack position at promotion time —
    /// exactly what [`touch`](Self::touch) would have returned. The handle
    /// must come from [`find`](Self::find) with no intervening insertion
    /// or invalidation in the same set (promotions of other lines are
    /// fine; they shuffle ranks, not payloads).
    #[inline]
    pub fn promote(&mut self, handle: LineRef, is_write: bool) -> usize {
        debug_assert!(
            self.rank[handle.slot] != NO_RANK,
            "promote on a stale handle: the slot was re-filled or invalidated"
        );
        by_ways!(self, promote_slot(handle.base, handle.slot, is_write))
    }

    /// The miss half of [`access`](Self::access): inserts `line` — which
    /// must not be resident — at MRU for `app`, returning the displaced
    /// line if the set was full. Skips the residency scan, so callers that
    /// already established absence (via [`probe`](Self::probe) or
    /// [`touch`](Self::touch)) do not pay for it again.
    #[inline]
    pub fn insert_absent(
        &mut self,
        line: LineAddr,
        app: AppId,
        is_write: bool,
    ) -> Option<EvictedLine> {
        by_ways!(self, insert_absent_w(line, app, is_write))
    }

    #[inline]
    fn insert_absent_w<const W: usize>(
        &mut self,
        line: LineAddr,
        app: AppId,
        is_write: bool,
    ) -> Option<EvictedLine> {
        debug_assert!(
            self.scan(line).is_none(),
            "insert_absent on a resident line"
        );
        self.fill_absent::<W>(self.geometry.set_index(line), self.geometry.tag(line), app, is_write)
    }

    /// The allocation itself: inserts the (absent) line with tag `tag`
    /// into set `set_idx` at MRU for `app`. Takes the decomposed address
    /// so the fused [`access`](Self::access) path computes it exactly
    /// once.
    #[inline]
    fn fill_absent<const W: usize>(
        &mut self,
        set_idx: usize,
        tag: u64,
        app: AppId,
        is_write: bool,
    ) -> Option<EvictedLine> {
        let ways = ways_of::<W>(self.geometry);
        let base = set_idx * ways;
        let new_meta = VALID | (u32::from(is_write) * DIRTY) | ((app.index() as u32) << OWNER_SHIFT);
        if let Some(c) = self.occupancy.get_mut(app.index()) {
            *c += 1;
        }

        if usize::from(self.fill[set_idx]) < ways {
            // Room left: claim the first empty way, push every resident
            // line one rank deeper and enter at MRU. A `NO_RANK` limit
            // bumps exactly the valid ranks.
            let slot = self.first_rank_match::<W>(base, NO_RANK);
            self.bump_ranks_below::<W>(base, NO_RANK);
            self.tags[slot] = tag;
            self.meta[slot] = new_meta;
            self.rank[slot] = 0;
            self.fill[set_idx] += 1;
            return None;
        }

        let victim = self.pick_victim::<W>(base, app);
        let victim_meta = self.meta[victim];
        let victim_tag = self.tags[victim];
        let victim_owner = AppId::new((victim_meta >> OWNER_SHIFT) as usize);
        // Re-rank as if the victim's stack slot were vacated and the new
        // line entered at MRU: everything above the victim moves one
        // deeper, the victim's way is re-filled at rank 0.
        let victim_rank = self.rank[victim];
        self.bump_ranks_below::<W>(base, victim_rank);
        self.tags[victim] = tag;
        self.meta[victim] = new_meta;
        self.rank[victim] = 0;
        if let Some(c) = self.occupancy.get_mut(victim_owner.index()) {
            *c -= 1;
        }
        Some(EvictedLine {
            line: Self::reconstruct(self.geometry, victim_tag, set_idx),
            owner: victim_owner,
            dirty: victim_meta & DIRTY != 0,
        })
    }

    /// Checks residency without updating any state.
    #[inline]
    #[must_use]
    pub fn probe(&self, line: LineAddr) -> bool {
        by_ways!(self, scan_w(line)).is_some()
    }

    /// Removes `line` if resident, returning whether it was dirty.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<bool> {
        let (base, i) = self.scan(line)?;
        let ways = self.geometry.ways();
        let gone = self.rank[i];
        self.rank[i] = NO_RANK;
        // Close the rank gap so valid ranks stay a permutation of 0..fill.
        for r in &mut self.rank[base..base + ways] {
            *r = r.wrapping_sub(u8::from(*r != NO_RANK && *r > gone));
        }
        let meta = self.meta[i];
        self.meta[i] = 0;
        self.fill[self.geometry.set_index(line)] -= 1;
        let owner = AppId::new((meta >> OWNER_SHIFT) as usize);
        if let Some(c) = self.occupancy.get_mut(owner.index()) {
            *c -= 1;
        }
        Some(meta & DIRTY != 0)
    }

    /// Returns how many lines `app` currently holds across the whole cache.
    /// O(1): read from the incrementally maintained per-application
    /// counters (cross-checked against [`occupancy_scan`]
    /// (Self::occupancy_scan) by randomized tests).
    #[must_use]
    #[inline]
    pub fn occupancy(&self, app: AppId) -> usize {
        self.occupancy.get(app.index()).copied().unwrap_or(0)
    }

    /// Recomputes `app`'s occupancy by scanning every set. Linear in cache
    /// size — the reference implementation the O(1) counters are validated
    /// against.
    #[must_use]
    pub fn occupancy_scan(&self, app: AppId) -> usize {
        self.lines().filter(|l| l.owner == app).count()
    }

    /// Iterates over every resident line (set order, way order within a
    /// set) with its owner, dirtiness, and LRU-stack position. This is the
    /// inspection surface of the flat arena: tests, the occupancy
    /// cross-check, and any mechanism that wants to audit cache contents
    /// read it instead of poking at the raw arrays.
    pub fn lines(&self) -> impl Iterator<Item = ResidentLine> + '_ {
        let ways = self.geometry.ways();
        (0..self.tags.len()).filter_map(move |i| {
            let r = self.rank[i];
            if r == NO_RANK {
                return None;
            }
            let set = i / ways;
            let meta = self.meta[i];
            Some(ResidentLine {
                line: Self::reconstruct(self.geometry, self.tags[i], set),
                owner: AppId::new((meta >> OWNER_SHIFT) as usize),
                dirty: meta & DIRTY != 0,
                set,
                recency: r as usize,
            })
        })
    }

    /// Picks the victim's flat index for an insertion by `app` into the
    /// full set starting at `base`.
    ///
    /// Without a partition this is the global LRU way. With a partition it
    /// follows UCP's enforcement: if the inserting application has reached
    /// its quota in this set, it victimises its own LRU line; otherwise the
    /// LRU line of any application holding more than its quota; otherwise
    /// the global LRU line. "LRU-most matching line" is the match with the
    /// maximum rank — the rank order *is* the old representation's stack
    /// order, which is what keeps victim choices bit-identical.
    fn pick_victim<const W: usize>(&mut self, base: usize, app: AppId) -> usize {
        let ways = ways_of::<W>(self.geometry);
        if self.partition.is_none() {
            // Global LRU. The set is full (pick_victim only runs then), so
            // the LRU line is exactly the one at rank `ways - 1`: a single
            // byte search instead of a rank/meta max-scan.
            return self.first_rank_match::<W>(base, (ways - 1) as u8);
        }
        let partition = self.partition.as_ref().expect("checked above");
        let own_quota = partition.ways_for(app);
        let metas = &self.meta[base..base + ways];
        let own_occupancy = metas
            .iter()
            .filter(|&&m| m >> OWNER_SHIFT == app.index() as u32)
            .count();
        if own_occupancy >= own_quota && own_occupancy > 0 {
            // At (or over) quota: replace own LRU line. This also confines
            // zero-quota applications to at most one transient line per set.
            return self.max_rank_where::<W>(base, |m| m >> OWNER_SHIFT == app.index() as u32);
        }
        // Replace the LRU line of an over-quota application.
        self.victim_scratch.clear();
        self.victim_scratch.resize(partition.app_count(), 0);
        for &m in metas {
            self.victim_scratch[(m >> OWNER_SHIFT) as usize] += 1;
        }
        let scratch = std::mem::take(&mut self.victim_scratch);
        let partition = self.partition.as_ref().expect("checked above");
        let over_quota =
            |m: u32| scratch[(m >> OWNER_SHIFT) as usize] > partition.ways_for(AppId::new((m >> OWNER_SHIFT) as usize));
        let victim = if self.meta[base..base + ways].iter().any(|&m| over_quota(m)) {
            self.max_rank_where::<W>(base, over_quota)
        } else {
            self.max_rank_where::<W>(base, |_| true)
        };
        self.victim_scratch = scratch;
        victim
    }

    /// The flat index with the deepest rank among ways of the full set at
    /// `base` whose metadata satisfies `pred`. Must have a match. Within a
    /// full set ranks are unique, so first-match vs last-match on ties
    /// cannot arise.
    fn max_rank_where<const W: usize>(&self, base: usize, pred: impl Fn(u32) -> bool) -> usize {
        let ways = ways_of::<W>(self.geometry);
        let metas = &self.meta[base..base + ways];
        let ranks = &self.rank[base..base + ways];
        let mut best = usize::MAX;
        let mut best_rank = 0u8;
        for (w, (&m, &r)) in metas.iter().zip(ranks).enumerate() {
            if pred(m) && (best == usize::MAX || r >= best_rank) {
                best = w;
                best_rank = r;
            }
        }
        debug_assert!(best != usize::MAX, "victim predicate matched nothing");
        base + best
    }

    fn reconstruct(geometry: CacheGeometry, tag: u64, set_idx: usize) -> LineAddr {
        LineAddr::new((tag << geometry.sets().trailing_zeros()) | set_idx as u64)
    }

    /// Serializes the dynamic tag-store state — tags, metadata, recency
    /// ranks, set fills, occupancy counters, and the active partition —
    /// for checkpointing. Geometry and application count are structural:
    /// the restore target must be constructed with the same ones.
    pub fn save_state(&self, w: &mut asm_simcore::persist::StateWriter) {
        w.u64_slice(&self.tags);
        w.usize(self.meta.len());
        for &m in self.meta.iter() {
            w.u32(m);
        }
        w.bytes(&self.rank);
        w.bytes(&self.fill);
        w.usize(self.occupancy.len());
        for &o in &self.occupancy {
            w.usize(o);
        }
        match &self.partition {
            Some(p) => {
                w.bool(true);
                w.usize(p.as_slice().len());
                for &q in p.as_slice() {
                    w.usize(q);
                }
            }
            None => w.bool(false),
        }
    }

    /// Restores state captured by [`save_state`](Self::save_state) into a
    /// cache of identical geometry and application count.
    ///
    /// # Errors
    ///
    /// [`asm_simcore::persist::PersistError::Corrupt`] when the stored
    /// state does not fit this cache's structure.
    pub fn restore_state(
        &mut self,
        r: &mut asm_simcore::persist::StateReader<'_>,
    ) -> Result<(), asm_simcore::persist::PersistError> {
        use asm_simcore::persist::PersistError;
        let tags = r.u64_vec()?;
        if tags.len() != self.tags.len() {
            return Err(PersistError::Corrupt("tag arena size mismatch".to_owned()));
        }
        let meta_len = r.checked_len(4)?;
        if meta_len != self.meta.len() {
            return Err(PersistError::Corrupt("meta arena size mismatch".to_owned()));
        }
        let mut meta = Vec::with_capacity(meta_len);
        for _ in 0..meta_len {
            meta.push(r.u32()?);
        }
        let rank = r.bytes()?;
        let fill = r.bytes()?;
        if rank.len() != self.rank.len() || fill.len() != self.fill.len() {
            return Err(PersistError::Corrupt("rank/fill size mismatch".to_owned()));
        }
        let occ_len = r.checked_len(8)?;
        if occ_len != self.occupancy.len() {
            return Err(PersistError::Corrupt("occupancy size mismatch".to_owned()));
        }
        let mut occupancy = Vec::with_capacity(occ_len);
        for _ in 0..occ_len {
            occupancy.push(r.usize()?);
        }
        let partition = if r.bool()? {
            let n = r.checked_len(8)?;
            let mut quotas = Vec::with_capacity(n);
            for _ in 0..n {
                quotas.push(r.usize()?);
            }
            let p = WayPartition::new(quotas);
            if p.total_ways() != self.geometry.ways() || p.app_count() != self.app_count {
                return Err(PersistError::Corrupt("partition shape mismatch".to_owned()));
            }
            Some(p)
        } else {
            None
        };
        self.tags.copy_from_slice(&tags);
        self.meta.copy_from_slice(&meta);
        self.rank.copy_from_slice(rank);
        self.fill.copy_from_slice(fill);
        self.occupancy = occupancy;
        self.partition = partition;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(sets: usize, ways: usize, apps: usize) -> SetAssocCache {
        SetAssocCache::new(CacheGeometry::new(sets, ways), apps)
    }

    fn same_set_line(sets: usize, set: usize, k: u64) -> LineAddr {
        LineAddr::new(k * sets as u64 + set as u64)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = cache(8, 2, 1);
        let a = AppId::new(0);
        let l = LineAddr::new(42);
        assert!(!c.access(l, a, false).hit);
        let out = c.access(l, a, false);
        assert!(out.hit);
        assert_eq!(out.hit_recency, Some(0));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = cache(4, 2, 1);
        let a = AppId::new(0);
        let l0 = same_set_line(4, 1, 0);
        let l1 = same_set_line(4, 1, 1);
        let l2 = same_set_line(4, 1, 2);
        c.access(l0, a, false);
        c.access(l1, a, false);
        c.access(l0, a, false); // l1 becomes LRU
        let out = c.access(l2, a, false);
        assert_eq!(out.eviction.unwrap().line, l1);
        assert!(c.probe(l0));
        assert!(!c.probe(l1));
    }

    #[test]
    fn hit_recency_reports_stack_position() {
        let mut c = cache(4, 4, 1);
        let a = AppId::new(0);
        let lines: Vec<_> = (0..4).map(|k| same_set_line(4, 0, k)).collect();
        for &l in &lines {
            c.access(l, a, false);
        }
        // lines[0] is now at LRU position 3.
        assert_eq!(c.access(lines[0], a, false).hit_recency, Some(3));
        // And after that access, it's MRU.
        assert_eq!(c.access(lines[0], a, false).hit_recency, Some(0));
    }

    #[test]
    fn write_marks_dirty_and_eviction_reports_it() {
        let mut c = cache(4, 1, 1);
        let a = AppId::new(0);
        let l0 = same_set_line(4, 2, 0);
        let l1 = same_set_line(4, 2, 1);
        c.access(l0, a, true);
        let ev = c.access(l1, a, false).eviction.unwrap();
        assert_eq!(ev.line, l0);
        assert!(ev.dirty);
    }

    #[test]
    fn read_then_write_hit_dirties_line() {
        let mut c = cache(4, 2, 1);
        let a = AppId::new(0);
        let l0 = same_set_line(4, 0, 0);
        let l1 = same_set_line(4, 0, 1);
        c.access(l0, a, false);
        c.access(l0, a, true); // dirty via write hit
        c.access(l1, a, false);
        let ev = c.access(same_set_line(4, 0, 2), a, false).eviction.unwrap();
        assert_eq!(ev.line, l0);
        assert!(ev.dirty);
    }

    #[test]
    fn eviction_reports_original_owner() {
        let mut c = cache(4, 1, 2);
        let a0 = AppId::new(0);
        let a1 = AppId::new(1);
        c.access(same_set_line(4, 0, 0), a0, false);
        let ev = c
            .access(same_set_line(4, 0, 1), a1, false)
            .eviction
            .unwrap();
        assert_eq!(ev.owner, a0);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = cache(4, 2, 1);
        let a = AppId::new(0);
        let l = LineAddr::new(9);
        c.access(l, a, true);
        assert_eq!(c.invalidate(l), Some(true));
        assert!(!c.probe(l));
        assert_eq!(c.invalidate(l), None);
    }

    #[test]
    fn partition_confines_over_quota_app() {
        let mut c = cache(1, 4, 2);
        let a0 = AppId::new(0);
        let a1 = AppId::new(1);
        c.set_partition(Some(WayPartition::new(vec![2, 2])));
        // app0 fills its 2 ways, then keeps inserting: it must victimise
        // itself, never touching app1's lines.
        c.access(LineAddr::new(0), a0, false);
        c.access(LineAddr::new(1), a0, false);
        c.access(LineAddr::new(2), a1, false);
        c.access(LineAddr::new(3), a1, false);
        for k in 4..10 {
            let ev = c.access(LineAddr::new(k), a0, false).eviction.unwrap();
            assert_eq!(ev.owner, a0, "app0 should evict only its own lines");
        }
        assert!(c.probe(LineAddr::new(2)));
        assert!(c.probe(LineAddr::new(3)));
    }

    #[test]
    fn partition_reclaims_from_over_quota_app() {
        let mut c = cache(1, 4, 2);
        let a0 = AppId::new(0);
        let a1 = AppId::new(1);
        // app0 fills all 4 ways without a partition.
        for k in 0..4 {
            c.access(LineAddr::new(k), a0, false);
        }
        // Now partition 2/2: app1's inserts must reclaim from app0.
        c.set_partition(Some(WayPartition::new(vec![2, 2])));
        let ev = c.access(LineAddr::new(100), a1, false).eviction.unwrap();
        assert_eq!(ev.owner, a0);
        let ev = c.access(LineAddr::new(101), a1, false).eviction.unwrap();
        assert_eq!(ev.owner, a0);
        // app1 at quota: next insert victimises its own lines.
        let ev = c.access(LineAddr::new(102), a1, false).eviction.unwrap();
        assert_eq!(ev.owner, a1);
    }

    #[test]
    fn zero_quota_app_still_makes_progress() {
        // An app with a zero allocation replaces the LRU of over-quota apps
        // (or global LRU) rather than deadlocking.
        let mut c = cache(1, 2, 2);
        let a0 = AppId::new(0);
        let a1 = AppId::new(1);
        c.set_partition(Some(WayPartition::new(vec![2, 0])));
        c.access(LineAddr::new(0), a0, false);
        c.access(LineAddr::new(1), a0, false);
        let out = c.access(LineAddr::new(2), a1, false);
        assert!(!out.hit);
        assert!(out.eviction.is_some());
    }

    #[test]
    #[should_panic(expected = "partition way count mismatch")]
    fn partition_way_count_validated() {
        let mut c = cache(4, 4, 2);
        c.set_partition(Some(WayPartition::new(vec![1, 2])));
    }

    #[test]
    fn occupancy_counters_match_scan_under_random_traffic() {
        use asm_simcore::SimRng;
        let mut rng = SimRng::seed_from(0xC0FFEE);
        let apps = 4;
        let mut c = cache(64, 8, apps);
        let check = |c: &SetAssocCache| {
            for a in 0..apps {
                let app = AppId::new(a);
                assert_eq!(
                    c.occupancy(app),
                    c.occupancy_scan(app),
                    "counter drifted from scan for app {a}"
                );
            }
        };
        for i in 0..50_000u64 {
            let app = AppId::new((rng.next_u64() % apps as u64) as usize);
            let line = LineAddr::new(rng.next_u64() % 4_096);
            match rng.next_u64() % 16 {
                0 => {
                    let _ = c.invalidate(line);
                }
                1 => {
                    let _ = c.touch(line, rng.next_u64() % 2 == 0);
                }
                2 => {
                    if !c.probe(line) {
                        let _ = c.insert_absent(line, app, rng.next_u64() % 2 == 0);
                    }
                }
                3 => {
                    // Partition churn: quotas must not desync the counters.
                    let quotas = match rng.next_u64() % 3 {
                        0 => vec![2, 2, 2, 2],
                        1 => vec![5, 1, 1, 1],
                        _ => vec![8, 0, 0, 0],
                    };
                    let p = (rng.next_u64() % 2 == 0).then(|| WayPartition::new(quotas));
                    c.set_partition(p);
                }
                _ => {
                    let _ = c.access(line, app, rng.next_u64() % 2 == 0);
                }
            }
            if i % 1_000 == 0 {
                check(&c);
            }
        }
        check(&c);
    }

    #[test]
    fn touch_plus_insert_absent_equals_access() {
        use asm_simcore::SimRng;
        // The split fast path (probe/touch + insert_absent) must evolve the
        // cache exactly like the fused `access` — same hits, recencies,
        // evictions, and final contents.
        let mut rng = SimRng::seed_from(0x5117);
        let mut fused = cache(16, 4, 2);
        let mut split = cache(16, 4, 2);
        for _ in 0..20_000u64 {
            let app = AppId::new((rng.next_u64() % 2) as usize);
            let line = LineAddr::new(rng.next_u64() % 512);
            let is_write = rng.next_u64() % 2 == 0;
            let a = fused.access(line, app, is_write);
            let b = match split.touch(line, is_write) {
                Some(pos) => AccessOutcome {
                    hit: true,
                    hit_recency: Some(pos),
                    eviction: None,
                },
                None => AccessOutcome {
                    hit: false,
                    hit_recency: None,
                    eviction: split.insert_absent(line, app, is_write),
                },
            };
            assert_eq!(a, b);
        }
        for l in 0..512 {
            let line = LineAddr::new(l);
            assert_eq!(fused.probe(line), split.probe(line));
        }
    }

    #[test]
    fn find_promote_equals_touch() {
        use asm_simcore::SimRng;
        // The handle-based hit path (find + promote) must evolve the cache
        // exactly like the fused `touch` — this is the LLC fast path in
        // `asm-core`'s issue().
        let mut rng = SimRng::seed_from(0xF15D);
        let mut fused = cache(16, 4, 2);
        let mut split = cache(16, 4, 2);
        for _ in 0..20_000u64 {
            let app = AppId::new((rng.next_u64() % 2) as usize);
            let line = LineAddr::new(rng.next_u64() % 512);
            let is_write = rng.next_u64() % 2 == 0;
            let a = fused.access(line, app, is_write);
            let b = match split.find(line) {
                Some(handle) => AccessOutcome {
                    hit: true,
                    hit_recency: Some(split.promote(handle, is_write)),
                    eviction: None,
                },
                None => AccessOutcome {
                    hit: false,
                    hit_recency: None,
                    eviction: split.insert_absent(line, app, is_write),
                },
            };
            assert_eq!(a, b);
        }
    }

    #[test]
    fn handle_survives_other_line_promotions() {
        // A LineRef stays valid across promotions of *other* lines in the
        // same set (the L1-victim-writeback interleaving in issue()).
        let mut c = cache(4, 4, 1);
        let a = AppId::new(0);
        let l0 = same_set_line(4, 0, 0);
        let l1 = same_set_line(4, 0, 1);
        c.access(l0, a, false);
        c.access(l1, a, false); // stack: [l1, l0]
        let h = c.find(l0).unwrap();
        c.touch(l1, true); // promote the other line; stack unchanged order
        assert_eq!(c.promote(h, false), 1);
        assert_eq!(c.access(l0, a, false).hit_recency, Some(0));
    }

    #[test]
    fn occupancy_counts_lines_per_app() {
        let mut c = cache(8, 2, 2);
        let a0 = AppId::new(0);
        let a1 = AppId::new(1);
        c.access(LineAddr::new(0), a0, false);
        c.access(LineAddr::new(1), a0, false);
        c.access(LineAddr::new(2), a1, false);
        assert_eq!(c.occupancy(a0), 2);
        assert_eq!(c.occupancy(a1), 1);
    }

    #[test]
    fn lines_iterator_reports_full_state() {
        let mut c = cache(8, 2, 2);
        let a0 = AppId::new(0);
        let a1 = AppId::new(1);
        c.access(LineAddr::new(0), a0, true);
        c.access(LineAddr::new(8), a1, false); // same set as 0
        let mut lines: Vec<_> = c.lines().collect();
        lines.sort_by_key(|l| l.line.raw());
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].line, LineAddr::new(0));
        assert_eq!(lines[0].owner, a0);
        assert!(lines[0].dirty);
        assert_eq!(lines[0].recency, 1); // displaced from MRU by line 8
        assert_eq!(lines[1].line, LineAddr::new(8));
        assert_eq!(lines[1].owner, a1);
        assert!(!lines[1].dirty);
        assert_eq!(lines[1].recency, 0);
        assert_eq!(lines[0].set, lines[1].set);
    }

    #[test]
    fn ranks_stay_a_permutation_per_set() {
        use asm_simcore::SimRng;
        let mut rng = SimRng::seed_from(0xBEEF);
        let mut c = cache(8, 4, 2);
        for _ in 0..10_000u64 {
            let app = AppId::new((rng.next_u64() % 2) as usize);
            let line = LineAddr::new(rng.next_u64() % 256);
            match rng.next_u64() % 8 {
                0 => {
                    let _ = c.invalidate(line);
                }
                _ => {
                    let _ = c.access(line, app, rng.next_u64() % 2 == 0);
                }
            }
        }
        for set in 0..8 {
            let mut ranks: Vec<_> = c.lines().filter(|l| l.set == set).map(|l| l.recency).collect();
            ranks.sort_unstable();
            assert_eq!(ranks, (0..ranks.len()).collect::<Vec<_>>(), "set {set}");
        }
    }

    #[test]
    fn reconstructed_eviction_address_is_exact() {
        let mut c = cache(8, 1, 1);
        let a = AppId::new(0);
        let l = LineAddr::new(0xABCD_EF01);
        c.access(l, a, false);
        let conflicting = LineAddr::new(l.raw() + 8); // same set, different tag
        let ev = c.access(conflicting, a, false).eviction.unwrap();
        assert_eq!(ev.line, l);
    }
}
