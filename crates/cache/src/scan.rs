//! Set-scan primitives shared by the flat tag stores.
//!
//! [`crate::SetAssocCache`] and [`crate::AuxiliaryTagStore`] keep each
//! set's tags and recency ranks in contiguous rows (DESIGN.md §8
//! "Tag-store memory layout"), so the two operations every access
//! performs — "which way holds this tag?" and "which way holds this
//! rank?" — are short fixed-width searches. These helpers compile them
//! to a handful of vector or SWAR instructions instead of scalar
//! byte/word loops; they run on the hottest paths in the simulator.

use crate::geometry::CacheGeometry;

/// Rank byte of an empty (invalid) way. Real ranks are `< ways ≤ 255`.
pub(crate) const NO_RANK: u8 = u8::MAX;

/// Resolves the way count for a `const W`-specialised hot path: `W == 0`
/// means "read it from the geometry" (the dynamic fallback); any other
/// value is a compile-time constant the optimiser unrolls and vectorises
/// the per-set loops against.
#[inline(always)]
pub(crate) fn ways_of<const W: usize>(geometry: CacheGeometry) -> usize {
    if W == 0 {
        geometry.ways()
    } else {
        debug_assert_eq!(geometry.ways(), W);
        W
    }
}

/// Dispatches a `const W`-generic method over the common associativities
/// (L1 = 4-way, LLC/ATS = 16-way, Table 2) so the per-set byte loops on
/// the hot paths compile to fixed-length, fully unrolled vector code
/// instead of paying runtime-length dispatch per call; anything else
/// takes the dynamic `W = 0` fallback. The match is one
/// perfectly-predicted branch (a tag store's way count never changes).
/// Works on any receiver with a `geometry: CacheGeometry` field.
macro_rules! by_ways {
    ($self:ident, $method:ident ( $($arg:expr),* )) => {
        match $self.geometry.ways() {
            4 => $self.$method::<4>($($arg),*),
            8 => $self.$method::<8>($($arg),*),
            16 => $self.$method::<16>($($arg),*),
            _ => $self.$method::<0>($($arg),*),
        }
    };
}
pub(crate) use by_ways;

/// Index of the first zero byte of `v` (little-endian byte order), or
/// `None`. The classic SWAR detector: bit 7 of `(b - 1) & !b` is set iff
/// byte `b` is zero, and the borrow cannot fabricate a set bit *below*
/// the first zero byte, so `trailing_zeros` lands on the first match.
#[inline(always)]
fn first_zero_byte(v: u64) -> Option<usize> {
    let z = v.wrapping_sub(0x0101_0101_0101_0101) & !v & 0x8080_8080_8080_8080;
    (z != 0).then(|| (z.trailing_zeros() / 8) as usize)
}

/// Index of the first byte of `ranks` equal to `needle`.
///
/// `W` is the compile-time way count (0 = dynamic): the 16- and 8-way
/// rows are searched as one or two registers with the SWAR zero-byte
/// trick, anything else by a branchless reverse fold. "First" keeps the
/// empty-way choice deterministic.
///
/// # Panics
///
/// Debug-asserts that a match exists (callers search for ranks the set
/// invariants guarantee: the LRU rank in a full set, [`NO_RANK`] in a
/// non-full one).
#[inline]
pub(crate) fn first_byte_match<const W: usize>(ranks: &[u8], needle: u8) -> usize {
    if W == 16 {
        #[cfg(target_arch = "x86_64")]
        {
            use std::arch::x86_64::{
                __m128i, _mm_cmpeq_epi8, _mm_loadu_si128, _mm_movemask_epi8, _mm_set1_epi8,
            };
            debug_assert_eq!(ranks.len(), 16);
            // SAFETY: SSE2 is part of the x86_64 baseline and the load
            // reads 16 bytes inside the length-checked slice. One compare
            // plus a movemask is fully branchless — the SWAR fallback
            // below branches on which 8-byte half holds the match, which
            // a victim search hits with data-dependent (mispredicted)
            // probability.
            let m = unsafe {
                let row = _mm_loadu_si128(ranks.as_ptr().cast::<__m128i>());
                let eq = _mm_cmpeq_epi8(row, _mm_set1_epi8(needle as i8));
                _mm_movemask_epi8(eq) as u32
            };
            debug_assert!(m != 0, "no way has rank {needle}");
            return m.trailing_zeros() as usize;
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let bytes: [u8; 16] = ranks
                .try_into()
                .expect("W = 16 callers pass a 16-way rank row");
            // asm-lint: allow(R12): SWAR byte scan over an in-memory rank
            // row, not serialization — nothing here reaches disk
            let x = u128::from_le_bytes(bytes) ^ (u128::from(needle) * (u128::MAX / 0xFF));
            return match first_zero_byte(x as u64) {
                Some(w) => w,
                None => 8 + first_zero_byte((x >> 64) as u64).expect("no way has the rank"),
            };
        }
    }
    if W == 8 {
        let bytes: [u8; 8] = ranks
            .try_into()
            .expect("W = 8 callers pass an 8-way rank row");
        // asm-lint: allow(R12): SWAR byte scan over an in-memory rank
        // row, not serialization — nothing here reaches disk
        let x = u64::from_le_bytes(bytes) ^ (u64::from(needle) * (u64::MAX / 0xFF));
        return first_zero_byte(x).expect("no way has the rank");
    }
    let mut found = usize::MAX;
    let mut w = ranks.len();
    while w > 0 {
        w -= 1;
        found = if ranks[w] == needle { w } else { found };
    }
    debug_assert!(found != usize::MAX, "no way has rank {needle}");
    found
}

/// Bumps every rank byte below `limit` one position deeper. Branch-free
/// (a `wrapping_add` of a bool compiles to vector compares) — this runs
/// on every hit, fill, and eviction. Empty ways carry [`NO_RANK`]
/// (= 255), which is never below a real rank and never reaches 255 via
/// the guarded add, so no validity check is needed; `limit == NO_RANK`
/// bumps every *valid* rank (the fill path).
#[inline]
pub(crate) fn bump_ranks_below(ranks: &mut [u8], limit: u8) {
    for r in ranks {
        *r = r.wrapping_add(u8::from(*r < limit));
    }
}

/// SSE2 tag search over a full 16-way set: the way index holding `tag`
/// with a valid rank, or `None`. One vector compare per tag pair plus one
/// byte compare over the rank row replaces a 16-iteration scalar loop on
/// the hottest path in the simulator (every cache access scans a set).
///
/// SSE2 has no 64-bit lane equality, so each `pcmpeqd` result is ANDed
/// with its half-swapped self (`shuffle 0xB1`): a 64-bit lane is all-ones
/// iff both 32-bit halves matched. Stale tags in empty ways are masked
/// out via the rank row ([`NO_RANK`] bytes), exactly like the scalar
/// path's validity check.
#[cfg(target_arch = "x86_64")]
#[inline]
fn find_way16_sse2(tags: &[u64], ranks: &[u8], tag: u64) -> Option<usize> {
    use std::arch::x86_64::{
        __m128i, _mm_and_si128, _mm_castsi128_pd, _mm_cmpeq_epi8, _mm_cmpeq_epi32,
        _mm_loadu_si128, _mm_movemask_epi8, _mm_movemask_pd, _mm_set1_epi8, _mm_set1_epi64x,
        _mm_shuffle_epi32,
    };
    debug_assert_eq!(tags.len(), 16);
    debug_assert_eq!(ranks.len(), 16);
    // SAFETY: SSE2 is part of the x86_64 baseline, and every unaligned
    // load reads 16 bytes inside the length-checked slices above.
    unsafe {
        let needle = _mm_set1_epi64x(tag as i64);
        let mut mask = 0u32;
        for j in 0..8 {
            let pair = _mm_loadu_si128(tags.as_ptr().add(2 * j).cast::<__m128i>());
            let eq32 = _mm_cmpeq_epi32(pair, needle);
            let eq64 = _mm_and_si128(eq32, _mm_shuffle_epi32(eq32, 0b1011_0001));
            mask |= (_mm_movemask_pd(_mm_castsi128_pd(eq64)) as u32) << (2 * j);
        }
        let rank_row = _mm_loadu_si128(ranks.as_ptr().cast::<__m128i>());
        let empty = _mm_movemask_epi8(_mm_cmpeq_epi8(rank_row, _mm_set1_epi8(-1))) as u32;
        let hit = mask & !empty;
        // At most one valid way carries the tag, so the lowest set bit is
        // *the* match.
        (hit != 0).then(|| hit.trailing_zeros() as usize)
    }
}

/// The way index in a set whose tag row holds `tag` at a valid rank, or
/// `None`. `W` is the compile-time way count (0 = dynamic); the 16-way
/// shape takes the SSE2 path on x86_64, everything else a branchless
/// conditional-move fold (at most one valid way can match, so
/// accumulating the index beats an early-exit loop — misses scan the
/// whole set anyway, and hits skip the mispredicted exit branch).
#[inline]
pub(crate) fn find_way<const W: usize>(tags: &[u64], ranks: &[u8], tag: u64) -> Option<usize> {
    #[cfg(target_arch = "x86_64")]
    if W == 16 {
        return find_way16_sse2(tags, ranks, tag);
    }
    let mut found = usize::MAX;
    for (w, (&t, &r)) in tags.iter().zip(ranks).enumerate() {
        let hit = (t == tag) & (r != NO_RANK);
        found = if hit { w } else { found };
    }
    (found != usize::MAX).then_some(found)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_byte_match_finds_first_of_duplicates() {
        let ranks = [7u8, 3, 9, 3, 1, 3, 0, 2, 4, 5, 6, 8, 10, 11, 12, 3];
        assert_eq!(first_byte_match::<16>(&ranks, 3), 1);
        assert_eq!(first_byte_match::<0>(&ranks, 3), 1);
        assert_eq!(first_byte_match::<16>(&ranks, 12), 14);
        let eight = [9u8, 9, 2, 9, 9, 9, 9, 2];
        assert_eq!(first_byte_match::<8>(&eight, 2), 2);
    }

    #[test]
    fn find_way_matches_scalar_reference() {
        // Cross-check of the SSE2 path against a scalar reference,
        // including stale duplicate tags in empty ways (tag uniqueness is
        // only guaranteed among *valid* ways — the cache invariant).
        let mut tags = [0u64; 16];
        let mut ranks = [NO_RANK; 16];
        for (w, t) in tags.iter_mut().enumerate() {
            *t = (w as u64) % 5; // duplicates land in invalid ways only
        }
        for valid in [0usize, 3, 7, 9] {
            ranks[valid] = valid as u8;
        }
        for probe in 0..6u64 {
            let scalar = tags
                .iter()
                .zip(&ranks)
                .position(|(&t, &r)| t == probe && r != NO_RANK);
            assert_eq!(find_way::<16>(&tags, &ranks, probe), scalar, "probe {probe}");
            assert_eq!(find_way::<0>(&tags, &ranks, probe), scalar, "probe {probe}");
        }
    }

    #[test]
    fn bump_only_touches_ranks_below_limit() {
        let mut ranks = [0u8, 1, 2, 3, NO_RANK, NO_RANK];
        bump_ranks_below(&mut ranks, 2);
        assert_eq!(ranks, [1, 2, 2, 3, NO_RANK, NO_RANK]);
        let mut all = [0u8, 1, 2, NO_RANK];
        bump_ranks_below(&mut all, NO_RANK);
        assert_eq!(all, [1, 2, 3, NO_RANK]);
    }
}
