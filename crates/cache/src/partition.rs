//! Way partitions and the UCP look-ahead allocation algorithm.
//!
//! Utility-based Cache Partitioning [Qureshi & Patt, MICRO 2006] allocates
//! cache ways greedily by *marginal utility*: repeatedly give the ways that
//! buy the largest per-way benefit. The paper's ASM-Cache (§7.1) reuses the
//! same look-ahead loop but replaces miss utility with *slowdown utility*,
//! so [`lookahead_partition`] is generic over the per-application benefit
//! curve.

use asm_simcore::AppId;

/// An allocation of the shared cache's ways among applications.
///
/// # Examples
///
/// ```
/// use asm_cache::WayPartition;
/// use asm_simcore::AppId;
/// let p = WayPartition::new(vec![10, 2, 2, 2]);
/// assert_eq!(p.total_ways(), 16);
/// assert_eq!(p.ways_for(AppId::new(0)), 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WayPartition {
    ways: Vec<usize>,
}

impl WayPartition {
    /// Creates a partition giving `ways[i]` ways to application `i`.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is empty.
    #[must_use]
    pub fn new(ways: Vec<usize>) -> Self {
        assert!(!ways.is_empty(), "partition must cover at least one app");
        WayPartition { ways }
    }

    /// Creates an equal split of `total_ways` among `apps` applications
    /// (remainder ways go to the lowest-numbered applications).
    ///
    /// # Panics
    ///
    /// Panics if `apps` is zero.
    #[must_use]
    pub fn even(total_ways: usize, apps: usize) -> Self {
        assert!(apps > 0, "need at least one app");
        let base = total_ways / apps;
        let extra = total_ways % apps;
        WayPartition {
            ways: (0..apps).map(|i| base + usize::from(i < extra)).collect(),
        }
    }

    /// The number of ways allocated to `app` (zero for apps beyond the
    /// partition's range).
    #[must_use]
    pub fn ways_for(&self, app: AppId) -> usize {
        self.ways.get(app.index()).copied().unwrap_or(0)
    }

    /// The number of applications covered.
    #[must_use]
    pub fn app_count(&self) -> usize {
        self.ways.len()
    }

    /// The total number of ways distributed.
    #[must_use]
    pub fn total_ways(&self) -> usize {
        self.ways.iter().sum()
    }

    /// The raw allocation vector.
    #[must_use]
    pub fn as_slice(&self) -> &[usize] {
        &self.ways
    }
}

/// Per-application benefit curves stored as one flat row-major matrix.
///
/// Row `a` holds application `a`'s benefit at each way count (column 0 =
/// zero ways). Every mechanism that drives [`lookahead_partition`] rebuilds
/// its curves each quantum, so the matrix keeps them in one contiguous
/// allocation that is reused across quanta via [`reset`](Self::reset)
/// instead of reallocating a `Vec<Vec<f64>>`.
///
/// # Examples
///
/// ```
/// use asm_cache::BenefitCurves;
/// let mut curves = BenefitCurves::new(2, 5);
/// curves.row_mut(1).copy_from_slice(&[0.0, 5.0, 10.0, 15.0, 20.0]);
/// assert_eq!(curves.row(1)[4], 20.0);
/// assert_eq!(curves.row(0), &[0.0; 5]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BenefitCurves {
    values: Vec<f64>,
    points: usize,
}

impl BenefitCurves {
    /// Creates a zero-filled matrix of `apps` curves with `points` entries
    /// each (use `total_ways + 1` points for a full curve).
    ///
    /// # Panics
    ///
    /// Panics if `points` is zero.
    #[must_use]
    pub fn new(apps: usize, points: usize) -> Self {
        assert!(points > 0, "curves need at least one point");
        BenefitCurves {
            values: vec![0.0; apps * points],
            points,
        }
    }

    /// Builds a matrix by evaluating `f(app, ways)` at every point.
    ///
    /// # Panics
    ///
    /// Panics if `points` is zero.
    #[must_use]
    pub fn from_fn(apps: usize, points: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut curves = Self::new(apps, points);
        for a in 0..apps {
            let row = curves.row_mut(a);
            for (n, v) in row.iter_mut().enumerate() {
                *v = f(a, n);
            }
        }
        curves
    }

    /// Number of applications (rows).
    #[must_use]
    pub fn app_count(&self) -> usize {
        self.values.len() / self.points
    }

    /// Number of points per curve (columns).
    #[must_use]
    pub fn points(&self) -> usize {
        self.points
    }

    /// Application `a`'s curve.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    #[must_use]
    pub fn row(&self, a: usize) -> &[f64] {
        &self.values[a * self.points..(a + 1) * self.points]
    }

    /// Mutable view of application `a`'s curve.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn row_mut(&mut self, a: usize) -> &mut [f64] {
        &mut self.values[a * self.points..(a + 1) * self.points]
    }

    /// Zeroes every entry, and reshapes to `apps` × `points` reusing the
    /// existing allocation where possible.
    ///
    /// # Panics
    ///
    /// Panics if `points` is zero.
    pub fn reset(&mut self, apps: usize, points: usize) {
        assert!(points > 0, "curves need at least one point");
        self.points = points;
        self.values.clear();
        self.values.resize(apps * points, 0.0);
    }
}

/// Allocates `total_ways` ways among applications using UCP's look-ahead
/// algorithm.
///
/// `benefit.row(a)[n]` is the benefit application `a` obtains from `n` ways
/// (index 0 = zero ways); the curves must have at least `total_ways + 1`
/// points and should be non-decreasing (e.g. cumulative hits for UCP, or
/// `-slowdown_n` for ASM-Cache, whose *marginal slowdown utility* is the
/// decrease in slowdown per extra way).
///
/// Each application receives at least `min_ways` ways (UCP deployments
/// reserve one way per application so no application starves; pass 0 for
/// the textbook algorithm).
///
/// # Panics
///
/// Panics if `benefit` has no applications, curves are shorter than
/// `total_ways + 1`, or `min_ways * benefit.app_count() > total_ways`.
///
/// # Examples
///
/// ```
/// use asm_cache::{lookahead_partition, BenefitCurves};
/// // App 0 saturates after 1 way; app 1 keeps benefiting.
/// let mut benefit = BenefitCurves::new(2, 5);
/// benefit.row_mut(0).copy_from_slice(&[0.0, 10.0, 10.0, 10.0, 10.0]);
/// benefit.row_mut(1).copy_from_slice(&[0.0, 5.0, 10.0, 15.0, 20.0]);
/// let p = lookahead_partition(&benefit, 4, 1);
/// assert_eq!(p.as_slice(), &[1, 3]);
/// ```
#[must_use]
pub fn lookahead_partition(
    benefit: &BenefitCurves,
    total_ways: usize,
    min_ways: usize,
) -> WayPartition {
    let apps = benefit.app_count();
    assert!(apps > 0, "need at least one application");
    assert!(
        benefit.points() > total_ways,
        "benefit curves have {} entries, need {}",
        benefit.points(),
        total_ways + 1
    );
    assert!(
        min_ways * apps <= total_ways,
        "cannot reserve {min_ways} ways for each of {apps} apps out of {total_ways}"
    );

    let mut alloc = vec![min_ways; apps];
    let mut remaining = total_ways - min_ways * apps;

    while remaining > 0 {
        // For each app, find the k (1..=remaining) maximising marginal
        // utility (benefit[n+k] - benefit[n]) / k.
        let mut best: Option<(usize, usize, f64)> = None; // (app, k, utility)
        for a in 0..apps {
            let curve = benefit.row(a);
            let n = alloc[a];
            let max_k = remaining.min(total_ways - n);
            for k in 1..=max_k {
                let utility = (curve[n + k] - curve[n]) / k as f64;
                let better = match best {
                    None => true,
                    Some((_, _, u)) => utility > u,
                };
                if better {
                    best = Some((a, k, utility));
                }
            }
        }
        match best {
            Some((a, k, _)) => {
                alloc[a] += k;
                remaining -= k;
            }
            None => {
                // All applications are at the way limit; spread the rest
                // round-robin (cannot happen when curves are full length).
                let a = alloc
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, n)| **n)
                    .map(|(a, _)| a)
                    .unwrap_or(0);
                alloc[a] += 1;
                remaining -= 1;
            }
        }
    }

    WayPartition::new(alloc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split_distributes_remainder() {
        let p = WayPartition::even(16, 3);
        assert_eq!(p.as_slice(), &[6, 5, 5]);
        assert_eq!(p.total_ways(), 16);
    }

    #[test]
    fn ways_for_out_of_range_app_is_zero() {
        let p = WayPartition::new(vec![4, 4]);
        assert_eq!(p.ways_for(AppId::new(9)), 0);
    }

    #[test]
    fn lookahead_all_ways_allocated() {
        let benefit = BenefitCurves::from_fn(4, 17, |a, n| match a {
            0 => (n as f64).sqrt(),
            1 => n as f64,
            2 => 0.0,
            _ => n as f64 * 0.5,
        });
        let p = lookahead_partition(&benefit, 16, 1);
        assert_eq!(p.total_ways(), 16);
        for a in 0..4 {
            assert!(p.ways_for(AppId::new(a)) >= 1);
        }
    }

    #[test]
    fn lookahead_favours_steeper_curve() {
        let benefit =
            BenefitCurves::from_fn(2, 9, |a, n| if a == 0 { n as f64 * 10.0 } else { n as f64 });
        let p = lookahead_partition(&benefit, 8, 1);
        assert!(p.ways_for(AppId::new(0)) > p.ways_for(AppId::new(1)));
    }

    #[test]
    fn lookahead_sees_delayed_utility() {
        // App 0 gains nothing until it has 4 ways, then a huge jump
        // (classic look-ahead test: greedy single-way allocation would
        // starve it).
        let benefit = BenefitCurves::from_fn(2, 9, |a, n| match a {
            0 if n >= 4 => 100.0,
            0 => 0.0,
            _ => n as f64,
        });
        let p = lookahead_partition(&benefit, 8, 0);
        assert!(p.ways_for(AppId::new(0)) >= 4, "got {:?}", p.as_slice());
    }

    #[test]
    fn lookahead_flat_curves_still_allocate_everything() {
        let benefit = BenefitCurves::new(2, 17);
        let p = lookahead_partition(&benefit, 16, 0);
        assert_eq!(p.total_ways(), 16);
    }

    #[test]
    fn reset_reshapes_and_zeroes() {
        let mut curves = BenefitCurves::from_fn(3, 5, |a, n| (a * 10 + n) as f64);
        curves.reset(2, 9);
        assert_eq!(curves.app_count(), 2);
        assert_eq!(curves.points(), 9);
        assert_eq!(curves.row(0), &[0.0; 9]);
        assert_eq!(curves.row(1), &[0.0; 9]);
    }

    #[test]
    #[should_panic(expected = "cannot reserve")]
    fn lookahead_rejects_infeasible_min() {
        let benefit = BenefitCurves::new(20, 17);
        let _ = lookahead_partition(&benefit, 16, 1);
    }

    #[test]
    #[should_panic(expected = "need at least one application")]
    fn lookahead_rejects_empty() {
        let _ = lookahead_partition(&BenefitCurves::new(0, 17), 16, 0);
    }
}
