//! The pollution filter used by FST to identify contention misses.
//!
//! Fairness via Source Throttling [Ebrahimi+, ASPLOS 2010] keeps one filter
//! per application recording the lines of that application evicted by
//! *other* applications. A later miss that hits in the filter is classified
//! as a contention miss. To keep hardware cost low the filter is a Bloom
//! filter (§2.1), which makes it approximate: small filters produce false
//! positives, which is one of the inaccuracy sources Figure 3 quantifies.

use asm_simcore::LineAddr;

/// A Bloom-filter pollution filter.
///
/// # Examples
///
/// ```
/// use asm_cache::PollutionFilter;
/// use asm_simcore::LineAddr;
///
/// let mut f = PollutionFilter::new(1024);
/// f.insert(LineAddr::new(42));
/// assert!(f.probably_contains(LineAddr::new(42)));
/// f.clear();
/// assert!(!f.probably_contains(LineAddr::new(42)));
/// ```
#[derive(Debug, Clone)]
pub struct PollutionFilter {
    bits: Box<[u64]>,
    mask: u64,
    inserted: u64,
}

/// Number of hash functions; two is the standard cheap choice.
const HASHES: u32 = 2;

impl PollutionFilter {
    /// Creates a filter with `bits` bits of state.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or not a power of two.
    #[must_use]
    pub fn new(bits: usize) -> Self {
        assert!(
            bits > 0 && bits.is_power_of_two(),
            "bits must be a power of two"
        );
        PollutionFilter {
            bits: vec![0; bits.div_ceil(64)].into_boxed_slice(),
            mask: bits as u64 - 1,
            inserted: 0,
        }
    }

    /// Size of the filter in bits.
    #[must_use]
    pub fn capacity_bits(&self) -> usize {
        ((self.mask + 1) as usize).max(64)
    }

    /// Number of insertions since the last [`clear`](Self::clear).
    #[must_use]
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    fn hash(line: LineAddr, salt: u64) -> u64 {
        // SplitMix64 finalizer over (line ^ salt).
        let mut z = line.raw() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Records that `line` was evicted by another application.
    pub fn insert(&mut self, line: LineAddr) {
        for salt in 0..u64::from(HASHES) {
            let bit = Self::hash(line, salt + 1) & self.mask;
            self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
        }
        self.inserted += 1;
    }

    /// Whether `line` may have been recorded. False positives are possible
    /// (more likely for small filters); false negatives are not.
    #[must_use]
    pub fn probably_contains(&self, line: LineAddr) -> bool {
        // Empty filter: every bit is zero, so skip the hashing. This is the
        // common case for non-thrashing applications, and the query sits on
        // the per-miss hot path.
        if self.inserted == 0 {
            return false;
        }
        (0..u64::from(HASHES)).all(|salt| {
            let bit = Self::hash(line, salt + 1) & self.mask;
            self.bits[(bit / 64) as usize] & (1 << (bit % 64)) != 0
        })
    }

    /// Serializes the filter bits and insertion counter for
    /// checkpointing. Capacity is structural.
    pub fn save_state(&self, w: &mut asm_simcore::persist::StateWriter) {
        w.u64_slice(&self.bits);
        w.u64(self.inserted);
    }

    /// Restores state captured by [`save_state`](Self::save_state) into a
    /// filter of identical capacity.
    ///
    /// # Errors
    ///
    /// [`asm_simcore::persist::PersistError::Corrupt`] when the stored
    /// bit array does not match this filter's capacity.
    pub fn restore_state(
        &mut self,
        r: &mut asm_simcore::persist::StateReader<'_>,
    ) -> Result<(), asm_simcore::persist::PersistError> {
        let bits = r.u64_vec()?;
        if bits.len() != self.bits.len() {
            return Err(asm_simcore::persist::PersistError::Corrupt(
                "pollution filter size mismatch".to_owned(),
            ));
        }
        self.bits.copy_from_slice(&bits);
        self.inserted = r.u64()?;
        Ok(())
    }

    /// Empties the filter (done periodically so stale evictions don't
    /// accumulate).
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.inserted = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asm_simcore::SimRng;

    #[test]
    fn no_false_negatives() {
        let mut f = PollutionFilter::new(4096);
        let lines: Vec<_> = (0..200).map(|i| LineAddr::new(i * 37 + 5)).collect();
        for &l in &lines {
            f.insert(l);
        }
        for &l in &lines {
            assert!(f.probably_contains(l));
        }
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let f = PollutionFilter::new(256);
        for i in 0..100 {
            assert!(!f.probably_contains(LineAddr::new(i)));
        }
    }

    #[test]
    fn small_filter_has_more_false_positives_than_large() {
        let mut rng = SimRng::seed_from(99);
        let inserted: Vec<_> = (0..500)
            .map(|_| LineAddr::new(rng.next_u64() >> 20))
            .collect();
        let probes: Vec<_> = (0..5_000)
            .map(|_| LineAddr::new(rng.next_u64() >> 20))
            .collect();

        let count_fp = |bits: usize| {
            let mut f = PollutionFilter::new(bits);
            for &l in &inserted {
                f.insert(l);
            }
            probes
                .iter()
                .filter(|l| !inserted.contains(l) && f.probably_contains(**l))
                .count()
        };

        let small = count_fp(512);
        let large = count_fp(1 << 16);
        assert!(
            small > large,
            "small filter ({small} fps) should be noisier than large ({large} fps)"
        );
    }

    #[test]
    fn clear_resets_state() {
        let mut f = PollutionFilter::new(256);
        f.insert(LineAddr::new(1));
        assert_eq!(f.inserted(), 1);
        f.clear();
        assert_eq!(f.inserted(), 0);
        assert!(!f.probably_contains(LineAddr::new(1)));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = PollutionFilter::new(1000);
    }
}
