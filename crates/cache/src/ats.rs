//! The auxiliary tag store (ATS).
//!
//! One ATS per application tracks the tag state the shared cache *would*
//! have if that application ran alone (§3.2). ASM uses it to count
//! contention misses in aggregate; PTCA uses it per-request; ASM-Cache and
//! UCP additionally use its per-recency-position hit counters to predict
//! hits under any way allocation (§7.1: `quantum-hits_n` "can be directly
//! obtained from the auxiliary tag store").
//!
//! To bound hardware cost the ATS can be *set-sampled* (§4.4): only every
//! `sets / sampled_sets`-th set keeps tags, and observed hit/miss fractions
//! are scaled to the full access count by the estimator.
//!
//! # Memory layout
//!
//! Like [`crate::SetAssocCache`], the tag state is a flat
//! structure-of-arrays arena (DESIGN.md §8 "Tag-store memory layout"): one
//! contiguous `Box<[u64]>` of tags and one recency-rank byte per line
//! (0 = MRU; `0xFF` marks an empty way), way `w` of sampled set `s` at
//! flat index `s * ways + w`. The ATS carries no owner or dirty state —
//! it mirrors a single application's alone-run cache — so ranks alone
//! replace the per-set `Vec<u64>` stacks, and a hit renumbers a few rank
//! bytes instead of memmoving the stack.

use asm_simcore::LineAddr;

use crate::geometry::CacheGeometry;
use crate::scan::{by_ways, bump_ranks_below, find_way, first_byte_match, ways_of, NO_RANK};

/// Result of an ATS lookup for a sampled set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtsOutcome {
    /// Whether the line would have hit had the application run alone.
    pub hit: bool,
    /// On a hit, the LRU-stack position (0 = MRU). Position `p` means the
    /// access would hit with any allocation of at least `p + 1` ways.
    pub recency: Option<usize>,
}

/// A per-application auxiliary tag store, optionally set-sampled.
///
/// # Examples
///
/// ```
/// use asm_cache::{AuxiliaryTagStore, CacheGeometry};
/// use asm_simcore::LineAddr;
///
/// let mut ats = AuxiliaryTagStore::new(CacheGeometry::new(64, 4), None);
/// let line = LineAddr::new(7);
/// let first = ats.access(line).unwrap();
/// assert!(!first.hit);
/// let second = ats.access(line).unwrap();
/// assert!(second.hit);
/// assert_eq!(second.recency, Some(0));
/// ```
#[derive(Debug, Clone)]
pub struct AuxiliaryTagStore {
    geometry: CacheGeometry,
    /// Distance between sampled sets (1 = full ATS). Always a power of
    /// two: the set count is one (geometry invariant) and the sampled
    /// count divides it.
    stride: usize,
    /// `log2(stride)`, so the sampled-set index is a shift, not a divide.
    stride_shift: u32,
    /// `stride - 1`, so the "is this set sampled?" test is a mask, not a
    /// remainder. Both run on every shared-cache access for every
    /// application's ATS.
    stride_mask: usize,
    /// Tags for sampled sets, way `w` of sampled set `s` at `s * ways + w`.
    tags: Box<[u64]>,
    /// Recency rank per line (0 = MRU, [`NO_RANK`] = empty way).
    rank: Box<[u8]>,
    /// Valid lines per sampled set.
    fill: Box<[u8]>,
    /// Number of sampled sets.
    sampled: usize,
    /// Hits observed at each recency position since the last reset.
    position_hits: Vec<u64>,
    misses: u64,
    sampled_accesses: u64,
}

impl AuxiliaryTagStore {
    /// Creates an ATS mirroring a shared cache of shape `geometry`.
    ///
    /// `sampled_sets = None` keeps tags for every set (the "unsampled"
    /// configurations of Figures 2/6a); `Some(n)` keeps tags for `n` evenly
    /// spaced sets (the paper's default is 64).
    ///
    /// # Panics
    ///
    /// Panics if `sampled_sets` is zero, exceeds the set count, or does not
    /// divide it evenly, or if the associativity exceeds 255 (ranks are
    /// single bytes).
    #[must_use]
    pub fn new(geometry: CacheGeometry, sampled_sets: Option<usize>) -> Self {
        let sampled = sampled_sets.unwrap_or(geometry.sets());
        assert!(sampled > 0, "must sample at least one set");
        assert!(
            sampled <= geometry.sets() && geometry.sets().is_multiple_of(sampled),
            "sampled set count {sampled} must evenly divide total sets {}",
            geometry.sets()
        );
        assert!(
            geometry.ways() <= usize::from(u8::MAX),
            "associativity above 255 does not fit the rank-byte encoding"
        );
        let stride = geometry.sets() / sampled;
        debug_assert!(stride.is_power_of_two(), "power-of-two sets imply this");
        let lines = sampled * geometry.ways();
        AuxiliaryTagStore {
            geometry,
            stride,
            stride_shift: stride.trailing_zeros(),
            stride_mask: stride - 1,
            tags: vec![0; lines].into_boxed_slice(),
            rank: vec![NO_RANK; lines].into_boxed_slice(),
            fill: vec![0; sampled].into_boxed_slice(),
            sampled,
            position_hits: vec![0; geometry.ways()],
            misses: 0,
            sampled_accesses: 0,
        }
    }

    /// Returns the mirrored cache geometry.
    #[must_use]
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Returns the number of sampled sets.
    #[must_use]
    pub fn sampled_sets(&self) -> usize {
        self.sampled
    }

    /// Returns `total sets / sampled sets` — the factor by which sampled
    /// counts under-represent the full cache.
    #[must_use]
    pub fn sampling_factor(&self) -> f64 {
        self.stride as f64
    }

    /// Whether this ATS keeps tags for the set `line` maps to.
    #[inline]
    #[must_use]
    pub fn samples_line(&self, line: LineAddr) -> bool {
        self.geometry.set_index(line) & self.stride_mask == 0
    }

    /// Simulates the alone-run cache access for `line`.
    ///
    /// Returns `None` if the line's set is not sampled; otherwise the
    /// would-have-been outcome, updating the ATS LRU state and counters.
    #[inline]
    pub fn access(&mut self, line: LineAddr) -> Option<AtsOutcome> {
        self.update(line, true)
    }

    /// Updates the ATS tag state for `line` *without* touching the
    /// hit/miss counters — used for prefetch fills, which the alone run
    /// would also perform but which are not demand accesses.
    #[inline]
    pub fn touch(&mut self, line: LineAddr) -> Option<AtsOutcome> {
        self.update(line, false)
    }

    #[inline]
    fn update(&mut self, line: LineAddr, count: bool) -> Option<AtsOutcome> {
        by_ways!(self, update_w(line, count))
    }

    #[inline]
    fn update_w<const W: usize>(&mut self, line: LineAddr, count: bool) -> Option<AtsOutcome> {
        let set_idx = self.geometry.set_index(line);
        if set_idx & self.stride_mask != 0 {
            return None;
        }
        let tag = self.geometry.tag(line);
        let ways = ways_of::<W>(self.geometry);
        let sampled_idx = set_idx >> self.stride_shift;
        let base = sampled_idx * ways;
        self.sampled_accesses += u64::from(count);

        let found = find_way::<W>(
            &self.tags[base..base + ways],
            &self.rank[base..base + ways],
            tag,
        );
        if let Some(w) = found {
            // Hit: promote to MRU by renumbering ranks. Re-touching the
            // MRU line skips the renumbering (bumping below rank 0 is a
            // no-op).
            let i = base + w;
            let pos = self.rank[i];
            if pos != 0 {
                bump_ranks_below(&mut self.rank[base..base + ways], pos);
                self.rank[i] = 0;
            }
            if count {
                self.position_hits[usize::from(pos)] += 1;
            }
            return Some(AtsOutcome {
                hit: true,
                recency: Some(usize::from(pos)),
            });
        }

        // Miss: fill at MRU, evicting the LRU line if the set is full. A
        // full set's ranks are a permutation of 0..ways, so the LRU line
        // is exactly the one at rank `ways - 1` — a single byte search.
        let (slot, evicted_rank) = if usize::from(self.fill[sampled_idx]) >= ways {
            let lru = (ways - 1) as u8;
            (
                base + first_byte_match::<W>(&self.rank[base..base + ways], lru),
                lru,
            )
        } else {
            self.fill[sampled_idx] += 1;
            (
                base + first_byte_match::<W>(&self.rank[base..base + ways], NO_RANK),
                NO_RANK,
            )
        };
        bump_ranks_below(&mut self.rank[base..base + ways], evicted_rank);
        self.tags[slot] = tag;
        self.rank[slot] = 0;
        self.misses += u64::from(count);
        Some(AtsOutcome {
            hit: false,
            recency: None,
        })
    }

    /// Sampled hits since the last [`reset_counters`](Self::reset_counters).
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.position_hits.iter().sum()
    }

    /// Sampled misses since the last reset.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Sampled accesses since the last reset.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.sampled_accesses
    }

    /// Hits observed at each recency position since the last reset.
    /// `position_hits()[p]` hits would become misses with fewer than `p + 1`
    /// ways.
    #[must_use]
    pub fn position_hits(&self) -> &[u64] {
        &self.position_hits
    }

    /// Number of sampled accesses that would hit with an `n`-way allocation:
    /// the sum of hits at recency positions `< n` (the UCP utility curve).
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the associativity.
    #[must_use]
    pub fn hits_with_ways(&self, n: usize) -> u64 {
        assert!(
            n <= self.geometry.ways(),
            "allocation exceeds associativity"
        );
        self.position_hits[..n].iter().sum()
    }

    /// Clears the epoch/quantum counters (tag state is preserved — the
    /// hypothetical alone cache stays warm across quanta).
    pub fn reset_counters(&mut self) {
        self.position_hits.fill(0);
        self.misses = 0;
        self.sampled_accesses = 0;
    }

    /// Serializes the dynamic state — hypothetical-alone tags, recency
    /// ranks, set fills, and the sample counters — for checkpointing.
    /// Geometry and sampling stride are structural.
    pub fn save_state(&self, w: &mut asm_simcore::persist::StateWriter) {
        w.u64_slice(&self.tags);
        w.bytes(&self.rank);
        w.bytes(&self.fill);
        w.u64_slice(&self.position_hits);
        w.u64(self.misses);
        w.u64(self.sampled_accesses);
    }

    /// Restores state captured by [`save_state`](Self::save_state) into an
    /// ATS of identical geometry and sampling configuration.
    ///
    /// # Errors
    ///
    /// [`asm_simcore::persist::PersistError::Corrupt`] when the stored
    /// state does not fit this ATS's structure.
    pub fn restore_state(
        &mut self,
        r: &mut asm_simcore::persist::StateReader<'_>,
    ) -> Result<(), asm_simcore::persist::PersistError> {
        use asm_simcore::persist::PersistError;
        let tags = r.u64_vec()?;
        let rank = r.bytes()?;
        let fill = r.bytes()?;
        let position_hits = r.u64_vec()?;
        if tags.len() != self.tags.len()
            || rank.len() != self.rank.len()
            || fill.len() != self.fill.len()
            || position_hits.len() != self.position_hits.len()
        {
            return Err(PersistError::Corrupt("ats arena size mismatch".to_owned()));
        }
        self.tags.copy_from_slice(&tags);
        self.rank.copy_from_slice(rank);
        self.fill.copy_from_slice(fill);
        self.position_hits = position_hits;
        self.misses = r.u64()?;
        self.sampled_accesses = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_ats_samples_everything() {
        let ats = AuxiliaryTagStore::new(CacheGeometry::new(8, 2), None);
        for i in 0..32 {
            assert!(ats.samples_line(LineAddr::new(i)));
        }
    }

    #[test]
    fn sampled_ats_covers_fraction_of_sets() {
        let ats = AuxiliaryTagStore::new(CacheGeometry::new(64, 4), Some(16));
        assert_eq!(ats.sampling_factor(), 4.0);
        let sampled = (0..64)
            .filter(|&s| ats.samples_line(LineAddr::new(s)))
            .count();
        assert_eq!(sampled, 16);
    }

    #[test]
    fn sampled_sets_are_evenly_strided() {
        // The sampled sets are exactly the multiples of the stride — the
        // selection rule must survive any layout change, because the
        // estimators scale sampled counts assuming even coverage.
        let ats = AuxiliaryTagStore::new(CacheGeometry::new(128, 4), Some(32));
        assert_eq!(ats.sampled_sets(), 32);
        for s in 0..128u64 {
            assert_eq!(
                ats.samples_line(LineAddr::new(s)),
                s.is_multiple_of(4),
                "set {s}"
            );
        }
    }

    #[test]
    fn unsampled_set_returns_none() {
        let mut ats = AuxiliaryTagStore::new(CacheGeometry::new(64, 4), Some(16));
        assert!(ats.access(LineAddr::new(1)).is_none());
        assert!(ats.access(LineAddr::new(0)).is_some());
        assert_eq!(ats.accesses(), 1);
    }

    #[test]
    fn lru_behaviour_matches_alone_cache() {
        let mut ats = AuxiliaryTagStore::new(CacheGeometry::new(4, 2), None);
        let l = |k: u64| LineAddr::new(k * 4); // all map to set 0
        ats.access(l(0));
        ats.access(l(1));
        ats.access(l(2)); // evicts l(0)
        assert!(!ats.access(l(0)).unwrap().hit);
    }

    #[test]
    fn eviction_order_is_exact_lru() {
        // Fill a 4-way set, reorder it with a touch, then overflow: the
        // eviction must take exactly the LRU line, and every survivor must
        // report the exact stack position the reordering implies.
        let mut ats = AuxiliaryTagStore::new(CacheGeometry::new(4, 4), None);
        let l = |k: u64| LineAddr::new(k * 4);
        for k in 0..4 {
            ats.access(l(k));
        }
        // Stack (MRU..LRU): 3 2 1 0. Touch 1 → 1 3 2 0.
        assert_eq!(ats.access(l(1)).unwrap().recency, Some(2));
        // Overflow evicts the LRU (0) → 4 1 3 2.
        assert!(!ats.access(l(4)).unwrap().hit);
        // Survivors sit exactly where the stack says they do.
        assert_eq!(ats.access(l(1)).unwrap().recency, Some(1)); // 1 4 3 2
        assert_eq!(ats.access(l(3)).unwrap().recency, Some(2)); // 3 1 4 2
        assert_eq!(ats.access(l(2)).unwrap().recency, Some(3)); // 2 3 1 4
        // And the victim really was 0, not any of the survivors.
        assert!(!ats.access(l(0)).unwrap().hit);
    }

    #[test]
    fn position_hits_build_utility_curve() {
        let mut ats = AuxiliaryTagStore::new(CacheGeometry::new(4, 4), None);
        let l = |k: u64| LineAddr::new(k * 4);
        // Fill 4 lines, then hit them at controlled positions.
        for k in 0..4 {
            ats.access(l(k));
        }
        ats.access(l(3)); // MRU hit, position 0
        ats.access(l(0)); // was LRU, position 3
        assert_eq!(ats.hits_with_ways(1), 1);
        assert_eq!(ats.hits_with_ways(4), 2);
        assert_eq!(ats.misses(), 4);
        assert_eq!(ats.accesses(), 6);
    }

    #[test]
    fn reset_preserves_tags_but_clears_counts() {
        let mut ats = AuxiliaryTagStore::new(CacheGeometry::new(4, 2), None);
        let line = LineAddr::new(5);
        ats.access(line);
        ats.reset_counters();
        assert_eq!(ats.accesses(), 0);
        assert_eq!(ats.misses(), 0);
        // The tag survives the reset: this is still a hit.
        assert!(ats.access(line).unwrap().hit);
    }

    #[test]
    #[should_panic(expected = "evenly divide")]
    fn rejects_non_dividing_sample_count() {
        let _ = AuxiliaryTagStore::new(CacheGeometry::new(64, 4), Some(48));
    }

    #[test]
    fn hits_plus_misses_equals_accesses() {
        let mut ats = AuxiliaryTagStore::new(CacheGeometry::new(16, 4), None);
        let mut rng = asm_simcore::SimRng::seed_from(1);
        for _ in 0..1000 {
            ats.access(LineAddr::new(rng.gen_range(128)));
        }
        assert_eq!(ats.hits() + ats.misses(), ats.accesses());
    }
}
