//! Executable reference models for the flat tag stores.
//!
//! These are the *previous* representations — per-set LRU stacks held as
//! `Vec`s, index 0 = MRU, promotions done by physically reordering the
//! stack — retained verbatim in behaviour so the structure-of-arrays
//! rewrite of [`crate::SetAssocCache`] and [`crate::AuxiliaryTagStore`]
//! can be pinned against them: the model-based differential tests
//! (`crates/cache/tests/flat_vs_reference.rs`) drive both implementations
//! with identical operation streams and require identical outcomes,
//! recencies, victims and final contents.
//!
//! They are deliberately simple rather than fast; nothing on a simulation
//! hot path should use them.

use asm_simcore::{AppId, LineAddr};

use crate::geometry::CacheGeometry;
use crate::partition::WayPartition;
use crate::set_assoc::{AccessOutcome, EvictedLine};
use crate::AtsOutcome;

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    owner: AppId,
    dirty: bool,
}

/// The reference LRU-stack cache: each set is a `Vec<Way>` ordered MRU
/// first, exactly the representation [`crate::SetAssocCache`] used before
/// the flat rewrite.
#[derive(Debug, Clone)]
pub struct RefLruCache {
    geometry: CacheGeometry,
    /// Each set is an LRU stack: index 0 is the most recently used way.
    sets: Vec<Vec<Way>>,
    partition: Option<WayPartition>,
    app_count: usize,
}

impl RefLruCache {
    /// Creates an empty reference cache for `app_count` applications.
    #[must_use]
    pub fn new(geometry: CacheGeometry, app_count: usize) -> Self {
        RefLruCache {
            geometry,
            sets: vec![Vec::new(); geometry.sets()],
            partition: None,
            app_count,
        }
    }

    /// Installs (or clears) a way partition; same contract as
    /// [`crate::SetAssocCache::set_partition`].
    ///
    /// # Panics
    ///
    /// Panics if the partition was built for a different way count or
    /// application count.
    pub fn set_partition(&mut self, partition: Option<WayPartition>) {
        if let Some(p) = &partition {
            assert_eq!(
                p.total_ways(),
                self.geometry.ways(),
                "partition way count mismatch"
            );
            assert_eq!(
                p.app_count(),
                self.app_count,
                "partition app count mismatch"
            );
        }
        self.partition = partition;
    }

    /// Reference access: identical semantics to
    /// [`crate::SetAssocCache::access`].
    pub fn access(&mut self, line: LineAddr, app: AppId, is_write: bool) -> AccessOutcome {
        if let Some(pos) = self.touch(line, is_write) {
            return AccessOutcome {
                hit: true,
                hit_recency: Some(pos),
                eviction: None,
            };
        }
        AccessOutcome {
            hit: false,
            hit_recency: None,
            eviction: self.insert_absent(line, app, is_write),
        }
    }

    /// Reference hit half: promote to MRU by rotating the stack prefix.
    pub fn touch(&mut self, line: LineAddr, is_write: bool) -> Option<usize> {
        let set = &mut self.sets[self.geometry.set_index(line)];
        let tag = self.geometry.tag(line);
        let pos = set.iter().position(|w| w.tag == tag)?;
        set[..=pos].rotate_right(1);
        set[0].dirty |= is_write;
        Some(pos)
    }

    /// Reference miss half: insert at MRU, shifting the stack.
    pub fn insert_absent(
        &mut self,
        line: LineAddr,
        app: AppId,
        is_write: bool,
    ) -> Option<EvictedLine> {
        let set_idx = self.geometry.set_index(line);
        let tag = self.geometry.tag(line);
        let ways = self.geometry.ways();
        let set = &mut self.sets[set_idx];

        let new_way = Way {
            tag,
            owner: app,
            dirty: is_write,
        };
        if set.len() < ways {
            set.push(new_way);
            set.rotate_right(1);
            return None;
        }

        let victim_pos = Self::pick_victim(set, app, self.partition.as_ref());
        let victim = set[victim_pos];
        set[..=victim_pos].rotate_right(1);
        set[0] = new_way;
        Some(EvictedLine {
            line: Self::reconstruct(self.geometry, victim.tag, set_idx),
            owner: victim.owner,
            dirty: victim.dirty,
        })
    }

    /// Reference residency check.
    #[must_use]
    pub fn probe(&self, line: LineAddr) -> bool {
        let set = &self.sets[self.geometry.set_index(line)];
        let tag = self.geometry.tag(line);
        set.iter().any(|w| w.tag == tag)
    }

    /// Reference invalidation.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<bool> {
        let set_idx = self.geometry.set_index(line);
        let tag = self.geometry.tag(line);
        let set = &mut self.sets[set_idx];
        let pos = set.iter().position(|w| w.tag == tag)?;
        Some(set.remove(pos).dirty)
    }

    /// Reference occupancy: full scan.
    #[must_use]
    pub fn occupancy(&self, app: AppId) -> usize {
        self.sets
            .iter()
            .map(|s| s.iter().filter(|w| w.owner == app).count())
            .sum()
    }

    /// Every resident line as `(line, owner, dirty, set, recency)`, in
    /// set order then stack order — the comparison surface for the
    /// differential tests (sorted before comparison against
    /// [`crate::SetAssocCache::lines`], whose way order differs).
    #[must_use]
    pub fn contents(&self) -> Vec<(LineAddr, AppId, bool, usize, usize)> {
        let mut out = Vec::new();
        for (set_idx, set) in self.sets.iter().enumerate() {
            for (pos, w) in set.iter().enumerate() {
                out.push((
                    Self::reconstruct(self.geometry, w.tag, set_idx),
                    w.owner,
                    w.dirty,
                    set_idx,
                    pos,
                ));
            }
        }
        out
    }

    // asm-lint: allow(R9): reference model — kept for differential tests
    // against the flat arena tag store, never instantiated in measured
    // runs; clarity is worth the occupancy scratch vector here
    fn pick_victim(set: &[Way], app: AppId, partition: Option<&WayPartition>) -> usize {
        let Some(partition) = partition else {
            return set.len() - 1;
        };
        let own_quota = partition.ways_for(app);
        let own_occupancy = set.iter().filter(|w| w.owner == app).count();
        if own_occupancy >= own_quota && own_occupancy > 0 {
            if let Some(rpos) = set.iter().rposition(|w| w.owner == app) {
                return rpos;
            }
        }
        let mut occupancy = vec![0usize; partition.app_count()];
        for w in set {
            occupancy[w.owner.index()] += 1;
        }
        if let Some(rpos) = set
            .iter()
            .rposition(|w| occupancy[w.owner.index()] > partition.ways_for(w.owner))
        {
            return rpos;
        }
        set.len() - 1
    }

    fn reconstruct(geometry: CacheGeometry, tag: u64, set_idx: usize) -> LineAddr {
        LineAddr::new((tag << geometry.sets().trailing_zeros()) | set_idx as u64)
    }
}

/// The reference auxiliary tag store: per sampled set a `Vec<u64>` tag
/// stack, MRU first — the representation [`crate::AuxiliaryTagStore`]
/// used before the flat rewrite, with the same counters.
#[derive(Debug, Clone)]
pub struct RefAts {
    geometry: CacheGeometry,
    stride: usize,
    sets: Vec<Vec<u64>>,
    position_hits: Vec<u64>,
    misses: u64,
    sampled_accesses: u64,
}

impl RefAts {
    /// Creates a reference ATS; same contract as
    /// [`crate::AuxiliaryTagStore::new`].
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as the production constructor.
    #[must_use]
    pub fn new(geometry: CacheGeometry, sampled_sets: Option<usize>) -> Self {
        let sampled = sampled_sets.unwrap_or(geometry.sets());
        assert!(sampled > 0, "must sample at least one set");
        assert!(
            sampled <= geometry.sets() && geometry.sets().is_multiple_of(sampled),
            "sampled set count {sampled} must evenly divide total sets {}",
            geometry.sets()
        );
        let stride = geometry.sets() / sampled;
        RefAts {
            geometry,
            stride,
            sets: vec![Vec::new(); sampled],
            position_hits: vec![0; geometry.ways()],
            misses: 0,
            sampled_accesses: 0,
        }
    }

    /// Reference demand access.
    pub fn access(&mut self, line: LineAddr) -> Option<AtsOutcome> {
        self.update(line, true)
    }

    /// Reference counter-free touch.
    pub fn touch(&mut self, line: LineAddr) -> Option<AtsOutcome> {
        self.update(line, false)
    }

    fn update(&mut self, line: LineAddr, count: bool) -> Option<AtsOutcome> {
        let set_idx = self.geometry.set_index(line);
        if !set_idx.is_multiple_of(self.stride) {
            return None;
        }
        let tag = self.geometry.tag(line);
        let ways = self.geometry.ways();
        let set = &mut self.sets[set_idx / self.stride];
        if count {
            self.sampled_accesses += 1;
        }

        if let Some(pos) = set.iter().position(|&t| t == tag) {
            set.remove(pos);
            set.insert(0, tag);
            if count {
                self.position_hits[pos] += 1;
            }
            return Some(AtsOutcome {
                hit: true,
                recency: Some(pos),
            });
        }

        if set.len() >= ways {
            set.pop();
        }
        set.insert(0, tag);
        if count {
            self.misses += 1;
        }
        Some(AtsOutcome {
            hit: false,
            recency: None,
        })
    }

    /// Hits at each recency position since construction/reset.
    #[must_use]
    pub fn position_hits(&self) -> &[u64] {
        &self.position_hits
    }

    /// Sampled misses.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Sampled accesses.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.sampled_accesses
    }

    /// Clears counters, preserving tag state.
    pub fn reset_counters(&mut self) {
        self.position_hits.fill(0);
        self.misses = 0;
        self.sampled_accesses = 0;
    }

    /// Tag stacks (MRU first) per sampled set, for content comparison.
    #[must_use]
    pub fn contents(&self) -> &[Vec<u64>] {
        &self.sets
    }
}
