//! Model-based differential test: the flat structure-of-arrays tag stores
//! against the retained LRU-stack reference models.
//!
//! The flat rewrite of `SetAssocCache` and `AuxiliaryTagStore` claims
//! *bitwise-identical* behaviour: same hit/miss outcomes, same victim
//! choices, same recency positions. These properties drive both
//! implementations with identical randomized operation streams — mixed
//! app counts, partitions on and off, dirty and clean accesses,
//! invalidations, and the split `find`/`promote` hit path — and require
//! the outcomes and the complete final cache contents to agree.

use asm_cache::{
    AuxiliaryTagStore, CacheGeometry, RefAts, RefLruCache, SetAssocCache, WayPartition,
};
use asm_simcore::{AppId, LineAddr};
use proptest::prelude::*;

fn contents_of(cache: &SetAssocCache) -> Vec<(u64, usize, bool, usize, usize)> {
    let mut v: Vec<_> = cache
        .lines()
        .map(|l| (l.line.raw(), l.owner.index(), l.dirty, l.set, l.recency))
        .collect();
    v.sort_unstable();
    v
}

fn ref_contents_of(cache: &RefLruCache) -> Vec<(u64, usize, bool, usize, usize)> {
    let mut v: Vec<_> = cache
        .contents()
        .into_iter()
        .map(|(line, owner, dirty, set, recency)| (line.raw(), owner.index(), dirty, set, recency))
        .collect();
    v.sort_unstable();
    v
}

/// Drives one operation (selected by `sel`) through both implementations
/// and asserts identical outcomes.
fn step(
    flat: &mut SetAssocCache,
    reference: &mut RefLruCache,
    sel: u8,
    line: u64,
    app: AppId,
    write: bool,
) {
    let line_addr = LineAddr::new(line);
    match sel {
        // Weight the mix toward full accesses: they exercise promotion,
        // fill, and victim choice at once.
        0..=4 => {
            let a = flat.access(line_addr, app, write);
            let b = reference.access(line_addr, app, write);
            prop_assert_eq!(a, b, "access({}) diverged", line);
        }
        5 => {
            let a = flat.touch(line_addr, write);
            let b = reference.touch(line_addr, write);
            prop_assert_eq!(a, b, "touch({}) diverged", line);
        }
        6 => {
            // The split hit path the simulator core uses.
            match flat.find(line_addr) {
                Some(handle) => {
                    let pos = flat.promote(handle, write);
                    let b = reference.touch(line_addr, write);
                    prop_assert_eq!(Some(pos), b, "promote({}) diverged", line);
                }
                None => {
                    prop_assert_eq!(None, reference.touch(line_addr, write));
                    let a = flat.insert_absent(line_addr, app, write);
                    let b = reference.insert_absent(line_addr, app, write);
                    prop_assert_eq!(a, b, "insert_absent({}) diverged", line);
                }
            }
        }
        _ => {
            let a = flat.invalidate(line_addr);
            let b = reference.invalidate(line_addr);
            prop_assert_eq!(a, b, "invalidate({}) diverged", line);
        }
    }
    prop_assert_eq!(flat.probe(line_addr), reference.probe(line_addr));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The headline property: arbitrary operation mixes over arbitrary
    /// geometries, app counts and partitions produce identical outcomes
    /// and identical final state in the flat cache and the reference
    /// LRU-stack model.
    #[test]
    fn flat_cache_matches_reference(
        lines in prop::collection::vec(0u64..512, 50..500),
        sels in prop::collection::vec(0u8..8, 50..500),
        app_picks in prop::collection::vec(0usize..8, 50..500),
        writes in prop::collection::vec(0u8..2, 50..500),
        sets_log in 0u32..4,
        ways in 1usize..9,
        apps in 1usize..5,
        partitioned in 0u8..2,
    ) {
        let geom = CacheGeometry::new(1 << sets_log, ways);
        let mut flat = SetAssocCache::new(geom, apps);
        let mut reference = RefLruCache::new(geom, apps);

        let stream: Vec<(u64, u8, AppId, bool)> = lines
            .iter()
            .zip(&sels)
            .zip(&app_picks)
            .zip(&writes)
            .map(|(((&l, &s), &a), &w)| (l, s, AppId::new(a % apps), w == 1))
            .collect();

        // First half unpartitioned, second half (optionally) partitioned,
        // so the partition is installed over organically grown state.
        let split = stream.len() / 2;
        for &(line, sel, app, write) in &stream[..split] {
            step(&mut flat, &mut reference, sel, line, app, write);
        }
        if partitioned == 1 && apps <= ways {
            let quota = WayPartition::even(ways, apps);
            flat.set_partition(Some(quota.clone()));
            reference.set_partition(Some(quota));
        }
        for &(line, sel, app, write) in &stream[split..] {
            step(&mut flat, &mut reference, sel, line, app, write);
        }

        for a in 0..apps {
            prop_assert_eq!(
                flat.occupancy(AppId::new(a)),
                reference.occupancy(AppId::new(a)),
                "occupancy({}) diverged", a
            );
        }
        prop_assert_eq!(contents_of(&flat), ref_contents_of(&reference));
    }

    /// Skewed partitions (not just even splits) must agree on victim
    /// choice: quota enforcement reclaims from over-quota apps in exact
    /// LRU order.
    #[test]
    fn skewed_partitions_match_reference(
        lines in prop::collection::vec(0u64..256, 50..400),
        writes in prop::collection::vec(0u8..2, 50..400),
        app_picks in prop::collection::vec(0usize..8, 50..400),
        extra in prop::collection::vec(1usize..8, 4..5),
        ways in 2usize..9,
        apps_raw in 2usize..5,
    ) {
        let apps = apps_raw.min(ways);
        let geom = CacheGeometry::new(4, ways);
        let mut flat = SetAssocCache::new(geom, apps);
        let mut reference = RefLruCache::new(geom, apps);

        // A skewed but feasible quota: one way each, the rest handed out
        // by the generated weights.
        let mut alloc = vec![1usize; apps];
        let mut remaining = ways - apps;
        let mut i = 0;
        while remaining > 0 {
            let grant = extra[i % extra.len()].min(remaining);
            alloc[i % apps] += grant;
            remaining -= grant;
            i += 1;
        }
        let quota = WayPartition::new(alloc);
        flat.set_partition(Some(quota.clone()));
        reference.set_partition(Some(quota));

        for ((&line, &w), &a) in lines.iter().zip(&writes).zip(&app_picks) {
            let app = AppId::new(a % apps);
            let out = flat.access(LineAddr::new(line), app, w == 1);
            let expect = reference.access(LineAddr::new(line), app, w == 1);
            prop_assert_eq!(out, expect, "access({}) diverged", line);
        }
        prop_assert_eq!(contents_of(&flat), ref_contents_of(&reference));
    }

    /// The flat ATS agrees with the reference ATS on every outcome,
    /// every counter, and the final tag state — across sampling ratios.
    #[test]
    fn flat_ats_matches_reference(
        lines in prop::collection::vec(0u64..2048, 50..600),
        sels in prop::collection::vec(0u8..8, 50..600),
        ways in 1usize..9,
        sample_log in 0u32..4,
    ) {
        let geom = CacheGeometry::new(8, ways);
        let sampled = (8usize >> sample_log.min(3)).max(1);
        let mut flat = AuxiliaryTagStore::new(geom, Some(sampled));
        let mut reference = RefAts::new(geom, Some(sampled));

        for (&line, &sel) in lines.iter().zip(&sels) {
            let line_addr = LineAddr::new(line);
            let (a, b) = if sel < 6 {
                (flat.access(line_addr), reference.access(line_addr))
            } else {
                (flat.touch(line_addr), reference.touch(line_addr))
            };
            prop_assert_eq!(a.map(|o| (o.hit, o.recency)), b.map(|o| (o.hit, o.recency)));
        }

        prop_assert_eq!(flat.position_hits(), reference.position_hits());
        prop_assert_eq!(flat.misses(), reference.misses());
        prop_assert_eq!(flat.accesses(), reference.accesses());
        // Probing every line as a counter-free touch on clones reveals
        // the full tag state: identical stacks answer identically for
        // every line (the touch itself would perturb state, hence the
        // per-probe clones).
        for probe in 0..2048u64 {
            let line_addr = LineAddr::new(probe);
            let mut fa = flat.clone();
            let mut fb = reference.clone();
            prop_assert_eq!(
                fa.touch(line_addr).map(|o| (o.hit, o.recency)),
                fb.touch(line_addr).map(|o| (o.hit, o.recency)),
                "tag state diverged at line {}", probe
            );
        }
    }
}
