//! Property tests of the sampling tier's determinism contract:
//!
//! 1. **Bitwise determinism** — clustering the same feature matrix with
//!    the same `k` and seed yields an identical partition, medoids and
//!    sizes, every time. Selection seeds and snapshot keys are pure
//!    functions of their inputs. This is what makes `--tier sampled`
//!    byte-identical across `--jobs` values and repeated runs: nothing
//!    about selection can depend on execution order.
//! 2. **Structural sanity** — assignments are in range, medoids are
//!    sorted members of their own cluster, sizes align and sum to `n`,
//!    weights sum to 1.
//! 3. **K ≥ N degradation** — more representatives than intervals
//!    collapses to the singleton partition, under which the estimator
//!    telescopes to the member's exact measurements (a sampled run
//!    degrades gracefully into a full run, never into nonsense).

use std::collections::BTreeMap;

use asm_sampling::{
    cluster, estimate_slowdowns, interval_key, selection_seed, Clustering, IntervalPlan,
    SampleSpec,
};
use proptest::prelude::*;

/// Reshape a flat draw into an `n × dim` feature matrix (the strategy
/// layer has no flat-map, so the matrix shape is derived in the body).
/// `flat.len() >= dim` is guaranteed by the strategy bounds.
fn reshape(flat: &[f64], dim: usize) -> Vec<Vec<f64>> {
    let n = flat.len() / dim;
    (0..n).map(|i| flat[i * dim..(i + 1) * dim].to_vec()).collect()
}

fn check_structure(c: &Clustering, n: usize) {
    assert_eq!(c.assignment.len(), n);
    assert_eq!(c.medoids.len(), c.sizes.len());
    let live = c.medoids.len();
    for &a in &c.assignment {
        assert!(a < live, "assignment out of range");
    }
    for (cid, (&m, &s)) in c.medoids.iter().zip(&c.sizes).enumerate() {
        assert!(m < n, "medoid out of range");
        assert_eq!(c.assignment[m], cid, "medoid outside its own cluster");
        assert!(s >= 1, "empty cluster survived compaction");
    }
    let mut sorted = c.medoids.clone();
    sorted.sort_unstable();
    assert_eq!(c.medoids, sorted, "medoids not canonically ordered");
    assert_eq!(c.sizes.iter().sum::<usize>(), n);
    let wsum: f64 = c.weights().iter().sum();
    assert!((wsum - 1.0).abs() < 1e-9, "weights sum to {wsum}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn clustering_is_bitwise_deterministic(
        dim in 1usize..5,
        flat in prop::collection::vec(
            prop_oneof![
                -1e3..1e3f64,
                -1e3..1e3f64,
                -1e3..1e3f64,
                Just(f64::NAN),
                Just(f64::INFINITY),
            ],
            4..120,
        ),
        k in 1usize..6,
        seed in 0u64..u64::MAX,
    ) {
        let feats = reshape(&flat, dim);
        let a = cluster(&feats, k, seed);
        let b = cluster(&feats, k, seed);
        prop_assert_eq!(&a, &b, "same (features, k, seed) diverged");
        check_structure(&a, feats.len());
    }

    #[test]
    fn k_at_least_n_degenerates_to_singletons(
        dim in 1usize..5,
        flat in prop::collection::vec(-1e3..1e3f64, 4..80),
        extra in 0usize..40,
    ) {
        let feats = reshape(&flat, dim);
        let n = feats.len();
        let c = cluster(&feats, n + extra, 17);
        prop_assert_eq!(&c.assignment, &(0..n).collect::<Vec<_>>());
        prop_assert_eq!(&c.medoids, &(0..n).collect::<Vec<_>>());
        prop_assert_eq!(&c.sizes, &vec![1; n]);
    }

    #[test]
    fn singleton_partition_telescopes_to_exact_member_totals(
        member in prop::collection::vec(1.0..1e6f64, 1..24),
    ) {
        // Under the K >= N partition every interval is measured, so the
        // estimate must equal total_cycles / sum(member) with a zero CI
        // regardless of what the proxy saw.
        let n = member.len();
        let proxy: Vec<Vec<f64>> = (0..n).map(|k| vec![(k + 1) as f64 * 10.0]).collect();
        let plan = IntervalPlan {
            interval_cycles: 1_000,
            n_intervals: n,
            prefix_hash: 1,
            mix: "a".to_owned(),
            clustering: Clustering {
                assignment: (0..n).collect(),
                medoids: (0..n).collect(),
                sizes: vec![1; n],
            },
            proxy_alone: proxy,
            snapshots: BTreeMap::new(),
            snapshot_stride: 1,
            wrapped: Vec::new(),
        };
        let rows: Vec<Vec<f64>> = member.iter().map(|&m| vec![m]).collect();
        let est = estimate_slowdowns(&plan, &rows);
        let total: f64 = member.iter().sum();
        let expect = (n as f64 * 1_000.0 / total).max(1.0);
        prop_assert!((est[0].value - expect).abs() <= 1e-9 * expect.max(1.0));
        prop_assert!(est[0].ci.abs() < 1e-9, "singleton strata must be exact");
    }

    #[test]
    fn seeds_and_keys_are_pure_functions(
        prefix in 0u64..u64::MAX,
        mi in 0usize..4,
        cycles in 1u64..1_000_000,
        intervals in 1usize..8,
        quanta in 1u64..8,
        index in 0usize..64,
    ) {
        const MIXES: [&str; 4] = ["a", "a+b", "mcf+lib+sop", "h264+h264"];
        let mix = MIXES[mi];
        let spec = SampleSpec { intervals, quanta };
        prop_assert_eq!(
            selection_seed(prefix, mix, cycles, spec),
            selection_seed(prefix, mix, cycles, spec)
        );
        prop_assert_eq!(
            interval_key(prefix, mix, index, cycles),
            interval_key(prefix, mix, index, cycles)
        );
    }
}
