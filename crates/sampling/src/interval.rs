//! Interval fingerprinting and the sampled-run estimator.
//!
//! The sampled tier slices a run of `C` cycles into `N = C / (L·Q)`
//! fixed intervals of `L` quanta each, runs one cheap *fingerprint* pass
//! per sweep group under the prefix-neutral configuration
//! ([`asm_core::checkpoint::prefix_config`]), and extracts a per-interval
//! feature vector from the telemetry series machinery (estimated
//! slowdowns, CARs, ATS miss rates, interference cycles) plus the
//! interval's work and alone-run cost. Deterministic k-means over those
//! features ([`crate::cluster`]) picks `K` representative intervals with
//! weights; each sweep member then simulates only those `K` intervals
//! cycle-accurately, warmed from snapshots captured at the interval
//! boundaries during the fingerprint pass.
//!
//! The reconstructed metric works on per-interval *alone-run cycles*
//! rather than per-interval slowdown ratios: the alone cost of an
//! instruction window telescopes across intervals
//! (`Σ cycles_between = cycle_at(total)`), so the whole-run slowdown
//! formula of `asm_core::runner` is recovered exactly when every
//! interval is measured — and approximated, with a confidence interval,
//! when only representatives are. See DESIGN.md §12 for the estimator
//! and its blind spots.

use std::collections::BTreeMap;
use std::sync::Arc;

use asm_core::checkpoint;
use asm_core::{config_hash, System, SystemConfig};
use asm_cpu::{AppProfile, ProgressLog};
use asm_simcore::hash::DetHasher;
use asm_simcore::persist::PersistError;
use asm_simcore::{AppId, Cycle};

use crate::cluster::{cluster, Clustering};
use crate::estimate::{Estimate, Z95};

/// The per-app telemetry series a fingerprint samples, one mean per
/// interval each (missing samples contribute 0).
const FEATURE_SERIES: &[&str] = &[
    "est_slowdown",
    "car_shared",
    "car_alone",
    "ats_miss_rate",
    "interference_cycles",
];

/// Intervals replayed under the member's own policies before each
/// measured one, on top of any gap to the nearest snapshot-grid
/// boundary. A restored snapshot carries the *fingerprint* run's
/// microarchitectural state, so the first measured interval after a fork
/// includes a transient; measured head-to-head, that transient is
/// negligible at interval granularity (forked per-interval alone cycles
/// track the member's own full run to well under the within-cluster
/// sampling noise) while each warm interval costs as much as a measured
/// one — so the default is 0. The replay machinery stays: any gap
/// between the grid boundary and the measured interval is run
/// unmeasured under the member's own policies.
pub const WARM_INTERVALS: usize = 0;

/// Snapshot-grid stride for an `n`-interval fingerprint pass: boundary
/// snapshots are captured only at interval indices that are multiples
/// of the stride, capping a pass at ~20 live snapshots. Serializing
/// full system state at *every* boundary dominates the fingerprint
/// pass's overhead over a plain run (and holds `n` snapshots in memory
/// at peak); medoids are snapped onto the grid instead, so probes still
/// restore exactly at the interval they measure.
#[must_use]
pub fn snapshot_stride(n: usize) -> usize {
    n.div_ceil(20).max(1)
}

/// How a sampled run is sliced and how many representatives it keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleSpec {
    /// Number of representative intervals `K` (`--sample-intervals`).
    pub intervals: usize,
    /// Interval length in quanta `L` (`--sample-quanta`).
    pub quanta: u64,
}

impl SampleSpec {
    /// Interval length in cycles under `quantum`.
    #[must_use]
    pub fn interval_cycles(&self, quantum: Cycle) -> Cycle {
        self.quanta.max(1) * quantum
    }

    /// Number of intervals a run of `cycles` splits into (0 when the run
    /// does not divide evenly — the caller falls back to a full run).
    #[must_use]
    pub fn interval_count(&self, quantum: Cycle, cycles: Cycle) -> usize {
        let ic = self.interval_cycles(quantum);
        if ic == 0 || !cycles.is_multiple_of(ic) {
            return 0;
        }
        (cycles / ic) as usize
    }
}

/// The key an interval-boundary snapshot is tagged with: a pure function
/// of the prefix configuration, the mix, the interval index and the
/// interval length — every party that can restore the snapshot can
/// recompute it.
#[must_use]
pub fn interval_key(prefix_hash: u64, mix: &str, index: usize, interval_cycles: Cycle) -> u64 {
    use std::hash::Hasher as _;
    let mut h = DetHasher::default();
    h.write_u64(prefix_hash);
    h.write(mix.as_bytes());
    h.write_u64(index as u64);
    h.write_u64(interval_cycles);
    h.finish()
}

/// The master seed of a group's k-means selection: a pure function of
/// the prefix configuration (its own `seed` field included), the mix,
/// the horizon and the sampling spec — never of execution order, which
/// is what keeps selection byte-identical across `--jobs`.
#[must_use]
pub fn selection_seed(prefix_hash: u64, mix: &str, cycles: Cycle, spec: SampleSpec) -> u64 {
    use std::hash::Hasher as _;
    let mut h = DetHasher::default();
    h.write_u64(prefix_hash);
    h.write(mix.as_bytes());
    h.write_u64(cycles);
    h.write_u64(spec.intervals as u64);
    h.write_u64(spec.quanta);
    h.finish()
}

/// Everything one fingerprint pass learns about a sweep group: the
/// interval partition, the per-interval feature matrix's clustering, the
/// per-interval proxy alone-cycles, and warm-up snapshots for exactly
/// the selected (medoid) interval starts.
#[derive(Debug, Clone)]
pub struct IntervalPlan {
    /// Interval length in cycles (`L · Q`).
    pub interval_cycles: Cycle,
    /// Number of intervals (`run cycles / interval_cycles`).
    pub n_intervals: usize,
    /// [`config_hash`] of the configuration the fingerprint ran under.
    pub prefix_hash: u64,
    /// [`checkpoint::mix_signature`] of the workload.
    pub mix: String,
    /// The representative-interval selection.
    pub clustering: Clustering,
    /// `proxy_alone[k][i]`: alone-run cycles consumed by app `i`'s work
    /// in interval `k` of the fingerprint run (0 when it retired
    /// nothing). Known for *every* interval — the control variate of the
    /// estimator.
    pub proxy_alone: Vec<Vec<f64>>,
    /// Boundary snapshots for the medoid intervals that need one
    /// (interval 0 starts cold and has no entry).
    pub snapshots: BTreeMap<usize, Vec<u8>>,
    /// The snapshot-grid stride the pass captured under
    /// ([`snapshot_stride`] of `n_intervals`): restores happen at the
    /// grid boundary at or below the requested start.
    pub snapshot_stride: usize,
    /// Names of telemetry series whose ring wrapped during the pass.
    /// A wrapped ring silently truncates the oldest samples, corrupting
    /// early-interval features — callers surface this as a warning.
    pub wrapped: Vec<String>,
}

impl IntervalPlan {
    /// The fingerprint run's own whole-run slowdowns: per-interval alone
    /// cycles telescope (`Σ cycles_between = cycle_at(retired_total)`),
    /// so summing [`Self::proxy_alone`] recovers the whole-run formula of
    /// `asm_core::runner` for the configuration the pass ran under. When
    /// that configuration is itself a sweep member (the starved-class
    /// fingerprint of DESIGN.md §12), this is the member's result for
    /// free — no separate full run.
    #[must_use]
    pub fn proxy_slowdowns(&self) -> Vec<f64> {
        let n_apps = self.proxy_alone.first().map_or(0, Vec::len);
        let total_cycles = self.n_intervals as f64 * self.interval_cycles as f64;
        (0..n_apps)
            .map(|i| {
                let alone_total: f64 = self.proxy_alone.iter().map(|k| k[i]).sum();
                if alone_total <= 0.0 {
                    f64::NAN
                } else {
                    (total_cycles / alone_total.max(1.0)).max(1.0)
                }
            })
            .collect()
    }
}

/// Runs the fingerprint pass for one sweep group: simulates `apps` under
/// `config` (the group's shared prefix configuration — pass the member's
/// own configuration for a group of one) for `cycles`, capturing a
/// boundary snapshot per interval, then clusters the per-interval
/// features and keeps only the medoid snapshots.
///
/// `alone` holds each app's alone-run progress log covering at least
/// `cycles` (from [`asm_core::Runner`]'s cache via
/// `Runner::alone_progress`).
///
/// # Panics
///
/// Panics if `cycles` is not a positive multiple of the interval length,
/// the interval length is not a multiple of the quantum, or `alone` does
/// not have one entry per app.
#[must_use]
pub fn fingerprint(
    apps: &[AppProfile],
    config: &SystemConfig,
    cycles: Cycle,
    spec: SampleSpec,
    alone: &[Arc<ProgressLog>],
) -> IntervalPlan {
    let n_apps = apps.len();
    assert_eq!(alone.len(), n_apps, "one alone progress log per app");
    let interval_cycles = spec.interval_cycles(config.quantum);
    let n = spec.interval_count(config.quantum, cycles);
    assert!(n > 0, "cycles must be a positive multiple of the interval");

    let prefix_hash = config_hash(config);
    let mix = checkpoint::mix_signature(apps);

    // One straight-line pass: run interval by interval, reading retired
    // counts and capturing a snapshot at every internal boundary. The
    // boundary quantum is left unfinalised by `run_prefix`, so a restored
    // member replays it under its *own* policies — the same contract as
    // `Runner::warm_snapshot`.
    let stride = snapshot_stride(n);
    let mut sys = System::new(apps, config.clone());
    sys.enable_telemetry(None);
    let mut retired_at: Vec<Vec<u64>> = vec![(0..n_apps).map(|_| 0).collect()];
    let mut snapshots: BTreeMap<usize, Vec<u8>> = BTreeMap::new();
    for k in 1..=n {
        sys.run_prefix(interval_cycles);
        retired_at.push((0..n_apps).map(|i| sys.retired(AppId::new(i))).collect());
        if k < n && k.is_multiple_of(stride) {
            let key = interval_key(prefix_hash, &mix, k, interval_cycles);
            snapshots.insert(k, checkpoint::capture(&sys, key, k as u64 * interval_cycles));
        }
    }
    // Finalise the last quantum so its telemetry sample exists.
    sys.run_for(0);
    let telemetry = sys.take_telemetry();

    // Proxy alone-cycles per interval per app.
    let proxy_alone: Vec<Vec<f64>> = (0..n)
        .map(|k| {
            (0..n_apps)
                .map(|i| {
                    let (from, to) = (retired_at[k][i], retired_at[k + 1][i]);
                    if to > from {
                        alone[i].cycles_between(from, to)
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect();

    // Feature matrix: per app, the interval means of each telemetry
    // series plus the interval's work rate and proxy alone-cost rate.
    let mut features = vec![Vec::new(); n];
    for i in 0..n_apps {
        for series in FEATURE_SERIES {
            let mut sums = vec![0.0f64; n];
            let mut counts = vec![0u64; n];
            if let Some(id) = telemetry.series.id_of(&asm_telemetry::names::app_series(i, series)) {
                for (cycle, value) in telemetry.series.samples(id) {
                    // A quantum-boundary sample at cycle c belongs to the
                    // interval containing cycle c (boundaries land on
                    // interval ends, hence the -1).
                    let k = ((cycle.saturating_sub(1)) / interval_cycles) as usize;
                    if k < n && value.is_finite() {
                        sums[k] += value;
                        counts[k] += 1;
                    }
                }
            }
            for k in 0..n {
                features[k].push(if counts[k] > 0 {
                    sums[k] / counts[k] as f64
                } else {
                    0.0
                });
            }
        }
        for (k, row) in features.iter_mut().enumerate() {
            let work = retired_at[k + 1][i].saturating_sub(retired_at[k][i]);
            row.push(work as f64 / interval_cycles as f64);
            row.push(proxy_alone[k][i] / interval_cycles as f64);
        }
    }

    let wrapped: Vec<String> = telemetry
        .series
        .wrapped_names()
        .into_iter()
        .map(str::to_owned)
        .collect();

    let seed = selection_seed(prefix_hash, &mix, cycles, spec);
    let mut clustering = cluster(&features, spec.intervals, seed);

    // Snap each medoid onto the snapshot grid so a probe restores the
    // boundary of exactly the interval it measures (no warm-gap replay
    // at the default [`WARM_INTERVALS`] of 0). Take the grid interval
    // *nearest in time* to the medoid, preferring the medoid's own
    // cluster — program phases are temporally contiguous, so the
    // index-nearest grid interval shares the medoid's phase where a
    // feature-nearest one can sit in a different region of the run.
    // Ties go to the lower index.
    if stride > 1 {
        for c in 0..clustering.medoids.len() {
            let m = clustering.medoids[c];
            if m.is_multiple_of(stride) {
                continue;
            }
            let pick = |own_cluster: bool| -> Option<usize> {
                (0..n)
                    .step_by(stride)
                    .filter(|&k| !own_cluster || clustering.assignment[k] == c)
                    .min_by_key(|&k| (m.abs_diff(k), k))
            };
            if let Some(snapped) = pick(true).or_else(|| pick(false)) {
                clustering.medoids[c] = snapped;
            }
        }
    }

    // Keep only the snapshots the members will restore: each medoid is
    // entered [`WARM_INTERVALS`] early (clamped at the cold start),
    // from the grid boundary at or below that point.
    let wanted: Vec<usize> = clustering
        .medoids
        .iter()
        .map(|&m| m.saturating_sub(WARM_INTERVALS) / stride * stride)
        .collect();
    snapshots.retain(|k, _| wanted.contains(k));

    IntervalPlan {
        interval_cycles,
        n_intervals: n,
        prefix_hash,
        mix,
        clustering,
        proxy_alone,
        snapshots,
        snapshot_stride: stride,
        wrapped,
    }
}

/// Simulates one interval of `apps` under a member's full configuration
/// and returns each app's *alone-run cycles* for the work it retired in
/// the interval — the quantity the estimator aggregates.
///
/// The member restores the fingerprint snapshot of the grid boundary at
/// or below `interval − WARM_INTERVALS` (clamped at the cold start),
/// replays any gap under its *own* policies unmeasured, and only then
/// measures. With the default warm of 0 and grid-snapped medoids the
/// gap is empty: the restore lands exactly on the measured interval.
///
/// # Errors
///
/// Any [`PersistError`] from the snapshot (stale, damaged, or keyed for
/// a different prefix/mix/interval). The caller falls back to treating
/// the member proxy-only (or running cold).
///
/// # Panics
///
/// Panics if the warm-start boundary has no snapshot in `plan`, or
/// `alone` does not have one entry per app.
pub fn measure_interval(
    apps: &[AppProfile],
    member_config: &SystemConfig,
    plan: &IntervalPlan,
    interval: usize,
    alone: &[Arc<ProgressLog>],
) -> Result<Vec<f64>, PersistError> {
    let n_apps = apps.len();
    assert_eq!(alone.len(), n_apps, "one alone progress log per app");
    let mut sys = System::new(apps, member_config.clone());
    // The fingerprint pass records telemetry, so its snapshots carry
    // telemetry state; the member must match to restore (telemetry is
    // pinned to never change simulated behaviour).
    sys.enable_telemetry(None);
    let stride = plan.snapshot_stride.max(1);
    let start = interval.saturating_sub(WARM_INTERVALS) / stride * stride;
    if start > 0 {
        let snapshot = plan
            .snapshots
            .get(&start)
            .ok_or_else(|| PersistError::Corrupt(format!("no snapshot for interval {start}")))?;
        let key = interval_key(plan.prefix_hash, &plan.mix, start, plan.interval_cycles);
        let warm = checkpoint::resume(snapshot, key, &mut sys)?;
        if warm != start as u64 * plan.interval_cycles {
            return Err(PersistError::Corrupt(format!(
                "snapshot covers {warm} cycles, expected interval {start} start"
            )));
        }
    }
    // Replay the warm gap under the member's own policies, unmeasured.
    sys.run_for((interval - start) as u64 * plan.interval_cycles);
    let before: Vec<u64> = (0..n_apps).map(|i| sys.retired(AppId::new(i))).collect();
    sys.run_for(plan.interval_cycles);
    Ok((0..n_apps)
        .map(|i| {
            let after = sys.retired(AppId::new(i));
            if after > before[i] {
                alone[i].cycles_between(before[i], after)
            } else {
                0.0
            }
        })
        .collect())
}

/// Folds one member's medoid measurements into per-app whole-run
/// slowdown estimates with 95% confidence intervals.
///
/// `member_alone[c][i]` is app `i`'s alone-cycles in the medoid interval
/// of cluster `c` under the member's own policies
/// ([`measure_interval`]); clusters are in [`Clustering::medoids`]
/// order.
///
/// The estimator is a stratified *combined-ratio* estimator over
/// per-interval alone-cycles `a`: the proxy's full per-interval mass is
/// scaled by the member/proxy ratio pooled across the measured medoids,
///
/// `r̂_i = Σ_c w_c·a_member[c][i] / Σ_c w_c·a_proxy[m_c][i]`
/// `Â_i = r̂_i · Σ_c w_c · mean_{k∈c}(a_proxy[k][i])`
///
/// with slowdown `S_i = C / max(N·Â_i, 1)` clamped to `≥ 1`, exactly the
/// whole-run formula of `asm_core::runner` applied to the estimated
/// total. Boundary policies act multiplicatively on progress, so the
/// ratio form absorbs a uniform policy effect exactly, where a
/// difference estimator would be biased by how far a medoid sits from
/// its cluster's mean; pooling the ratio across clusters (rather than a
/// separate ratio per cluster) averages out single-medoid measurement
/// noise. With singleton clusters the proxy mass telescopes against the
/// pooled denominator and the member measurements are reproduced
/// exactly. When the proxy medoids retired nothing the member's own
/// measurements stand in unscaled.
///
/// The interval uses the within-cluster variance of the proxy, scaled by
/// the squared pooled ratio, as a surrogate for the member's
/// (DESIGN.md §12): `Var(Â_i) = r̂_i²·Σ_c w_c²·σ²_{i,c}`, propagated
/// through `S ∝ 1/Â` by the delta method.
#[must_use]
pub fn estimate_slowdowns(plan: &IntervalPlan, member_alone: &[Vec<f64>]) -> Vec<Estimate> {
    let n = plan.n_intervals;
    let n_apps = plan.proxy_alone.first().map_or(0, Vec::len);
    let weights = plan.clustering.weights();
    assert_eq!(
        member_alone.len(),
        plan.clustering.medoids.len(),
        "one measurement per cluster"
    );
    let total_cycles = n as f64 * plan.interval_cycles as f64;

    (0..n_apps)
        .map(|i| {
            let mut num = 0.0f64; // Σ w·member at medoids
            let mut den = 0.0f64; // Σ w·proxy at medoids
            let mut base = 0.0f64; // Σ w·within-cluster proxy mean
            let mut var_s = 0.0f64; // Σ w²·within-cluster proxy variance
            for (c, (&medoid, &w)) in plan
                .clustering
                .medoids
                .iter()
                .zip(&weights)
                .enumerate()
            {
                // Within-cluster mean and population variance of the proxy.
                let members: Vec<f64> = plan
                    .clustering
                    .assignment
                    .iter()
                    .enumerate()
                    .filter(|&(_, &a)| a == c)
                    .map(|(k, _)| plan.proxy_alone[k][i])
                    .collect();
                let m = members.iter().sum::<f64>() / members.len().max(1) as f64;
                let s2 = members.iter().map(|x| (x - m) * (x - m)).sum::<f64>()
                    / members.len().max(1) as f64;
                num += w * member_alone[c][i];
                den += w * plan.proxy_alone[medoid][i];
                base += w * m;
                var_s += w * w * s2;
            }
            let (a_hat, var) = if den > 0.0 {
                let ratio = num / den;
                (ratio * base, ratio * ratio * var_s)
            } else {
                (num, var_s)
            };
            let alone_total = (n as f64 * a_hat).max(0.0);
            if alone_total <= 0.0 {
                return Estimate {
                    value: f64::NAN,
                    ci: 0.0,
                };
            }
            let denom = alone_total.max(1.0);
            let value = (total_cycles / denom).max(1.0);
            let ci_alone = Z95 * (n as f64) * var.sqrt();
            Estimate {
                value,
                ci: value * ci_alone / denom,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Clustering;

    fn plan_with(proxy: Vec<Vec<f64>>, clustering: Clustering) -> IntervalPlan {
        IntervalPlan {
            interval_cycles: 1_000,
            n_intervals: proxy.len(),
            prefix_hash: 0xABCD,
            mix: "a+b".to_owned(),
            clustering,
            proxy_alone: proxy,
            snapshots: BTreeMap::new(),
            snapshot_stride: 1,
            wrapped: Vec::new(),
        }
    }

    #[test]
    fn interval_key_separates_all_fields() {
        let keys = [
            interval_key(1, "a+b", 1, 100),
            interval_key(2, "a+b", 1, 100),
            interval_key(1, "a+c", 1, 100),
            interval_key(1, "a+b", 2, 100),
            interval_key(1, "a+b", 1, 200),
        ];
        let unique: std::collections::BTreeSet<u64> = keys.iter().copied().collect();
        assert_eq!(unique.len(), keys.len());
    }

    #[test]
    fn selection_seed_is_a_pure_function_of_inputs() {
        let spec = SampleSpec {
            intervals: 3,
            quanta: 1,
        };
        assert_eq!(
            selection_seed(9, "x+y", 4_000, spec),
            selection_seed(9, "x+y", 4_000, spec)
        );
        assert_ne!(
            selection_seed(9, "x+y", 4_000, spec),
            selection_seed(9, "x+y", 8_000, spec)
        );
    }

    #[test]
    fn spec_interval_count_requires_divisibility() {
        let spec = SampleSpec {
            intervals: 2,
            quanta: 2,
        };
        assert_eq!(spec.interval_count(1_000, 8_000), 4);
        assert_eq!(spec.interval_count(1_000, 9_000), 0);
    }

    #[test]
    fn singleton_clusters_reproduce_member_measurements_exactly() {
        // K >= N: every interval its own cluster; with the member
        // measured at every interval the estimate telescopes to
        // total/sum(member) exactly.
        let proxy = vec![vec![100.0], vec![300.0], vec![200.0]];
        let clustering = Clustering {
            assignment: vec![0, 1, 2],
            medoids: vec![0, 1, 2],
            sizes: vec![1, 1, 1],
        };
        let plan = plan_with(proxy, clustering);
        let member = vec![vec![150.0], vec![250.0], vec![200.0]];
        let est = estimate_slowdowns(&plan, &member);
        // total shared = 3000; total member alone = 600.
        assert!((est[0].value - 3_000.0 / 600.0).abs() < 1e-9);
        assert!(est[0].ci.abs() < 1e-12, "singleton strata are exact");
    }

    #[test]
    fn zero_work_app_estimates_nan() {
        let proxy = vec![vec![0.0], vec![0.0]];
        let clustering = Clustering {
            assignment: vec![0, 0],
            medoids: vec![0],
            sizes: vec![2],
        };
        let plan = plan_with(proxy, clustering);
        let est = estimate_slowdowns(&plan, &[vec![0.0]]);
        assert!(est[0].value.is_nan());
    }

    #[test]
    fn wider_within_cluster_spread_widens_the_interval() {
        let tight = vec![vec![200.0], vec![201.0], vec![199.0], vec![200.0]];
        let wide = vec![vec![50.0], vec![350.0], vec![100.0], vec![300.0]];
        let clustering = Clustering {
            assignment: vec![0, 0, 0, 0],
            medoids: vec![0],
            sizes: vec![4],
        };
        let t = estimate_slowdowns(&plan_with(tight, clustering.clone()), &[vec![200.0]]);
        let w = estimate_slowdowns(&plan_with(wide, clustering), &[vec![200.0]]);
        assert!(w[0].ci > t[0].ci);
    }
}
