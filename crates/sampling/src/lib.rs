#![warn(missing_docs)]
//! Representative-interval sampling ("SimPoint-style") for the ASM
//! reproduction — the `--tier sampled` machinery between the analytic
//! model and full cycle-accurate simulation.
//!
//! A sweep group (runs sharing a prefix configuration and workload mix)
//! pays for **one** fingerprint pass: the run is sliced into fixed
//! quantum-aligned intervals, each summarised by a feature vector drawn
//! from the telemetry series rings (estimated slowdowns, CARs, ATS miss
//! rates, interference cycles) plus its work and alone-run cost
//! ([`interval::fingerprint`]). A deterministic, dependency-free k-means
//! ([`cluster::cluster`]) — seeded purely from the experiment
//! configuration, never from wall-clock or thread schedule — picks `K`
//! medoid intervals with weights. Every member of the group then
//! simulates only those `K` intervals under its own policies, warmed
//! from boundary snapshots captured during the fingerprint pass
//! ([`interval::measure_interval`]), and the whole-run metrics are
//! reconstructed as stratified difference estimates **with confidence
//! intervals** ([`interval::estimate_slowdowns`], [`estimate::Estimate`]).
//!
//! Everything here is a pure function of its inputs: selection, weights
//! and estimates are byte-identical across `--jobs` values, repeated
//! runs, and `--resume` (pinned by the experiment harness's tests).
//! See DESIGN.md §12 for the estimator derivation and its blind spots.

pub mod cluster;
pub mod estimate;
pub mod interval;

pub use cluster::{cluster, Clustering};
pub use estimate::Estimate;
pub use interval::{
    estimate_slowdowns, fingerprint, interval_key, measure_interval, selection_seed,
    snapshot_stride, IntervalPlan, SampleSpec,
};
