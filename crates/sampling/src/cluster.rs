//! Deterministic, dependency-free k-means with medoid extraction.
//!
//! The clustering behind representative-interval selection (DESIGN.md
//! §12): feature vectors are min-max normalized per dimension, centers
//! are seeded k-means++-style from a [`SimRng`] stream derived from the
//! experiment configuration (never from wall-clock or thread schedule),
//! and every tie — nearest center, medoid choice, empty-cluster repair —
//! breaks toward the lowest index. The result is a pure function of
//! `(features, k, seed)`, which is what makes interval selection
//! byte-identical across `--jobs` values and across repeated runs.

use asm_simcore::SimRng;

/// Bound on Lloyd iterations. Convergence is typically reached in a
/// handful of rounds at the interval counts this tier sees (tens); the
/// cap only guards against pathological oscillation.
const MAX_ITERS: usize = 32;

/// The output of [`cluster`]: a partition of `n` items into at most `k`
/// groups, each represented by one member (its *medoid*).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    /// `assignment[i]` is the cluster index of item `i`.
    pub assignment: Vec<usize>,
    /// `medoids[c]` is the item index representing cluster `c` (the
    /// member closest to the cluster centroid; lowest index on ties).
    /// Sorted ascending, so downstream iteration order is canonical.
    pub medoids: Vec<usize>,
    /// Cluster sizes, aligned with [`Self::medoids`].
    pub sizes: Vec<usize>,
}

impl Clustering {
    /// Number of items clustered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// Whether the clustering is over zero items.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Cluster weights `|c| / n`, aligned with [`Self::medoids`].
    #[must_use]
    pub fn weights(&self) -> Vec<f64> {
        let n = self.assignment.len().max(1) as f64;
        self.sizes.iter().map(|&s| s as f64 / n).collect()
    }
}

/// Squared Euclidean distance; both rows must have equal length.
fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Min-max normalizes each feature dimension to `[0, 1]` so no raw scale
/// dominates the distance metric. Constant (or all-non-finite) dimensions
/// map to 0; non-finite entries are treated as 0 before scaling.
fn normalize(features: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = features.len();
    let dim = features.first().map_or(0, Vec::len);
    let mut rows: Vec<Vec<f64>> = features
        .iter()
        .map(|row| {
            assert_eq!(row.len(), dim, "ragged feature matrix");
            row.iter()
                .map(|&v| if v.is_finite() { v } else { 0.0 })
                .collect()
        })
        .collect();
    for d in 0..dim {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for row in &rows {
            lo = lo.min(row[d]);
            hi = hi.max(row[d]);
        }
        let span = hi - lo;
        for row in rows.iter_mut().take(n) {
            row[d] = if span > 0.0 { (row[d] - lo) / span } else { 0.0 };
        }
    }
    rows
}

/// k-means++-style seeding: the first center is a uniform draw, each
/// subsequent center is drawn with probability proportional to its
/// squared distance from the nearest chosen center. All randomness comes
/// from `rng`; degenerate weight vectors (all points coincide) fall back
/// to the lowest unused index.
fn seed_centers(rows: &[Vec<f64>], k: usize, rng: &mut SimRng) -> Vec<Vec<f64>> {
    let n = rows.len();
    let mut chosen: Vec<usize> = vec![rng.gen_range(n as u64) as usize];
    let mut best_d2: Vec<f64> = rows.iter().map(|r| dist2(r, &rows[chosen[0]])).collect();
    while chosen.len() < k {
        let next = match rng.pick_weighted(&best_d2) {
            Some(i) if !chosen.contains(&i) => i,
            // All remaining mass sits on already-chosen points (or the
            // weights were degenerate): take the lowest unused index.
            _ => (0..n)
                .find(|i| !chosen.contains(i))
                .unwrap_or(chosen[chosen.len() - 1]),
        };
        chosen.push(next);
        for (i, d) in best_d2.iter_mut().enumerate() {
            *d = d.min(dist2(&rows[i], &rows[next]));
        }
    }
    chosen.into_iter().map(|i| rows[i].clone()).collect()
}

/// Index of the center nearest to `row` (strictly-closer wins, so ties
/// keep the lowest index).
fn nearest(centers: &[Vec<f64>], row: &[f64]) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (c, center) in centers.iter().enumerate() {
        let d = dist2(center, row);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    best
}

/// Clusters `features` into at most `k` groups and picks one medoid per
/// group. Deterministic: the result is a pure function of the arguments
/// (see module docs).
///
/// When `k >= features.len()` every item becomes its own singleton
/// cluster — the degenerate partition under which sampling degrades
/// gracefully to a full run (every interval is simulated, weights `1/n`).
///
/// # Panics
///
/// Panics if `features` is empty, `k` is zero, or rows have unequal
/// lengths.
#[must_use]
pub fn cluster(features: &[Vec<f64>], k: usize, seed: u64) -> Clustering {
    let n = features.len();
    assert!(n > 0, "cannot cluster zero intervals");
    assert!(k > 0, "need at least one cluster");
    if k >= n {
        return Clustering {
            assignment: (0..n).collect(),
            medoids: (0..n).collect(),
            sizes: vec![1; n],
        };
    }

    let rows = normalize(features);
    let mut rng = SimRng::seed_from(seed);
    let mut centers = seed_centers(&rows, k, &mut rng);
    let mut assignment: Vec<usize> = rows.iter().map(|r| nearest(&centers, r)).collect();

    for _ in 0..MAX_ITERS {
        // Recompute centroids as member means.
        let dim = rows[0].len();
        let mut sums = vec![vec![0.0f64; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, &c) in assignment.iter().enumerate() {
            counts[c] += 1;
            for d in 0..dim {
                sums[c][d] += rows[i][d];
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Empty cluster: adopt the member farthest from its own
                // centroid (lowest index on ties) so every cluster stays
                // inhabited — deterministically.
                let mut far = 0;
                let mut far_d = f64::NEG_INFINITY;
                for (i, row) in rows.iter().enumerate() {
                    let d = dist2(row, &centers[assignment[i]]);
                    if d > far_d {
                        far_d = d;
                        far = i;
                    }
                }
                assignment[far] = c;
                centers[c] = rows[far].clone();
            } else {
                for d in 0..dim {
                    centers[c][d] = sums[c][d] / counts[c] as f64;
                }
            }
        }
        let next: Vec<usize> = rows.iter().map(|r| nearest(&centers, r)).collect();
        let converged = next == assignment;
        assignment = next;
        if converged {
            break;
        }
    }

    // Compact away clusters that ended empty, renumbering in first-seen
    // (i.e. lowest-medoid) order, then pick medoids.
    let mut remap = vec![usize::MAX; k];
    let mut live = 0usize;
    for &c in &assignment {
        if remap[c] == usize::MAX {
            remap[c] = live;
            live += 1;
        }
    }
    let assignment: Vec<usize> = assignment.into_iter().map(|c| remap[c]).collect();
    let centers: Vec<Vec<f64>> = {
        let mut out = vec![Vec::new(); live];
        for (old, &new) in remap.iter().enumerate() {
            if new != usize::MAX {
                out[new] = centers[old].clone();
            }
        }
        out
    };

    let mut medoids = vec![usize::MAX; live];
    let mut medoid_d = vec![f64::INFINITY; live];
    let mut sizes = vec![0usize; live];
    for (i, &c) in assignment.iter().enumerate() {
        sizes[c] += 1;
        let d = dist2(&rows[i], &centers[c]);
        if d < medoid_d[c] {
            medoid_d[c] = d;
            medoids[c] = i;
        }
    }

    // Canonicalize: order clusters by medoid index so the output carries
    // no trace of seeding order.
    let mut order: Vec<usize> = (0..live).collect();
    order.sort_by_key(|&c| medoids[c]);
    let mut rank = vec![0usize; live];
    for (new, &old) in order.iter().enumerate() {
        rank[old] = new;
    }
    Clustering {
        assignment: assignment.into_iter().map(|c| rank[c]).collect(),
        medoids: order.iter().map(|&c| medoids[c]).collect(),
        sizes: order.iter().map(|&c| sizes[c]).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(center: f64, count: usize) -> Vec<Vec<f64>> {
        (0..count)
            .map(|i| vec![center + i as f64 * 0.01, center - i as f64 * 0.01])
            .collect()
    }

    #[test]
    fn separated_blobs_are_separated() {
        let mut features = blob(0.0, 5);
        features.extend(blob(100.0, 5));
        let c = cluster(&features, 2, 7);
        assert_eq!(c.medoids.len(), 2);
        let first = c.assignment[0];
        assert!(c.assignment[..5].iter().all(|&a| a == first));
        assert!(c.assignment[5..].iter().all(|&a| a != first));
        let w = c.weights();
        assert!((w[0] - 0.5).abs() < 1e-12 && (w[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn k_at_least_n_degenerates_to_singletons() {
        let features = blob(1.0, 4);
        for k in [4, 5, 100] {
            let c = cluster(&features, k, 3);
            assert_eq!(c.assignment, vec![0, 1, 2, 3]);
            assert_eq!(c.medoids, vec![0, 1, 2, 3]);
            assert_eq!(c.sizes, vec![1, 1, 1, 1]);
        }
    }

    #[test]
    fn identical_points_collapse_without_panic() {
        let features = vec![vec![2.0, 2.0]; 6];
        let c = cluster(&features, 3, 11);
        assert_eq!(c.assignment.len(), 6);
        let total: usize = c.sizes.iter().sum();
        assert_eq!(total, 6);
        for (&m, &s) in c.medoids.iter().zip(&c.sizes) {
            assert!(m < 6);
            assert!(s >= 1);
        }
    }

    #[test]
    fn same_inputs_same_output_bitwise() {
        let mut features = blob(0.0, 7);
        features.extend(blob(3.0, 6));
        features.extend(blob(9.0, 4));
        let a = cluster(&features, 3, 42);
        let b = cluster(&features, 3, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn non_finite_features_are_tolerated() {
        let features = vec![
            vec![f64::NAN, 1.0],
            vec![f64::INFINITY, 2.0],
            vec![0.5, 3.0],
            vec![0.6, 40.0],
        ];
        let c = cluster(&features, 2, 5);
        assert_eq!(c.assignment.len(), 4);
    }

    #[test]
    fn medoids_are_sorted_and_sizes_align() {
        let mut features = blob(0.0, 3);
        features.extend(blob(50.0, 9));
        let c = cluster(&features, 2, 13);
        let mut sorted = c.medoids.clone();
        sorted.sort_unstable();
        assert_eq!(c.medoids, sorted);
        assert_eq!(c.sizes.iter().sum::<usize>(), 12);
    }
}
