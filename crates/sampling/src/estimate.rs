//! Weighted estimates with confidence intervals.
//!
//! Every figure metric the sampled tier reports is an [`Estimate`]: a
//! value plus a half-width `ci` such that `value ± ci` is (approximately)
//! a 95% confidence interval under the stratified-sampling model of
//! DESIGN.md §12. Exact quantities — full runs, singleton strata —
//! carry `ci = 0`.

/// z-score of the two-sided 95% confidence interval.
pub const Z95: f64 = 1.959_963_985_987;

/// A metric value with a 95% confidence half-width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// The point estimate.
    pub value: f64,
    /// Half-width of the 95% confidence interval (0 for exact values).
    pub ci: f64,
}

impl Estimate {
    /// An exact value (zero-width interval).
    #[must_use]
    pub fn exact(value: f64) -> Self {
        Estimate { value, ci: 0.0 }
    }

    /// Renders `value ±ci` with `decimals` fractional digits — the cell
    /// format of the sampled tier's tables.
    #[must_use]
    pub fn cell(&self, decimals: usize) -> String {
        format!(
            "{:.d$} ±{:.d$}",
            self.value,
            self.ci,
            d = decimals
        )
    }

    /// The maximum by value (unfairness over per-app slowdowns), carrying
    /// the winner's interval. Non-finite values are skipped; `None` if
    /// nothing survives. Ties keep the earliest entry, matching
    /// `asm_metrics::max_slowdown` on the values alone.
    #[must_use]
    pub fn max_of(estimates: &[Estimate]) -> Option<Estimate> {
        estimates
            .iter()
            .filter(|e| e.value.is_finite())
            .fold(None, |acc: Option<Estimate>, e| match acc {
                Some(best) if best.value >= e.value => Some(best),
                _ => Some(*e),
            })
    }

    /// Harmonic speedup `n / Σ slowdown_i` over per-app slowdowns, with
    /// the interval propagated by the delta method:
    /// `∂h/∂S_i = -h² / n`, so `ci_h = (h²/n)·sqrt(Σ ci_i²)`. Mirrors
    /// `asm_metrics::harmonic_speedup`: `None` for an empty slice or any
    /// non-positive slowdown; non-finite values disqualify the metric the
    /// same way they would the underlying sum.
    #[must_use]
    pub fn harmonic_speedup_of(estimates: &[Estimate]) -> Option<Estimate> {
        let vals: Vec<f64> = estimates
            .iter()
            .map(|e| e.value)
            .filter(|v| v.is_finite())
            .collect();
        let h = asm_metrics::harmonic_speedup(&vals)?;
        let n = vals.len() as f64;
        let var: f64 = estimates
            .iter()
            .filter(|e| e.value.is_finite())
            .map(|e| e.ci * e.ci)
            .sum();
        Some(Estimate {
            value: h,
            ci: h * h / n * var.sqrt(),
        })
    }

    /// The mean, with independent-error propagation
    /// `ci = sqrt(Σ ci_i²) / n`. Non-finite values are skipped; `None`
    /// if nothing survives.
    #[must_use]
    pub fn mean_of(estimates: &[Estimate]) -> Option<Estimate> {
        let kept: Vec<&Estimate> = estimates.iter().filter(|e| e.value.is_finite()).collect();
        if kept.is_empty() {
            return None;
        }
        let n = kept.len() as f64;
        let sum: f64 = kept.iter().map(|e| e.value).sum();
        let var: f64 = kept.iter().map(|e| e.ci * e.ci).sum();
        Some(Estimate {
            value: sum / n,
            ci: var.sqrt() / n,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_formats_value_and_halfwidth() {
        let e = Estimate {
            value: 2.345,
            ci: 0.0678,
        };
        assert_eq!(e.cell(2), "2.35 ±0.07");
        assert_eq!(Estimate::exact(1.0).cell(3), "1.000 ±0.000");
    }

    #[test]
    fn max_of_carries_the_winners_interval() {
        let v = [
            Estimate { value: 1.5, ci: 0.1 },
            Estimate { value: 3.0, ci: 0.4 },
            Estimate {
                value: f64::NAN,
                ci: 9.0,
            },
        ];
        let m = Estimate::max_of(&v).unwrap();
        assert!((m.value - 3.0).abs() < 1e-12);
        assert!((m.ci - 0.4).abs() < 1e-12);
        assert!(Estimate::max_of(&[]).is_none());
    }

    #[test]
    fn harmonic_speedup_matches_metrics_crate_on_values() {
        let v = [
            Estimate { value: 2.0, ci: 0.0 },
            Estimate { value: 2.0, ci: 0.0 },
        ];
        let h = Estimate::harmonic_speedup_of(&v).unwrap();
        assert!((h.value - 0.5).abs() < 1e-12);
        assert!(h.ci.abs() < 1e-12);
    }

    #[test]
    fn harmonic_speedup_propagates_ci() {
        let v = [
            Estimate { value: 2.0, ci: 0.2 },
            Estimate { value: 4.0, ci: 0.0 },
        ];
        let h = Estimate::harmonic_speedup_of(&v).unwrap();
        // h = 2/6 = 1/3; ci = h²/2 · 0.2
        assert!((h.value - 1.0 / 3.0).abs() < 1e-12);
        assert!((h.ci - (1.0 / 9.0) / 2.0 * 0.2).abs() < 1e-12);
    }

    #[test]
    fn mean_of_averages_and_shrinks_ci() {
        let v = [
            Estimate { value: 1.0, ci: 0.3 },
            Estimate { value: 3.0, ci: 0.4 },
        ];
        let m = Estimate::mean_of(&v).unwrap();
        assert!((m.value - 2.0).abs() < 1e-12);
        assert!((m.ci - 0.25).abs() < 1e-12);
    }
}
