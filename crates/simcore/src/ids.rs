//! Identifiers for applications (hardware contexts) in the simulated system.

use std::fmt;

/// Identifies one application / hardware context in a multi-programmed
/// workload. In this reproduction each core runs exactly one single-threaded
/// application, so `AppId` doubles as the core identifier.
///
/// # Examples
///
/// ```
/// use asm_simcore::AppId;
/// let id = AppId::new(3);
/// assert_eq!(id.index(), 3);
/// assert_eq!(format!("{id}"), "app3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AppId(u16);

impl AppId {
    /// Creates an identifier for the application at position `index` in the
    /// workload (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in 16 bits (the simulator supports at
    /// most 65,535 contexts, far beyond the paper's 16-core evaluations).
    #[must_use]
    pub fn new(index: usize) -> Self {
        assert!(index <= u16::MAX as usize, "AppId index {index} too large");
        AppId(index as u16)
    }

    /// Returns the 0-based position of this application in the workload.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterates over the first `count` application ids, `app0..appN`.
    ///
    /// ```
    /// use asm_simcore::AppId;
    /// let ids: Vec<_> = AppId::first(3).collect();
    /// assert_eq!(ids, vec![AppId::new(0), AppId::new(1), AppId::new(2)]);
    /// ```
    pub fn first(count: usize) -> impl Iterator<Item = AppId> {
        (0..count).map(AppId::new)
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app{}", self.0)
    }
}

impl From<AppId> for usize {
    fn from(id: AppId) -> usize {
        id.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_index() {
        for i in [0usize, 1, 7, 15, 65535] {
            assert_eq!(AppId::new(i).index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn rejects_oversized_index() {
        let _ = AppId::new(70_000);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(AppId::new(1) < AppId::new(2));
    }

    #[test]
    fn first_yields_sequential_ids() {
        let ids: Vec<_> = AppId::first(4).map(|a| a.index()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(AppId::new(12).to_string(), "app12");
    }
}
