//! Small statistics helpers used throughout the simulator: running means,
//! running standard deviations, and fixed-bucket histograms (used for the
//! paper's latency-distribution and error-distribution figures).

use std::fmt;

/// Accumulates a running mean without storing samples.
///
/// # Examples
///
/// ```
/// use asm_simcore::MeanAccumulator;
/// let mut m = MeanAccumulator::new();
/// m.add(2.0);
/// m.add(4.0);
/// assert_eq!(m.mean(), Some(3.0));
/// assert_eq!(m.count(), 2);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MeanAccumulator {
    sum: f64,
    count: u64,
}

impl MeanAccumulator {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn add(&mut self, sample: f64) {
        self.sum += sample;
        self.count += 1;
    }

    /// Returns the mean of the samples seen so far, or `None` if empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Returns the number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns the sum of all samples.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &MeanAccumulator) {
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// Welford's online algorithm for mean and standard deviation.
///
/// # Examples
///
/// ```
/// use asm_simcore::RunningStats;
/// let mut s = RunningStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.add(x);
/// }
/// assert!((s.mean().unwrap() - 5.0).abs() < 1e-12);
/// assert!((s.population_std_dev().unwrap() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty statistics accumulator.
    #[must_use]
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, sample: f64) {
        self.count += 1;
        let delta = sample - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (sample - self.mean);
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
    }

    /// Returns the number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns the mean, or `None` if no samples were added.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Returns the population standard deviation, or `None` if empty.
    #[must_use]
    pub fn population_std_dev(&self) -> Option<f64> {
        (self.count > 0).then(|| (self.m2 / self.count as f64).sqrt())
    }

    /// Returns the sample standard deviation, or `None` with fewer than two
    /// samples.
    #[must_use]
    pub fn sample_std_dev(&self) -> Option<f64> {
        (self.count > 1).then(|| (self.m2 / (self.count - 1) as f64).sqrt())
    }

    /// Returns the smallest sample, or `None` if empty.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Returns the largest sample, or `None` if empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

/// A histogram over `[0, bucket_width * buckets)` with uniform buckets and an
/// overflow bucket; used for the miss-service-time distributions of Figure 6
/// and the error distribution of Figure 4.
///
/// # Examples
///
/// ```
/// use asm_simcore::Histogram;
/// let mut h = Histogram::new(10.0, 5);
/// h.add(3.0);
/// h.add(12.0);
/// h.add(1000.0); // overflow
/// assert_eq!(h.bucket_count(0), 1);
/// assert_eq!(h.bucket_count(1), 1);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bucket_width: f64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` uniform buckets of width
    /// `bucket_width` plus an overflow bucket.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is not positive or `buckets` is zero.
    #[must_use]
    pub fn new(bucket_width: f64, buckets: usize) -> Self {
        assert!(bucket_width > 0.0, "bucket width must be positive");
        assert!(buckets > 0, "need at least one bucket");
        Histogram {
            bucket_width,
            counts: vec![0; buckets],
            overflow: 0,
            total: 0,
        }
    }

    /// Reassembles a histogram from its parts (the persistence path of
    /// the alone-run cache). The total is recomputed as the sum of
    /// `counts` and `overflow`, which is exactly what a sequence of
    /// [`add`](Self::add) calls would have left behind.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is not positive or `counts` is empty.
    #[must_use]
    pub fn from_parts(bucket_width: f64, counts: Vec<u64>, overflow: u64) -> Self {
        assert!(bucket_width > 0.0, "bucket width must be positive");
        assert!(!counts.is_empty(), "need at least one bucket");
        let total = counts.iter().sum::<u64>() + overflow;
        Histogram {
            bucket_width,
            counts,
            overflow,
            total,
        }
    }

    /// Adds one sample. Negative samples land in bucket 0.
    pub fn add(&mut self, sample: f64) {
        self.total += 1;
        let idx = (sample.max(0.0) / self.bucket_width) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Returns the count in bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Returns the count of samples beyond the last bucket.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Returns the total number of samples.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Returns the number of regular buckets.
    #[must_use]
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }

    /// Returns the width of each regular bucket.
    #[must_use]
    pub fn bucket_width(&self) -> f64 {
        self.bucket_width
    }

    /// Returns the inclusive-exclusive range covered by bucket `i`.
    #[must_use]
    pub fn bucket_range(&self, i: usize) -> (f64, f64) {
        (
            i as f64 * self.bucket_width,
            (i + 1) as f64 * self.bucket_width,
        )
    }

    /// Returns each bucket's share of the total (overflow excluded from the
    /// iteration but included in the denominator). Empty histogram yields
    /// all-zero fractions.
    pub fn fractions(&self) -> impl Iterator<Item = f64> + '_ {
        let total = self.total.max(1) as f64;
        self.counts.iter().map(move |&c| c as f64 / total)
    }

    /// Returns the `q`-quantile (`0 < q <= 1`) under the integer-bucket
    /// midpoint rule: the rank-`ceil(q * total)` sample's bucket (ranks
    /// counted from 1 in bucket order) is located exactly, and the bucket's
    /// midpoint is reported as the quantile value. This is exact at bucket
    /// granularity — no interpolation between buckets, so two histograms
    /// with the same counts always report the same quantiles.
    ///
    /// Returns `None` when the histogram is empty, when `q` is outside
    /// `(0, 1]`, or when the rank falls in the overflow bucket (whose
    /// upper edge, and hence midpoint, is unknown).
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 || !(q > 0.0 && q <= 1.0) {
            return None;
        }
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(i as f64 * self.bucket_width + self.bucket_width / 2.0);
            }
        }
        None // rank lands in the overflow bucket
    }

    /// The median ([`quantile`](Self::quantile) at 0.5).
    #[must_use]
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// The 95th percentile.
    #[must_use]
    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// The 99th percentile.
    #[must_use]
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// The bucket-midpoint mean of the **in-range** samples (overflow
    /// samples carry no value and are excluded from both numerator and
    /// denominator). `None` when no sample landed in a regular bucket.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        let in_range = self.total - self.overflow;
        if in_range == 0 {
            return None;
        }
        let sum: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(i, &c)| c as f64 * (i as f64 * self.bucket_width + self.bucket_width / 2.0))
            .sum();
        Some(sum / in_range as f64)
    }

    /// Merges another histogram with identical geometry into this one.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms have different bucket width or count.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bucket_width, other.bucket_width,
            "bucket width mismatch"
        );
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "bucket count mismatch"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.total += other.total;
    }
}

impl Histogram {
    /// Serializes geometry and counts for checkpointing (bitwise round
    /// trip via [`restore_from`](Self::restore_from)).
    pub fn save_state(&self, w: &mut crate::persist::StateWriter) {
        w.f64(self.bucket_width);
        w.u64_slice(&self.counts);
        w.u64(self.overflow);
        w.u64(self.total);
    }

    /// Reads a histogram previously written by
    /// [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// [`crate::persist::PersistError::Corrupt`] when the stored geometry
    /// is invalid or the totals are inconsistent.
    pub fn restore_from(
        r: &mut crate::persist::StateReader<'_>,
    ) -> Result<Self, crate::persist::PersistError> {
        use crate::persist::PersistError;
        let bucket_width = r.f64()?;
        let counts = r.u64_vec()?;
        let overflow = r.u64()?;
        let total = r.u64()?;
        if !(bucket_width > 0.0) || counts.is_empty() {
            return Err(PersistError::Corrupt("bad histogram geometry".to_owned()));
        }
        if counts.iter().sum::<u64>() + overflow != total {
            return Err(PersistError::Corrupt("histogram total mismatch".to_owned()));
        }
        Ok(Histogram {
            bucket_width,
            counts,
            overflow,
            total,
        })
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "histogram (bucket width {}):", self.bucket_width)?;
        for (i, c) in self.counts.iter().enumerate() {
            let (lo, hi) = self.bucket_range(i);
            writeln!(f, "  [{lo:8.1}, {hi:8.1}): {c}")?;
        }
        write!(f, "  overflow: {}", self.overflow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_accumulator_empty_is_none() {
        assert_eq!(MeanAccumulator::new().mean(), None);
    }

    #[test]
    fn mean_accumulator_merge() {
        let mut a = MeanAccumulator::new();
        a.add(1.0);
        let mut b = MeanAccumulator::new();
        b.add(3.0);
        a.merge(&b);
        assert_eq!(a.mean(), Some(2.0));
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn running_stats_min_max() {
        let mut s = RunningStats::new();
        for x in [3.0, -1.0, 7.0] {
            s.add(x);
        }
        assert_eq!(s.min(), Some(-1.0));
        assert_eq!(s.max(), Some(7.0));
    }

    #[test]
    fn running_stats_empty() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), None);
        assert_eq!(s.population_std_dev(), None);
        assert_eq!(s.sample_std_dev(), None);
    }

    #[test]
    fn running_stats_single_sample_population_std_is_zero() {
        let mut s = RunningStats::new();
        s.add(5.0);
        assert_eq!(s.population_std_dev(), Some(0.0));
        assert_eq!(s.sample_std_dev(), None);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(5.0, 3);
        for x in [0.0, 4.9, 5.0, 14.9, 15.0, 99.0] {
            h.add(x);
        }
        assert_eq!(h.bucket_count(0), 2);
        assert_eq!(h.bucket_count(1), 1);
        assert_eq!(h.bucket_count(2), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn histogram_negative_lands_in_first_bucket() {
        let mut h = Histogram::new(1.0, 2);
        h.add(-3.0);
        assert_eq!(h.bucket_count(0), 1);
    }

    #[test]
    fn histogram_fractions_sum_below_one_with_overflow() {
        let mut h = Histogram::new(1.0, 2);
        h.add(0.5);
        h.add(10.0);
        let s: f64 = h.fractions().sum();
        assert!((s - 0.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = Histogram::new(1.0, 2);
        a.add(0.0);
        let mut b = Histogram::new(1.0, 2);
        b.add(1.5);
        b.add(9.0);
        a.merge(&b);
        assert_eq!(a.bucket_count(0), 1);
        assert_eq!(a.bucket_count(1), 1);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn quantile_follows_midpoint_rule() {
        // 10 samples of value ~2.5 (bucket 0 of width 5), 80 of ~7.5
        // (bucket 1), 10 of ~12.5 (bucket 2).
        let h = Histogram::from_parts(5.0, vec![10, 80, 10], 0);
        assert_eq!(h.p50(), Some(7.5));
        assert_eq!(h.quantile(0.10), Some(2.5));
        // rank(0.90) = 90, cumulative through bucket 1 is exactly 90.
        assert_eq!(h.quantile(0.90), Some(7.5));
        assert_eq!(h.p95(), Some(12.5));
        assert_eq!(h.p99(), Some(12.5));
        assert_eq!(h.quantile(1.0), Some(12.5));
    }

    #[test]
    fn quantile_single_sample_every_q_hits_its_bucket() {
        let mut h = Histogram::new(2.0, 4);
        h.add(5.0); // bucket 2, midpoint 5.0
        for q in [0.001, 0.5, 1.0] {
            assert_eq!(h.quantile(q), Some(5.0));
        }
    }

    #[test]
    fn quantile_edge_cases_return_none() {
        let empty = Histogram::new(1.0, 4);
        assert_eq!(empty.p50(), None);

        let mut h = Histogram::new(1.0, 2);
        h.add(0.5);
        assert_eq!(h.quantile(0.0), None, "q must be > 0");
        assert_eq!(h.quantile(1.5), None, "q must be <= 1");
        assert_eq!(h.quantile(f64::NAN), None);

        // Half the mass in the overflow bucket: p50 resolvable, p99 not.
        let ov = Histogram::from_parts(1.0, vec![5, 0], 5);
        assert_eq!(ov.p50(), Some(0.5));
        assert_eq!(ov.p99(), None, "rank in overflow has no midpoint");
    }

    #[test]
    fn quantile_empty_histogram_is_none_at_every_q() {
        let empty = Histogram::new(2.0, 3);
        for q in [0.001, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(empty.quantile(q), None, "q = {q}");
        }
        assert_eq!(empty.p95(), None);
        assert_eq!(empty.p99(), None);
    }

    #[test]
    fn quantile_single_bucket_geometry() {
        // One regular bucket of width 4: every in-range sample reports
        // the same midpoint at every q, and the first sample at the
        // bucket's upper edge is already overflow.
        let mut h = Histogram::new(4.0, 1);
        h.add(0.0);
        h.add(3.9);
        for q in [0.001, 0.5, 0.95, 1.0] {
            assert_eq!(h.quantile(q), Some(2.0), "q = {q}");
        }
        h.add(4.0);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.p50(), Some(2.0));
        assert_eq!(h.quantile(1.0), None, "rank 3 falls in the overflow bucket");
    }

    #[test]
    fn quantile_all_mass_in_overflow_is_none_at_every_q() {
        let h = Histogram::from_parts(1.0, vec![0, 0], 9);
        for q in [0.001, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), None, "q = {q}");
        }
        assert_eq!(h.p50(), None);
        assert_eq!(h.p95(), None);
        assert_eq!(h.p99(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(
            h.fractions().sum::<f64>(),
            0.0,
            "all mass in overflow: every regular fraction is 0"
        );
    }

    #[test]
    fn mean_is_midpoint_weighted_over_in_range_samples() {
        let h = Histogram::from_parts(10.0, vec![1, 0, 3], 0);
        // midpoints 5 and 25: (5 + 3*25) / 4
        assert!((h.mean().unwrap() - 20.0).abs() < 1e-12);

        // Overflow samples are excluded entirely.
        let ov = Histogram::from_parts(10.0, vec![2, 0], 7);
        assert!((ov.mean().unwrap() - 5.0).abs() < 1e-12);

        assert_eq!(Histogram::new(1.0, 3).mean(), None);
        assert_eq!(Histogram::from_parts(1.0, vec![0], 4).mean(), None);
    }

    #[test]
    #[should_panic(expected = "bucket width mismatch")]
    fn histogram_merge_rejects_mismatch() {
        let mut a = Histogram::new(1.0, 2);
        let b = Histogram::new(2.0, 2);
        a.merge(&b);
    }
}
