#![warn(missing_docs)]
//! Shared vocabulary for the ASM (Application Slowdown Model) reproduction.
//!
//! This crate holds the primitive types every other crate in the workspace
//! speaks: application/core identifiers, cache-line addresses, simulation
//! cycles, a deterministic pseudo-random number generator (so whole-system
//! simulations are reproducible from a seed), and small statistics helpers
//! (counters, running means, histograms).
//!
//! # Examples
//!
//! ```
//! use asm_simcore::{AppId, LineAddr, rng::SimRng};
//!
//! let app = AppId::new(2);
//! let mut rng = SimRng::seed_from(0xA5A5);
//! let line = LineAddr::new(rng.next_u64() >> 10);
//! assert_eq!(app.index(), 2);
//! assert!(line.raw() < (1 << 54));
//! ```

pub mod addr;
pub mod hash;
pub mod ids;
pub mod persist;
pub mod rng;
pub mod stats;

pub use addr::{Addr, LineAddr, LINE_BYTES, LINE_SHIFT};
pub use hash::{DetHashMap, DetHashSet};
pub use ids::AppId;
pub use rng::SimRng;
pub use stats::{Histogram, MeanAccumulator, RunningStats};

/// A simulation timestamp or duration, measured in core clock cycles.
///
/// The whole system (cores, caches, memory controller) is simulated on a
/// single clock domain, as in the paper's evaluation infrastructure; the
/// DRAM device's slower clock is expressed by scaling its timing parameters
/// into core cycles (see `asm-dram`).
pub type Cycle = u64;
