//! Deterministic hashing for simulation-state maps.
//!
//! `std::collections::HashMap`'s default `RandomState` seeds itself from OS
//! entropy, which would make map-dependent behaviour differ between runs —
//! unacceptable in a simulator whose outputs must be reproducible from a
//! seed (and banned by asm-lint rule R4). The maps used on simulation hot
//! paths (MSHR, per-core token tables) are keyed by `u64` and never
//! iterated, so a fixed-seed hasher changes no observable behaviour while
//! replacing `BTreeMap`'s pointer-chasing with O(1) probes.
//!
//! The mixer is the `splitmix64` finaliser (Steele+, "Fast splittable
//! pseudorandom number generators", OOPSLA 2014) — two xor-shift-multiply
//! rounds, enough to spread the low-entropy line addresses and monotonic
//! token ids these maps are keyed with.
//!
//! # Examples
//!
//! ```
//! use asm_simcore::hash::DetHashMap;
//!
//! let mut m: DetHashMap<u64, &str> = DetHashMap::default();
//! m.insert(7, "seven");
//! assert_eq!(m.get(&7), Some(&"seven"));
//! ```

use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` with a fixed, deterministic hash function.
// asm-lint: allow(R1): fixed-seed hasher — iteration order is identical
// across processes, which is exactly the property R1 exists to protect
// asm-lint: allow(R8): fixed-seed hasher — the alias is the sanctioned
// deterministic map, so uses of it must not re-flag as hash-ordered
pub type DetHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<DetHasher>>;

/// A `HashSet` with a fixed, deterministic hash function.
// asm-lint: allow(R1): fixed-seed hasher — see DetHashMap above
// asm-lint: allow(R8): fixed-seed hasher — see DetHashMap above
pub type DetHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<DetHasher>>;

/// Fixed-seed hasher: splitmix64 finaliser over a running state.
#[derive(Debug, Clone, Copy, Default)]
pub struct DetHasher {
    state: u64,
}

impl DetHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        let mut z = self.state.wrapping_add(word).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.state = z ^ (z >> 31);
    }
}

impl Hasher for DetHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            // asm-lint: allow(R12): word assembly for hashing, not
            // serialization — explicit LE keeps digests platform-stable
            self.mix(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        // asm-lint: allow(R5): widening usize→u64 is lossless on every
        // supported target
        self.mix(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_same_hash_across_maps() {
        let mut a = DetHasher::default();
        let mut b = DetHasher::default();
        a.write_u64(0xDEAD_BEEF);
        b.write_u64(0xDEAD_BEEF);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn nearby_keys_spread() {
        let hash = |k: u64| {
            let mut h = DetHasher::default();
            h.write_u64(k);
            h.finish()
        };
        let mut seen = DetHashSet::default();
        for k in 0..10_000u64 {
            seen.insert(hash(k));
        }
        assert_eq!(seen.len(), 10_000, "sequential keys must not collide");
    }

    #[test]
    fn map_roundtrip() {
        let mut m: DetHashMap<u64, u64> = DetHashMap::default();
        for k in 0..1_000u64 {
            m.insert(k * 64, k);
        }
        for k in 0..1_000u64 {
            assert_eq!(m.remove(&(k * 64)), Some(k));
        }
        assert!(m.is_empty());
    }
}
