//! Deterministic pseudo-random number generation for reproducible simulation.
//!
//! Every stochastic decision in the simulator — synthetic address streams,
//! epoch-owner assignment, workload-mix sampling — draws from a [`SimRng`]
//! seeded from the experiment configuration, so a whole-system run is a pure
//! function of its seed. We implement the generator ourselves (SplitMix64
//! for seeding, xoshiro256++ for the stream) rather than depending on the
//! `rand` crate for the hot path, both for speed and so results cannot shift
//! under a dependency upgrade.

/// A deterministic pseudo-random number generator (xoshiro256++ seeded via
/// SplitMix64).
///
/// # Examples
///
/// ```
/// use asm_simcore::SimRng;
/// let mut a = SimRng::seed_from(7);
/// let mut b = SimRng::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // reproducible
/// let x = a.gen_range(10);
/// assert!(x < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator whose stream is fully determined by `seed`.
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derives an independent child generator; useful for giving each
    /// application its own stream while keeping the whole run a function of
    /// one master seed.
    #[must_use]
    pub fn fork(&mut self, tag: u64) -> SimRng {
        let mixed = self.next_u64() ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from(mixed)
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed value in `0..bound`.
    ///
    /// Uses Lemire's multiply-shift reduction; the tiny modulo bias is
    /// irrelevant at simulation scales.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        // 53 high-quality mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Picks an index in `0..weights.len()` with probability proportional to
    /// `weights[i]`. Zero or negative weights are treated as zero.
    ///
    /// Returns `None` if `weights` is empty or sums to a non-positive value.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().map(|w| w.max(0.0)).sum();
        if total <= 0.0 || total.is_nan() {
            return None;
        }
        let mut target = self.gen_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            let w = w.max(0.0);
            if target < w {
                return Some(i);
            }
            target -= w;
        }
        // Floating-point rounding can leave a sliver; attribute it to the
        // last positive weight.
        weights.iter().rposition(|w| *w > 0.0)
    }

    /// Shuffles `slice` in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Serializes the generator's exact position in its stream (the four
    /// xoshiro256++ state words) for checkpointing.
    pub fn save_state(&self, w: &mut crate::persist::StateWriter) {
        for &word in &self.s {
            w.u64(word);
        }
    }

    /// Restores a position previously captured by
    /// [`save_state`](Self::save_state); the stream continues bitwise
    /// identically from there.
    ///
    /// # Errors
    ///
    /// Propagates reader errors (truncated payload).
    pub fn restore_state(
        &mut self,
        r: &mut crate::persist::StateReader<'_>,
    ) -> Result<(), crate::persist::PersistError> {
        for word in &mut self.s {
            *word = r.u64()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(123);
        let mut b = SimRng::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut rng = SimRng::seed_from(9);
        for bound in [1u64, 2, 3, 17, 1000] {
            for _ in 0..200 {
                assert!(rng.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = SimRng::seed_from(42);
        for _ in 0..1000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_roughly_uniform() {
        let mut rng = SimRng::seed_from(5);
        let mut buckets = [0u32; 4];
        for _ in 0..40_000 {
            buckets[rng.gen_range(4) as usize] += 1;
        }
        for b in buckets {
            // Each bucket expects 10_000; allow 10% slack.
            assert!((9_000..11_000).contains(&b), "bucket count {b}");
        }
    }

    #[test]
    fn pick_weighted_follows_weights() {
        let mut rng = SimRng::seed_from(77);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0u32; 3];
        for _ in 0..40_000 {
            counts[rng.pick_weighted(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = f64::from(counts[2]) / f64::from(counts[0]);
        assert!((2.5..3.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn pick_weighted_empty_or_zero_is_none() {
        let mut rng = SimRng::seed_from(1);
        assert_eq!(rng.pick_weighted(&[]), None);
        assert_eq!(rng.pick_weighted(&[0.0, 0.0]), None);
        assert_eq!(rng.pick_weighted(&[-1.0]), None);
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = SimRng::seed_from(11);
        let mut c1 = parent.fork(0);
        let mut c2 = parent.fork(1);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn shuffle_preserves_elements() {
        let mut rng = SimRng::seed_from(3);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
