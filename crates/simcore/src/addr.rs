//! Physical addresses and cache-line addresses.
//!
//! The simulated machine uses 64-byte cache lines throughout (Table 2 of the
//! paper). Cores generate byte [`Addr`]esses; the memory hierarchy operates
//! on [`LineAddr`]esses.

use std::fmt;

/// Log2 of the cache-line size in bytes.
pub const LINE_SHIFT: u32 = 6;
/// Cache-line size in bytes (64 B, per Table 2).
pub const LINE_BYTES: u64 = 1 << LINE_SHIFT;

/// A byte-granularity physical address in the simulated machine.
///
/// # Examples
///
/// ```
/// use asm_simcore::{Addr, LineAddr};
/// let a = Addr::new(0x1234);
/// assert_eq!(a.line(), LineAddr::new(0x1234 >> 6));
/// assert_eq!(a.line_offset(), 0x34);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Wraps a raw byte address.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw byte address.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the cache line containing this address.
    #[must_use]
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_SHIFT)
    }

    /// Returns the offset of this address within its cache line.
    #[must_use]
    pub const fn line_offset(self) -> u64 {
        self.0 & (LINE_BYTES - 1)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A cache-line-granularity address (byte address divided by the line size).
///
/// All caches, the auxiliary tag store, and the DRAM model operate on line
/// addresses; the byte offset never matters to them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Wraps a raw line number.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        LineAddr(raw)
    }

    /// Returns the raw line number.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the first byte address of this line.
    #[must_use]
    pub const fn base_addr(self) -> Addr {
        Addr(self.0 << LINE_SHIFT)
    }

    /// Returns the line `delta` lines after this one (wrapping on overflow,
    /// which cannot occur for realistic working sets).
    #[must_use]
    pub const fn offset(self, delta: u64) -> LineAddr {
        LineAddr(self.0.wrapping_add(delta))
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line:0x{:x}", self.0)
    }
}

impl From<Addr> for LineAddr {
    fn from(a: Addr) -> LineAddr {
        a.line()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_extraction() {
        let a = Addr::new(0xABCD);
        assert_eq!(a.line().raw(), 0xABCD >> 6);
        assert_eq!(a.line_offset(), 0xABCD & 63);
    }

    #[test]
    fn line_base_addr_round_trip() {
        let l = LineAddr::new(42);
        assert_eq!(l.base_addr().line(), l);
        assert_eq!(l.base_addr().line_offset(), 0);
    }

    #[test]
    fn addresses_in_same_line_share_line_addr() {
        let base = Addr::new(0x1000);
        for off in 0..64 {
            assert_eq!(Addr::new(0x1000 + off).line(), base.line());
        }
        assert_ne!(Addr::new(0x1040).line(), base.line());
    }

    #[test]
    fn offset_advances_lines() {
        let l = LineAddr::new(10);
        assert_eq!(l.offset(5).raw(), 15);
    }

    #[test]
    fn from_addr_matches_line() {
        let a = Addr::new(0x5555);
        assert_eq!(LineAddr::from(a), a.line());
    }
}
