//! Versioned state persistence shared by every cache and checkpoint in
//! the workspace.
//!
//! Three artefact families are serialized across process lifetimes: the
//! alone-run cache (`asm-core`), the analytic reuse-profile cache
//! (`asm-analytic`), and full `System` snapshots plus run manifests (the
//! checkpoint layer). They all follow the same policy, implemented once
//! here:
//!
//! * **Versioned headers.** Binary artefacts start with a magic string,
//!   a format name, and a `u32` version; text artefacts start with a
//!   `"<name> v<version>"` line. Readers reject anything else — a stale
//!   or foreign file is never silently misinterpreted.
//! * **Little-endian binary framing.** All multi-byte values are
//!   little-endian; floats travel as IEEE-754 bit patterns so a
//!   save/load round trip is bitwise-exact.
//! * **Checksummed payloads.** Binary artefacts end with a [`DetHasher`]
//!   digest of the payload; truncation and bit rot surface as
//!   [`PersistError::Corrupt`], not as garbage state.
//! * **Warn-and-rebuild.** A missing artefact is simply absent; an
//!   unreadable, stale, or corrupt one is discarded with a warning
//!   *string* (sim crates cannot print — lint rule R7 — so surfacing
//!   the warning is the harness's job, see [`load_or_rebuild`]).
//!
//! # Examples
//!
//! ```
//! use asm_simcore::persist::{StateReader, StateWriter};
//!
//! let mut w = StateWriter::new("example-state", 1);
//! w.u64(42);
//! w.f64(2.5);
//! w.str("hello");
//! let bytes = w.finish();
//!
//! let mut r = StateReader::new(&bytes, "example-state", 1).unwrap();
//! assert_eq!(r.u64().unwrap(), 42);
//! assert_eq!(r.f64().unwrap(), 2.5);
//! assert_eq!(r.str().unwrap(), "hello");
//! r.finish().unwrap();
//! ```

use std::fmt;
use std::hash::Hasher;
use std::path::Path;

use crate::hash::DetHasher;

/// Magic prefix identifying every binary artefact written by this module.
pub const MAGIC: &[u8; 8] = b"ASMPRST\0";

/// Why a persisted artefact was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The magic or format name did not match — not one of our artefacts,
    /// or an artefact of a different kind.
    BadHeader(String),
    /// Recognised format, incompatible version; the artefact predates (or
    /// postdates) this build and must be rebuilt.
    StaleVersion {
        /// The format name found in the header.
        format: String,
        /// The version found in the header.
        found: u32,
        /// The version this build reads and writes.
        expected: u32,
    },
    /// The payload ended before a read completed.
    Truncated {
        /// Bytes the read needed.
        needed: usize,
        /// Bytes remaining.
        available: usize,
    },
    /// The payload is structurally invalid: checksum mismatch, trailing
    /// garbage, an out-of-range value, or state that does not match the
    /// structure it is being restored into.
    Corrupt(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::BadHeader(what) => write!(f, "unrecognised header: {what}"),
            PersistError::StaleVersion {
                format,
                found,
                expected,
            } => write!(f, "{format}: version {found}, this build expects v{expected}"),
            PersistError::Truncated { needed, available } => {
                write!(f, "truncated: needed {needed} bytes, {available} available")
            }
            PersistError::Corrupt(why) => write!(f, "corrupt: {why}"),
        }
    }
}

impl std::error::Error for PersistError {}

/// Little-endian binary state writer with a versioned header and a
/// trailing payload checksum. See the module docs for an example.
#[derive(Debug)]
pub struct StateWriter {
    buf: Vec<u8>,
    payload_start: usize,
}

impl StateWriter {
    /// Starts an artefact of the given format name and version.
    #[must_use]
    pub fn new(format: &str, version: u32) -> Self {
        let mut buf = Vec::with_capacity(256);
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&(format.len() as u32).to_le_bytes());
        buf.extend_from_slice(format.as_bytes());
        buf.extend_from_slice(&version.to_le_bytes());
        let payload_start = buf.len();
        StateWriter { buf, payload_start }
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64` (portable across word sizes).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `f64` as its IEEE-754 bit pattern (bitwise round trip,
    /// NaN payloads included).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Writes a length-prefixed `u64` slice.
    pub fn u64_slice(&mut self, v: &[u64]) {
        self.usize(v.len());
        for &x in v {
            self.u64(x);
        }
    }

    /// Writes a length-prefixed `f64` slice (bit patterns).
    pub fn f64_slice(&mut self, v: &[f64]) {
        self.usize(v.len());
        for &x in v {
            self.f64(x);
        }
    }

    /// Writes an `Option<u64>` as a presence byte plus the value.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.bool(true);
                self.u64(x);
            }
            None => self.bool(false),
        }
    }

    /// Appends the payload checksum and returns the finished artefact.
    #[must_use]
    pub fn finish(mut self) -> Vec<u8> {
        let mut h = DetHasher::default();
        h.write(&self.buf[self.payload_start..]);
        let sum = h.finish();
        self.buf.extend_from_slice(&sum.to_le_bytes());
        self.buf
    }
}

/// Reader for artefacts produced by [`StateWriter`]. Validates the
/// header and checksum up front; every read is bounds-checked.
#[derive(Debug)]
pub struct StateReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> StateReader<'a> {
    /// Validates magic, format name, version, and payload checksum, and
    /// positions the reader at the start of the payload.
    ///
    /// # Errors
    ///
    /// [`PersistError::BadHeader`] on wrong magic or format name,
    /// [`PersistError::StaleVersion`] on a version mismatch,
    /// [`PersistError::Truncated`] / [`PersistError::Corrupt`] on a
    /// damaged payload.
    pub fn new(data: &'a [u8], format: &str, version: u32) -> Result<Self, PersistError> {
        let mut r = StateReader { data, pos: 0 };
        let magic = r.take(MAGIC.len())?;
        if magic != MAGIC {
            return Err(PersistError::BadHeader("bad magic".to_owned()));
        }
        let name_len = r.raw_u32()? as usize;
        if name_len > 1024 {
            return Err(PersistError::BadHeader("format name too long".to_owned()));
        }
        let name = r.take(name_len)?.to_vec();
        let found_name = String::from_utf8(name)
            .map_err(|_| PersistError::BadHeader("format name not UTF-8".to_owned()))?;
        if found_name != format {
            return Err(PersistError::BadHeader(format!(
                "format '{found_name}', expected '{format}'"
            )));
        }
        let found_version = r.raw_u32()?;
        if found_version != version {
            return Err(PersistError::StaleVersion {
                format: found_name,
                found: found_version,
                expected: version,
            });
        }
        // Checksum covers everything between the header and the trailing
        // 8-byte digest.
        let payload_start = r.pos;
        if data.len() < payload_start + 8 {
            return Err(PersistError::Truncated {
                needed: payload_start + 8,
                available: data.len(),
            });
        }
        let sum_pos = data.len() - 8;
        let mut h = DetHasher::default();
        h.write(&data[payload_start..sum_pos]);
        let mut stored = [0u8; 8];
        stored.copy_from_slice(&data[sum_pos..]);
        if h.finish() != u64::from_le_bytes(stored) {
            return Err(PersistError::Corrupt("checksum mismatch".to_owned()));
        }
        // Reads must stop short of the checksum.
        Ok(StateReader {
            data: &data[..sum_pos],
            pos: payload_start,
        })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let available = self.data.len() - self.pos;
        if n > available {
            return Err(PersistError::Truncated { needed: n, available });
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn raw_u32(&mut self) -> Result<u32, PersistError> {
        let mut b = [0u8; 4];
        b.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(b))
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`PersistError::Truncated`] at end of payload.
    pub fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `bool`, rejecting bytes other than 0/1.
    ///
    /// # Errors
    ///
    /// [`PersistError::Truncated`] / [`PersistError::Corrupt`].
    pub fn bool(&mut self) -> Result<bool, PersistError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(PersistError::Corrupt(format!("bool byte {b}"))),
        }
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`PersistError::Truncated`] at end of payload.
    pub fn u32(&mut self) -> Result<u32, PersistError> {
        self.raw_u32()
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`PersistError::Truncated`] at end of payload.
    pub fn u64(&mut self) -> Result<u64, PersistError> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(b))
    }

    /// Reads a little-endian `i64`.
    ///
    /// # Errors
    ///
    /// [`PersistError::Truncated`] at end of payload.
    pub fn i64(&mut self) -> Result<i64, PersistError> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8)?);
        Ok(i64::from_le_bytes(b))
    }

    /// Reads a `usize` written by [`StateWriter::usize`].
    ///
    /// # Errors
    ///
    /// [`PersistError::Corrupt`] if the value does not fit this
    /// platform's `usize`.
    pub fn usize(&mut self) -> Result<usize, PersistError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| PersistError::Corrupt(format!("usize overflow: {v}")))
    }

    /// Reads an `f64` bit pattern.
    ///
    /// # Errors
    ///
    /// [`PersistError::Truncated`] at end of payload.
    pub fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// [`PersistError::Truncated`] at end of payload.
    pub fn bytes(&mut self) -> Result<&'a [u8], PersistError> {
        let n = self.usize()?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`PersistError::Corrupt`] on invalid UTF-8.
    pub fn str(&mut self) -> Result<&'a str, PersistError> {
        std::str::from_utf8(self.bytes()?)
            .map_err(|_| PersistError::Corrupt("string not UTF-8".to_owned()))
    }

    /// Reads a length-prefixed `u64` slice.
    ///
    /// # Errors
    ///
    /// [`PersistError::Truncated`] at end of payload.
    pub fn u64_vec(&mut self) -> Result<Vec<u64>, PersistError> {
        let n = self.checked_len(8)?;
        (0..n).map(|_| self.u64()).collect()
    }

    /// Reads a length-prefixed `f64` slice (bit patterns).
    ///
    /// # Errors
    ///
    /// [`PersistError::Truncated`] at end of payload.
    pub fn f64_vec(&mut self) -> Result<Vec<f64>, PersistError> {
        let n = self.checked_len(8)?;
        (0..n).map(|_| self.f64()).collect()
    }

    /// Reads an `Option<u64>` written by [`StateWriter::opt_u64`].
    ///
    /// # Errors
    ///
    /// [`PersistError::Truncated`] / [`PersistError::Corrupt`].
    pub fn opt_u64(&mut self) -> Result<Option<u64>, PersistError> {
        Ok(if self.bool()? { Some(self.u64()?) } else { None })
    }

    /// Reads a sequence length, rejecting lengths that could not possibly
    /// fit in the remaining payload (each element needs at least
    /// `min_elem_bytes`). Use before element loops so a corrupt length
    /// fails fast instead of attempting a huge allocation.
    ///
    /// # Errors
    ///
    /// [`PersistError::Truncated`] when the declared length exceeds the
    /// remaining payload.
    pub fn checked_len(&mut self, min_elem_bytes: usize) -> Result<usize, PersistError> {
        let n = self.usize()?;
        let available = self.data.len() - self.pos;
        if n.saturating_mul(min_elem_bytes.max(1)) > available {
            return Err(PersistError::Truncated {
                needed: n.saturating_mul(min_elem_bytes.max(1)),
                available,
            });
        }
        Ok(n)
    }

    /// Returns the number of unread payload bytes.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Declares the read complete; trailing payload bytes are an error.
    ///
    /// # Errors
    ///
    /// [`PersistError::Corrupt`] when unread payload bytes remain.
    pub fn finish(self) -> Result<(), PersistError> {
        if self.pos != self.data.len() {
            return Err(PersistError::Corrupt(format!(
                "{} trailing payload bytes",
                self.data.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// Renders the versioned first line of a text artefact:
/// `"<name> v<version>"`.
#[must_use]
pub fn text_header(name: &str, version: u32) -> String {
    format!("{name} v{version}")
}

/// Validates the versioned first line of a text artefact and returns the
/// remainder (without the header line).
///
/// # Errors
///
/// [`PersistError::StaleVersion`] when the name matches but the version
/// differs, [`PersistError::BadHeader`] otherwise.
pub fn check_text_header<'a>(
    text: &'a str,
    name: &str,
    version: u32,
) -> Result<&'a str, PersistError> {
    let (first, rest) = match text.split_once('\n') {
        Some((f, r)) => (f, r),
        None => (text, ""),
    };
    let first = first.trim_end_matches('\r');
    if first == text_header(name, version) {
        return Ok(rest);
    }
    if let Some(v) = first.strip_prefix(&format!("{name} v")) {
        if let Ok(found) = v.trim().parse::<u32>() {
            return Err(PersistError::StaleVersion {
                format: name.to_owned(),
                found,
                expected: version,
            });
        }
    }
    Err(PersistError::BadHeader(format!(
        "'{first}', expected '{}'",
        text_header(name, version)
    )))
}

/// The workspace-wide warn-and-rebuild load policy, in one place.
///
/// * File missing → `(None, None)`: start empty, silently.
/// * File parses → `(Some(artefact), None)`.
/// * File unreadable/stale/corrupt → `(None, Some(warning))`: start
///   empty; the caller owns printing the warning (sim crates cannot
///   print — lint rule R7 — so the harness surfaces it on stderr).
pub fn load_or_rebuild<T>(
    path: &Path,
    parse: impl FnOnce(&[u8]) -> Result<T, PersistError>,
) -> (Option<T>, Option<String>) {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return (None, None),
        Err(e) => {
            return (
                None,
                Some(format!(
                    "could not read {}: {e}; starting empty",
                    path.display()
                )),
            )
        }
    };
    match parse(&bytes) {
        Ok(t) => (Some(t), None),
        Err(e) => (
            None,
            Some(format!(
                "ignoring {}: {e}; starting empty",
                path.display()
            )),
        ),
    }
}

/// Writes `bytes` to `path` atomically: a unique sibling temp file is
/// written and fsynced, then renamed over the target. A campaign killed
/// mid-write leaves either the old artefact or the new one, never a
/// torn file — the invariant `--resume` relies on.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir)?;
    }
    // Unique per process so concurrent writers of the same artefact
    // (identical content, by determinism) cannot tear each other's temp.
    // asm-lint: allow(R13): temp-file suffix, not a metric name
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    {
        use std::io::Write as _;
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_primitives() {
        let mut w = StateWriter::new("t", 3);
        w.u8(7);
        w.bool(true);
        w.bool(false);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.i64(-42);
        w.usize(12345);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.bytes(b"raw");
        w.str("text");
        w.u64_slice(&[1, 2, 3]);
        w.f64_slice(&[0.5, 1.5]);
        w.opt_u64(Some(9));
        w.opt_u64(None);
        let bytes = w.finish();

        let mut r = StateReader::new(&bytes, "t", 3).unwrap();
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.usize().unwrap(), 12345);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f64().unwrap().is_nan());
        assert_eq!(r.bytes().unwrap(), b"raw");
        assert_eq!(r.str().unwrap(), "text");
        assert_eq!(r.u64_vec().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.f64_vec().unwrap(), vec![0.5, 1.5]);
        assert_eq!(r.opt_u64().unwrap(), Some(9));
        assert_eq!(r.opt_u64().unwrap(), None);
        r.finish().unwrap();
    }

    #[test]
    fn wrong_format_name_is_bad_header() {
        let bytes = StateWriter::new("a", 1).finish();
        assert!(matches!(
            StateReader::new(&bytes, "b", 1),
            Err(PersistError::BadHeader(_))
        ));
    }

    #[test]
    fn version_mismatch_is_stale() {
        let bytes = StateWriter::new("a", 1).finish();
        assert_eq!(
            StateReader::new(&bytes, "a", 2).err(),
            Some(PersistError::StaleVersion {
                format: "a".to_owned(),
                found: 1,
                expected: 2,
            })
        );
    }

    #[test]
    fn truncation_is_detected() {
        let mut w = StateWriter::new("a", 1);
        w.u64_slice(&[1, 2, 3, 4]);
        let bytes = w.finish();
        for cut in 0..bytes.len() {
            let r = StateReader::new(&bytes[..cut], "a", 1);
            let err = match r {
                Err(e) => e,
                Ok(mut r) => {
                    // Header happens to survive the cut; the payload must
                    // not parse cleanly.
                    let e = r.u64_vec().err();
                    e.expect("truncated payload must not parse")
                }
            };
            assert!(
                matches!(
                    err,
                    PersistError::Truncated { .. }
                        | PersistError::Corrupt(_)
                        | PersistError::BadHeader(_)
                ),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn bit_flip_is_corrupt() {
        let mut w = StateWriter::new("a", 1);
        w.u64(77);
        w.str("payload");
        let mut bytes = w.finish();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        let r = StateReader::new(&bytes, "a", 1);
        assert!(r.is_err(), "flipped byte {mid} must not verify");
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut w = StateWriter::new("a", 1);
        w.u64(1);
        w.u64(2);
        let bytes = w.finish();
        let mut r = StateReader::new(&bytes, "a", 1).unwrap();
        assert_eq!(r.u64().unwrap(), 1);
        assert!(matches!(r.finish(), Err(PersistError::Corrupt(_))));
    }

    #[test]
    fn absurd_length_fails_fast() {
        // Hand-craft a payload whose declared slice length exceeds the
        // remaining bytes by orders of magnitude.
        let mut w = StateWriter::new("a", 1);
        w.usize(usize::MAX / 2);
        let bytes = w.finish();
        let mut r = StateReader::new(&bytes, "a", 1).unwrap();
        assert!(matches!(
            r.u64_vec(),
            Err(PersistError::Truncated { .. })
        ));
    }

    #[test]
    fn text_header_round_trip() {
        let text = format!("{}\nbody line\n", text_header("asm-alone-cache", 1));
        let rest = check_text_header(&text, "asm-alone-cache", 1).unwrap();
        assert_eq!(rest, "body line\n");

        assert!(matches!(
            check_text_header("asm-alone-cache v2\n", "asm-alone-cache", 1),
            Err(PersistError::StaleVersion {
                found: 2,
                expected: 1,
                ..
            })
        ));
        assert!(matches!(
            check_text_header("something else\n", "asm-alone-cache", 1),
            Err(PersistError::BadHeader(_))
        ));
        assert!(matches!(
            check_text_header("", "asm-alone-cache", 1),
            Err(PersistError::BadHeader(_))
        ));
    }

    #[test]
    fn load_or_rebuild_policy() {
        let dir = std::env::temp_dir().join(format!("asm_persist_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        // Missing: silent empty start.
        let (t, warn) = load_or_rebuild(&dir.join("missing.bin"), |_| Ok(()));
        assert_eq!((t, warn), (None, None));

        // Present and parsable.
        let good = dir.join("good.bin");
        write_atomic(&good, b"x").unwrap();
        let (t, warn) = load_or_rebuild(&good, |b| Ok(b.len()));
        assert_eq!(t, Some(1));
        assert_eq!(warn, None);

        // Present but rejected: empty start plus a warning string.
        let (t, warn) = load_or_rebuild(&good, |_| {
            Err::<(), _>(PersistError::Corrupt("nope".to_owned()))
        });
        assert_eq!(t, None);
        let warn = warn.expect("warning expected");
        assert!(warn.contains("good.bin") && warn.contains("nope"), "{warn}");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_atomic_replaces_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join(format!("asm_persist_atomic_{}", std::process::id()));
        let path = dir.join("nested").join("artefact.bin");
        write_atomic(&path, b"one").unwrap();
        write_atomic(&path, b"two").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"two");
        let entries: Vec<_> = std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(entries.len(), 1, "temp files must not linger: {entries:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
