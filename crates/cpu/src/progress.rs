//! Alone-run progress records for ground-truth slowdown computation.
//!
//! The paper's accuracy metric (§5) compares estimated slowdowns against
//! `IPC_alone / IPC_shared`, where `IPC_alone` is computed "for the same
//! amount of work completed in the alone run as that completed in the
//! shared run for each quantum". A [`ProgressLog`] records, during an alone
//! run, the cycle at which each instruction milestone was reached; the
//! experiment runner then asks how many alone-run cycles the shared run's
//! instruction window would have taken.

use asm_simcore::Cycle;

/// Cycle timestamps at fixed instruction milestones from an alone run.
///
/// # Examples
///
/// ```
/// use asm_cpu::ProgressLog;
/// let mut log = ProgressLog::new(100);
/// log.record(250, 1_000); // by cycle 1000, 250 instructions retired
/// log.record(500, 2_000);
/// // Alone cycles to execute instructions 0..500:
/// let c = log.cycles_between(0, 500);
/// assert!((c - 2_000.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressLog {
    interval: u64,
    /// `cycles[k]` = cycle at which `(k + 1) * interval` instructions had
    /// been retired.
    cycles: Vec<Cycle>,
}

impl ProgressLog {
    /// Creates a log with the given milestone interval (instructions).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    #[must_use]
    pub fn new(interval: u64) -> Self {
        assert!(interval > 0, "interval must be positive");
        ProgressLog {
            interval,
            cycles: Vec::new(),
        }
    }

    /// Reassembles a log from its parts (see [`milestone_cycles`]
    /// (Self::milestone_cycles)) — the persistence path of the alone-run
    /// cache.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero or `cycles` is not sorted.
    #[must_use]
    pub fn from_parts(interval: u64, cycles: Vec<Cycle>) -> Self {
        assert!(interval > 0, "interval must be positive");
        assert!(
            cycles.windows(2).all(|w| w[0] <= w[1]),
            "milestone cycles must be monotonic"
        );
        ProgressLog { interval, cycles }
    }

    /// The milestone interval in instructions.
    #[must_use]
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// The raw milestone timestamps: element `k` is the cycle at which
    /// `(k + 1) * interval` instructions had retired.
    #[must_use]
    pub fn milestone_cycles(&self) -> &[Cycle] {
        &self.cycles
    }

    /// Records that `retired` instructions had been retired by cycle `now`;
    /// call after every simulation step (or periodically) with monotonic
    /// arguments.
    pub fn record(&mut self, retired: u64, now: Cycle) {
        while (self.cycles.len() as u64 + 1) * self.interval <= retired {
            self.cycles.push(now);
        }
    }

    /// Number of milestones recorded.
    #[must_use]
    pub fn milestones(&self) -> usize {
        self.cycles.len()
    }

    /// Highest instruction count covered by recorded milestones.
    #[must_use]
    pub fn max_instructions(&self) -> u64 {
        self.cycles.len() as u64 * self.interval
    }

    /// The (interpolated) cycle at which instruction `n` retired in the
    /// alone run. Extrapolates beyond the last milestone using the tail
    /// rate.
    #[must_use]
    pub fn cycle_at(&self, n: u64) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let idx = (n / self.interval) as usize; // completed milestones before n
        let frac = (n % self.interval) as f64 / self.interval as f64;
        let milestone = |k: usize| -> f64 {
            if k == 0 {
                0.0
            } else {
                self.cycles[k - 1] as f64
            }
        };
        if idx < self.cycles.len() {
            let lo = milestone(idx);
            let hi = milestone(idx + 1);
            lo + frac * (hi - lo)
        } else if self.cycles.is_empty() {
            // No milestones at all: assume 1 IPC as a degenerate fallback.
            n as f64
        } else {
            // Extrapolate with the average rate of the last milestone (or
            // the whole run when there is only one).
            let last = self.cycles.len();
            let rate = if last >= 2 {
                (milestone(last) - milestone(last - 1)) / self.interval as f64
            } else {
                milestone(last) / self.interval as f64
            };
            milestone(last) + (n as f64 - self.max_instructions() as f64) * rate
        }
    }

    /// Alone-run cycles needed to execute instructions `from..to`.
    ///
    /// # Panics
    ///
    /// Panics if `from > to`.
    #[must_use]
    pub fn cycles_between(&self, from: u64, to: u64) -> f64 {
        assert!(from <= to, "inverted instruction window");
        self.cycle_at(to) - self.cycle_at(from)
    }

    /// Alone-run IPC over the instruction window `from..to`; `None` if the
    /// window is empty.
    #[must_use]
    pub fn ipc_between(&self, from: u64, to: u64) -> Option<f64> {
        if to <= from {
            return None;
        }
        let cycles = self.cycles_between(from, to);
        (cycles > 0.0).then(|| (to - from) as f64 / cycles)
    }

    /// Serializes the milestone interval and timestamps for checkpointing.
    pub fn save_state(&self, w: &mut asm_simcore::persist::StateWriter) {
        w.u64(self.interval);
        w.u64_slice(&self.cycles);
    }

    /// Reads a log previously written by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// [`asm_simcore::persist::PersistError::Corrupt`] when the stored
    /// interval is zero or the milestones are not monotonic.
    pub fn restore_from(
        r: &mut asm_simcore::persist::StateReader<'_>,
    ) -> Result<Self, asm_simcore::persist::PersistError> {
        use asm_simcore::persist::PersistError;
        let interval = r.u64()?;
        let cycles = r.u64_vec()?;
        if interval == 0 {
            return Err(PersistError::Corrupt("zero milestone interval".to_owned()));
        }
        if !cycles.windows(2).all(|w| w[0] <= w[1]) {
            return Err(PersistError::Corrupt("milestones not monotonic".to_owned()));
        }
        Ok(ProgressLog { interval, cycles })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_multiple_milestones_at_once() {
        let mut log = ProgressLog::new(10);
        log.record(35, 700);
        assert_eq!(log.milestones(), 3);
        // All three milestones observed at cycle 700 (coarse recording).
        assert_eq!(log.cycle_at(30), 700.0);
    }

    #[test]
    fn interpolates_within_milestones() {
        let mut log = ProgressLog::new(100);
        log.record(100, 1_000);
        log.record(200, 3_000);
        assert!((log.cycle_at(150) - 2_000.0).abs() < 1e-9);
    }

    #[test]
    fn extrapolates_past_last_milestone() {
        let mut log = ProgressLog::new(100);
        log.record(100, 1_000);
        log.record(200, 2_000);
        // Tail rate 10 cycles/instruction.
        assert!((log.cycle_at(300) - 3_000.0).abs() < 1e-9);
    }

    #[test]
    fn ipc_between_computes_rate() {
        let mut log = ProgressLog::new(100);
        log.record(100, 50); // 2 IPC
        log.record(200, 150); // 1 IPC in second window
        let ipc = log.ipc_between(0, 100).unwrap();
        assert!((ipc - 2.0).abs() < 1e-9);
        let ipc2 = log.ipc_between(100, 200).unwrap();
        assert!((ipc2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_window_is_none() {
        let log = ProgressLog::new(10);
        assert_eq!(log.ipc_between(5, 5), None);
    }

    #[test]
    fn empty_log_falls_back_to_unit_ipc() {
        let log = ProgressLog::new(10);
        assert_eq!(log.cycle_at(50), 50.0);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_window_panics() {
        let log = ProgressLog::new(10);
        let _ = log.cycles_between(10, 5);
    }
}
