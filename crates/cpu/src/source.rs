//! Memory-access sources: synthetic streams or recorded traces.
//!
//! The paper drives its simulator from Pin/PinPoints traces of real
//! benchmarks. This reproduction defaults to synthetic
//! [`AddressStream`]s, but the core is source-agnostic: anything
//! implementing [`AccessSource`] can drive it, including a
//! [`TraceSource`] replaying a recorded access trace — the interface a
//! downstream user with real traces would plug into.
//!
//! # Trace format
//!
//! One access per line: `R <hex line address>` or `W <hex line address>`.
//! Blank lines and lines starting with `#` are ignored.
//!
//! ```text
//! # libquantum, first phase
//! R 0x1a2b
//! R 0x1a2c
//! W 0x0040
//! ```

use std::fmt;
use std::io::{self, BufRead, Write};

use asm_simcore::LineAddr;

use crate::stream::{AddressStream, MemOp};

/// A supplier of memory operations for a core.
pub trait AccessSource: fmt::Debug + Send {
    /// Produces the next memory operation.
    fn next_op(&mut self) -> MemOp;

    /// Serializes the source's dynamic position (not its configuration —
    /// the restore target is rebuilt from the same profile/trace first)
    /// for checkpointing.
    fn save_state(&self, w: &mut asm_simcore::persist::StateWriter);

    /// Restores a position captured by [`save_state`](Self::save_state);
    /// the op stream continues bitwise identically from there.
    ///
    /// # Errors
    ///
    /// Propagates reader errors; `Corrupt` when the stored position does
    /// not fit this source.
    fn restore_state(
        &mut self,
        r: &mut asm_simcore::persist::StateReader<'_>,
    ) -> Result<(), asm_simcore::persist::PersistError>;
}

impl AccessSource for AddressStream {
    fn next_op(&mut self) -> MemOp {
        AddressStream::next_op(self)
    }

    fn save_state(&self, w: &mut asm_simcore::persist::StateWriter) {
        AddressStream::save_state(self, w);
    }

    fn restore_state(
        &mut self,
        r: &mut asm_simcore::persist::StateReader<'_>,
    ) -> Result<(), asm_simcore::persist::PersistError> {
        AddressStream::restore_state(self, r)
    }
}

/// Replays a recorded access trace, looping at the end (benchmarks are far
/// longer than any simulated window, so looping models steady-state
/// behaviour).
///
/// # Examples
///
/// ```
/// use asm_cpu::source::{AccessSource, TraceSource};
/// use asm_simcore::LineAddr;
///
/// let mut t = TraceSource::parse("R 0x10\nW 0x20\n".as_bytes()).unwrap();
/// assert_eq!(t.next_op().line, LineAddr::new(0x10));
/// assert!(t.next_op().is_write);
/// assert_eq!(t.next_op().line, LineAddr::new(0x10)); // loops
/// ```
#[derive(Debug, Clone)]
pub struct TraceSource {
    ops: Vec<MemOp>,
    pos: usize,
}

/// Error parsing a trace file.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line, with its 1-based line number.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// The trace contained no accesses.
    Empty,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::Malformed { line, text } => {
                write!(f, "malformed trace line {line}: {text:?}")
            }
            TraceError::Empty => write!(f, "trace contains no accesses"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl TraceSource {
    /// Builds a trace from in-memory operations.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty.
    #[must_use]
    pub fn new(ops: Vec<MemOp>) -> Self {
        assert!(!ops.is_empty(), "trace must contain at least one access");
        TraceSource { ops, pos: 0 }
    }

    /// Parses the text trace format from any reader.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] on I/O failure, malformed lines, or an empty
    /// trace.
    pub fn parse<R: io::Read>(reader: R) -> Result<Self, TraceError> {
        let mut ops = Vec::new();
        for (idx, line) in io::BufReader::new(reader).lines().enumerate() {
            let line = line?;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let malformed = || TraceError::Malformed {
                line: idx + 1,
                text: trimmed.to_owned(),
            };
            let (kind, addr) = trimmed
                .split_once(char::is_whitespace)
                .ok_or_else(malformed)?;
            let is_write = match kind {
                "R" | "r" => false,
                "W" | "w" => true,
                _ => return Err(malformed()),
            };
            let raw = addr.trim().trim_start_matches("0x");
            let value = u64::from_str_radix(raw, 16).map_err(|_| malformed())?;
            ops.push(MemOp {
                line: LineAddr::new(value),
                is_write,
            });
        }
        if ops.is_empty() {
            return Err(TraceError::Empty);
        }
        Ok(TraceSource { ops, pos: 0 })
    }

    /// Writes a trace in the text format. A round-trip through
    /// [`parse`](Self::parse) reproduces the operations exactly.
    ///
    /// # Errors
    ///
    /// Propagates writer failures.
    pub fn write_to<W: Write>(&self, mut writer: W) -> io::Result<()> {
        for op in &self.ops {
            writeln!(
                writer,
                "{} 0x{:x}",
                if op.is_write { "W" } else { "R" },
                op.line.raw()
            )?;
        }
        Ok(())
    }

    /// Number of operations before looping.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Always false: traces are validated non-empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl AccessSource for TraceSource {
    fn next_op(&mut self) -> MemOp {
        let op = self.ops[self.pos];
        self.pos = (self.pos + 1) % self.ops.len();
        op
    }

    fn save_state(&self, w: &mut asm_simcore::persist::StateWriter) {
        w.usize(self.pos);
    }

    fn restore_state(
        &mut self,
        r: &mut asm_simcore::persist::StateReader<'_>,
    ) -> Result<(), asm_simcore::persist::PersistError> {
        let pos = r.usize()?;
        if pos >= self.ops.len() {
            return Err(asm_simcore::persist::PersistError::Corrupt(
                "trace position out of range".to_owned(),
            ));
        }
        self.pos = pos;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_reads_writes_and_comments() {
        let text = "# header\n\nR 0x10\nw 20\nR 0xff\n";
        let mut t = TraceSource::parse(text.as_bytes()).unwrap();
        assert_eq!(t.len(), 3);
        let a = t.next_op();
        assert!(!a.is_write);
        assert_eq!(a.line, LineAddr::new(0x10));
        let b = t.next_op();
        assert!(b.is_write);
        assert_eq!(b.line, LineAddr::new(0x20));
    }

    #[test]
    fn rejects_malformed_lines() {
        let err = TraceSource::parse("R 0x10\nX 0x20\n".as_bytes()).unwrap_err();
        match err {
            TraceError::Malformed { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn rejects_empty_traces() {
        assert!(matches!(
            TraceSource::parse("# nothing\n".as_bytes()),
            Err(TraceError::Empty)
        ));
    }

    #[test]
    fn round_trips_through_text() {
        let ops = vec![
            MemOp {
                line: LineAddr::new(1),
                is_write: false,
            },
            MemOp {
                line: LineAddr::new(0xabc),
                is_write: true,
            },
        ];
        let t = TraceSource::new(ops.clone());
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let mut parsed = TraceSource::parse(buf.as_slice()).unwrap();
        for expected in &ops {
            assert_eq!(parsed.next_op(), *expected);
        }
    }

    #[test]
    fn loops_at_end() {
        let mut t = TraceSource::parse("R 0x1\nR 0x2\n".as_bytes()).unwrap();
        let seq: Vec<u64> = (0..5).map(|_| t.next_op().line.raw()).collect();
        assert_eq!(seq, vec![1, 2, 1, 2, 1]);
    }

    #[test]
    fn address_stream_implements_access_source() {
        use crate::appmodel::AppProfile;
        let p = AppProfile::builder("t").build();
        let mut s: Box<dyn AccessSource> = Box::new(AddressStream::new(&p, 0, 1));
        let _ = s.next_op();
    }
}
