#![warn(missing_docs)]
//! Core model and synthetic workload generation for the ASM reproduction.
//!
//! The paper drives its evaluation with Pin traces of SPEC CPU2006 / NAS
//! benchmarks through an in-house out-of-order core simulator. We rebuild
//! the equivalent substrate:
//!
//! - [`AppProfile`]: a parameterised synthetic application (memory
//!   intensity, working-set size, spatial locality, hot-set reuse, MLP) —
//!   the substitution for Pin traces documented in `DESIGN.md`.
//! - [`AddressStream`]: the deterministic address generator realising a
//!   profile.
//! - [`Core`]: a 128-entry-window, 3-wide out-of-order core (Table 2) with
//!   in-order retirement and overlapping misses — the property that makes
//!   per-request interference accounting inaccurate (§2.2) and that ASM's
//!   aggregate accounting handles.
//! - [`StridePrefetcher`]: the degree-4 / distance-24 stride prefetcher of
//!   the Figure 5 experiment.
//! - [`ProgressLog`]: per-instruction-milestone cycle records from *alone*
//!   runs, used to compute ground-truth slowdowns for the same amount of
//!   work (§5, Metrics).
//!
//! # Examples
//!
//! ```
//! use asm_cpu::{AppProfile, Core, MemIssueResult};
//! use asm_simcore::AppId;
//!
//! let profile = AppProfile::builder("toy").mem_per_kilo(50).build();
//! let mut core = Core::new(AppId::new(0), &profile, 1);
//! // Service every access with a fixed 10-cycle latency.
//! for now in 0..1_000 {
//!     core.tick(now, &mut |_line, _write| MemIssueResult::Completed(now + 10));
//! }
//! assert!(core.retired() > 0);
//! ```

pub mod appmodel;
pub mod core;
pub mod prefetch;
pub mod progress;
pub mod source;
pub mod stream;

pub use appmodel::{AppProfile, AppProfileBuilder};
pub use core::{Core, HeadStall, MemIssueResult};
pub use prefetch::StridePrefetcher;
pub use progress::ProgressLog;
pub use source::{AccessSource, TraceSource};
pub use stream::AddressStream;
