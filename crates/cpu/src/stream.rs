//! Deterministic address-stream generation from an [`AppProfile`].
//!
//! The stream alternates *bursts* of sequential line accesses (producing
//! DRAM row-buffer hits and prefetcher-friendly strides) with jumps to a
//! random location — either in the small *hot region* (producing cache
//! hits) or anywhere in the working set (producing cache misses). Each
//! application's lines live in a disjoint address region so
//! multi-programmed workloads never share data, as with the paper's
//! single-threaded benchmark mixes.

use asm_simcore::{LineAddr, SimRng};

use crate::appmodel::AppProfile;

/// Bits of line-address space reserved per application (2^30 lines = 64 GB
/// of address space each).
const APP_REGION_SHIFT: u32 = 30;

/// A generated memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemOp {
    /// The line accessed.
    pub line: LineAddr,
    /// Whether the operation is a store.
    pub is_write: bool,
}

/// Deterministic per-application address stream.
///
/// # Examples
///
/// ```
/// use asm_cpu::{AddressStream, AppProfile};
///
/// let p = AppProfile::builder("toy").working_set_lines(1024).build();
/// let mut a = AddressStream::new(&p, 0, 7);
/// let mut b = AddressStream::new(&p, 0, 7);
/// assert_eq!(a.next_op(), b.next_op()); // same seed, same stream
/// ```
#[derive(Debug, Clone)]
pub struct AddressStream {
    rng: SimRng,
    base: u64,
    working_set: u64,
    hot_lines: u64,
    hot_frac: f64,
    seq_run: u32,
    write_frac: f64,
    cursor: u64,
    remaining_run: u32,
}

impl AddressStream {
    /// Creates the stream for application slot `app_index`, seeded with
    /// `seed`.
    #[must_use]
    pub fn new(profile: &AppProfile, app_index: usize, seed: u64) -> Self {
        let mut rng =
            SimRng::seed_from(seed ^ (app_index as u64).wrapping_mul(0xD1B5_4A32_D192_ED03));
        let working_set = profile.working_set_lines();
        let cursor = rng.gen_range(working_set);
        AddressStream {
            rng,
            base: (app_index as u64) << APP_REGION_SHIFT,
            working_set,
            hot_lines: profile.hot_lines().max(1),
            hot_frac: profile.hot_frac(),
            seq_run: profile.seq_run(),
            write_frac: profile.write_frac(),
            cursor,
            remaining_run: 0,
        }
    }

    /// Generates the next memory operation.
    pub fn next_op(&mut self) -> MemOp {
        if self.remaining_run == 0 {
            // Start a new burst at a random location: hot region with
            // probability hot_frac, anywhere otherwise.
            self.cursor = if self.rng.gen_bool(self.hot_frac) {
                self.rng.gen_range(self.hot_lines)
            } else {
                self.rng.gen_range(self.working_set)
            };
            // Burst length uniform in [1, 2*seq_run): mean ~seq_run.
            self.remaining_run = 1 + self.rng.gen_range(u64::from(self.seq_run) * 2 - 1) as u32;
        }
        let line = LineAddr::new(self.base + self.cursor);
        self.cursor = (self.cursor + 1) % self.working_set;
        self.remaining_run -= 1;
        let is_write = self.rng.gen_bool(self.write_frac);
        MemOp { line, is_write }
    }

    /// The first line of this application's private region.
    #[must_use]
    pub fn region_base(&self) -> LineAddr {
        LineAddr::new(self.base)
    }

    /// Serializes the stream's dynamic position (RNG, cursor, remaining
    /// burst) for checkpointing; the profile-derived parameters are
    /// structural.
    pub fn save_state(&self, w: &mut asm_simcore::persist::StateWriter) {
        self.rng.save_state(w);
        w.u64(self.cursor);
        w.u64(u64::from(self.remaining_run));
    }

    /// Restores a position captured by [`save_state`](Self::save_state)
    /// into a stream built from the same profile and seed.
    ///
    /// # Errors
    ///
    /// Propagates reader errors; `Corrupt` when the cursor is outside the
    /// working set.
    pub fn restore_state(
        &mut self,
        r: &mut asm_simcore::persist::StateReader<'_>,
    ) -> Result<(), asm_simcore::persist::PersistError> {
        use asm_simcore::persist::PersistError;
        self.rng.restore_state(r)?;
        let cursor = r.u64()?;
        if cursor >= self.working_set {
            return Err(PersistError::Corrupt("stream cursor out of range".to_owned()));
        }
        self.cursor = cursor;
        let run = r.u64()?;
        self.remaining_run = u32::try_from(run)
            .map_err(|_| PersistError::Corrupt("burst length out of range".to_owned()))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(ws: u64, hot: u64, hot_frac: f64, run: u32) -> AppProfile {
        AppProfile::builder("t")
            .working_set_lines(ws)
            .hot_lines(hot)
            .hot_frac(hot_frac)
            .seq_run(run)
            .build()
    }

    #[test]
    fn stays_within_app_region() {
        let p = profile(4096, 64, 0.5, 8);
        let mut s = AddressStream::new(&p, 3, 1);
        let base = 3u64 << APP_REGION_SHIFT;
        for _ in 0..10_000 {
            let op = s.next_op();
            assert!(op.line.raw() >= base);
            assert!(op.line.raw() < base + 4096);
        }
    }

    #[test]
    fn different_apps_never_collide() {
        let p = profile(1 << 20, 64, 0.5, 8);
        let mut a = AddressStream::new(&p, 0, 1);
        let mut b = AddressStream::new(&p, 1, 1);
        for _ in 0..1_000 {
            assert_ne!(
                a.next_op().line.raw() >> APP_REGION_SHIFT,
                b.next_op().line.raw() >> APP_REGION_SHIFT
            );
        }
    }

    #[test]
    fn sequential_bursts_have_expected_mean_length() {
        let p = profile(1 << 20, 64, 0.0, 16);
        let mut s = AddressStream::new(&p, 0, 5);
        let mut seq = 0u64;
        let mut total = 0u64;
        let mut last = s.next_op().line.raw();
        for _ in 0..50_000 {
            let cur = s.next_op().line.raw();
            if cur == last + 1 {
                seq += 1;
            }
            total += 1;
            last = cur;
        }
        let frac = seq as f64 / total as f64;
        // Mean burst 16 -> ~15/16 of transitions sequential.
        assert!(frac > 0.85, "sequential fraction {frac}");
    }

    #[test]
    fn hot_fraction_concentrates_accesses() {
        let p = profile(1 << 16, 64, 0.9, 1);
        let mut s = AddressStream::new(&p, 0, 9);
        let mut hot = 0u64;
        let n = 20_000;
        for _ in 0..n {
            // With seq_run 1 every access starts a burst; hot region is
            // lines [0, 64 + small run spill).
            if s.next_op().line.raw() % (1 << 16) < 128 {
                hot += 1;
            }
        }
        assert!(
            hot as f64 / n as f64 > 0.7,
            "hot share {}",
            hot as f64 / n as f64
        );
    }

    #[test]
    fn write_fraction_is_respected() {
        let p = AppProfile::builder("t").write_frac(0.3).build();
        let mut s = AddressStream::new(&p, 0, 2);
        let writes = (0..20_000).filter(|_| s.next_op().is_write).count();
        let frac = writes as f64 / 20_000.0;
        assert!((0.25..0.35).contains(&frac), "write frac {frac}");
    }

    #[test]
    fn cursor_wraps_at_working_set_boundary() {
        let p = profile(8, 1, 0.0, 32);
        let mut s = AddressStream::new(&p, 0, 3);
        for _ in 0..100 {
            let op = s.next_op();
            assert!(op.line.raw() < 8);
        }
    }
}
