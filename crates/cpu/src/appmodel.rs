//! Synthetic application profiles.
//!
//! Each profile captures the axes along which the paper's workloads differ
//! and that determine interference behaviour:
//!
//! - **memory intensity** (`mem_per_kilo`): cache accesses per 1000
//!   instructions — the paper sorts benchmarks by this (Figures 2/3);
//! - **cache sensitivity** (`working_set_lines`, `hot_lines`, `hot_frac`):
//!   how much of the footprint benefits from shared-cache capacity;
//! - **row-buffer locality** (`seq_run`): expected length of sequential
//!   bursts, which become DRAM row hits;
//! - **memory-level parallelism** (`mlp`): how many misses the application
//!   can keep outstanding.

use std::fmt;

/// A synthetic application's behavioural parameters.
///
/// Construct with [`AppProfile::builder`].
///
/// # Examples
///
/// ```
/// use asm_cpu::AppProfile;
/// let p = AppProfile::builder("mcf_like")
///     .mem_per_kilo(120)
///     .working_set_lines(1 << 20)
///     .seq_run(2)
///     .mlp(8)
///     .build();
/// assert_eq!(p.name(), "mcf_like");
/// assert_eq!(p.mem_per_kilo(), 120);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AppProfile {
    name: String,
    mem_per_kilo: u32,
    write_frac: f64,
    working_set_lines: u64,
    hot_lines: u64,
    hot_frac: f64,
    seq_run: u32,
    mlp: u32,
}

impl AppProfile {
    /// Starts building a profile with sensible defaults (moderate intensity
    /// and locality).
    #[must_use]
    pub fn builder(name: &str) -> AppProfileBuilder {
        AppProfileBuilder {
            profile: AppProfile {
                name: name.to_owned(),
                mem_per_kilo: 30,
                write_frac: 0.25,
                working_set_lines: 1 << 16, // 4 MB footprint
                hot_lines: 1 << 12,         // 256 KB hot set
                hot_frac: 0.6,
                seq_run: 8,
                mlp: 8,
            },
        }
    }

    /// The profile's display name (e.g. `"mcf_like"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Cache accesses (line-granularity memory operations) per 1000
    /// instructions.
    #[must_use]
    pub fn mem_per_kilo(&self) -> u32 {
        self.mem_per_kilo
    }

    /// Fraction of memory operations that are writes.
    #[must_use]
    pub fn write_frac(&self) -> f64 {
        self.write_frac
    }

    /// Total footprint in 64-byte lines.
    #[must_use]
    pub fn working_set_lines(&self) -> u64 {
        self.working_set_lines
    }

    /// Size of the frequently-reused hot region in lines.
    #[must_use]
    pub fn hot_lines(&self) -> u64 {
        self.hot_lines
    }

    /// Probability that a fresh access burst targets the hot region.
    #[must_use]
    pub fn hot_frac(&self) -> f64 {
        self.hot_frac
    }

    /// Expected length (in lines) of sequential access bursts.
    #[must_use]
    pub fn seq_run(&self) -> u32 {
        self.seq_run
    }

    /// Maximum memory requests the application keeps outstanding.
    #[must_use]
    pub fn mlp(&self) -> u32 {
        self.mlp
    }

    /// Probability that any given instruction is a memory operation.
    #[must_use]
    pub fn mem_probability(&self) -> f64 {
        f64::from(self.mem_per_kilo) / 1000.0
    }
}

impl fmt::Display for AppProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (MPK {}, ws {} lines, hot {} lines @ {:.0}%, run {}, mlp {})",
            self.name,
            self.mem_per_kilo,
            self.working_set_lines,
            self.hot_lines,
            self.hot_frac * 100.0,
            self.seq_run,
            self.mlp
        )
    }
}

/// Builder for [`AppProfile`]; see [`AppProfile::builder`].
#[derive(Debug, Clone)]
pub struct AppProfileBuilder {
    profile: AppProfile,
}

impl AppProfileBuilder {
    /// Sets memory operations per 1000 instructions (0..=1000).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[must_use]
    pub fn mem_per_kilo(mut self, v: u32) -> Self {
        assert!(v <= 1000, "mem_per_kilo must be at most 1000");
        self.profile.mem_per_kilo = v;
        self
    }

    /// Sets the write fraction of memory operations (0..=1).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[must_use]
    pub fn write_frac(mut self, v: f64) -> Self {
        assert!((0.0..=1.0).contains(&v), "write_frac must be in [0,1]");
        self.profile.write_frac = v;
        self
    }

    /// Sets the total footprint in lines.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    #[must_use]
    pub fn working_set_lines(mut self, v: u64) -> Self {
        assert!(v > 0, "working set must be non-empty");
        self.profile.working_set_lines = v;
        self
    }

    /// Sets the hot-region size in lines (clamped to the working set at
    /// build time).
    #[must_use]
    pub fn hot_lines(mut self, v: u64) -> Self {
        self.profile.hot_lines = v;
        self
    }

    /// Sets the probability a burst targets the hot region.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[must_use]
    pub fn hot_frac(mut self, v: f64) -> Self {
        assert!((0.0..=1.0).contains(&v), "hot_frac must be in [0,1]");
        self.profile.hot_frac = v;
        self
    }

    /// Sets the expected sequential burst length.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    #[must_use]
    pub fn seq_run(mut self, v: u32) -> Self {
        assert!(v > 0, "seq_run must be positive");
        self.profile.seq_run = v;
        self
    }

    /// Sets the outstanding-miss cap.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    #[must_use]
    pub fn mlp(mut self, v: u32) -> Self {
        assert!(v > 0, "mlp must be positive");
        self.profile.mlp = v;
        self
    }

    /// Finalises the profile.
    #[must_use]
    pub fn build(mut self) -> AppProfile {
        self.profile.hot_lines = self.profile.hot_lines.min(self.profile.working_set_lines);
        self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_sane() {
        let p = AppProfile::builder("x").build();
        assert!(p.mem_per_kilo() > 0);
        assert!(p.hot_lines() <= p.working_set_lines());
        assert!(p.mlp() > 0);
    }

    #[test]
    fn hot_lines_clamped_to_working_set() {
        let p = AppProfile::builder("x")
            .working_set_lines(100)
            .hot_lines(1_000)
            .build();
        assert_eq!(p.hot_lines(), 100);
    }

    #[test]
    fn mem_probability_derivation() {
        let p = AppProfile::builder("x").mem_per_kilo(250).build();
        assert!((p.mem_probability() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "mem_per_kilo")]
    fn rejects_excess_intensity() {
        let _ = AppProfile::builder("x").mem_per_kilo(1001);
    }

    #[test]
    fn display_includes_name() {
        let p = AppProfile::builder("streamy").build();
        assert!(p.to_string().contains("streamy"));
    }
}
