//! The stride prefetcher of the Figure 5 experiment.
//!
//! A degree-4, distance-24 stride prefetcher [Baer & Chen; §6.2]: it
//! watches an application's demand line addresses, detects a stable stride,
//! and — once confident — issues `degree` prefetches starting `distance`
//! lines ahead of the demand stream.

use asm_simcore::LineAddr;

/// Per-application stride prefetcher.
///
/// # Examples
///
/// ```
/// use asm_cpu::StridePrefetcher;
/// use asm_simcore::LineAddr;
///
/// let mut pf = StridePrefetcher::new(4, 24);
/// pf.observe(LineAddr::new(100));
/// pf.observe(LineAddr::new(101));
/// let prefetches = pf.observe(LineAddr::new(102)); // stride +1 confirmed
/// assert_eq!(prefetches.len(), 4);
/// assert_eq!(prefetches[0], LineAddr::new(102 + 24));
/// ```
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    degree: u32,
    distance: u32,
    last_line: Option<u64>,
    last_stride: i64,
    confidence: u32,
}

/// Stride confirmations required before prefetching starts (a stride is
/// confirmed once it repeats: three accesses with the same delta).
const CONFIDENCE_THRESHOLD: u32 = 1;

impl StridePrefetcher {
    /// Creates a prefetcher issuing `degree` prefetches `distance` lines
    /// ahead (the paper uses degree 4, distance 24).
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero.
    #[must_use]
    pub fn new(degree: u32, distance: u32) -> Self {
        assert!(degree > 0, "degree must be positive");
        StridePrefetcher {
            degree,
            distance,
            last_line: None,
            last_stride: 0,
            confidence: 0,
        }
    }

    /// Feeds a demand access; returns the prefetch addresses to issue (empty
    /// until a stride is confirmed).
    pub fn observe(&mut self, line: LineAddr) -> Vec<LineAddr> {
        let cur = line.raw();
        let mut out = Vec::new();
        if let Some(last) = self.last_line {
            let stride = cur as i64 - last as i64;
            if stride != 0 && stride == self.last_stride {
                self.confidence = self.confidence.saturating_add(1);
            } else {
                self.last_stride = stride;
                self.confidence = 0;
            }
            if self.confidence >= CONFIDENCE_THRESHOLD {
                for k in 0..self.degree {
                    let target = cur as i64 + self.last_stride * i64::from(self.distance + k);
                    if target >= 0 {
                        out.push(LineAddr::new(target as u64));
                    }
                }
            }
        }
        self.last_line = Some(cur);
        out
    }

    /// The next cycle this prefetcher could act on its own: always `None`.
    /// A stride prefetcher is purely reactive — it only emits work from
    /// inside [`observe`](Self::observe), which runs on the demand path of
    /// a core tick, so it never needs an autonomous wake-up. Part of the
    /// fast-forward next-event contract (DESIGN.md §8).
    #[must_use]
    pub fn next_event(&self, _now: asm_simcore::Cycle) -> Option<asm_simcore::Cycle> {
        None
    }

    /// Forgets the current stream (e.g. at a context boundary).
    pub fn reset(&mut self) {
        self.last_line = None;
        self.last_stride = 0;
        self.confidence = 0;
    }

    /// Serializes the stride-detection state for checkpointing; degree
    /// and distance are structural.
    pub fn save_state(&self, w: &mut asm_simcore::persist::StateWriter) {
        w.opt_u64(self.last_line);
        w.i64(self.last_stride);
        w.u32(self.confidence);
    }

    /// Restores state captured by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// Propagates reader errors.
    pub fn restore_state(
        &mut self,
        r: &mut asm_simcore::persist::StateReader<'_>,
    ) -> Result<(), asm_simcore::persist::PersistError> {
        self.last_line = r.opt_u64()?;
        self.last_stride = r.i64()?;
        self.confidence = r.u32()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_prefetch_before_confidence() {
        let mut pf = StridePrefetcher::new(4, 24);
        assert!(pf.observe(LineAddr::new(10)).is_empty());
        assert!(pf.observe(LineAddr::new(11)).is_empty());
        assert!(!pf.observe(LineAddr::new(12)).is_empty());
    }

    #[test]
    fn prefetches_follow_negative_strides() {
        let mut pf = StridePrefetcher::new(2, 4);
        pf.observe(LineAddr::new(1_000));
        pf.observe(LineAddr::new(998));
        let out = pf.observe(LineAddr::new(996));
        assert_eq!(out[0], LineAddr::new(996 - 8));
        assert_eq!(out[1], LineAddr::new(996 - 10));
    }

    #[test]
    fn random_stream_stays_quiet() {
        let mut pf = StridePrefetcher::new(4, 24);
        let mut rng = asm_simcore::SimRng::seed_from(8);
        let mut issued = 0;
        for _ in 0..1_000 {
            issued += pf.observe(LineAddr::new(rng.next_u64() >> 30)).len();
        }
        // A random walk virtually never repeats a stride twice in a row.
        assert!(issued < 40, "issued {issued} prefetches on random stream");
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut pf = StridePrefetcher::new(4, 24);
        pf.observe(LineAddr::new(0));
        pf.observe(LineAddr::new(1));
        pf.observe(LineAddr::new(2));
        assert!(pf.observe(LineAddr::new(10)).is_empty()); // break
        assert!(pf.observe(LineAddr::new(11)).is_empty()); // new stride, conf 0
        assert!(!pf.observe(LineAddr::new(12)).is_empty()); // stride repeated
    }

    #[test]
    fn negative_targets_are_dropped() {
        let mut pf = StridePrefetcher::new(4, 24);
        pf.observe(LineAddr::new(100));
        pf.observe(LineAddr::new(50));
        let out = pf.observe(LineAddr::new(0)); // stride -50, targets < 0
        assert!(out.is_empty());
    }

    #[test]
    fn reset_clears_state() {
        let mut pf = StridePrefetcher::new(4, 24);
        pf.observe(LineAddr::new(0));
        pf.observe(LineAddr::new(1));
        pf.observe(LineAddr::new(2));
        pf.reset();
        assert!(pf.observe(LineAddr::new(3)).is_empty());
        assert!(pf.observe(LineAddr::new(4)).is_empty());
    }
}
