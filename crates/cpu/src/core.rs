//! The out-of-order core model.
//!
//! A 128-entry instruction window with 3-wide fetch and in-order 3-wide
//! retirement (Table 2). Non-memory instructions complete in one cycle;
//! memory instructions resolve through the cache hierarchy via a callback
//! supplied by the system simulator. Independent misses overlap up to the
//! application's MLP cap and the window size — reproducing the
//! memory-level parallelism that makes per-request interference accounting
//! inaccurate (§2.2).
//!
//! Stores are modelled as non-blocking (retired through a store buffer):
//! they generate cache/memory traffic but never stall retirement, matching
//! the common simplification that load latency dominates stalls.

use std::collections::VecDeque;

use asm_simcore::{AppId, Cycle, LineAddr};

use crate::appmodel::AppProfile;
use crate::source::AccessSource;
use crate::stream::{AddressStream, MemOp};

/// What the memory hierarchy did with an issued access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemIssueResult {
    /// The access hit in a cache; data arrives at the given cycle.
    Completed(Cycle),
    /// The access misses to main memory; the token will be passed to
    /// [`Core::complete`] when data returns.
    Pending(u64),
    /// The memory system cannot accept the access now; the core retries
    /// next cycle.
    Stall,
}

/// What the reorder-buffer head is blocked on (see [`Core::head_stall`]).
/// Mirrors `asm-attrib`'s stall taxonomy without depending on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeadStall {
    /// Retiring/fetching/issuing normally.
    Progress,
    /// Head completes in the future: cache-hit latency.
    HitWait,
    /// Head wants to issue but the memory system refused the access.
    Backpressure,
    /// Head is an outstanding memory request.
    MemStall,
}

#[derive(Debug, Clone, Copy)]
enum SlotState {
    /// Completes (and may retire) at the given cycle.
    Done(Cycle),
    /// A memory operation waiting to be issued to the hierarchy.
    WaitIssue(MemOp),
    /// A memory operation outstanding in the memory system.
    Outstanding,
}

/// The out-of-order core for one application.
///
/// Drive it by calling [`tick`](Self::tick) once per cycle with a callback
/// that performs the cache access, and [`complete`](Self::complete) when a
/// pending access's data returns.
///
/// # Examples
///
/// ```
/// use asm_cpu::{AppProfile, Core, MemIssueResult};
/// use asm_simcore::AppId;
///
/// let p = AppProfile::builder("t").mem_per_kilo(0).build();
/// let mut core = Core::new(AppId::new(0), &p, 42);
/// for now in 0..100 {
///     core.tick(now, &mut |_, _| MemIssueResult::Stall);
/// }
/// // With no memory operations the core retires at full width.
/// assert!(core.retired() >= 3 * 98);
/// ```
#[derive(Debug)]
pub struct Core {
    app: AppId,
    source: Box<dyn AccessSource>,
    typ_rng: asm_simcore::SimRng,
    mem_prob: f64,
    /// Precomputed `ln(1 - mem_prob)` — the geometric-sampling
    /// denominator is constant per core, and `ln` shows up in profiles
    /// when recomputed on every fetch.
    gap_log1mp: f64,
    window: usize,
    width: usize,
    mlp_cap: u32,

    mlp_throttle: Option<u32>,
    rob: VecDeque<SlotState>,
    first_id: u64,
    next_id: u64,
    waiting: VecDeque<u64>,
    /// Outstanding (token, instruction id) pairs. At most `mlp` entries
    /// (single digits), so a linear vector beats any map.
    tokens: Vec<(u64, u64)>,
    outstanding: u32,
    gap_left: u64,

    retired: u64,
    mem_ops_issued: u64,
    /// Distinct program-order ops whose first issue attempt stalled (each
    /// op counted once, however many retries it takes). Counting episodes
    /// rather than stalled cycles keeps the number invariant under
    /// event-driven skipping: elided ticks only ever re-attempt the *same*
    /// stalled head op, and an op's first stall always happens on an
    /// executed tick.
    stall_episodes: u64,
    /// Id of the last op whose stall was counted, so retries don't
    /// re-count it.
    last_stall_id: Option<u64>,
}

/// The paper's window size (Table 2).
pub const DEFAULT_WINDOW: usize = 128;
/// The paper's issue/retire width (Table 2).
pub const DEFAULT_WIDTH: usize = 3;

impl Core {
    /// Creates a core running `profile` as application `app`, with
    /// deterministic behaviour derived from `seed`.
    #[must_use]
    pub fn new(app: AppId, profile: &AppProfile, seed: u64) -> Self {
        Self::with_window(app, profile, seed, DEFAULT_WINDOW, DEFAULT_WIDTH)
    }

    /// Like [`new`](Self::new) with explicit window size and width.
    ///
    /// # Panics
    ///
    /// Panics if `window` or `width` is zero.
    #[must_use]
    pub fn with_window(
        app: AppId,
        profile: &AppProfile,
        seed: u64,
        window: usize,
        width: usize,
    ) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(width > 0, "width must be positive");
        let source = Box::new(AddressStream::new(profile, app.index(), seed));
        Self::from_source(
            app,
            source,
            profile.mem_probability(),
            profile.mlp(),
            seed,
            window,
            width,
        )
    }

    /// Builds a core around an arbitrary access source (e.g. a
    /// [`crate::source::TraceSource`] replaying a recorded trace).
    ///
    /// `mem_probability` is the chance any instruction is a memory
    /// operation; `mlp` caps outstanding misses.
    ///
    /// # Panics
    ///
    /// Panics if `window`, `width` or `mlp` is zero, or `mem_probability`
    /// is outside `[0, 1]`.
    #[must_use]
    pub fn from_source(
        app: AppId,
        source: Box<dyn AccessSource>,
        mem_probability: f64,
        mlp: u32,
        seed: u64,
        window: usize,
        width: usize,
    ) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(width > 0, "width must be positive");
        assert!(mlp > 0, "mlp must be positive");
        assert!(
            (0.0..=1.0).contains(&mem_probability),
            "mem_probability must be in [0, 1]"
        );
        let mut typ_rng = asm_simcore::SimRng::seed_from(
            seed ^ 0xC0DE ^ (app.index() as u64).wrapping_mul(0x1234_5678_9ABC_DEF1),
        );
        let mem_prob = mem_probability;
        let gap_log1mp = (1.0 - mem_prob).ln();
        let gap_left = Self::sample_gap(&mut typ_rng, mem_prob, gap_log1mp);
        Core {
            app,
            source,
            typ_rng,
            mem_prob,
            gap_log1mp,
            window,
            width,
            mlp_cap: mlp,
            mlp_throttle: None,
            rob: VecDeque::with_capacity(window),
            first_id: 0,
            next_id: 0,
            waiting: VecDeque::new(),
            tokens: Vec::new(),
            outstanding: 0,
            gap_left,
            retired: 0,
            mem_ops_issued: 0,
            stall_episodes: 0,
            last_stall_id: None,
        }
    }

    /// The application this core runs.
    #[must_use]
    pub fn app(&self) -> AppId {
        self.app
    }

    /// Instructions retired so far.
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Memory operations issued to the hierarchy so far.
    #[must_use]
    pub fn mem_ops_issued(&self) -> u64 {
        self.mem_ops_issued
    }

    /// Memory ops that stalled at least once at issue (MSHR/queue
    /// back-pressure episodes, not stalled cycles).
    #[must_use]
    pub fn stall_episodes(&self) -> u64 {
        self.stall_episodes
    }

    /// Memory accesses currently outstanding in the memory system.
    #[must_use]
    pub fn outstanding(&self) -> u32 {
        self.outstanding
    }

    /// The application's intrinsic MLP cap (ignoring any throttle).
    #[must_use]
    pub fn base_mlp(&self) -> u32 {
        self.mlp_cap
    }

    /// Applies (or clears) a source-throttling cap on outstanding misses;
    /// the effective cap is the minimum of the intrinsic MLP and the
    /// throttle. Used by FST-style source throttling.
    pub fn set_mlp_throttle(&mut self, throttle: Option<u32>) {
        self.mlp_throttle = throttle.map(|t| t.max(1));
    }

    fn effective_mlp(&self) -> u32 {
        self.mlp_throttle
            .map_or(self.mlp_cap, |t| t.min(self.mlp_cap))
    }

    /// Geometric inter-memory-op gap (number of non-memory instructions
    /// before the next memory op).
    fn sample_gap(rng: &mut asm_simcore::SimRng, p: f64, log1mp: f64) -> u64 {
        if p <= 0.0 {
            return u64::MAX;
        }
        if p >= 1.0 {
            return 0;
        }
        let u = rng.gen_f64().max(1e-18);
        (u.ln() / log1mp) as u64
    }

    /// Advances the core one cycle. `issue` is called for each memory
    /// operation ready to access the hierarchy this cycle.
    pub fn tick(&mut self, now: Cycle, issue: &mut dyn FnMut(LineAddr, bool) -> MemIssueResult) {
        // 1) In-order retirement, up to `width` per cycle.
        let mut retired_now = 0;
        while retired_now < self.width {
            match self.rob.front() {
                Some(SlotState::Done(c)) if *c <= now => {
                    self.rob.pop_front();
                    self.first_id += 1;
                    self.retired += 1;
                    retired_now += 1;
                }
                _ => break,
            }
        }

        // 2) Fetch up to `width` new instructions into the window.
        let mut fetched = 0;
        while fetched < self.width && self.rob.len() < self.window {
            if self.gap_left == 0 {
                let op = self.source.next_op();
                self.rob.push_back(SlotState::WaitIssue(op));
                self.waiting.push_back(self.next_id);
                self.gap_left = Self::sample_gap(&mut self.typ_rng, self.mem_prob, self.gap_log1mp);
            } else {
                self.gap_left -= 1;
                self.rob.push_back(SlotState::Done(now + 1));
            }
            self.next_id += 1;
            fetched += 1;
        }

        // 3) Issue waiting memory operations (program order) while under
        // the (possibly throttled) MLP cap.
        while self.outstanding < self.effective_mlp() {
            let Some(&id) = self.waiting.front() else {
                break;
            };
            let idx = (id - self.first_id) as usize;
            let SlotState::WaitIssue(op) = self.rob[idx] else {
                unreachable!("waiting queue points at a non-waiting slot");
            };
            match issue(op.line, op.is_write) {
                MemIssueResult::Completed(c) => {
                    self.rob[idx] = SlotState::Done(c);
                    self.waiting.pop_front();
                    self.mem_ops_issued += 1;
                }
                MemIssueResult::Pending(token) => {
                    self.rob[idx] = SlotState::Outstanding;
                    self.tokens.push((token, id));
                    self.waiting.pop_front();
                    self.outstanding += 1;
                    self.mem_ops_issued += 1;
                }
                MemIssueResult::Stall => {
                    if self.last_stall_id != Some(id) {
                        self.last_stall_id = Some(id);
                        self.stall_episodes += 1;
                    }
                    break;
                }
            }
        }
    }

    /// The next cycle at which [`tick`](Self::tick) could change this
    /// core's state, assuming the memory hierarchy's answers stay frozen
    /// until then. `None` means the core is blocked on an external event
    /// (a [`complete`](Self::complete) call, or a stall clearing) — both
    /// of which only happen on cycles the memory system itself reports as
    /// events, so a driver folding this with the memory system's
    /// `next_event` never misses a wake-up (see DESIGN.md §8).
    ///
    /// Must be called *after* `tick(now, ..)`; the answer relies on the
    /// post-tick invariant that a non-empty issue queue under the MLP cap
    /// means the last issue attempt stalled.
    #[must_use]
    #[inline]
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        // The window has room: fetch makes progress every cycle.
        if self.rob.len() < self.window {
            return Some(now + 1);
        }
        // Window full. Retirement frees slots once the head completes;
        // issue attempts are either exhausted (issue queue empty), capped
        // (needs a completion), or stalled (needs the memory system to
        // drain a queue) — all external events.
        match self.rob.front() {
            Some(SlotState::Done(c)) => Some((*c).max(now + 1)),
            _ => None,
        }
    }

    /// Whether `tick(now, ..)` would provably change nothing: the window
    /// is full, the head has not completed, and no issue attempt can run
    /// (issue queue empty, or the MLP cap is reached). A driver may skip
    /// the call entirely — the tick would not touch any state, draw any
    /// randomness, or invoke the issue callback.
    #[must_use]
    #[inline]
    pub fn tick_is_noop(&self, now: Cycle) -> bool {
        self.rob.len() == self.window
            && !matches!(self.rob.front(), Some(SlotState::Done(c)) if *c <= now)
            && (self.waiting.is_empty() || self.outstanding >= self.effective_mlp())
    }

    /// Whether the *only* thing `tick(now, ..)` could do is re-attempt a
    /// previously stalled head issue: no retirement, no fetch, but the
    /// issue queue is non-empty under the MLP cap. If the memory
    /// hierarchy's stall answer is known to be unchanged since the last
    /// attempt, a driver may skip the call — the re-attempt would stall
    /// again without side effects (the stall path mutates nothing).
    #[must_use]
    #[inline]
    pub fn only_stall_retry(&self, now: Cycle) -> bool {
        self.rob.len() == self.window
            && !matches!(self.rob.front(), Some(SlotState::Done(c)) if *c <= now)
            && !self.waiting.is_empty()
            && self.outstanding < self.effective_mlp()
    }

    /// Delivers data for a pending access issued earlier; `finish` is the
    /// cycle the data arrived. Unknown tokens are ignored (e.g. prefetch
    /// fills the core never waited on).
    #[inline]
    pub fn complete(&mut self, token: u64, finish: Cycle) {
        if let Some(pos) = self.tokens.iter().position(|&(t, _)| t == token) {
            let (_, id) = self.tokens.swap_remove(pos);
            let idx = (id - self.first_id) as usize;
            self.rob[idx] = SlotState::Done(finish);
            self.outstanding -= 1;
        }
    }

    /// What the reorder-buffer head is blocked on at `now` (post-tick) —
    /// the per-cycle fact driving ground-truth cycle attribution. The
    /// mapping is exhaustive: a `Done` head that is ready (or an empty /
    /// non-full window) is progress; a future `Done` is hit latency; a
    /// `WaitIssue` head is memory backpressure (a head waiting to issue
    /// implies program-order issue already drained every older op, so the
    /// core has zero outstanding requests and the only obstacle is the
    /// memory system refusing the access); an `Outstanding` head is a
    /// memory stall whose component is decided when its data returns.
    #[must_use]
    #[inline]
    pub fn head_stall(&self, now: Cycle) -> HeadStall {
        match self.rob.front() {
            Some(SlotState::Done(c)) if *c > now => HeadStall::HitWait,
            Some(SlotState::WaitIssue(_)) => HeadStall::Backpressure,
            Some(SlotState::Outstanding) => HeadStall::MemStall,
            _ => HeadStall::Progress,
        }
    }

    /// The memory-system token the reorder-buffer head is waiting on, when
    /// the head is an outstanding memory request (i.e. [`head_stall`]
    /// reports `MemStall`). This is the completion whose delivery ends the
    /// current stall episode.
    ///
    /// [`head_stall`]: Self::head_stall
    #[must_use]
    #[inline]
    pub fn blocking_token(&self) -> Option<u64> {
        if !matches!(self.rob.front(), Some(SlotState::Outstanding)) {
            return None;
        }
        self.tokens
            .iter()
            .find(|&&(_, id)| id == self.first_id)
            .map(|&(t, _)| t)
    }

    /// Serializes the core's dynamic state — ROB contents, issue/waiting
    /// queues, outstanding tokens, RNG position, fetch gap, throttle, and
    /// lifetime counters — for checkpointing. The profile-derived
    /// parameters (window, width, MLP, memory probability) and the access
    /// source's configuration are structural: the restore target must be
    /// constructed from the same profile and seed.
    pub fn save_state(&self, w: &mut asm_simcore::persist::StateWriter) {
        self.source.save_state(w);
        self.typ_rng.save_state(w);
        w.opt_u64(self.mlp_throttle.map(u64::from));
        w.usize(self.rob.len());
        for slot in &self.rob {
            match slot {
                SlotState::Done(c) => {
                    w.u8(0);
                    w.u64(*c);
                }
                SlotState::WaitIssue(op) => {
                    w.u8(1);
                    w.u64(op.line.raw());
                    w.bool(op.is_write);
                }
                SlotState::Outstanding => w.u8(2),
            }
        }
        w.u64(self.first_id);
        w.u64(self.next_id);
        w.usize(self.waiting.len());
        for &id in &self.waiting {
            w.u64(id);
        }
        w.usize(self.tokens.len());
        for &(token, id) in &self.tokens {
            w.u64(token);
            w.u64(id);
        }
        w.u32(self.outstanding);
        w.u64(self.gap_left);
        w.u64(self.retired);
        w.u64(self.mem_ops_issued);
        w.u64(self.stall_episodes);
        w.opt_u64(self.last_stall_id);
    }

    /// Restores state captured by [`save_state`](Self::save_state) into a
    /// core built from the same profile, seed, window, and width.
    ///
    /// # Errors
    ///
    /// [`asm_simcore::persist::PersistError::Corrupt`] when the stored
    /// state is internally inconsistent or does not fit this core.
    pub fn restore_state(
        &mut self,
        r: &mut asm_simcore::persist::StateReader<'_>,
    ) -> Result<(), asm_simcore::persist::PersistError> {
        use asm_simcore::persist::PersistError;
        let corrupt = |what: &str| PersistError::Corrupt(format!("core state: {what}"));
        self.source.restore_state(r)?;
        self.typ_rng.restore_state(r)?;
        let throttle = r.opt_u64()?;
        self.mlp_throttle = match throttle {
            Some(t) => Some(u32::try_from(t).map_err(|_| corrupt("throttle out of range"))?),
            None => None,
        };
        let rob_len = r.checked_len(1)?;
        if rob_len > self.window {
            return Err(corrupt("ROB larger than window"));
        }
        let mut rob = VecDeque::with_capacity(self.window);
        for _ in 0..rob_len {
            rob.push_back(match r.u8()? {
                0 => SlotState::Done(r.u64()?),
                1 => {
                    let line = LineAddr::new(r.u64()?);
                    let is_write = r.bool()?;
                    SlotState::WaitIssue(MemOp { line, is_write })
                }
                2 => SlotState::Outstanding,
                b => return Err(corrupt(&format!("slot tag {b}"))),
            });
        }
        let first_id = r.u64()?;
        let next_id = r.u64()?;
        if next_id - first_id != rob_len as u64 {
            return Err(corrupt("id range does not match ROB"));
        }
        let waiting_len = r.checked_len(8)?;
        let mut waiting = VecDeque::with_capacity(waiting_len);
        for _ in 0..waiting_len {
            waiting.push_back(r.u64()?);
        }
        let token_len = r.checked_len(16)?;
        let mut tokens = Vec::with_capacity(token_len);
        for _ in 0..token_len {
            tokens.push((r.u64()?, r.u64()?));
        }
        let outstanding = r.u32()?;
        if outstanding as usize != token_len {
            return Err(corrupt("outstanding count does not match tokens"));
        }
        for &id in &waiting {
            let idx = id
                .checked_sub(first_id)
                .filter(|&i| (i as usize) < rob_len)
                .ok_or_else(|| corrupt("waiting id outside ROB"))?;
            if !matches!(rob[idx as usize], SlotState::WaitIssue(_)) {
                return Err(corrupt("waiting id points at non-waiting slot"));
            }
        }
        for &(_, id) in &tokens {
            let idx = id
                .checked_sub(first_id)
                .filter(|&i| (i as usize) < rob_len)
                .ok_or_else(|| corrupt("token id outside ROB"))?;
            if !matches!(rob[idx as usize], SlotState::Outstanding) {
                return Err(corrupt("token id points at non-outstanding slot"));
            }
        }
        self.rob = rob;
        self.first_id = first_id;
        self.next_id = next_id;
        self.waiting = waiting;
        self.tokens = tokens;
        self.outstanding = outstanding;
        self.gap_left = r.u64()?;
        self.retired = r.u64()?;
        self.mem_ops_issued = r.u64()?;
        self.stall_episodes = r.u64()?;
        self.last_stall_id = r.opt_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(mpk: u32) -> AppProfile {
        AppProfile::builder("t").mem_per_kilo(mpk).mlp(4).build()
    }

    #[test]
    fn compute_bound_core_reaches_full_width_ipc() {
        let mut core = Core::new(AppId::new(0), &profile(0), 1);
        for now in 0..1_000 {
            core.tick(now, &mut |_, _| MemIssueResult::Stall);
        }
        let ipc = core.retired() as f64 / 1_000.0;
        assert!(ipc > 2.9, "IPC {ipc}");
    }

    #[test]
    fn memory_latency_reduces_ipc() {
        let run = |latency: Cycle| {
            let mut core = Core::new(AppId::new(0), &profile(100), 1);
            for now in 0..20_000 {
                core.tick(now, &mut |_, _| MemIssueResult::Completed(now + latency));
            }
            core.retired()
        };
        let fast = run(5);
        let slow = run(300);
        assert!(
            fast as f64 > slow as f64 * 1.5,
            "fast {fast} vs slow {slow}"
        );
    }

    #[test]
    fn pending_accesses_block_head_until_completed() {
        let mut core = Core::new(AppId::new(0), &profile(1000), 1);
        // Every instruction is a memory op; never complete them.
        let mut token = 0u64;
        for now in 0..200 {
            core.tick(now, &mut |_, _| {
                token += 1;
                MemIssueResult::Pending(token)
            });
        }
        // mlp cap 4: at most 4 outstanding, nothing retires.
        assert_eq!(core.retired(), 0);
        assert_eq!(core.outstanding(), 4);
    }

    #[test]
    fn completion_unblocks_retirement() {
        let mut core = Core::new(AppId::new(0), &profile(1000), 1);
        let mut tokens = Vec::new();
        for now in 0..10 {
            core.tick(now, &mut |_, _| {
                let t = 1000 + tokens.len() as u64;
                tokens.push(t);
                MemIssueResult::Pending(t)
            });
        }
        let before = core.retired();
        for &t in &tokens {
            core.complete(t, 10);
        }
        for now in 11..40 {
            core.tick(now, &mut |_, _| MemIssueResult::Stall);
        }
        assert!(core.retired() > before);
        assert_eq!(core.outstanding(), 0);
    }

    #[test]
    fn stall_retries_without_losing_ops() {
        let mut core = Core::new(AppId::new(0), &profile(1000), 1);
        // Stall for a while, then accept everything.
        for now in 0..50 {
            core.tick(now, &mut |_, _| MemIssueResult::Stall);
        }
        assert_eq!(core.mem_ops_issued(), 0);
        for now in 50..200 {
            core.tick(now, &mut |_, _| MemIssueResult::Completed(now + 1));
        }
        assert!(core.mem_ops_issued() > 0);
        assert!(core.retired() > 0);
    }

    #[test]
    fn stall_episodes_count_ops_not_cycles() {
        let mut core = Core::new(AppId::new(0), &profile(1000), 1);
        // 50 cycles of stalling is a single episode: the same head op
        // retries every cycle.
        for now in 0..50 {
            core.tick(now, &mut |_, _| MemIssueResult::Stall);
        }
        assert_eq!(core.stall_episodes(), 1);
        // Let it through; the next op that stalls opens a new episode.
        core.tick(50, &mut |_, _| MemIssueResult::Completed(51));
        for now in 51..60 {
            core.tick(now, &mut |_, _| MemIssueResult::Stall);
        }
        assert_eq!(core.stall_episodes(), 2);
    }

    #[test]
    fn mlp_cap_limits_overlap() {
        let p = AppProfile::builder("t").mem_per_kilo(1000).mlp(2).build();
        let mut core = Core::new(AppId::new(0), &p, 1);
        let mut max_outstanding = 0;
        let mut token = 0u64;
        for now in 0..300 {
            core.tick(now, &mut |_, _| {
                token += 1;
                MemIssueResult::Pending(token)
            });
            max_outstanding = max_outstanding.max(core.outstanding());
        }
        assert_eq!(max_outstanding, 2);
    }

    #[test]
    fn unknown_token_completion_is_ignored() {
        let mut core = Core::new(AppId::new(0), &profile(10), 1);
        core.complete(9999, 5); // must not panic or underflow
        assert_eq!(core.outstanding(), 0);
    }

    #[test]
    fn window_bounds_rob_occupancy() {
        let mut core = Core::with_window(AppId::new(0), &profile(1000), 1, 16, 3);
        let mut token = 0u64;
        for now in 0..200 {
            core.tick(now, &mut |_, _| {
                token += 1;
                MemIssueResult::Pending(token)
            });
        }
        assert!(core.rob.len() <= 16);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let run = || {
            let mut core = Core::new(AppId::new(0), &profile(100), 77);
            for now in 0..5_000 {
                core.tick(now, &mut |_, _| MemIssueResult::Completed(now + 20));
            }
            core.retired()
        };
        assert_eq!(run(), run());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Whatever the memory hierarchy does (random latencies, stalls,
        /// out-of-order completions), the core's structural invariants
        /// hold every cycle.
        #[test]
        fn core_invariants_under_random_memory(
            seed in 0u64..10_000,
            mpk in 0u32..1000,
            mlp in 1u32..16,
        ) {
            let profile = AppProfile::builder("prop")
                .mem_per_kilo(mpk)
                .mlp(mlp)
                .build();
            let mut core = Core::new(AppId::new(0), &profile, seed);
            let mut rng = asm_simcore::SimRng::seed_from(seed ^ 0xFEED);
            let mut pending: Vec<(u64, u64)> = Vec::new(); // (token, finish)
            let mut next_token = 0u64;
            let mut last_retired = 0;
            for now in 0..3_000u64 {
                // Randomly complete some pending accesses.
                pending.retain(|&(token, finish)| {
                    if finish <= now {
                        core.complete(token, finish);
                        false
                    } else {
                        true
                    }
                });
                core.tick(now, &mut |_, _| match rng.gen_range(3) {
                    0 => MemIssueResult::Completed(now + 1 + rng.gen_range(50)),
                    1 => {
                        next_token += 1;
                        pending.push((next_token, now + 1 + rng.gen_range(400)));
                        MemIssueResult::Pending(next_token)
                    }
                    _ => MemIssueResult::Stall,
                });
                prop_assert!(core.rob.len() <= DEFAULT_WINDOW, "ROB overflow");
                prop_assert!(core.outstanding() <= mlp, "MLP cap violated");
                prop_assert!(core.retired() >= last_retired, "retirement regressed");
                prop_assert!(
                    core.retired() <= (now + 1) * DEFAULT_WIDTH as u64,
                    "retired more than width allows"
                );
                last_retired = core.retired();
            }
            // Everything still pending can complete and the core drains.
            for (token, _) in pending.drain(..) {
                core.complete(token, 3_000);
            }
            for now in 3_000..3_200 {
                core.tick(now, &mut |_, _| MemIssueResult::Completed(now + 1));
            }
            prop_assert!(core.retired() > last_retired || last_retired > 0);
        }
    }
}
