//! Property test backing the fast-forward guarantee: for *randomized*
//! valid `SystemConfig`s and workload mixes, the skip-mode run must
//! produce a `QuantumRecord` stream bitwise identical to the
//! cycle-by-cycle run. The hand-picked configurations in
//! `skip_equivalence.rs` cover the interesting corners deliberately;
//! this sweep covers the combinations nobody thought of.

use asm_core::{
    CachePolicy, EpochAssignment, EstimatorSet, MemPolicy, System, SystemConfig, ThrottlePolicy,
};
use asm_dram::SchedulerKind;
use asm_simcore::AppId;
use asm_workloads::suite;
use proptest::prelude::*;

/// A pool spanning the suite's intensity range: two memory hogs, two
/// mid-intensity applications, two compute-bound ones.
const POOL: &[&str] = &[
    "mcf_like",
    "libquantum_like",
    "soplex_like",
    "gcc_like",
    "h264ref_like",
    "povray_like",
];

/// Quantum lengths crossed with epoch lengths; every epoch below divides
/// every quantum, so all combinations pass `SystemConfig::validate`.
const QUANTA: &[u64] = &[20_000, 60_000, 100_000];
const EPOCHS: &[u64] = &[500, 1_000, 2_500, 5_000];

/// Compact run digest: the full `QuantumRecord` stream with floats as
/// bit patterns, plus final retired counts. (The richer per-app summary
/// digests are exercised by `skip_equivalence.rs`.)
fn run_digest(config: &SystemConfig, apps: &[usize], cycles: u64, skip: bool) -> String {
    let profiles: Vec<_> = apps
        .iter()
        .map(|&i| suite::by_name(POOL[i]).expect("pool name exists in suite"))
        .collect();
    let mut c = config.clone();
    c.skip_mode = skip;
    let mut sys = System::new(&profiles, c);
    // Two uneven slices so fast-forward also has to survive a run_for
    // boundary that is neither an event nor a quantum boundary.
    sys.run_for(cycles / 3);
    sys.run_for(cycles - cycles / 3);

    let mut out = String::new();
    out.push_str(&format!("now={} ", sys.now()));
    for i in 0..profiles.len() {
        out.push_str(&format!("ret{i}={} ", sys.retired(AppId::new(i))));
    }
    for r in sys.records() {
        out.push_str(&format!("[{}..{}", r.start_cycle, r.end_cycle));
        out.push_str(&format!(" rs={:?} re={:?}", r.retired_start, r.retired_end));
        let car: Vec<u64> = r.car_shared.iter().map(|v| v.to_bits()).collect();
        out.push_str(&format!(" car={car:?}"));
        for (name, est) in &r.estimates {
            let bits: Vec<u64> = est.iter().map(|v| v.to_bits()).collect();
            out.push_str(&format!(" {name}={bits:?}"));
        }
        out.push_str(&format!(" part={:?}]", r.partition));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn randomized_configs_have_identical_quantum_records(
        app_ix in prop::collection::vec(0usize..6, 2..4),
        q_ix in 0usize..3,
        e_ix in 0usize..4,
        epochs_enabled in 0u8..2,
        est_ix in 0usize..3,
        cache_ix in 0usize..3,
        mem_ix in 0usize..2,
        sched_ix in 0usize..3,
        assign_ix in 0usize..2,
        throttle in 0u8..2,
        prefetch in 0u8..2,
        hist in 0u8..2,
        sampled in 0u8..2,
        seed in 0u64..1_000_000,
        quanta_count in 2u64..4,
    ) {
        let mut config = SystemConfig::default();
        config.quantum = QUANTA[q_ix];
        config.epoch = EPOCHS[e_ix];
        config.epochs_enabled = epochs_enabled == 1;
        config.estimators = [EstimatorSet::asm_only(), EstimatorSet::all(), EstimatorSet::none()][est_ix].clone();
        config.cache_policy = [CachePolicy::None, CachePolicy::AsmCache, CachePolicy::Ucp][cache_ix];
        config.mem_policy = [MemPolicy::Uniform, MemPolicy::SlowdownWeighted][mem_ix];
        config.scheduler =
            [SchedulerKind::FrFcfs, SchedulerKind::Tcm, SchedulerKind::Bliss][sched_ix];
        config.epoch_assignment =
            [EpochAssignment::Probabilistic, EpochAssignment::RoundRobin][assign_ix];
        if throttle == 1 {
            config.throttle_policy = ThrottlePolicy::Fst { unfairness_threshold: 1.4 };
        }
        if prefetch == 1 {
            config.prefetcher = Some(asm_core::PrefetchConfig::default());
        }
        if hist == 1 {
            config.latency_hist = Some((50.0, 40));
        }
        if sampled == 1 {
            config.ats_sampled_sets = Some(64);
        }
        config.seed = seed;
        config.validate();

        let cycles = config.quantum * quanta_count + config.quantum / 3;
        let skip = run_digest(&config, &app_ix, cycles, true);
        let cycle = run_digest(&config, &app_ix, cycles, false);
        prop_assert_eq!(
            skip, cycle,
            "QuantumRecord streams diverged (apps {:?}, Q={}, E={}, seed {})",
            app_ix, config.quantum, config.epoch, seed
        );
    }
}
