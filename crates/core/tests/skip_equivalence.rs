//! Skip-mode ground truth: fast-forwarding must be *bitwise* identical to
//! the cycle-by-cycle loop — same retired counts, same `QuantumRecord`
//! streams (floats compared by bit pattern), same progress logs, same
//! measured histograms. See DESIGN.md §8 "Fast-forward without
//! nondeterminism" for why this holds by construction.

use asm_core::{QuantumRecord, System, SystemConfig};
use asm_core::{CachePolicy, EpochAssignment, EstimatorSet, MemPolicy, ThrottlePolicy};
use asm_cpu::AppProfile;
use asm_simcore::AppId;
use asm_workloads::suite;

/// Everything observable about a finished run, with floats as bit
/// patterns so equality is exact.
#[derive(Debug, PartialEq, Eq)]
struct RunDigest {
    now: u64,
    retired: Vec<u64>,
    records: Vec<RecordDigest>,
    summaries: Vec<SummaryDigest>,
    hist: Option<(Vec<u64>, u64, u64)>,
}

#[derive(Debug, PartialEq, Eq)]
struct RecordDigest {
    start: u64,
    end: u64,
    retired_start: Vec<u64>,
    retired_end: Vec<u64>,
    car_shared: Vec<u64>,
    estimates: Vec<(String, Vec<u64>)>,
    partition: Option<Vec<usize>>,
}

#[derive(Debug, PartialEq, Eq)]
struct SummaryDigest {
    instructions: u64,
    llc_accesses: u64,
    llc_hits: u64,
    llc_misses: u64,
    ipc_bits: u64,
    car_bits: u64,
}

fn digest_record(r: &QuantumRecord) -> RecordDigest {
    RecordDigest {
        start: r.start_cycle,
        end: r.end_cycle,
        retired_start: r.retired_start.clone(),
        retired_end: r.retired_end.clone(),
        car_shared: r.car_shared.iter().map(|v| v.to_bits()).collect(),
        estimates: r
            .estimates
            .iter()
            .map(|(n, v)| (n.clone(), v.iter().map(|x| x.to_bits()).collect()))
            .collect(),
        partition: r.partition.clone(),
    }
}

fn digest(sys: &System) -> RunDigest {
    let n = sys.app_count();
    RunDigest {
        now: sys.now(),
        retired: (0..n).map(|i| sys.retired(AppId::new(i))).collect(),
        records: sys.records().iter().map(digest_record).collect(),
        summaries: (0..n)
            .map(|i| {
                let s = sys.app_summary(AppId::new(i));
                SummaryDigest {
                    instructions: s.instructions,
                    llc_accesses: s.llc_accesses,
                    llc_hits: s.llc_hits,
                    llc_misses: s.llc_misses,
                    ipc_bits: s.ipc.to_bits(),
                    car_bits: s.car.to_bits(),
                }
            })
            .collect(),
        hist: sys.measured_miss_latency_hist().map(|h| {
            (
                (0..h.buckets()).map(|b| h.bucket_count(b)).collect(),
                h.overflow(),
                h.total(),
            )
        }),
    }
}

/// Runs the same workload with `skip_mode` on and off (in several
/// `run_for` slices, to exercise resume-at-arbitrary-cycle too) and
/// asserts the digests match exactly.
fn assert_equivalent(profiles: &[AppProfile], config: &SystemConfig, cycles: u64) {
    let run = |skip: bool| {
        let mut c = config.clone();
        c.skip_mode = skip;
        let mut sys = System::new(profiles, c);
        // Uneven slices: fast-forward must survive run_for boundaries
        // that are not event or quantum boundaries.
        let (a, b) = (cycles / 3, cycles / 7);
        sys.run_for(a);
        sys.run_for(b);
        sys.run_for(cycles - a - b);
        digest(&sys)
    };
    let skip = run(true);
    let cycle = run(false);
    assert_eq!(skip, cycle, "skip mode diverged from cycle mode");
}

fn memory_heavy() -> Vec<AppProfile> {
    vec![
        suite::by_name("mcf_like").expect("suite profile exists"),
        suite::by_name("libquantum_like").expect("suite profile exists"),
    ]
}

fn base_config() -> SystemConfig {
    let mut c = SystemConfig::default();
    c.quantum = 50_000;
    c.epoch = 1_000;
    c.estimators = EstimatorSet::all();
    c
}

#[test]
fn skip_equals_cycle_on_memory_heavy_mix() {
    assert_equivalent(&memory_heavy(), &base_config(), 200_000);
}

#[test]
fn skip_equals_cycle_with_compute_bound_partner() {
    let apps = vec![
        suite::by_name("mcf_like").expect("suite profile exists"),
        suite::by_name("h264ref_like").expect("suite profile exists"),
    ];
    assert_equivalent(&apps, &base_config(), 150_000);
}

#[test]
fn skip_equals_cycle_with_prefetcher_and_histograms() {
    let mut c = base_config();
    c.prefetcher = Some(asm_core::PrefetchConfig::default());
    c.latency_hist = Some((50.0, 40));
    assert_equivalent(&memory_heavy(), &c, 150_000);
}

#[test]
fn skip_equals_cycle_under_every_mechanism() {
    let mut c = base_config();
    c.cache_policy = CachePolicy::AsmCache;
    c.mem_policy = MemPolicy::SlowdownWeighted;
    c.throttle_policy = ThrottlePolicy::Fst {
        unfairness_threshold: 1.4,
    };
    assert_equivalent(&memory_heavy(), &c, 200_000);
}

#[test]
fn skip_equals_cycle_with_round_robin_epochs_disabled_estimators() {
    let mut c = base_config();
    c.epoch_assignment = EpochAssignment::RoundRobin;
    c.estimators = EstimatorSet::none();
    assert_equivalent(&memory_heavy(), &c, 120_000);
}

#[test]
fn skip_equals_cycle_with_epochs_off() {
    let mut c = base_config();
    c.epochs_enabled = false;
    assert_equivalent(&memory_heavy(), &c, 120_000);
}

#[test]
fn skip_equals_cycle_on_alone_runs_including_progress() {
    let profiles = memory_heavy();
    let run = |skip: bool| {
        let mut c = base_config();
        c.skip_mode = skip;
        let mut sys = System::new_alone(&profiles, c, AppId::new(0));
        sys.enable_progress_logging();
        sys.run_for(150_000);
        (
            sys.retired(AppId::new(0)),
            sys.progress_log(AppId::new(0)).clone(),
        )
    };
    assert_eq!(run(true), run(false), "alone-run progress log diverged");
}

/// Fast-forward actually fast-forwards: on a memory-bound mix the skip
/// loop must execute well under half the simulated cycles (the rest are
/// provably dead). Guards against the next-event fold silently
/// degenerating into `now + 1` everywhere.
#[test]
fn skip_mode_actually_skips() {
    let mut c = base_config();
    c.estimators = EstimatorSet::asm_only();
    let apps = vec![
        suite::by_name("mcf_like").expect("suite profile exists"),
        suite::by_name("mcf_like").expect("suite profile exists"),
    ];
    let mut sys = System::new(&apps, c);
    sys.run_for(500_000);
    let executed = sys.executed_cycles();
    assert!(
        executed * 2 < 500_000,
        "skip mode executed {executed} of 500000 cycles — not skipping"
    );
}
