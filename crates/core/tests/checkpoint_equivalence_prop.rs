//! Property test backing the checkpoint guarantee: for *randomized*
//! valid `SystemConfig`s and workload mixes, a run forked from a warmup
//! snapshot (`Runner::warm_snapshot` + `Runner::run_with_snapshot`) must
//! produce a `RunResult` bitwise identical to the straight cold run —
//! including configurations whose quantum-boundary policies differ from
//! the neutral prefix configuration the warmup simulated under. The
//! hand-picked forks in `checkpoint.rs`'s unit tests cover the policy
//! matrix deliberately; this sweep covers the combinations nobody
//! thought of. A second block pins the rejection paths: damaged,
//! truncated, stale-version and wrong-key snapshots must error, never
//! silently change results.

use asm_core::{
    CachePolicy, EpochAssignment, EstimatorSet, MemPolicy, QosConfig, RunOptions, RunResult,
    Runner, SystemConfig, ThrottlePolicy,
};
use asm_dram::SchedulerKind;
use asm_simcore::persist::PersistError;
use asm_simcore::AppId;
use asm_workloads::suite;
use proptest::prelude::*;

/// A pool spanning the suite's intensity range (same as the skip sweep).
const POOL: &[&str] = &[
    "mcf_like",
    "libquantum_like",
    "soplex_like",
    "gcc_like",
    "h264ref_like",
    "povray_like",
];

/// Quantum lengths crossed with epoch lengths; every epoch divides every
/// quantum, so all combinations pass `SystemConfig::validate`.
const QUANTA: &[u64] = &[20_000, 60_000];
const EPOCHS: &[u64] = &[500, 1_000, 2_500];

/// Everything a `RunResult` observes, floats as bit patterns.
fn digest(r: &RunResult) -> String {
    let mut out = String::new();
    out.push_str(&format!("apps={:?} ", r.app_names));
    for q in &r.quanta {
        let actual: Vec<u64> = q.actual.iter().map(|v| v.to_bits()).collect();
        let car: Vec<u64> = q.car_shared.iter().map(|v| v.to_bits()).collect();
        out.push_str(&format!("[act={actual:?} car={car:?}"));
        for (name, est) in &q.estimates {
            let bits: Vec<u64> = est.iter().map(|v| v.to_bits()).collect();
            out.push_str(&format!(" {name}={bits:?}"));
        }
        out.push_str(&format!(" part={:?}]", q.partition));
    }
    let whole: Vec<u64> = r.whole_run_slowdowns.iter().map(|v| v.to_bits()).collect();
    out.push_str(&format!(" whole={whole:?}"));
    if let Some(t) = &r.telemetry {
        out.push_str(&format!(" counters={:?}", t.counters));
    }
    out
}

fn profiles(app_ix: &[usize]) -> Vec<asm_cpu::AppProfile> {
    app_ix
        .iter()
        .map(|&i| suite::by_name(POOL[i]).expect("pool name exists in suite"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn forked_runs_match_cold_runs_bitwise(
        app_ix in prop::collection::vec(0usize..6, 2..4),
        q_ix in 0usize..2,
        e_ix in 0usize..3,
        epochs_enabled in 0u8..2,
        est_ix in 0usize..3,
        cache_ix in 0usize..5,
        mem_ix in 0usize..2,
        sched_ix in 0usize..3,
        assign_ix in 0usize..2,
        throttle in 0u8..2,
        telemetry in 0u8..2,
        seed in 0u64..1_000_000,
        extra_thirds in 1u64..7,
    ) {
        let mut config = SystemConfig::default();
        config.quantum = QUANTA[q_ix];
        config.epoch = EPOCHS[e_ix];
        config.epochs_enabled = epochs_enabled == 1;
        config.estimators =
            [EstimatorSet::asm_only(), EstimatorSet::all(), EstimatorSet::none()][est_ix].clone();
        config.cache_policy = [
            CachePolicy::None,
            CachePolicy::AsmCache,
            CachePolicy::Ucp,
            CachePolicy::NaiveQos(AppId::new(0)),
            CachePolicy::AsmQos(QosConfig { target: AppId::new(0), bound: 3.0 }),
        ][cache_ix];
        config.mem_policy = [MemPolicy::Uniform, MemPolicy::SlowdownWeighted][mem_ix];
        config.scheduler =
            [SchedulerKind::FrFcfs, SchedulerKind::Tcm, SchedulerKind::Bliss][sched_ix];
        config.epoch_assignment =
            [EpochAssignment::Probabilistic, EpochAssignment::RoundRobin][assign_ix];
        if throttle == 1 {
            config.throttle_policy = ThrottlePolicy::Fst { unfairness_threshold: 1.4 };
        }
        config.seed = seed;
        config.validate();

        let opts = RunOptions {
            telemetry: telemetry == 1,
            trace_sample: None,
            attrib: telemetry == 1,
        };
        let apps = profiles(&app_ix);
        // At least one full quantum (the warm prefix) plus a ragged tail.
        let cycles = config.quantum + extra_thirds * config.quantum / 3;

        let runner = Runner::new(config);
        let snapshot = runner.warm_snapshot(&apps, opts);
        let forked = runner
            .run_with_snapshot(&apps, cycles, opts, &snapshot)
            .expect("fresh snapshot restores");
        let cold = runner.run_with(&apps, cycles, opts);
        prop_assert_eq!(
            digest(&forked), digest(&cold),
            "forked run diverged from cold run (apps {:?}, Q={}, seed {})",
            app_ix, runner.config().quantum, seed
        );
    }

    #[test]
    fn damaged_snapshots_are_rejected_not_misread(
        flip_byte in 8usize..64,
        truncate_at in 1usize..64,
        seed in 0u64..1_000,
    ) {
        let mut config = SystemConfig::default();
        config.quantum = 20_000;
        config.epoch = 1_000;
        config.estimators = EstimatorSet::asm_only();
        config.seed = seed;
        config.validate();
        let apps = profiles(&[0, 4]);
        let opts = RunOptions::default();
        let runner = Runner::new(config);
        let snapshot = runner.warm_snapshot(&apps, opts);
        let cycles = 30_000;

        // Bit damage anywhere past the magic: checksum catches it.
        let mut bad = snapshot.clone();
        let i = flip_byte % bad.len();
        bad[i] ^= 0x01;
        prop_assert!(
            runner.run_with_snapshot(&apps, cycles, opts, &bad).is_err(),
            "flipped byte {i} accepted"
        );

        // Truncation: never panics, always a structured error.
        let cut = truncate_at % snapshot.len();
        prop_assert!(
            runner.run_with_snapshot(&apps, cycles, opts, &snapshot[..cut]).is_err(),
            "truncation to {cut} bytes accepted"
        );
    }
}

/// A snapshot from a *future* format version must fail with
/// `StaleVersion`, the signal the planner's warn-and-rebuild relies on.
#[test]
fn stale_version_snapshots_are_rejected() {
    use asm_core::checkpoint::{SNAPSHOT_FORMAT, SNAPSHOT_VERSION};
    use asm_simcore::persist::StateWriter;

    let mut w = StateWriter::new(SNAPSHOT_FORMAT, SNAPSHOT_VERSION + 1);
    w.u64(0);
    w.u64(20_000);
    let future = w.finish();

    let mut config = SystemConfig::default();
    config.quantum = 20_000;
    config.epoch = 1_000;
    config.validate();
    let runner = Runner::new(config);
    let apps = profiles(&[0, 4]);
    match runner.run_with_snapshot(&apps, 30_000, RunOptions::default(), &future) {
        Err(PersistError::StaleVersion {
            found, expected, ..
        }) => {
            assert_eq!(found, SNAPSHOT_VERSION + 1);
            assert_eq!(expected, SNAPSHOT_VERSION);
        }
        other => panic!("expected StaleVersion, got {other:?}"),
    }
}

/// A key mismatch (same structure, different mix) is rejected as corrupt
/// before any state is trusted.
#[test]
fn wrong_key_snapshots_are_rejected() {
    let mut config = SystemConfig::default();
    config.quantum = 20_000;
    config.epoch = 1_000;
    config.validate();
    let runner = Runner::new(config);
    let opts = RunOptions::default();
    let snapshot = runner.warm_snapshot(&profiles(&[0, 4]), opts);
    // Same app count, different mix: the embedded key cannot match.
    let other = profiles(&[1, 5]);
    match runner.run_with_snapshot(&other, 30_000, opts, &snapshot) {
        Err(PersistError::Corrupt(msg)) => assert!(msg.contains("key"), "{msg}"),
        other => panic!("expected key mismatch, got {other:?}"),
    }
}
