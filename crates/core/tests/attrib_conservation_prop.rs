//! Property test backing the attribution guarantee of DESIGN.md §13: for
//! *randomized* valid `SystemConfig`s — schedulers, cache/memory
//! partitioning policies, prefetchers, skip mode, workload mixes spanning
//! the suite's intensity range — every finalized quantum's ledger must
//! conserve cycles *exactly* (integer equality, no epsilon): each app's
//! component row and each blame-matrix row sums to the quantum length,
//! the blame off-diagonal equals the interference components, and the
//! ledger's DRAM-cause interference never exceeds the per-request
//! charges the quantum records accumulated (the FST/PTCA signal it is a
//! stall-clipped refinement of). A final comparison run pins the
//! observer guarantee: attribution on/off never changes the simulation.

use asm_core::{
    CachePolicy, Component, EpochAssignment, EstimatorSet, MemPolicy, PrefetchConfig, QosConfig,
    System, SystemConfig, ThrottlePolicy, COMPONENTS,
};
use asm_dram::SchedulerKind;
use asm_simcore::AppId;
use asm_workloads::suite;
use proptest::prelude::*;

/// A pool spanning the suite's intensity range (same as the skip sweep).
const POOL: &[&str] = &[
    "mcf_like",
    "libquantum_like",
    "soplex_like",
    "gcc_like",
    "h264ref_like",
    "povray_like",
];

const QUANTA: &[u64] = &[20_000, 60_000];
const EPOCHS: &[u64] = &[500, 1_000, 2_500];

fn profiles(app_ix: &[usize]) -> Vec<asm_cpu::AppProfile> {
    app_ix
        .iter()
        .map(|&i| suite::by_name(POOL[i]).expect("pool name exists in suite"))
        .collect()
}

/// Everything the shared simulation observes, floats as bit patterns.
/// The attribution artefacts are deliberately excluded: the on/off
/// comparison digests the *simulation*, which attribution must never
/// perturb.
fn digest(sys: &System, n: usize) -> String {
    let mut out = String::new();
    for i in 0..n {
        out.push_str(&format!("ret{i}={} ", sys.retired(AppId::new(i))));
    }
    for r in sys.records() {
        let car: Vec<u64> = r.car_shared.iter().map(|v| v.to_bits()).collect();
        out.push_str(&format!("[car={car:?}"));
        for (name, est) in &r.estimates {
            let bits: Vec<u64> = est.iter().map(|v| v.to_bits()).collect();
            out.push_str(&format!(" {name}={bits:?}"));
        }
        out.push_str(&format!(
            " part={:?} intf={:?}]",
            r.partition, r.interference_cycles
        ));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_quantum_conserves_cycles_exactly(
        app_ix in prop::collection::vec(0usize..6, 2..4),
        q_ix in 0usize..2,
        e_ix in 0usize..3,
        est_ix in 0usize..3,
        cache_ix in 0usize..5,
        mem_ix in 0usize..2,
        sched_ix in 0usize..3,
        assign_ix in 0usize..2,
        throttle in 0u8..2,
        prefetch in 0u8..2,
        skip in 0u8..2,
        seed in 0u64..1_000_000,
        extra_thirds in 1u64..7,
    ) {
        let mut config = SystemConfig::default();
        config.quantum = QUANTA[q_ix];
        config.epoch = EPOCHS[e_ix];
        config.estimators =
            [EstimatorSet::asm_only(), EstimatorSet::all(), EstimatorSet::none()][est_ix].clone();
        config.cache_policy = [
            CachePolicy::None,
            CachePolicy::AsmCache,
            CachePolicy::Ucp,
            CachePolicy::NaiveQos(AppId::new(0)),
            CachePolicy::AsmQos(QosConfig { target: AppId::new(0), bound: 3.0 }),
        ][cache_ix];
        config.mem_policy = [MemPolicy::Uniform, MemPolicy::SlowdownWeighted][mem_ix];
        config.scheduler =
            [SchedulerKind::FrFcfs, SchedulerKind::Tcm, SchedulerKind::Bliss][sched_ix];
        config.epoch_assignment =
            [EpochAssignment::Probabilistic, EpochAssignment::RoundRobin][assign_ix];
        if throttle == 1 {
            config.throttle_policy = ThrottlePolicy::Fst { unfairness_threshold: 1.4 };
        }
        if prefetch == 1 {
            config.prefetcher = Some(PrefetchConfig::default());
        }
        config.skip_mode = skip == 1;
        config.seed = seed;
        config.validate();

        let n = app_ix.len();
        let apps = profiles(&app_ix);
        let cycles = config.quantum + extra_thirds * config.quantum / 3;

        let mut sys = System::new(&apps, config.clone());
        sys.enable_attribution();
        sys.run_for(cycles);

        let quanta = sys.attrib_quanta().expect("attribution on").to_vec();
        prop_assert!(!quanta.is_empty(), "no quantum finalized");
        for (qi, q) in quanta.iter().enumerate() {
            prop_assert!(q.conserved(), "quantum {} violates conservation", qi);
            let quantum = q.end - q.start;
            for v in 0..n {
                let ledger_row: u64 =
                    Component::ALL.iter().map(|&c| q.component(v, c)).sum();
                prop_assert_eq!(
                    ledger_row, quantum,
                    "quantum {} app {}: ledger row {} != quantum {}",
                    qi, v, ledger_row, quantum
                );
                let blame_row: u64 = (0..n).map(|o| q.blamed(v, o)).sum();
                prop_assert_eq!(
                    blame_row, quantum,
                    "quantum {} app {}: blame row {} != quantum {}",
                    qi, v, blame_row, quantum
                );
                let interference: u64 = Component::ALL
                    .iter()
                    .filter(|c| c.is_interference())
                    .map(|&c| q.component(v, c))
                    .sum();
                let off_diag: u64 =
                    (0..n).filter(|&o| o != v).map(|o| q.blamed(v, o)).sum();
                prop_assert_eq!(
                    off_diag, interference,
                    "quantum {} app {}: blame off-diagonal {} != interference {}",
                    qi, v, off_diag, interference
                );
                prop_assert_eq!(q.blamed(v, v), quantum - interference);
            }
        }

        // Whole-run reconciliation with the per-request charge counters.
        let totals = sys.attrib_totals().expect("attribution on");
        for v in 0..n {
            let dram_cause: u64 = [
                Component::DramWriteDrain,
                Component::DramFrfcfs,
                Component::DramBankConflict,
            ]
            .iter()
            .map(|&c| totals[v * COMPONENTS + c.index()])
            .sum();
            let charged: u64 = sys
                .records()
                .iter()
                .map(|r| r.interference_cycles[v])
                .sum();
            prop_assert!(
                dram_cause <= charged,
                "app {}: ledger DRAM-cause interference {} exceeds charges {}",
                v, dram_cause, charged
            );
        }

        // The observer guarantee: the same run without attribution is
        // bitwise identical.
        let mut plain = System::new(&apps, config);
        plain.run_for(cycles);
        prop_assert_eq!(
            digest(&sys, n), digest(&plain, n),
            "attribution changed the simulation (apps {:?}, seed {})",
            app_ix, seed
        );
    }
}
