//! Deterministic system checkpoints: fork-shared warmups and resumable
//! sweeps (DESIGN.md §11).
//!
//! A [`System`] is a pure function of its configuration, workload, and
//! cycle count, so its complete dynamic state at any cycle can be written
//! once and replayed into any number of continuations. Two campaign-level
//! optimisations build on that:
//!
//! * **Fork-shared warmups.** The cache/memory/throttle policies act only
//!   inside the quantum boundary (`end_quantum`); every cycle in between
//!   is policy-blind. [`System::run_prefix`] exploits this by leaving a
//!   quantum that completes exactly at the end of the run *unfinalised*,
//!   so a first-quantum warmup simulated under the [`prefix_config`] —
//!   the member configuration with all three policies neutralised — is
//!   bitwise-identical to the first quantum of *every* member
//!   configuration's own cold run. The sweep planner simulates that
//!   prefix once, snapshots it, and forks the snapshot into each member;
//!   the deferred boundary then fires as the first step of each
//!   continuation, under the continuation's own policies.
//! * **Resumable sweeps.** Snapshots and per-run result manifests are
//!   written atomically under a checkpoint directory, so a campaign
//!   killed mid-flight resumes from completed work with byte-identical
//!   output.
//!
//! Snapshots carry a caller-provided key — [`Runner::warmup_key`] folds
//! the prefix-relevant configuration hash, the workload mix, and the
//! telemetry switch — and are rejected on any mismatch, so a stale file
//! can only fail to speed things up, never change results.
//!
//! [`Runner::warmup_key`]: crate::runner::Runner::warmup_key

use asm_cpu::AppProfile;
use asm_simcore::persist::{PersistError, StateReader, StateWriter};
use asm_simcore::{Cycle, Histogram};

use crate::config::{CachePolicy, MemPolicy, SystemConfig, ThrottlePolicy};
use crate::runner::{QuantumResult, RunResult};
use crate::system::System;

/// Format name of a binary warmup snapshot. Bump [`SNAPSHOT_VERSION`] on
/// any change to [`System::save_state`]'s layout.
pub const SNAPSHOT_FORMAT: &str = "asm-snapshot";
/// Version of [`SNAPSHOT_FORMAT`].
/// v2: appended the attribution presence flag (and ledger state when on)
/// after the telemetry section.
pub const SNAPSHOT_VERSION: u32 = 2;

/// Format name of a binary per-run result manifest.
pub const MANIFEST_FORMAT: &str = "asm-run-manifest";
/// Version of [`MANIFEST_FORMAT`].
pub const MANIFEST_VERSION: u32 = 1;

/// The prefix-relevant configuration: `config` with the three
/// quantum-boundary policies neutralised. Configurations that agree on
/// this derivation share one warmup trajectory (see the module docs);
/// everything else — geometries, estimators, epochs, seed, scheduler —
/// stays, because it shapes the simulation from cycle 0.
#[must_use]
pub fn prefix_config(config: &SystemConfig) -> SystemConfig {
    let mut c = config.clone();
    c.cache_policy = CachePolicy::None;
    c.mem_policy = MemPolicy::Uniform;
    c.throttle_policy = ThrottlePolicy::None;
    c
}

/// Canonical signature of a workload mix: profile names joined by `+`
/// (slot order matters — the same profiles in different slots are a
/// different simulation).
#[must_use]
pub fn mix_signature(apps: &[AppProfile]) -> String {
    apps.iter()
        .map(AppProfile::name)
        .collect::<Vec<_>>()
        .join("+")
}

/// Serializes a warmed system into a snapshot artefact tagged with `key`
/// and the warm cycle count. The system must have been advanced with
/// [`System::run_prefix`] (boundary deferred) and must not be tracing —
/// the sim-time tracer is deliberately outside the snapshot.
#[must_use]
pub fn capture(sys: &System, key: u64, warm_cycles: Cycle) -> Vec<u8> {
    let mut w = StateWriter::new(SNAPSHOT_FORMAT, SNAPSHOT_VERSION);
    w.u64(key);
    w.u64(warm_cycles);
    sys.save_state(&mut w);
    w.finish()
}

/// Restores a snapshot produced by [`capture`] into a freshly constructed
/// system and returns the warm cycle count it covers.
///
/// # Errors
///
/// [`PersistError::BadHeader`] / [`PersistError::StaleVersion`] for
/// foreign or outdated artefacts, [`PersistError::Corrupt`] when the key
/// does not match (a snapshot of a different configuration, mix, or
/// telemetry switch) or the state does not fit `sys`'s structure.
pub fn resume(bytes: &[u8], key: u64, sys: &mut System) -> Result<Cycle, PersistError> {
    let mut r = StateReader::new(bytes, SNAPSHOT_FORMAT, SNAPSHOT_VERSION)?;
    let found = r.u64()?;
    if found != key {
        return Err(PersistError::Corrupt(format!(
            "snapshot key {found:016x} does not match expected {key:016x}"
        )));
    }
    let warm_cycles = r.u64()?;
    sys.restore_state(&mut r)?;
    r.finish()?;
    Ok(warm_cycles)
}

/// Reads the key a snapshot was captured under without restoring it.
/// The header, version and whole-payload checksum are still validated,
/// so a `Ok` return means the artefact is intact and current — the sweep
/// planner uses this to decide whether an on-disk warmup file can serve
/// a campaign's group before handing it to every member.
///
/// # Errors
///
/// The same header/version/damage errors as [`resume`].
pub fn peek_key(bytes: &[u8]) -> Result<u64, PersistError> {
    let mut r = StateReader::new(bytes, SNAPSHOT_FORMAT, SNAPSHOT_VERSION)?;
    r.u64()
}

fn save_hist(w: &mut StateWriter, h: Option<&Histogram>) {
    w.bool(h.is_some());
    if let Some(h) = h {
        h.save_state(w);
    }
}

fn read_hist(r: &mut StateReader<'_>) -> Result<Option<Histogram>, PersistError> {
    Ok(if r.bool()? {
        Some(Histogram::restore_from(r)?)
    } else {
        None
    })
}

/// Serializes a completed [`RunResult`] as a manifest tagged with `key`,
/// for `--resume`. Floats travel as bit patterns (NaN ground truth
/// included), so a reloaded result is bitwise-identical to the simulated
/// one.
///
/// # Errors
///
/// [`PersistError::Corrupt`] when the result carries telemetry —
/// manifests cover plain runs only (the telemetry artefacts are written
/// by the sink, per run, and are not replayable from a manifest).
pub fn save_manifest(result: &RunResult, key: u64) -> Result<Vec<u8>, PersistError> {
    if result.telemetry.is_some() {
        return Err(PersistError::Corrupt(
            "telemetry runs are not manifest-eligible".to_owned(),
        ));
    }
    if result.attribution.is_some() {
        return Err(PersistError::Corrupt(
            "attribution runs are not manifest-eligible".to_owned(),
        ));
    }
    let mut w = StateWriter::new(MANIFEST_FORMAT, MANIFEST_VERSION);
    w.u64(key);
    w.usize(result.app_names.len());
    for name in &result.app_names {
        w.str(name);
    }
    w.usize(result.quanta.len());
    for q in &result.quanta {
        w.usize(q.estimates.len());
        for (name, est) in &q.estimates {
            w.str(name);
            w.f64_slice(est);
        }
        w.f64_slice(&q.actual);
        w.f64_slice(&q.car_shared);
        w.bool(q.partition.is_some());
        if let Some(p) = &q.partition {
            w.usize(p.len());
            for &ways in p {
                w.usize(ways);
            }
        }
    }
    w.f64_slice(&result.whole_run_slowdowns);
    save_hist(&mut w, result.alone_latency_hist.as_ref());
    w.usize(result.estimator_latency_hists.len());
    for (name, h) in &result.estimator_latency_hists {
        w.str(name);
        h.save_state(&mut w);
    }
    Ok(w.finish())
}

/// Reloads a manifest written by [`save_manifest`], validating `key`.
///
/// # Errors
///
/// Header/version/checksum errors from the reader; `Corrupt` on a key
/// mismatch or any structural inconsistency.
pub fn load_manifest(bytes: &[u8], key: u64) -> Result<RunResult, PersistError> {
    let corrupt = |what: &str| PersistError::Corrupt(what.to_owned());
    let mut r = StateReader::new(bytes, MANIFEST_FORMAT, MANIFEST_VERSION)?;
    let found = r.u64()?;
    if found != key {
        return Err(PersistError::Corrupt(format!(
            "manifest key {found:016x} does not match expected {key:016x}"
        )));
    }
    let n = r.checked_len(1)?;
    let app_names: Vec<String> = (0..n)
        .map(|_| r.str().map(str::to_owned))
        .collect::<Result<_, _>>()?;
    let quanta_len = r.checked_len(1)?;
    let mut quanta = Vec::with_capacity(quanta_len);
    for _ in 0..quanta_len {
        let est_len = r.checked_len(1)?;
        let mut estimates = Vec::with_capacity(est_len);
        for _ in 0..est_len {
            let name = r.str()?.to_owned();
            let est = r.f64_vec()?;
            if est.len() != n {
                return Err(corrupt("estimate length does not match app count"));
            }
            estimates.push((name, est));
        }
        let actual = r.f64_vec()?;
        let car_shared = r.f64_vec()?;
        if actual.len() != n || car_shared.len() != n {
            return Err(corrupt("quantum vector length does not match app count"));
        }
        let partition = if r.bool()? {
            let ways = r.checked_len(8)?;
            Some((0..ways).map(|_| r.usize()).collect::<Result<Vec<_>, _>>()?)
        } else {
            None
        };
        quanta.push(QuantumResult {
            estimates,
            actual,
            car_shared,
            partition,
        });
    }
    let whole_run_slowdowns = r.f64_vec()?;
    if whole_run_slowdowns.len() != n {
        return Err(corrupt("whole-run vector length does not match app count"));
    }
    let alone_latency_hist = read_hist(&mut r)?;
    let hists = r.checked_len(1)?;
    let estimator_latency_hists = (0..hists)
        .map(|_| Ok((r.str()?.to_owned(), Histogram::restore_from(&mut r)?)))
        .collect::<Result<Vec<_>, PersistError>>()?;
    r.finish()?;
    Ok(RunResult {
        app_names,
        quanta,
        whole_run_slowdowns,
        alone_latency_hist,
        estimator_latency_hists,
        telemetry: None,
        attribution: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EstimatorSet;
    use crate::runner::Runner;
    use asm_workloads::suite;

    fn config() -> SystemConfig {
        let mut c = SystemConfig::default();
        c.quantum = 50_000;
        c.epoch = 1_000;
        c.estimators = EstimatorSet::asm_only();
        c
    }

    fn apps() -> Vec<AppProfile> {
        vec![
            suite::by_name("mcf_like").unwrap(),
            suite::by_name("h264ref_like").unwrap(),
        ]
    }

    #[test]
    fn prefix_config_neutralises_exactly_the_boundary_policies() {
        let mut c = config();
        c.cache_policy = CachePolicy::AsmCache;
        c.mem_policy = MemPolicy::SlowdownWeighted;
        c.throttle_policy = ThrottlePolicy::Fst {
            unfairness_threshold: 1.4,
        };
        let p = prefix_config(&c);
        assert_eq!(p.cache_policy, CachePolicy::None);
        assert_eq!(p.mem_policy, MemPolicy::Uniform);
        assert_eq!(p.throttle_policy, ThrottlePolicy::None);
        // Everything else must survive: neutralising twice is idempotent
        // and equals neutralising the already-neutral base.
        assert_eq!(
            crate::runner::config_hash(&prefix_config(&p)),
            crate::runner::config_hash(&prefix_config(&config()))
        );
    }

    #[test]
    fn mix_signature_is_slot_ordered() {
        let a = apps();
        let mut b = apps();
        b.reverse();
        assert_eq!(mix_signature(&a), "mcf_like+h264ref_like");
        assert_ne!(mix_signature(&a), mix_signature(&b));
    }

    #[test]
    fn snapshot_rejects_wrong_key_and_damage() {
        let apps = apps();
        let runner = Runner::new(config());
        let snap = runner.warm_snapshot(&apps, crate::runner::RunOptions::default());
        let key = runner.warmup_key(&apps, crate::runner::RunOptions::default());

        let mut sys = System::new(&apps, config());
        assert!(matches!(
            resume(&snap, key ^ 1, &mut sys),
            Err(PersistError::Corrupt(_))
        ));
        let mut sys = System::new(&apps, config());
        assert!(resume(&snap[..snap.len() - 3], key, &mut sys).is_err());
        let mut flipped = snap.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        let mut sys = System::new(&apps, config());
        assert!(resume(&flipped, key, &mut sys).is_err());
    }

    fn assert_results_bitwise_equal(a: &RunResult, b: &RunResult) {
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(a.app_names, b.app_names);
        assert_eq!(a.quanta.len(), b.quanta.len());
        for (qa, qb) in a.quanta.iter().zip(&b.quanta) {
            assert_eq!(qa.estimates.len(), qb.estimates.len());
            for ((n1, e1), (n2, e2)) in qa.estimates.iter().zip(&qb.estimates) {
                assert_eq!(n1, n2);
                assert_eq!(bits(e1), bits(e2));
            }
            assert_eq!(bits(&qa.actual), bits(&qb.actual));
            assert_eq!(bits(&qa.car_shared), bits(&qb.car_shared));
            assert_eq!(qa.partition, qb.partition);
        }
        assert_eq!(bits(&a.whole_run_slowdowns), bits(&b.whole_run_slowdowns));
        assert_eq!(a.alone_latency_hist, b.alone_latency_hist);
        assert_eq!(a.estimator_latency_hists, b.estimator_latency_hists);
    }

    #[test]
    fn one_warmup_forks_into_every_policy_bitwise() {
        use crate::runner::RunOptions;
        let apps = apps();
        // One snapshot, taken under the neutral prefix configuration,
        // serves members that differ (only) in their boundary policies.
        let snap = Runner::new(config()).warm_snapshot(&apps, RunOptions::default());
        let members = [
            (CachePolicy::None, MemPolicy::Uniform),
            (CachePolicy::Ucp, MemPolicy::Uniform),
            (CachePolicy::AsmCache, MemPolicy::Uniform),
            (CachePolicy::AsmCache, MemPolicy::SlowdownWeighted),
        ];
        for (cache, mem) in members {
            let mut c = config();
            c.cache_policy = cache;
            c.mem_policy = mem;
            let runner = Runner::new(c);
            let cold = runner.run(&apps, 150_000);
            let forked = runner
                .run_with_snapshot(&apps, 150_000, RunOptions::default(), &snap)
                .expect("every member shares the warmup key");
            assert_results_bitwise_equal(&cold, &forked);
        }
    }

    #[test]
    fn warmup_key_shared_across_policies_but_not_hardware_or_mix() {
        use crate::runner::RunOptions;
        let apps = apps();
        let opts = RunOptions::default();
        let base = Runner::new(config()).warmup_key(&apps, opts);
        let mut with_policy = config();
        with_policy.cache_policy = CachePolicy::AsmCache;
        with_policy.throttle_policy = ThrottlePolicy::Fst {
            unfairness_threshold: 1.4,
        };
        assert_eq!(Runner::new(with_policy).warmup_key(&apps, opts), base);

        let mut other_hw = config();
        other_hw.epoch = 2_000;
        assert_ne!(Runner::new(other_hw).warmup_key(&apps, opts), base);

        let mut rev = apps.clone();
        rev.reverse();
        assert_ne!(Runner::new(config()).warmup_key(&rev, opts), base);
        let telem = RunOptions {
            telemetry: true,
            trace_sample: None,
            attrib: false,
        };
        assert_ne!(Runner::new(config()).warmup_key(&apps, telem), base);
        let attrib = RunOptions {
            telemetry: false,
            trace_sample: None,
            attrib: true,
        };
        assert_ne!(Runner::new(config()).warmup_key(&apps, attrib), base);
    }

    #[test]
    fn snapshot_attrib_flag_must_match_and_ledger_rides_the_fork() {
        use crate::runner::RunOptions;
        let runner = Runner::new(config());
        let on = RunOptions {
            telemetry: false,
            trace_sample: None,
            attrib: true,
        };
        let snap_on = runner.warm_snapshot(&apps(), on);
        let snap_off = runner.warm_snapshot(&apps(), RunOptions::default());
        // Mismatched attribution state can never restore (the warmup key
        // embeds the flag, and the snapshot body double-checks it).
        assert!(runner
            .run_with_snapshot(&apps(), 150_000, RunOptions::default(), &snap_on)
            .is_err());
        assert!(runner
            .run_with_snapshot(&apps(), 150_000, on, &snap_off)
            .is_err());
        // Matching flags fork fine; the warm quantum's ledger rides along
        // and the forked run's attribution is bit-identical to a cold one.
        let forked = runner
            .run_with_snapshot(&apps(), 150_000, on, &snap_on)
            .expect("matching flags restore");
        let cold = runner.run_with(&apps(), 150_000, on);
        let fa = forked.attribution.expect("attribution attached");
        let ca = cold.attribution.expect("attribution attached");
        assert_eq!(fa.quanta.len(), 3);
        assert_eq!(fa.totals, ca.totals);
        assert_eq!(fa.blame, ca.blame);
        for (f, c) in fa.quanta.iter().zip(&ca.quanta) {
            assert_eq!(f.ledger, c.ledger);
            assert_eq!(f.blame, c.blame);
        }
    }

    #[test]
    fn manifest_round_trips_bitwise_and_validates_key() {
        let mut c = config();
        c.latency_hist = Some((50.0, 40));
        c.cache_policy = CachePolicy::AsmCache;
        let runner = Runner::new(c);
        let result = runner.run(&apps(), 150_000);

        let bytes = save_manifest(&result, 7).expect("plain run is eligible");
        let back = load_manifest(&bytes, 7).expect("roundtrip");
        assert_eq!(back.app_names, result.app_names);
        assert_eq!(back.quanta.len(), result.quanta.len());
        for (a, b) in result.quanta.iter().zip(&back.quanta) {
            assert_eq!(a.estimates.len(), b.estimates.len());
            for ((n1, e1), (n2, e2)) in a.estimates.iter().zip(&b.estimates) {
                assert_eq!(n1, n2);
                let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(e1), bits(e2));
            }
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&a.actual), bits(&b.actual));
            assert_eq!(bits(&a.car_shared), bits(&b.car_shared));
            assert_eq!(a.partition, b.partition);
        }
        assert_eq!(result.alone_latency_hist, back.alone_latency_hist);
        assert_eq!(
            result.estimator_latency_hists,
            back.estimator_latency_hists
        );

        assert!(matches!(
            load_manifest(&bytes, 8),
            Err(PersistError::Corrupt(_))
        ));
        assert!(load_manifest(&bytes[..bytes.len() - 1], 7).is_err());
    }

    #[test]
    fn telemetry_runs_are_not_manifest_eligible() {
        let runner = Runner::new(config());
        let opts = crate::runner::RunOptions {
            telemetry: true,
            trace_sample: None,
            attrib: false,
        };
        let result = runner.run_with(&apps(), 100_000, opts);
        assert!(matches!(
            save_manifest(&result, 1),
            Err(PersistError::Corrupt(_))
        ));
    }
}
