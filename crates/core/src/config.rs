//! Whole-system configuration (Table 2 defaults).

use asm_cache::CacheGeometry;
use asm_dram::{DramConfig, SchedulerKind};
use asm_simcore::{AppId, Cycle};

/// Stride-prefetcher configuration (Figure 5 uses degree 4, distance 24).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchConfig {
    /// Prefetches issued per trigger.
    pub degree: u32,
    /// How many lines ahead of the demand stream to prefetch.
    pub distance: u32,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        PrefetchConfig {
            degree: 4,
            distance: 24,
        }
    }
}

/// Which slowdown estimators to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EstimatorSet {
    /// The paper's Application Slowdown Model.
    pub asm: bool,
    /// Fairness via Source Throttling \[15\].
    pub fst: bool,
    /// Per-Thread Cycle Accounting \[14\].
    pub ptca: bool,
    /// MISE \[66\] (memory interference only; §6.4).
    pub mise: bool,
    /// STFM's slowdown model \[46\] (memory interference only,
    /// per-request; §2.1).
    pub stfm: bool,
}

impl EstimatorSet {
    /// No estimators at all (pure-baseline runs).
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Only ASM.
    #[must_use]
    pub fn asm_only() -> Self {
        EstimatorSet {
            asm: true,
            ..Self::default()
        }
    }

    /// The accuracy-comparison set of Figures 2-8 (ASM, FST, PTCA, MISE).
    #[must_use]
    pub fn all() -> Self {
        EstimatorSet {
            asm: true,
            fst: true,
            ptca: true,
            mise: true,
            stfm: false,
        }
    }

    /// Every implemented estimator, including STFM.
    #[must_use]
    pub fn everything() -> Self {
        EstimatorSet {
            stfm: true,
            ..Self::all()
        }
    }
}

/// Soft-slowdown-guarantee parameters (§7.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosConfig {
    /// The application of interest.
    pub target: AppId,
    /// The slowdown bound to satisfy (e.g. 2.5 for ASM-QoS-2.5).
    pub bound: f64,
}

/// The shared-cache allocation policy applied at each quantum boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CachePolicy {
    /// No partitioning (free-for-all LRU).
    None,
    /// Utility-based Cache Partitioning \[56\]: miss-count utility.
    Ucp,
    /// MLP- and cache-friendliness-aware quasi-partitioning \[27\]
    /// (simplified; see `mech::mcfq`).
    Mcfq,
    /// ASM-Cache (§7.1): marginal *slowdown* utility from ASM estimates.
    AsmCache,
    /// ASM-QoS (§7.3): smallest allocation meeting the target's bound,
    /// ASM-Cache for the rest.
    AsmQos(QosConfig),
    /// Naive-QoS (§7.3): all ways to the target application.
    NaiveQos(AppId),
}

/// How epochs are assigned to applications (§4.2, §7.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemPolicy {
    /// Every application equally likely per epoch (plain ASM).
    Uniform,
    /// Probability proportional to estimated slowdown (ASM-Mem, §7.2).
    SlowdownWeighted,
}

/// Source-throttling policy applied at quantum boundaries (§8; FST's
/// actuator).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThrottlePolicy {
    /// No throttling.
    None,
    /// FST: when estimated unfairness exceeds the threshold, throttle the
    /// least-slowed-down application's outstanding-miss budget one level.
    Fst {
        /// Unfairness (max/min slowdown) trigger (FST uses ~1.4).
        unfairness_threshold: f64,
    },
}

/// How the epoch owner is drawn (§4.2 notes that round-robin "could also
/// achieve similar effects"; ASM uses probabilistic assignment so ASM-Mem
/// can be built on top).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochAssignment {
    /// Sample the owner from the (possibly slowdown-weighted) distribution.
    Probabilistic,
    /// Strict rotation; ignores weights (ablation only).
    RoundRobin,
}

/// Full system configuration. Defaults reproduce Table 2's main
/// configuration: 5.3 GHz 3-wide cores with 128-entry windows, 64 KB 4-way
/// private L1s (1-cycle), a 2 MB 16-way shared LLC (20-cycle), and
/// 1-channel DDR3-1333 with FR-FCFS, plus the paper's ASM parameters
/// (Q = 5 M cycles, E = 10 k cycles, 64-set sampled ATS).
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Private L1 geometry (64 KB, 4-way).
    pub l1_geometry: CacheGeometry,
    /// L1 hit latency in cycles.
    pub l1_latency: Cycle,
    /// Shared last-level cache geometry (2 MB, 16-way).
    pub llc_geometry: CacheGeometry,
    /// LLC hit latency in cycles.
    pub llc_latency: Cycle,
    /// Main-memory configuration.
    pub dram: DramConfig,
    /// Memory-scheduling policy.
    pub scheduler: SchedulerKind,
    /// Quantum length Q in cycles.
    pub quantum: Cycle,
    /// Epoch length E in cycles.
    pub epoch: Cycle,
    /// Whether epoch prioritisation runs at all (off for pure-baseline
    /// scheduler comparisons).
    pub epochs_enabled: bool,
    /// Auxiliary-tag-store sampling: `None` = full ATS, `Some(n)` = `n`
    /// sampled sets (§4.4; the paper's default is 64).
    pub ats_sampled_sets: Option<usize>,
    /// Pollution-filter size in bits (per application, for FST).
    pub pollution_filter_bits: usize,
    /// Optional stride prefetcher (Figure 5).
    pub prefetcher: Option<PrefetchConfig>,
    /// Which estimators to run.
    pub estimators: EstimatorSet,
    /// Cache-allocation mechanism.
    pub cache_policy: CachePolicy,
    /// Epoch-assignment (bandwidth-partitioning) mechanism.
    pub mem_policy: MemPolicy,
    /// How the epoch owner is drawn.
    pub epoch_assignment: EpochAssignment,
    /// Source-throttling mechanism.
    pub throttle_policy: ThrottlePolicy,
    /// Whether ASM applies the §4.3 memory-queueing-delay correction
    /// (ablation switch; the paper's model has it on).
    pub asm_queueing_correction: bool,
    /// Deterministic fast-forward: when no component can change state
    /// before cycle `now + k`, advance the clock by `k` in one jump
    /// instead of ticking `k` times. Bitwise-exact — the same
    /// [`crate::QuantumRecord`]s, estimator outputs and CSV bytes as the
    /// cycle-by-cycle loop (pinned by the skip-equivalence tests; see
    /// DESIGN.md §8). Default on; `--no-skip` in `asm-experiments` turns
    /// it off.
    pub skip_mode: bool,
    /// Master seed: the whole simulation is a pure function of this (plus
    /// the workload).
    pub seed: u64,
    /// Milestone interval (instructions) for alone-run progress logs.
    pub progress_interval: u64,
    /// When set, estimators collect alone-miss-latency histograms with the
    /// given (bucket width in cycles, bucket count) — Figure 6.
    pub latency_hist: Option<(f64, usize)>,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            l1_geometry: CacheGeometry::from_capacity(64 * 1024, 4),
            l1_latency: 1,
            llc_geometry: CacheGeometry::from_capacity(2 * 1024 * 1024, 16),
            llc_latency: 20,
            dram: DramConfig::default(),
            scheduler: SchedulerKind::FrFcfs,
            quantum: 5_000_000,
            epoch: 10_000,
            epochs_enabled: true,
            ats_sampled_sets: Some(64),
            pollution_filter_bits: 1 << 14,
            prefetcher: None,
            estimators: EstimatorSet::asm_only(),
            cache_policy: CachePolicy::None,
            mem_policy: MemPolicy::Uniform,
            epoch_assignment: EpochAssignment::Probabilistic,
            throttle_policy: ThrottlePolicy::None,
            asm_queueing_correction: true,
            skip_mode: true,
            seed: 1,
            progress_interval: 1_000,
            latency_hist: None,
        }
    }
}

impl SystemConfig {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the epoch does not divide the quantum, or the ATS sample
    /// count does not divide the LLC set count.
    pub fn validate(&self) {
        assert!(
            self.epoch > 0 && self.quantum > 0,
            "Q and E must be positive"
        );
        assert!(
            self.quantum.is_multiple_of(self.epoch),
            "epoch length must divide quantum length"
        );
        if let Some(n) = self.ats_sampled_sets {
            assert!(
                n > 0 && self.llc_geometry.sets().is_multiple_of(n),
                "ATS sample count must divide LLC set count"
            );
        }
        assert!(
            self.pollution_filter_bits.is_power_of_two(),
            "pollution filter bits must be a power of two"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table2() {
        let c = SystemConfig::default();
        assert_eq!(c.llc_geometry.capacity_bytes(), 2 * 1024 * 1024);
        assert_eq!(c.llc_geometry.ways(), 16);
        assert_eq!(c.l1_geometry.capacity_bytes(), 64 * 1024);
        assert_eq!(c.quantum, 5_000_000);
        assert_eq!(c.epoch, 10_000);
        assert_eq!(c.ats_sampled_sets, Some(64));
        c.validate();
    }

    #[test]
    #[should_panic(expected = "divide quantum")]
    fn validate_rejects_misaligned_epoch() {
        let mut c = SystemConfig::default();
        c.epoch = 7_000;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "ATS sample count")]
    fn validate_rejects_bad_ats_sampling() {
        let mut c = SystemConfig::default();
        c.ats_sampled_sets = Some(100);
        c.validate();
    }

    #[test]
    fn estimator_sets() {
        assert!(EstimatorSet::asm_only().asm);
        assert!(!EstimatorSet::asm_only().fst);
        let all = EstimatorSet::all();
        assert!(all.asm && all.fst && all.ptca && all.mise);
    }
}
