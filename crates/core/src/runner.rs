//! The experiment runner: pairs a shared run with per-application alone
//! runs to compute ground-truth slowdowns (§5, Metrics).
//!
//! "Actual slowdown" for a quantum is `IPC_alone / IPC_shared` *for the
//! same amount of work*: the alone-run cycle cost of the instruction window
//! the shared run retired in that quantum, read off the alone run's
//! [`asm_cpu::ProgressLog`].
//!
//! Alone runs are cached in an [`AloneCache`] keyed by
//! `(profile, slot, alone config)`, so sweeping many shared workloads that
//! reuse applications does not repeat alone simulations. The cache is
//! thread-safe and can be shared across [`Runner`]s — the parallel
//! experiment harness hands one cache to every worker so concurrent
//! workloads never repeat an alone simulation either.

use std::collections::BTreeMap;
use std::sync::Arc;
// asm-lint: allow(R6): the alone-run cache is the one sanctioned lock in
// simulation code; see `AloneCache` for why it cannot leak nondeterminism
use std::sync::Mutex;

use asm_attrib::QuantumLedger;
use asm_cpu::{AppProfile, ProgressLog};
use asm_metrics::SlowdownSample;
use asm_simcore::hash::DetHasher;
use asm_simcore::persist::{self, PersistError};
use asm_simcore::{AppId, Cycle, Histogram};
use asm_telemetry::names;

use crate::checkpoint;
use crate::config::{CachePolicy, EstimatorSet, MemPolicy, SystemConfig};
use crate::system::{RunTelemetry, System};

/// One quantum's estimates and ground truth.
#[derive(Debug, Clone)]
pub struct QuantumResult {
    /// Slowdown estimates per estimator `(name, per-app)`.
    pub estimates: Vec<(String, Vec<f64>)>,
    /// Measured slowdown per application (NaN when the application retired
    /// nothing in the quantum).
    pub actual: Vec<f64>,
    /// Measured `CAR_shared` per application.
    pub car_shared: Vec<f64>,
    /// Way partition applied at this quantum's end, if any.
    pub partition: Option<Vec<usize>>,
}

/// The outcome of one workload run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Profile names per application slot.
    pub app_names: Vec<String>,
    /// Per-quantum results.
    pub quanta: Vec<QuantumResult>,
    /// Whole-run measured slowdown per application (alone cycles for the
    /// total work divided by total shared cycles).
    pub whole_run_slowdowns: Vec<f64>,
    /// Measured alone miss-latency distribution, merged over applications
    /// (present when `latency_hist` is configured).
    pub alone_latency_hist: Option<Histogram>,
    /// Estimated alone miss-latency distributions per estimator, from the
    /// shared run.
    pub estimator_latency_hists: Vec<(String, Histogram)>,
    /// Counter/series/trace artefacts (`Some` only when the run was made
    /// with [`RunOptions::telemetry`]; alone runs are never instrumented).
    pub telemetry: Option<RunTelemetry>,
    /// Ground-truth cycle attribution (`Some` only when the run was made
    /// with [`RunOptions::attrib`]; alone runs never attribute — there is
    /// no co-runner to blame).
    pub attribution: Option<RunAttribution>,
}

/// The ground-truth attribution artefacts of one shared run: every
/// finalized quantum's ledger/blame matrix plus whole-run totals.
#[derive(Debug, Clone)]
pub struct RunAttribution {
    /// Per-quantum ledgers, oldest first; each row sums exactly to the
    /// quantum length.
    pub quanta: Vec<QuantumLedger>,
    /// Whole-run component totals, app-major
    /// (`app_count × asm_attrib::COMPONENTS`).
    pub totals: Vec<Cycle>,
    /// Whole-run app×app blame totals, victim-major.
    pub blame: Vec<Cycle>,
}

impl RunResult {
    /// Flattens this run into `(estimated, actual)` samples for the named
    /// estimator, one per application per quantum (skipping quanta without
    /// valid ground truth).
    #[must_use]
    pub fn samples(&self, estimator: &str) -> Vec<SlowdownSample> {
        let mut out = Vec::new();
        for q in &self.quanta {
            let Some(est) = q
                .estimates
                .iter()
                .find(|(n, _)| n == estimator)
                .map(|(_, v)| v)
            else {
                continue;
            };
            for (i, (&e, &a)) in est.iter().zip(&q.actual).enumerate() {
                if a.is_finite() && a > 0.0 {
                    out.push(SlowdownSample {
                        app_name: self.app_names[i].clone(),
                        estimated: e,
                        actual: a,
                    });
                }
            }
        }
        out
    }

    /// Names of the estimators present in this run.
    #[must_use]
    pub fn estimator_names(&self) -> Vec<String> {
        self.quanta
            .first()
            .map(|q| q.estimates.iter().map(|(n, _)| n.clone()).collect())
            .unwrap_or_default()
    }
}

#[derive(Clone)]
struct AloneRecord {
    cycles: Cycle,
    progress: Arc<ProgressLog>,
    latency_hist: Option<Histogram>,
}

/// Cache key: `(profile name, slot, alone-config hash)`. The hash is
/// [`config_hash`] of the full alone [`SystemConfig`], so entries for
/// different hardware (or different seeds) never collide, and a persisted
/// cache from a different configuration is silently — and correctly —
/// never hit.
type AloneKey = (String, usize, u64);

/// Deterministic 64-bit fingerprint of a [`SystemConfig`], derived from
/// its complete `Debug` rendering: any field change (including added
/// fields) changes the hash.
#[must_use]
pub fn config_hash(config: &SystemConfig) -> u64 {
    use std::hash::Hasher as _;
    let mut h = DetHasher::default();
    h.write(format!("{config:?}").as_bytes());
    h.finish()
}

/// A thread-safe cache of alone runs, shareable across [`Runner`]s (and
/// across the threads of the parallel experiment harness).
///
/// Determinism argument: every entry is a pure function of its key plus
/// the requested cycle horizon — an alone run has no cross-application
/// state — and a longer record agrees with a shorter one on their common
/// prefix (a single-application simulation extended by more cycles never
/// rewrites its past). So the cache's contents cannot depend on lock
/// acquisition order: threads racing on the same key at worst duplicate
/// one alone simulation; they can never observe different results.
#[derive(Debug, Default)]
pub struct AloneCache {
    // asm-lint: allow(R6): guards a deterministic memo table (see the type
    // docs); lock order can change timing but never simulated results
    inner: Mutex<BTreeMap<AloneKey, AloneRecord>>,
}

impl AloneCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached alone runs.
    ///
    /// # Panics
    ///
    /// Panics if the cache lock is poisoned (a thread panicked while
    /// holding it — impossible short of allocation failure, since no user
    /// code runs under the lock).
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    // asm-lint: allow(R6): hands out the guard of the sanctioned cache
    // lock above; all uses stay inside this impl
    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<AloneKey, AloneRecord>> {
        self.inner
            .lock()
            .expect("alone-cache lock is never poisoned: no user code runs under it")
    }

    /// Returns the cached record for `key` if it covers at least `cycles`.
    fn get_at_least(&self, key: &AloneKey, cycles: Cycle) -> Option<AloneRecord> {
        self.lock().get(key).filter(|r| r.cycles >= cycles).cloned()
    }

    /// Inserts `rec` unless an entry with at least as many cycles already
    /// exists; returns the winning record either way.
    fn insert_or_keep_longer(&self, key: AloneKey, rec: AloneRecord) -> AloneRecord {
        let mut map = self.lock();
        match map.get(&key) {
            Some(existing) if existing.cycles >= rec.cycles => existing.clone(),
            _ => {
                map.insert(key, rec.clone());
                rec
            }
        }
    }

    /// Writes the cache to `path` in the versioned text format of
    /// [`Self::load_or_warn`], atomically (temp file + rename): a reader
    /// racing the write sees either the old cache or the new one, never a
    /// torn file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        persist::write_atomic(path, self.to_text().as_bytes())
    }

    /// Reads a cache previously written by [`Self::save_to`] under the
    /// workspace-wide warn-and-rebuild policy
    /// ([`persist::load_or_rebuild`]): a missing file starts empty
    /// silently; an unreadable, stale, or corrupt file starts empty with
    /// a warning string the caller surfaces on stderr (sim crates cannot
    /// print — lint rule R7).
    ///
    /// Entries are keyed by [`config_hash`] of the alone configuration
    /// they were simulated under, so a file recorded with different
    /// hardware parameters loads fine but never satisfies a lookup.
    #[must_use]
    pub fn load_or_warn(path: &std::path::Path) -> (AloneCache, Option<String>) {
        let (cache, warning) = persist::load_or_rebuild(path, |bytes| {
            let text = std::str::from_utf8(bytes)
                .map_err(|_| PersistError::Corrupt("cache file is not UTF-8".to_owned()))?;
            Self::parse(text)
        });
        (cache.unwrap_or_default(), warning)
    }

    /// Serializes to the on-disk text format. One `entry` line per record
    /// followed by its progress log and optional latency histogram; floats
    /// travel as IEEE-754 bit patterns so the roundtrip is bitwise exact.
    fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let map = self.lock();
        let mut out = String::new();
        out.push_str(&persist::text_header(ALONE_CACHE_NAME, ALONE_CACHE_VERSION));
        out.push('\n');
        for ((name, slot, cfg), rec) in map.iter() {
            // asm-lint: allow(R2): writing to a String cannot fail
            writeln!(out, "entry {name} {slot} {cfg:016x} {}", rec.cycles).expect("string write");
            write!(out, "progress {}", rec.progress.interval()).expect("string write");
            for c in rec.progress.milestone_cycles() {
                write!(out, " {c}").expect("string write");
            }
            out.push('\n');
            match &rec.latency_hist {
                Some(h) => {
                    write!(
                        out,
                        "hist {:016x} {}",
                        h.bucket_width().to_bits(),
                        h.overflow()
                    )
                    .expect("string write");
                    for i in 0..h.buckets() {
                        write!(out, " {}", h.bucket_count(i)).expect("string write");
                    }
                    out.push('\n');
                }
                None => out.push_str("hist none\n"),
            }
        }
        out
    }

    /// Strict parser for [`Self::to_text`]: the versioned header goes
    /// through [`persist::check_text_header`] (so a stale file reports as
    /// [`PersistError::StaleVersion`], not generic corruption) and any
    /// deviation in the body is an error so a truncated or hand-edited
    /// file cannot half-load.
    fn parse(text: &str) -> Result<AloneCache, PersistError> {
        let body = persist::check_text_header(text, ALONE_CACHE_NAME, ALONE_CACHE_VERSION)?;
        Self::parse_body(body).map_err(PersistError::Corrupt)
    }

    fn parse_body(body: &str) -> Result<AloneCache, String> {
        let mut lines = body.lines();
        let cache = AloneCache::new();
        let mut map = cache.lock();
        while let Some(line) = lines.next() {
            let mut f = line.split_ascii_whitespace();
            if f.next() != Some("entry") {
                return Err(format!("expected entry line, got {line:?}"));
            }
            let name = f.next().ok_or("entry missing profile name")?.to_owned();
            let slot: usize = parse_field(f.next(), "slot")?;
            let cfg = u64::from_str_radix(f.next().ok_or("entry missing config hash")?, 16)
                .map_err(|e| format!("bad config hash: {e}"))?;
            let cycles: Cycle = parse_field(f.next(), "cycles")?;

            let progress_line = lines.next().ok_or("truncated entry: no progress line")?;
            let mut p = progress_line.split_ascii_whitespace();
            if p.next() != Some("progress") {
                return Err(format!("expected progress line, got {progress_line:?}"));
            }
            let interval: u64 = parse_field(p.next(), "progress interval")?;
            if interval == 0 {
                return Err("zero progress interval".to_owned());
            }
            let milestones = p
                .map(|w| w.parse::<Cycle>().map_err(|e| format!("bad milestone: {e}")))
                .collect::<Result<Vec<Cycle>, String>>()?;
            if milestones.windows(2).any(|w| w[0] > w[1]) {
                return Err("milestone cycles not monotonic".to_owned());
            }

            let hist_line = lines.next().ok_or("truncated entry: no hist line")?;
            let mut h = hist_line.split_ascii_whitespace();
            if h.next() != Some("hist") {
                return Err(format!("expected hist line, got {hist_line:?}"));
            }
            let latency_hist = match h.next() {
                Some("none") => None,
                Some(bits) => {
                    let width = f64::from_bits(
                        u64::from_str_radix(bits, 16)
                            .map_err(|e| format!("bad bucket width: {e}"))?,
                    );
                    if !(width.is_finite() && width > 0.0) {
                        return Err("non-positive histogram bucket width".to_owned());
                    }
                    let overflow: u64 = parse_field(h.next(), "hist overflow")?;
                    let counts = h
                        .map(|w| w.parse::<u64>().map_err(|e| format!("bad count: {e}")))
                        .collect::<Result<Vec<u64>, String>>()?;
                    if counts.is_empty() {
                        return Err("histogram with no buckets".to_owned());
                    }
                    Some(Histogram::from_parts(width, counts, overflow))
                }
                None => return Err("truncated hist line".to_owned()),
            };

            map.insert(
                (name, slot, cfg),
                AloneRecord {
                    cycles,
                    progress: Arc::new(ProgressLog::from_parts(interval, milestones)),
                    latency_hist,
                },
            );
        }
        drop(map);
        Ok(cache)
    }
}

/// On-disk format name for the persisted alone-run cache. Bump
/// [`ALONE_CACHE_VERSION`] whenever the record layout changes *or* a
/// simulator change alters what alone runs compute without touching
/// `SystemConfig` — an old file must never be read as if it were current.
const ALONE_CACHE_NAME: &str = "asm-alone-cache";

/// Version of [`ALONE_CACHE_NAME`]'s text format.
const ALONE_CACHE_VERSION: u32 = 1;

/// Parses one whitespace-separated field, naming it in the error.
fn parse_field<T: std::str::FromStr>(field: Option<&str>, what: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    field
        .ok_or_else(|| format!("missing {what}"))?
        .parse::<T>()
        .map_err(|e| format!("bad {what}: {e}"))
}

/// Per-run observability switches for [`Runner::run_with`]. The default
/// (all off) makes [`Runner::run`] behave exactly as before telemetry
/// existed — the differential tests pin this byte-for-byte.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunOptions {
    /// Collect counters, per-quantum series, and the memory-latency
    /// histogram on the *shared* run.
    pub telemetry: bool,
    /// Additionally trace sim-time events, sampling 1-in-`n` request
    /// lifecycles (`Some(1)` keeps every request). Implies `telemetry`
    /// plumbing on the shared system.
    pub trace_sample: Option<u64>,
    /// Maintain the ground-truth cycle-attribution ledger on the shared
    /// run and attach [`RunResult::attribution`]. Guaranteed not to
    /// change simulated behaviour (pinned by differential tests).
    pub attrib: bool,
}

/// Runs workloads against a fixed [`SystemConfig`], caching alone runs.
///
/// [`run`](Self::run) takes `&self`, and `Runner` is `Send + Sync`: one
/// runner can drive many workloads from many threads concurrently, with
/// the shared [`AloneCache`] deduplicating alone simulations across all
/// of them.
///
/// # Examples
///
/// See the crate-level example in [`crate`].
#[derive(Debug)]
pub struct Runner {
    config: SystemConfig,
    alone_cache: Arc<AloneCache>,
    /// [`config_hash`] of [`Self::alone_config`], precomputed because
    /// policy switches ([`Self::set_policies`]) never change it.
    alone_fingerprint: u64,
}

impl std::fmt::Debug for AloneRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AloneRecord({} cycles)", self.cycles)
    }
}

impl Runner {
    /// Creates a runner for the given configuration, with a fresh private
    /// alone-run cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    #[must_use]
    pub fn new(config: SystemConfig) -> Self {
        Self::with_cache(config, Arc::new(AloneCache::new()))
    }

    /// Creates a runner that shares `cache` with other runners. Sharing is
    /// always safe — entries are keyed by the full alone configuration, so
    /// runners for different hardware never collide.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    #[must_use]
    pub fn with_cache(config: SystemConfig, cache: Arc<AloneCache>) -> Self {
        config.validate();
        let mut runner = Runner {
            config,
            alone_cache: cache,
            alone_fingerprint: 0,
        };
        runner.alone_fingerprint = config_hash(&runner.alone_config());
        runner
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The alone-run cache this runner reads and fills.
    #[must_use]
    pub fn alone_cache(&self) -> &Arc<AloneCache> {
        &self.alone_cache
    }

    /// Switches the cache/memory mechanisms for subsequent runs while
    /// keeping the cached alone runs — valid because alone runs strip all
    /// mechanisms anyway (see [`Self::config`]'s alone derivation). Use
    /// this when comparing mechanisms on identical hardware so each scheme
    /// does not repeat the alone simulations.
    pub fn set_policies(&mut self, cache: CachePolicy, mem: MemPolicy) {
        self.config.cache_policy = cache;
        self.config.mem_policy = mem;
    }

    /// The configuration used for alone runs: same hardware, but no
    /// estimators or allocation mechanisms (they would be no-ops or noise
    /// for a single application).
    fn alone_config(&self) -> SystemConfig {
        let mut c = self.config.clone();
        c.estimators = EstimatorSet::none();
        c.cache_policy = CachePolicy::None;
        c.mem_policy = MemPolicy::Uniform;
        c
    }

    fn alone_record(&self, apps: &[AppProfile], slot: usize, cycles: Cycle) -> AloneRecord {
        let key = (apps[slot].name().to_owned(), slot, self.alone_fingerprint);
        if let Some(rec) = self.alone_cache.get_at_least(&key, cycles) {
            return rec;
        }
        // Miss: simulate outside the lock (concurrent misses on the same
        // key duplicate work but, being pure, agree on the result).
        let mut sys = System::new_alone(apps, self.alone_config(), AppId::new(slot));
        sys.enable_progress_logging();
        sys.run_for(cycles);
        let rec = AloneRecord {
            cycles,
            progress: Arc::new(sys.progress_log(AppId::new(slot)).clone()),
            latency_hist: sys.measured_miss_latency_hist().cloned(),
        };
        self.alone_cache.insert_or_keep_longer(key, rec)
    }

    /// The (cached) alone-run progress log for `apps[slot]` covering at
    /// least `cycles` — the milestone table `cycles_between`/`cycle_at`
    /// read ground-truth alone costs from. Computes and caches the alone
    /// run on a miss, exactly like [`run`](Self::run) would. The sampled
    /// tier reads interval-windowed alone costs through this.
    #[must_use]
    pub fn alone_progress(
        &self,
        apps: &[AppProfile],
        slot: usize,
        cycles: Cycle,
    ) -> Arc<ProgressLog> {
        self.alone_record(apps, slot, cycles).progress
    }

    /// Runs `apps` together for `cycles` cycles (plus the necessary alone
    /// runs) and returns estimates and ground truth per quantum.
    ///
    /// Takes `&self`: concurrent runs on one runner are safe and share the
    /// alone cache.
    ///
    /// # Panics
    ///
    /// Panics if `apps` is empty.
    pub fn run(&self, apps: &[AppProfile], cycles: Cycle) -> RunResult {
        self.run_with(apps, cycles, RunOptions::default())
    }

    /// Like [`run`](Self::run), with observability switches. Telemetry is
    /// enabled on the shared system only — alone runs (and their cache)
    /// stay untouched — and cannot change simulated behaviour.
    ///
    /// # Panics
    ///
    /// Panics if `apps` is empty.
    pub fn run_with(&self, apps: &[AppProfile], cycles: Cycle, opts: RunOptions) -> RunResult {
        assert!(!apps.is_empty(), "need at least one application");

        // Shared run.
        let mut sys = System::new(apps, self.config.clone());
        if opts.telemetry || opts.trace_sample.is_some() {
            sys.enable_telemetry(opts.trace_sample);
        }
        if opts.attrib {
            sys.enable_attribution();
        }
        sys.run_for(cycles);
        self.finish_run(apps, cycles, opts, sys)
    }

    /// The key identifying warmup snapshots this runner can fork for
    /// `apps`: a fingerprint of the prefix-relevant configuration
    /// ([`checkpoint::prefix_config`]), the workload mix, and the
    /// telemetry switch. Runners whose configurations differ only in the
    /// quantum-boundary policies produce the same key — that is the
    /// sharing the sweep planner exploits.
    #[must_use]
    pub fn warmup_key(&self, apps: &[AppProfile], opts: RunOptions) -> u64 {
        use std::hash::Hasher as _;
        let mut h = DetHasher::default();
        h.write_u64(config_hash(&checkpoint::prefix_config(&self.config)));
        h.write(checkpoint::mix_signature(apps).as_bytes());
        h.write_u8(u8::from(opts.telemetry));
        h.write_u8(u8::from(opts.attrib));
        h.finish()
    }

    /// Simulates the first quantum of `apps` under the prefix-neutral
    /// configuration with the boundary deferred
    /// ([`System::run_prefix`]) and returns it as a snapshot keyed by
    /// [`warmup_key`](Self::warmup_key). Fork the result into any member
    /// configuration with [`run_with_snapshot`](Self::run_with_snapshot).
    ///
    /// # Panics
    ///
    /// Panics if `apps` is empty or `opts` requests tracing (the
    /// sim-time tracer is deliberately outside snapshots).
    #[must_use]
    pub fn warm_snapshot(&self, apps: &[AppProfile], opts: RunOptions) -> Vec<u8> {
        assert!(!apps.is_empty(), "need at least one application");
        assert!(
            opts.trace_sample.is_none(),
            "traced runs are not snapshot-eligible"
        );
        let warm = self.config.quantum;
        let mut sys = System::new(apps, checkpoint::prefix_config(&self.config));
        if opts.telemetry {
            sys.enable_telemetry(None);
        }
        if opts.attrib {
            sys.enable_attribution();
        }
        sys.run_prefix(warm);
        checkpoint::capture(&sys, self.warmup_key(apps, opts), warm)
    }

    /// Like [`run_with`](Self::run_with), but seeds the shared system
    /// from a warmup snapshot instead of simulating the first quantum:
    /// the snapshot state is restored into a freshly constructed system
    /// and the remaining `cycles - warm` cycles run under this runner's
    /// own policies. The result is bitwise-identical to a cold
    /// [`run_with`](Self::run_with) — the deferred first-quantum boundary
    /// fires as the first step of the continuation.
    ///
    /// # Errors
    ///
    /// Any [`PersistError`] from the snapshot: foreign or stale artefact,
    /// key mismatch (different prefix configuration, mix, or telemetry
    /// switch), damage, or a warm prefix longer than `cycles`. On error
    /// the caller falls back to a cold run.
    ///
    /// # Panics
    ///
    /// Panics if `apps` is empty or `opts` requests tracing.
    pub fn run_with_snapshot(
        &self,
        apps: &[AppProfile],
        cycles: Cycle,
        opts: RunOptions,
        snapshot: &[u8],
    ) -> Result<RunResult, PersistError> {
        assert!(!apps.is_empty(), "need at least one application");
        assert!(
            opts.trace_sample.is_none(),
            "traced runs are not snapshot-eligible"
        );
        let mut sys = System::new(apps, self.config.clone());
        if opts.telemetry {
            sys.enable_telemetry(None);
        }
        if opts.attrib {
            sys.enable_attribution();
        }
        let warm = checkpoint::resume(snapshot, self.warmup_key(apps, opts), &mut sys)?;
        if warm > cycles {
            return Err(PersistError::Corrupt(format!(
                "snapshot covers {warm} cycles but the run is only {cycles}"
            )));
        }
        sys.run_for(cycles - warm);
        Ok(self.finish_run(apps, cycles, opts, sys))
    }

    /// Turns a finished shared system into a [`RunResult`]: pairs it with
    /// the (cached) alone runs for ground truth and attaches telemetry.
    fn finish_run(
        &self,
        apps: &[AppProfile],
        cycles: Cycle,
        opts: RunOptions,
        mut sys: System,
    ) -> RunResult {
        let n = apps.len();

        // Alone runs (cached).
        let alone: Vec<AloneRecord> = (0..n)
            .map(|slot| self.alone_record(apps, slot, cycles))
            .collect();

        // Ground truth per quantum.
        let quanta: Vec<QuantumResult> = sys
            .records()
            .iter()
            .map(|r| {
                let q_cycles = (r.end_cycle - r.start_cycle) as f64;
                let actual: Vec<f64> = (0..n)
                    .map(|i| {
                        let work = r.retired_end[i].saturating_sub(r.retired_start[i]);
                        if work == 0 {
                            return f64::NAN;
                        }
                        let alone_cycles = alone[i]
                            .progress
                            .cycles_between(r.retired_start[i], r.retired_end[i]);
                        if alone_cycles <= 0.0 {
                            return f64::NAN;
                        }
                        let ipc_shared = work as f64 / q_cycles;
                        let ipc_alone = work as f64 / alone_cycles;
                        (ipc_alone / ipc_shared).max(1.0)
                    })
                    .collect();
                QuantumResult {
                    estimates: r.estimates.clone(),
                    actual,
                    car_shared: r.car_shared.clone(),
                    partition: r.partition.clone(),
                }
            })
            .collect();

        // Whole-run slowdowns.
        let total_cycles = sys.now() as f64;
        let whole_run_slowdowns: Vec<f64> = (0..n)
            .map(|i| {
                let retired = sys.retired(AppId::new(i));
                if retired == 0 {
                    return f64::NAN;
                }
                let alone_cycles = alone[i].progress.cycle_at(retired);
                (total_cycles / alone_cycles.max(1.0)).max(1.0)
            })
            .collect();

        // Latency histograms (Figure 6).
        let alone_latency_hist =
            alone
                .iter()
                .filter_map(|a| a.latency_hist.clone())
                .reduce(|mut acc, h| {
                    acc.merge(&h);
                    acc
                });
        let estimator_latency_hists = ["ASM", "FST", "PTCA"]
            .iter()
            .filter_map(|name| {
                sys.estimator_latency_hist(name)
                    .map(|h| ((*name).to_owned(), h.clone()))
            })
            .collect();

        let telemetry = if opts.telemetry || opts.trace_sample.is_some() {
            let mut t = sys.take_telemetry();
            // Ground truth per quantum as a series, sampled at the same
            // boundary cycles as the estimator series so the two line up.
            let ids: Vec<_> = (0..n)
                .map(|i| t.series.register(&names::app_actual_slowdown(i)))
                .collect();
            for (r, q) in sys.records().iter().zip(&quanta) {
                for (i, &id) in ids.iter().enumerate() {
                    if q.actual[i].is_finite() {
                        t.series.push(id, r.end_cycle, q.actual[i]);
                    }
                }
            }
            Some(t)
        } else {
            None
        };

        let attribution = sys.attrib_quanta().map(|q| RunAttribution {
            quanta: q.to_vec(),
            totals: sys.attrib_totals().expect("attribution enabled"),
            blame: sys.attrib_blame_totals().expect("attribution enabled"),
        });

        RunResult {
            app_names: sys.app_names().to_vec(),
            quanta,
            whole_run_slowdowns,
            alone_latency_hist,
            estimator_latency_hists,
            telemetry,
            attribution,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asm_workloads::suite;

    fn config() -> SystemConfig {
        let mut c = SystemConfig::default();
        c.quantum = 50_000;
        c.epoch = 1_000;
        c.estimators = EstimatorSet::all();
        c
    }

    fn apps() -> Vec<AppProfile> {
        vec![
            suite::by_name("mcf_like").unwrap(),
            suite::by_name("h264ref_like").unwrap(),
        ]
    }

    #[test]
    fn produces_one_result_per_quantum() {
        let runner = Runner::new(config());
        let r = runner.run(&apps(), 150_000);
        assert_eq!(r.quanta.len(), 3);
        assert_eq!(r.app_names.len(), 2);
    }

    #[test]
    fn actual_slowdowns_are_sane() {
        let runner = Runner::new(config());
        let r = runner.run(&apps(), 150_000);
        for q in &r.quanta {
            for &a in &q.actual {
                assert!(a.is_nan() || (1.0..100.0).contains(&a), "actual {a}");
            }
        }
        for &s in &r.whole_run_slowdowns {
            assert!((1.0..100.0).contains(&s), "whole-run {s}");
        }
    }

    #[test]
    fn alone_cache_reused_across_runs() {
        let runner = Runner::new(config());
        let _ = runner.run(&apps(), 100_000);
        let cached = runner.alone_cache().len();
        assert_eq!(cached, 2);
        let _ = runner.run(&apps(), 100_000);
        assert_eq!(runner.alone_cache().len(), cached);
    }

    #[test]
    fn shared_cache_dedupes_across_runners_but_not_across_configs() {
        let cache = std::sync::Arc::new(AloneCache::new());
        let a = Runner::with_cache(config(), cache.clone());
        let _ = a.run(&apps(), 100_000);
        assert_eq!(cache.len(), 2);

        // A second runner on identical hardware hits the shared entries.
        let b = Runner::with_cache(config(), cache.clone());
        let _ = b.run(&apps(), 100_000);
        assert_eq!(cache.len(), 2);

        // Different hardware (another epoch length) must not collide.
        let mut other = config();
        other.epoch = 2_000;
        let c = Runner::with_cache(other, cache.clone());
        let _ = c.run(&apps(), 100_000);
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn run_with_attaches_telemetry_and_run_does_not() {
        let runner = Runner::new(config());
        let plain = runner.run(&apps(), 100_000);
        assert!(plain.telemetry.is_none());

        let opts = RunOptions {
            telemetry: true,
            trace_sample: Some(1),
            attrib: false,
        };
        let traced = runner.run_with(&apps(), 100_000, opts);
        let t = traced.telemetry.as_ref().expect("telemetry attached");
        assert!(!t.counters.is_empty());
        assert!(!t.tracer.events().is_empty());

        // Ground-truth slowdowns from the quantum records are re-exposed
        // as a series aligned with the estimator series.
        let id = t.series.id_of("app0.actual_slowdown").expect("series");
        let samples = t.series.samples(id);
        assert_eq!(
            samples.len(),
            traced
                .quanta
                .iter()
                .filter(|q| q.actual[0].is_finite())
                .count()
        );
        for (s, q) in samples
            .iter()
            .zip(traced.quanta.iter().filter(|q| q.actual[0].is_finite()))
        {
            assert!((s.1 - q.actual[0]).abs() < 1e-12);
        }

        // Attaching telemetry must not perturb the simulation itself.
        assert_eq!(plain.quanta.len(), traced.quanta.len());
        for (a, b) in plain.quanta.iter().zip(&traced.quanta) {
            assert_eq!(
                a.actual.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.actual.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn runner_and_results_are_send_and_sync() {
        // Compile-time guards: the parallel harness shares one `Runner`
        // across worker threads and moves `RunResult`s back. If a future
        // change reintroduces an `Rc` (or other non-Send state) anywhere
        // inside, these bounds fail to compile rather than silently
        // blocking the harness.
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<RunResult>();
        assert_send::<QuantumResult>();
        assert_send::<Runner>();
        assert_sync::<Runner>();
        assert_send::<AloneCache>();
        assert_sync::<AloneCache>();
    }

    #[test]
    fn persisted_cache_roundtrips_bitwise() {
        let mut c = config();
        c.latency_hist = Some((50.0, 40));
        let runner = Runner::new(c);
        let _ = runner.run(&apps(), 100_000);
        let cache = runner.alone_cache();
        assert_eq!(cache.len(), 2);

        let text = cache.to_text();
        let reloaded = AloneCache::parse(&text).expect("roundtrip parse");
        assert_eq!(reloaded.len(), cache.len());
        let (a, b) = (cache.lock(), reloaded.lock());
        for ((ka, ra), (kb, rb)) in a.iter().zip(b.iter()) {
            assert_eq!(ka, kb);
            assert_eq!(ra.cycles, rb.cycles);
            assert_eq!(*ra.progress, *rb.progress);
            assert_eq!(ra.latency_hist, rb.latency_hist);
        }
    }

    #[test]
    fn reloaded_cache_produces_identical_results() {
        let runner = Runner::new(config());
        let fresh = runner.run(&apps(), 100_000);

        let text = runner.alone_cache().to_text();
        let reloaded = Arc::new(AloneCache::parse(&text).expect("parse"));
        let warm = Runner::with_cache(config(), reloaded.clone());
        let before = reloaded.len();
        let from_cache = warm.run(&apps(), 100_000);
        assert_eq!(reloaded.len(), before, "warm run must not re-simulate");

        // Ground truth from persisted alone runs is bitwise identical.
        for (q1, q2) in fresh.quanta.iter().zip(&from_cache.quanta) {
            for (a1, a2) in q1.actual.iter().zip(&q2.actual) {
                assert_eq!(a1.to_bits(), a2.to_bits());
            }
        }
        for (s1, s2) in fresh
            .whole_run_slowdowns
            .iter()
            .zip(&from_cache.whole_run_slowdowns)
        {
            assert_eq!(s1.to_bits(), s2.to_bits());
        }
    }

    #[test]
    fn corrupt_or_stale_cache_text_is_rejected() {
        // Wrong version header (a stale file from another binary).
        assert!(AloneCache::parse("asm-alone-cache v0\n").is_err());
        // Truncated entry.
        assert!(AloneCache::parse("asm-alone-cache v1\nentry mcf_like 0 0123 500\n").is_err());
        // Garbage numerics.
        let bad = "asm-alone-cache v1\nentry mcf_like zero 0123 500\nprogress 100 5\nhist none\n";
        assert!(AloneCache::parse(bad).is_err());
        // Non-monotonic milestones.
        let nonmono =
            "asm-alone-cache v1\nentry mcf_like 0 0123 500\nprogress 100 90 50\nhist none\n";
        assert!(AloneCache::parse(nonmono).is_err());
        // The empty cache is fine.
        let empty = AloneCache::parse("asm-alone-cache v1\n").expect("header-only file");
        assert!(empty.is_empty());
    }

    #[test]
    fn config_hash_separates_configs() {
        let a = config_hash(&config());
        let mut other = config();
        other.epoch = 2_000;
        assert_ne!(a, config_hash(&other));
        assert_eq!(a, config_hash(&config()));
    }

    #[test]
    fn samples_skip_invalid_ground_truth() {
        let runner = Runner::new(config());
        let r = runner.run(&apps(), 100_000);
        let samples = r.samples("ASM");
        assert!(!samples.is_empty());
        for s in &samples {
            assert!(s.actual.is_finite() && s.actual >= 1.0);
            assert!(s.estimated >= 1.0);
        }
    }

    #[test]
    fn estimator_names_reported() {
        let runner = Runner::new(config());
        let r = runner.run(&apps(), 60_000);
        let names = r.estimator_names();
        assert_eq!(names, vec!["ASM", "FST", "PTCA", "MISE"]);
    }

    #[test]
    fn latency_hists_present_when_configured() {
        let mut c = config();
        c.latency_hist = Some((50.0, 40));
        let runner = Runner::new(c);
        let r = runner.run(&apps(), 100_000);
        assert!(r.alone_latency_hist.is_some());
        assert!(!r.estimator_latency_hists.is_empty());
    }
}
