//! The experiment runner: pairs a shared run with per-application alone
//! runs to compute ground-truth slowdowns (§5, Metrics).
//!
//! "Actual slowdown" for a quantum is `IPC_alone / IPC_shared` *for the
//! same amount of work*: the alone-run cycle cost of the instruction window
//! the shared run retired in that quantum, read off the alone run's
//! [`asm_cpu::ProgressLog`].
//!
//! Alone runs are cached in an [`AloneCache`] keyed by
//! `(profile, slot, alone config)`, so sweeping many shared workloads that
//! reuse applications does not repeat alone simulations. The cache is
//! thread-safe and can be shared across [`Runner`]s — the parallel
//! experiment harness hands one cache to every worker so concurrent
//! workloads never repeat an alone simulation either.

use std::collections::BTreeMap;
use std::sync::Arc;
// asm-lint: allow(R6): the alone-run cache is the one sanctioned lock in
// simulation code; see `AloneCache` for why it cannot leak nondeterminism
use std::sync::Mutex;

use asm_cpu::{AppProfile, ProgressLog};
use asm_metrics::SlowdownSample;
use asm_simcore::{AppId, Cycle, Histogram};

use crate::config::{CachePolicy, EstimatorSet, MemPolicy, SystemConfig};
use crate::system::System;

/// One quantum's estimates and ground truth.
#[derive(Debug, Clone)]
pub struct QuantumResult {
    /// Slowdown estimates per estimator `(name, per-app)`.
    pub estimates: Vec<(String, Vec<f64>)>,
    /// Measured slowdown per application (NaN when the application retired
    /// nothing in the quantum).
    pub actual: Vec<f64>,
    /// Measured `CAR_shared` per application.
    pub car_shared: Vec<f64>,
    /// Way partition applied at this quantum's end, if any.
    pub partition: Option<Vec<usize>>,
}

/// The outcome of one workload run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Profile names per application slot.
    pub app_names: Vec<String>,
    /// Per-quantum results.
    pub quanta: Vec<QuantumResult>,
    /// Whole-run measured slowdown per application (alone cycles for the
    /// total work divided by total shared cycles).
    pub whole_run_slowdowns: Vec<f64>,
    /// Measured alone miss-latency distribution, merged over applications
    /// (present when `latency_hist` is configured).
    pub alone_latency_hist: Option<Histogram>,
    /// Estimated alone miss-latency distributions per estimator, from the
    /// shared run.
    pub estimator_latency_hists: Vec<(String, Histogram)>,
}

impl RunResult {
    /// Flattens this run into `(estimated, actual)` samples for the named
    /// estimator, one per application per quantum (skipping quanta without
    /// valid ground truth).
    #[must_use]
    pub fn samples(&self, estimator: &str) -> Vec<SlowdownSample> {
        let mut out = Vec::new();
        for q in &self.quanta {
            let Some(est) = q
                .estimates
                .iter()
                .find(|(n, _)| n == estimator)
                .map(|(_, v)| v)
            else {
                continue;
            };
            for (i, (&e, &a)) in est.iter().zip(&q.actual).enumerate() {
                if a.is_finite() && a > 0.0 {
                    out.push(SlowdownSample {
                        app_name: self.app_names[i].clone(),
                        estimated: e,
                        actual: a,
                    });
                }
            }
        }
        out
    }

    /// Names of the estimators present in this run.
    #[must_use]
    pub fn estimator_names(&self) -> Vec<String> {
        self.quanta
            .first()
            .map(|q| q.estimates.iter().map(|(n, _)| n.clone()).collect())
            .unwrap_or_default()
    }
}

#[derive(Clone)]
struct AloneRecord {
    cycles: Cycle,
    progress: Arc<ProgressLog>,
    latency_hist: Option<Histogram>,
}

/// Cache key: `(profile name, slot, alone-config fingerprint)`.
type AloneKey = (String, usize, String);

/// A thread-safe cache of alone runs, shareable across [`Runner`]s (and
/// across the threads of the parallel experiment harness).
///
/// Determinism argument: every entry is a pure function of its key plus
/// the requested cycle horizon — an alone run has no cross-application
/// state — and a longer record agrees with a shorter one on their common
/// prefix (a single-application simulation extended by more cycles never
/// rewrites its past). So the cache's contents cannot depend on lock
/// acquisition order: threads racing on the same key at worst duplicate
/// one alone simulation; they can never observe different results.
#[derive(Debug, Default)]
pub struct AloneCache {
    // asm-lint: allow(R6): guards a deterministic memo table (see the type
    // docs); lock order can change timing but never simulated results
    inner: Mutex<BTreeMap<AloneKey, AloneRecord>>,
}

impl AloneCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached alone runs.
    ///
    /// # Panics
    ///
    /// Panics if the cache lock is poisoned (a thread panicked while
    /// holding it — impossible short of allocation failure, since no user
    /// code runs under the lock).
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    // asm-lint: allow(R6): hands out the guard of the sanctioned cache
    // lock above; all uses stay inside this impl
    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<AloneKey, AloneRecord>> {
        self.inner
            .lock()
            .expect("alone-cache lock is never poisoned: no user code runs under it")
    }

    /// Returns the cached record for `key` if it covers at least `cycles`.
    fn get_at_least(&self, key: &AloneKey, cycles: Cycle) -> Option<AloneRecord> {
        self.lock().get(key).filter(|r| r.cycles >= cycles).cloned()
    }

    /// Inserts `rec` unless an entry with at least as many cycles already
    /// exists; returns the winning record either way.
    fn insert_or_keep_longer(&self, key: AloneKey, rec: AloneRecord) -> AloneRecord {
        let mut map = self.lock();
        match map.get(&key) {
            Some(existing) if existing.cycles >= rec.cycles => existing.clone(),
            _ => {
                map.insert(key, rec.clone());
                rec
            }
        }
    }
}

/// Runs workloads against a fixed [`SystemConfig`], caching alone runs.
///
/// [`run`](Self::run) takes `&self`, and `Runner` is `Send + Sync`: one
/// runner can drive many workloads from many threads concurrently, with
/// the shared [`AloneCache`] deduplicating alone simulations across all
/// of them.
///
/// # Examples
///
/// See the crate-level example in [`crate`].
#[derive(Debug)]
pub struct Runner {
    config: SystemConfig,
    alone_cache: Arc<AloneCache>,
    /// Fingerprint of [`Self::alone_config`], precomputed because policy
    /// switches ([`Self::set_policies`]) never change it.
    alone_fingerprint: String,
}

impl std::fmt::Debug for AloneRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AloneRecord({} cycles)", self.cycles)
    }
}

impl Runner {
    /// Creates a runner for the given configuration, with a fresh private
    /// alone-run cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    #[must_use]
    pub fn new(config: SystemConfig) -> Self {
        Self::with_cache(config, Arc::new(AloneCache::new()))
    }

    /// Creates a runner that shares `cache` with other runners. Sharing is
    /// always safe — entries are keyed by the full alone configuration, so
    /// runners for different hardware never collide.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    #[must_use]
    pub fn with_cache(config: SystemConfig, cache: Arc<AloneCache>) -> Self {
        config.validate();
        let mut runner = Runner {
            config,
            alone_cache: cache,
            alone_fingerprint: String::new(),
        };
        runner.alone_fingerprint = format!("{:?}", runner.alone_config());
        runner
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The alone-run cache this runner reads and fills.
    #[must_use]
    pub fn alone_cache(&self) -> &Arc<AloneCache> {
        &self.alone_cache
    }

    /// Switches the cache/memory mechanisms for subsequent runs while
    /// keeping the cached alone runs — valid because alone runs strip all
    /// mechanisms anyway (see [`Self::config`]'s alone derivation). Use
    /// this when comparing mechanisms on identical hardware so each scheme
    /// does not repeat the alone simulations.
    pub fn set_policies(&mut self, cache: CachePolicy, mem: MemPolicy) {
        self.config.cache_policy = cache;
        self.config.mem_policy = mem;
    }

    /// The configuration used for alone runs: same hardware, but no
    /// estimators or allocation mechanisms (they would be no-ops or noise
    /// for a single application).
    fn alone_config(&self) -> SystemConfig {
        let mut c = self.config.clone();
        c.estimators = EstimatorSet::none();
        c.cache_policy = CachePolicy::None;
        c.mem_policy = MemPolicy::Uniform;
        c
    }

    fn alone_record(&self, apps: &[AppProfile], slot: usize, cycles: Cycle) -> AloneRecord {
        let key = (
            apps[slot].name().to_owned(),
            slot,
            self.alone_fingerprint.clone(),
        );
        if let Some(rec) = self.alone_cache.get_at_least(&key, cycles) {
            return rec;
        }
        // Miss: simulate outside the lock (concurrent misses on the same
        // key duplicate work but, being pure, agree on the result).
        let mut sys = System::new_alone(apps, self.alone_config(), AppId::new(slot));
        sys.enable_progress_logging();
        sys.run_for(cycles);
        let rec = AloneRecord {
            cycles,
            progress: Arc::new(sys.progress_log(AppId::new(slot)).clone()),
            latency_hist: sys.measured_miss_latency_hist().cloned(),
        };
        self.alone_cache.insert_or_keep_longer(key, rec)
    }

    /// Runs `apps` together for `cycles` cycles (plus the necessary alone
    /// runs) and returns estimates and ground truth per quantum.
    ///
    /// Takes `&self`: concurrent runs on one runner are safe and share the
    /// alone cache.
    ///
    /// # Panics
    ///
    /// Panics if `apps` is empty.
    pub fn run(&self, apps: &[AppProfile], cycles: Cycle) -> RunResult {
        assert!(!apps.is_empty(), "need at least one application");
        let n = apps.len();

        // Alone runs (cached).
        let alone: Vec<AloneRecord> = (0..n)
            .map(|slot| self.alone_record(apps, slot, cycles))
            .collect();

        // Shared run.
        let mut sys = System::new(apps, self.config.clone());
        sys.run_for(cycles);

        // Ground truth per quantum.
        let quanta: Vec<QuantumResult> = sys
            .records()
            .iter()
            .map(|r| {
                let q_cycles = (r.end_cycle - r.start_cycle) as f64;
                let actual: Vec<f64> = (0..n)
                    .map(|i| {
                        let work = r.retired_end[i].saturating_sub(r.retired_start[i]);
                        if work == 0 {
                            return f64::NAN;
                        }
                        let alone_cycles = alone[i]
                            .progress
                            .cycles_between(r.retired_start[i], r.retired_end[i]);
                        if alone_cycles <= 0.0 {
                            return f64::NAN;
                        }
                        let ipc_shared = work as f64 / q_cycles;
                        let ipc_alone = work as f64 / alone_cycles;
                        (ipc_alone / ipc_shared).max(1.0)
                    })
                    .collect();
                QuantumResult {
                    estimates: r.estimates.clone(),
                    actual,
                    car_shared: r.car_shared.clone(),
                    partition: r.partition.clone(),
                }
            })
            .collect();

        // Whole-run slowdowns.
        let total_cycles = sys.now() as f64;
        let whole_run_slowdowns: Vec<f64> = (0..n)
            .map(|i| {
                let retired = sys.retired(AppId::new(i));
                if retired == 0 {
                    return f64::NAN;
                }
                let alone_cycles = alone[i].progress.cycle_at(retired);
                (total_cycles / alone_cycles.max(1.0)).max(1.0)
            })
            .collect();

        // Latency histograms (Figure 6).
        let alone_latency_hist =
            alone
                .iter()
                .filter_map(|a| a.latency_hist.clone())
                .reduce(|mut acc, h| {
                    acc.merge(&h);
                    acc
                });
        let estimator_latency_hists = ["ASM", "FST", "PTCA"]
            .iter()
            .filter_map(|name| {
                sys.estimator_latency_hist(name)
                    .map(|h| ((*name).to_owned(), h.clone()))
            })
            .collect();

        RunResult {
            app_names: sys.app_names().to_vec(),
            quanta,
            whole_run_slowdowns,
            alone_latency_hist,
            estimator_latency_hists,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asm_workloads::suite;

    fn config() -> SystemConfig {
        let mut c = SystemConfig::default();
        c.quantum = 50_000;
        c.epoch = 1_000;
        c.estimators = EstimatorSet::all();
        c
    }

    fn apps() -> Vec<AppProfile> {
        vec![
            suite::by_name("mcf_like").unwrap(),
            suite::by_name("h264ref_like").unwrap(),
        ]
    }

    #[test]
    fn produces_one_result_per_quantum() {
        let runner = Runner::new(config());
        let r = runner.run(&apps(), 150_000);
        assert_eq!(r.quanta.len(), 3);
        assert_eq!(r.app_names.len(), 2);
    }

    #[test]
    fn actual_slowdowns_are_sane() {
        let runner = Runner::new(config());
        let r = runner.run(&apps(), 150_000);
        for q in &r.quanta {
            for &a in &q.actual {
                assert!(a.is_nan() || (1.0..100.0).contains(&a), "actual {a}");
            }
        }
        for &s in &r.whole_run_slowdowns {
            assert!((1.0..100.0).contains(&s), "whole-run {s}");
        }
    }

    #[test]
    fn alone_cache_reused_across_runs() {
        let runner = Runner::new(config());
        let _ = runner.run(&apps(), 100_000);
        let cached = runner.alone_cache().len();
        assert_eq!(cached, 2);
        let _ = runner.run(&apps(), 100_000);
        assert_eq!(runner.alone_cache().len(), cached);
    }

    #[test]
    fn shared_cache_dedupes_across_runners_but_not_across_configs() {
        let cache = std::sync::Arc::new(AloneCache::new());
        let a = Runner::with_cache(config(), cache.clone());
        let _ = a.run(&apps(), 100_000);
        assert_eq!(cache.len(), 2);

        // A second runner on identical hardware hits the shared entries.
        let b = Runner::with_cache(config(), cache.clone());
        let _ = b.run(&apps(), 100_000);
        assert_eq!(cache.len(), 2);

        // Different hardware (another epoch length) must not collide.
        let mut other = config();
        other.epoch = 2_000;
        let c = Runner::with_cache(other, cache.clone());
        let _ = c.run(&apps(), 100_000);
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn runner_and_results_are_send_and_sync() {
        // Compile-time guards: the parallel harness shares one `Runner`
        // across worker threads and moves `RunResult`s back. If a future
        // change reintroduces an `Rc` (or other non-Send state) anywhere
        // inside, these bounds fail to compile rather than silently
        // blocking the harness.
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<RunResult>();
        assert_send::<QuantumResult>();
        assert_send::<Runner>();
        assert_sync::<Runner>();
        assert_send::<AloneCache>();
        assert_sync::<AloneCache>();
    }

    #[test]
    fn samples_skip_invalid_ground_truth() {
        let runner = Runner::new(config());
        let r = runner.run(&apps(), 100_000);
        let samples = r.samples("ASM");
        assert!(!samples.is_empty());
        for s in &samples {
            assert!(s.actual.is_finite() && s.actual >= 1.0);
            assert!(s.estimated >= 1.0);
        }
    }

    #[test]
    fn estimator_names_reported() {
        let runner = Runner::new(config());
        let r = runner.run(&apps(), 60_000);
        let names = r.estimator_names();
        assert_eq!(names, vec!["ASM", "FST", "PTCA", "MISE"]);
    }

    #[test]
    fn latency_hists_present_when_configured() {
        let mut c = config();
        c.latency_hist = Some((50.0, 40));
        let runner = Runner::new(c);
        let r = runner.run(&apps(), 100_000);
        assert!(r.alone_latency_hist.is_some());
        assert!(!r.estimator_latency_hists.is_empty());
    }
}
