//! The full-system simulator: cores, private L1s, shared LLC, auxiliary
//! tag stores, pollution filters, optional prefetchers, the DDR3 memory
//! system, and the quantum/epoch machinery of §4.
//!
//! # Structure of a cycle
//!
//! 1. At a quantum boundary (`now % Q == 0`), collect estimates from every
//!    estimator, apply the configured cache/memory mechanisms, record a
//!    [`QuantumRecord`], and reset per-quantum state.
//! 2. At an epoch boundary (`now % E == 0`), pick the epoch owner (uniform
//!    or slowdown-weighted) and give it highest priority at the memory
//!    controller.
//! 3. Tick the memory system; deliver completions (fill cores, emit
//!    [`MissEvent`]s, insert prefetched lines).
//! 4. Tick each active core; demand accesses traverse L1 → LLC → memory,
//!    updating the ATS/pollution filters and emitting
//!    [`AccessEvent`]s along the way.


use asm_attrib::{Component, MemEpisode, QuantumLedger, RunAttrib, StallKind, COMPONENTS};
use asm_cache::{AuxiliaryTagStore, PollutionFilter, SetAssocCache, WayPartition};
use asm_cpu::{AppProfile, Core, HeadStall, MemIssueResult, ProgressLog, StridePrefetcher};
use asm_dram::{Completion, MemRequest, MemorySystem};
use asm_simcore::{AppId, Cycle, DetHashMap, Histogram, LineAddr, SimRng};
use asm_telemetry::{names, CounterId, JsonValue, Registry, SeriesId, SeriesSet, Tracer};

use crate::config::SystemConfig;
use crate::estimator::{
    AccessEvent, AsmEstimator, FstEstimator, MiseEstimator, MissEvent, PtcaEstimator, QuantumCtx,
    SlowdownEstimator, StfmEstimator, UnionTime,
};
use crate::mech;

/// Sentinel for [`System::core_wake`]: the core is blocked on an external
/// completion and has no self-scheduled wake-up.
const NEVER: Cycle = Cycle::MAX;

/// Per-application statistics accumulated over the current quantum; used
/// by the ASM-Cache/UCP/MCFQ mechanisms and exposed in [`QuantumRecord`]s.
#[derive(Debug, Clone, Copy, Default)]
pub struct AppQuantumStats {
    /// Demand accesses to the shared cache.
    pub accesses: u64,
    /// Shared-cache hits.
    pub hits: u64,
    /// Shared-cache misses.
    pub misses: u64,
    /// Cycles with at least one outstanding shared-cache hit.
    pub(crate) hit_time: UnionTime,
    /// Cycles with at least one outstanding miss.
    pub(crate) miss_time: UnionTime,
    /// Sum of concurrent-miss counts sampled at miss completions.
    pub mlp_sum: u64,
    /// Number of miss completions sampled.
    pub mlp_samples: u64,
}

impl AppQuantumStats {
    /// Average shared-cache hit service time this quantum (falls back to
    /// `default` when there were no hits).
    #[must_use]
    pub fn avg_hit_time(&self, default: f64) -> f64 {
        if self.hits > 0 {
            self.hit_time.total as f64 / self.hits as f64
        } else {
            default
        }
    }

    /// Average miss service time this quantum (falls back to `default`).
    #[must_use]
    pub fn avg_miss_time(&self, default: f64) -> f64 {
        if self.misses > 0 {
            self.miss_time.total as f64 / self.misses as f64
        } else {
            default
        }
    }

    /// Average memory-level parallelism observed at miss completions.
    #[must_use]
    pub fn avg_mlp(&self) -> f64 {
        if self.mlp_samples > 0 {
            self.mlp_sum as f64 / self.mlp_samples as f64
        } else {
            1.0
        }
    }
}

/// Everything the system learned in one quantum.
#[derive(Debug, Clone)]
pub struct QuantumRecord {
    /// First cycle of the quantum.
    pub start_cycle: Cycle,
    /// One-past-last cycle of the quantum.
    pub end_cycle: Cycle,
    /// Per-application retired-instruction counts at the quantum start.
    pub retired_start: Vec<u64>,
    /// Per-application retired-instruction counts at the quantum end.
    pub retired_end: Vec<u64>,
    /// Measured `CAR_shared` per application (accesses / cycle).
    pub car_shared: Vec<f64>,
    /// Slowdown estimates per estimator: `(name, per-app estimates)`.
    pub estimates: Vec<(String, Vec<f64>)>,
    /// The way partition applied at the end of this quantum, if any.
    pub partition: Option<Vec<usize>>,
    /// ASM's `CAR_alone` estimates at this boundary (`None` when the ASM
    /// estimator is not instantiated).
    pub car_alone: Option<Vec<f64>>,
    /// Per-application `(ats_hits, ats_misses)` sampled by ASM over this
    /// quantum (empty when ASM is not instantiated).
    pub ats_samples: Vec<(u64, u64)>,
    /// Per-application DRAM bank-interference cycles accumulated from
    /// demand-miss completions during this quantum.
    pub interference_cycles: Vec<Cycle>,
}

impl QuantumRecord {
    /// The estimates of the named estimator, if present.
    #[must_use]
    pub fn estimates_of(&self, name: &str) -> Option<&[f64]> {
        self.estimates
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_slice())
    }

    /// Per-application IPC over this quantum.
    #[must_use]
    pub fn ipc_shared(&self) -> Vec<f64> {
        let cycles = (self.end_cycle - self.start_cycle) as f64;
        self.retired_start
            .iter()
            .zip(&self.retired_end)
            .map(|(s, e)| (e - s) as f64 / cycles)
            .collect()
    }

    fn save_state(&self, w: &mut asm_simcore::persist::StateWriter) {
        w.u64(self.start_cycle);
        w.u64(self.end_cycle);
        w.u64_slice(&self.retired_start);
        w.u64_slice(&self.retired_end);
        w.f64_slice(&self.car_shared);
        w.usize(self.estimates.len());
        for (name, v) in &self.estimates {
            w.str(name);
            w.f64_slice(v);
        }
        match &self.partition {
            Some(p) => {
                w.bool(true);
                w.usize(p.len());
                for &q in p {
                    w.usize(q);
                }
            }
            None => w.bool(false),
        }
        match &self.car_alone {
            Some(v) => {
                w.bool(true);
                w.f64_slice(v);
            }
            None => w.bool(false),
        }
        w.usize(self.ats_samples.len());
        for &(h, m) in &self.ats_samples {
            w.u64(h);
            w.u64(m);
        }
        w.u64_slice(&self.interference_cycles);
    }

    fn restore_from(
        r: &mut asm_simcore::persist::StateReader<'_>,
        app_count: usize,
    ) -> Result<Self, asm_simcore::persist::PersistError> {
        use asm_simcore::persist::PersistError;
        let corrupt = |what: &str| PersistError::Corrupt(what.to_owned());
        let start_cycle = r.u64()?;
        let end_cycle = r.u64()?;
        let retired_start = r.u64_vec()?;
        let retired_end = r.u64_vec()?;
        let car_shared = r.f64_vec()?;
        let est_count = r.checked_len(8)?;
        let mut estimates = Vec::with_capacity(est_count);
        for _ in 0..est_count {
            let name = r.str()?.to_owned();
            let v = r.f64_vec()?;
            if v.len() != app_count {
                return Err(corrupt("record estimate length mismatch"));
            }
            estimates.push((name, v));
        }
        let partition = if r.bool()? {
            let n = r.checked_len(8)?;
            if n != app_count {
                return Err(corrupt("record partition length mismatch"));
            }
            let mut p = Vec::with_capacity(n);
            for _ in 0..n {
                p.push(r.usize()?);
            }
            Some(p)
        } else {
            None
        };
        let car_alone = if r.bool()? {
            let v = r.f64_vec()?;
            if v.len() != app_count {
                return Err(corrupt("record car-alone length mismatch"));
            }
            Some(v)
        } else {
            None
        };
        let ats_count = r.checked_len(16)?;
        if ats_count != 0 && ats_count != app_count {
            return Err(corrupt("record ATS-sample length mismatch"));
        }
        let mut ats_samples = Vec::with_capacity(ats_count);
        for _ in 0..ats_count {
            ats_samples.push((r.u64()?, r.u64()?));
        }
        let interference_cycles = r.u64_vec()?;
        if retired_start.len() != app_count
            || retired_end.len() != app_count
            || car_shared.len() != app_count
            || interference_cycles.len() != app_count
        {
            return Err(corrupt("record per-app length mismatch"));
        }
        Ok(QuantumRecord {
            start_cycle,
            end_cycle,
            retired_start,
            retired_end,
            car_shared,
            estimates,
            partition,
            car_alone,
            ats_samples,
            interference_cycles,
        })
    }
}

/// The completion tokens waiting on one in-flight miss. Nearly every miss
/// has exactly one waiter (merges are rare), so the first two tokens live
/// inline and only deeper merge chains pay for a heap allocation — the MSHR
/// is populated on every demand miss, making this a per-miss cost.
#[derive(Debug, Default)]
struct TokenList {
    inline: [u64; 2],
    len: u8,
    spill: Vec<u64>,
}

impl TokenList {
    fn one(token: u64) -> Self {
        TokenList {
            inline: [token, 0],
            len: 1,
            spill: Vec::new(),
        }
    }

    fn push(&mut self, token: u64) {
        if usize::from(self.len) < self.inline.len() {
            self.inline[usize::from(self.len)] = token;
            self.len += 1;
        } else {
            self.spill.push(token);
        }
    }

    fn iter(&self) -> impl Iterator<Item = &u64> {
        self.inline[..usize::from(self.len)].iter().chain(&self.spill)
    }

    fn save_state(&self, w: &mut asm_simcore::persist::StateWriter) {
        w.usize(usize::from(self.len) + self.spill.len());
        for &t in self.iter() {
            w.u64(t);
        }
    }

    /// Re-pushing in saved order reproduces the original inline/spill
    /// layout exactly (the original was built the same way).
    fn restore_from(
        r: &mut asm_simcore::persist::StateReader<'_>,
    ) -> Result<Self, asm_simcore::persist::PersistError> {
        let n = r.checked_len(8)?;
        let mut tokens = TokenList::default();
        for _ in 0..n {
            tokens.push(r.u64()?);
        }
        Ok(tokens)
    }
}

/// `Option<bool>` wire encoding shared by the MSHR entries: 0 = `None`,
/// 1 = `Some(false)`, 2 = `Some(true)`.
fn save_opt_bool(w: &mut asm_simcore::persist::StateWriter, v: Option<bool>) {
    w.u8(match v {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    });
}

fn read_opt_bool(
    r: &mut asm_simcore::persist::StateReader<'_>,
) -> Result<Option<bool>, asm_simcore::persist::PersistError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(false)),
        2 => Ok(Some(true)),
        _ => Err(asm_simcore::persist::PersistError::Corrupt(
            "bad optional-bool tag".to_owned(),
        )),
    }
}

#[derive(Debug)]
struct MissEntry {
    app: AppId,
    tokens: TokenList,
    prefetch: bool,
    epoch_owned: bool,
    ats_hit: Option<bool>,
    pollution_hit: bool,
    /// When a demand access merges into an in-flight *prefetch*, the merge
    /// context: the demand sees only the residual latency, and the miss
    /// event must reflect that short wait, not a full memory access.
    demand_merge: Option<DemandMerge>,
}

#[derive(Debug, Clone, Copy)]
struct DemandMerge {
    arrival: Cycle,
    epoch_owned: bool,
    ats_hit: Option<bool>,
    pollution_hit: bool,
}

impl MissEntry {
    fn save_state(&self, w: &mut asm_simcore::persist::StateWriter) {
        w.u64(self.app.index() as u64);
        self.tokens.save_state(w);
        w.bool(self.prefetch);
        w.bool(self.epoch_owned);
        save_opt_bool(w, self.ats_hit);
        w.bool(self.pollution_hit);
        match &self.demand_merge {
            Some(m) => {
                w.bool(true);
                w.u64(m.arrival);
                w.bool(m.epoch_owned);
                save_opt_bool(w, m.ats_hit);
                w.bool(m.pollution_hit);
            }
            None => w.bool(false),
        }
    }

    fn restore_from(
        r: &mut asm_simcore::persist::StateReader<'_>,
        app_count: usize,
    ) -> Result<Self, asm_simcore::persist::PersistError> {
        use asm_simcore::persist::PersistError;
        let app = usize::try_from(r.u64()?)
            .ok()
            .filter(|&i| i < app_count)
            .map(AppId::new)
            .ok_or_else(|| PersistError::Corrupt("MSHR entry app out of range".to_owned()))?;
        Ok(MissEntry {
            app,
            tokens: TokenList::restore_from(r)?,
            prefetch: r.bool()?,
            epoch_owned: r.bool()?,
            ats_hit: read_opt_bool(r)?,
            pollution_hit: r.bool()?,
            demand_merge: if r.bool()? {
                Some(DemandMerge {
                    arrival: r.u64()?,
                    epoch_owned: r.bool()?,
                    ats_hit: read_opt_bool(r)?,
                    pollution_hit: r.bool()?,
                })
            } else {
                None
            },
        })
    }
}

/// Cumulative per-application statistics over a whole run (see
/// [`System::app_summary`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppSummary {
    /// Instructions retired.
    pub instructions: u64,
    /// Instructions per cycle over the run so far.
    pub ipc: f64,
    /// Demand accesses to the shared cache.
    pub llc_accesses: u64,
    /// Shared-cache hits.
    pub llc_hits: u64,
    /// Shared-cache misses.
    pub llc_misses: u64,
    /// Shared-cache misses per kilo-instruction.
    pub llc_mpki: f64,
    /// Mean shared-cache access rate (accesses per cycle) — the CAR of
    /// §3.1.
    pub car: f64,
}

/// An explicit application specification for trace-driven workloads (see
/// [`System::from_specs`]).
#[derive(Debug)]
pub struct AppSpec {
    /// Display name.
    pub name: String,
    /// The access source driving the application's core.
    pub source: Box<dyn asm_cpu::AccessSource>,
    /// Probability that an instruction is a memory operation.
    pub mem_probability: f64,
    /// Outstanding-miss cap.
    pub mlp: u32,
}

/// Telemetry instruments owned by the system: the counter registry,
/// per-quantum series rings, the sim-time tracer, and the counter handles
/// held by the hot-path probe sites.
///
/// A disabled instance is constructed for every system; probe sites
/// execute the same indexed adds either way (the disabled registry
/// aliases them onto a scratch slot), so enabling telemetry cannot change
/// simulated behaviour — pinned by the experiments' differential tests.
#[derive(Debug)]
struct SysTelemetry {
    enabled: bool,
    registry: Registry,
    series: SeriesSet,
    tracer: Tracer,
    llc_hits: Vec<CounterId>,
    llc_misses: Vec<CounterId>,
    llc_evictions_caused: Vec<CounterId>,
    s_est: Vec<SeriesId>,
    s_car_shared: Vec<SeriesId>,
    s_car_alone: Vec<SeriesId>,
    s_ats_miss_rate: Vec<SeriesId>,
    s_interference: Vec<SeriesId>,
    /// Measured demand-miss memory latency buckets (for the stats-JSON
    /// p50/p95/p99 dump); only filled while enabled. Kept as raw integer
    /// bucket counts on the hot path — one read completion costs a
    /// divide-by-constant and an increment, no float conversion — and
    /// assembled into a [`Histogram`] at [`System::take_telemetry`] time.
    mem_lat_counts: Vec<u64>,
    mem_lat_overflow: u64,
}

/// Bucket geometry of [`SysTelemetry::mem_lat_counts`]: 50-cycle
/// buckets to 51 200 cycles. Queueing under heavy bank contention pushes
/// tail read latencies well past 4 000 cycles, and a p99 that lands in
/// the overflow bucket reports as unknown — so the range is sized for
/// the tail, not the median. Integer bucketing `latency / 50` matches
/// `(latency as f64 / 50.0) as usize` exactly: a cycle count below 2^53
/// converts exactly, and a quotient that is not a whole number is at
/// least 1/50 away from one — far outside f64 rounding error.
const MEM_HIST_BUCKET: u64 = 50;
const MEM_HIST_BUCKETS: usize = 1024;

impl SysTelemetry {
    fn new(n: usize, enabled: bool, trace_sample: Option<u64>) -> Self {
        let mut registry = if enabled {
            Registry::enabled()
        } else {
            Registry::disabled()
        };
        let mut series = if enabled {
            SeriesSet::enabled(asm_telemetry::DEFAULT_SERIES_CAPACITY)
        } else {
            SeriesSet::disabled()
        };
        let tracer = match trace_sample {
            Some(s) if enabled => Tracer::new(s),
            _ => Tracer::off(),
        };
        let per_app = |f: &mut dyn FnMut(usize) -> String| -> Vec<String> {
            (0..n).map(f).collect()
        };
        let reg =
            |r: &mut Registry, names: &[String]| names.iter().map(|s| r.register(s)).collect();
        let ser =
            |s: &mut SeriesSet, names: &[String]| names.iter().map(|n| s.register(n)).collect();
        SysTelemetry {
            enabled,
            llc_hits: reg(&mut registry, &per_app(&mut names::llc_app_hits)),
            llc_misses: reg(&mut registry, &per_app(&mut names::llc_app_misses)),
            llc_evictions_caused: reg(
                &mut registry,
                &per_app(&mut names::llc_app_evictions_caused),
            ),
            s_est: ser(&mut series, &per_app(&mut names::app_est_slowdown)),
            s_car_shared: ser(&mut series, &per_app(&mut names::app_car_shared)),
            s_car_alone: ser(&mut series, &per_app(&mut names::app_car_alone)),
            s_ats_miss_rate: ser(&mut series, &per_app(&mut names::app_ats_miss_rate)),
            s_interference: ser(&mut series, &per_app(&mut names::app_interference_cycles)),
            registry,
            series,
            tracer,
            mem_lat_counts: vec![0; MEM_HIST_BUCKETS],
            mem_lat_overflow: 0,
        }
    }

    /// Records one demand-read latency (hot path: integer ops only).
    #[inline]
    fn record_mem_latency(&mut self, cycles: u64) {
        let idx = (cycles / MEM_HIST_BUCKET) as usize;
        if let Some(c) = self.mem_lat_counts.get_mut(idx) {
            *c += 1;
        } else {
            self.mem_lat_overflow += 1;
        }
    }

    /// Serializes counters, series rings, and the memory-latency buckets.
    /// The tracer is deliberately excluded: snapshots are only taken from
    /// runs with tracing off (checkpoint eligibility), so there is never
    /// trace state to carry.
    fn save_state(&self, w: &mut asm_simcore::persist::StateWriter) {
        w.bool(self.enabled);
        self.registry.save_state(w);
        self.series.save_state(w);
        w.u64_slice(&self.mem_lat_counts);
        w.u64(self.mem_lat_overflow);
    }

    fn restore_state(
        &mut self,
        r: &mut asm_simcore::persist::StateReader<'_>,
    ) -> Result<(), asm_simcore::persist::PersistError> {
        use asm_simcore::persist::PersistError;
        if r.bool()? != self.enabled {
            return Err(PersistError::Corrupt(
                "telemetry enabled flag mismatch".to_owned(),
            ));
        }
        self.registry.restore_state(r)?;
        self.series.restore_state(r)?;
        let counts = r.u64_vec()?;
        if counts.len() != self.mem_lat_counts.len() {
            return Err(PersistError::Corrupt(
                "memory-latency bucket count mismatch".to_owned(),
            ));
        }
        self.mem_lat_counts = counts;
        self.mem_lat_overflow = r.u64()?;
        Ok(())
    }
}

/// Ground-truth cycle-attribution state: the [`RunAttrib`] ledger plus the
/// telemetry handles its per-quantum results are published through.
///
/// Boxed behind an `Option` on [`System`]: when attribution is off every
/// probe site is a single predictable `None` branch and no ledger memory
/// exists, so the attrib-off configuration stays byte-identical to builds
/// that predate the subsystem (pinned by the experiment differential
/// tests and the `attrib_overhead` bench).
#[derive(Debug)]
struct SysAttrib {
    run: RunAttrib,
    /// Cumulative per-component counters, app-major
    /// (`app_count × COMPONENTS`), registered as `attrib.app{i}.{name}`.
    c_components: Vec<CounterId>,
    /// Per-quantum blame series, victim-major (`app_count²`), registered
    /// as `attrib.app{v}.blame.app{o}`.
    s_blame: Vec<SeriesId>,
}

/// Maps the core's reported head state onto the ledger's stall taxonomy.
fn stall_kind(h: HeadStall) -> StallKind {
    match h {
        HeadStall::Progress => StallKind::Progress,
        HeadStall::HitWait => StallKind::HitWait,
        HeadStall::Backpressure => StallKind::Backpressure,
        HeadStall::MemStall => StallKind::MemStall,
    }
}

/// Everything telemetry collected over one run, detached from the system
/// so the harness can serialise it after the simulation is dropped (see
/// [`System::take_telemetry`]).
#[derive(Debug, Clone)]
pub struct RunTelemetry {
    /// Final counter/gauge snapshot, sorted by hierarchical name.
    pub counters: Vec<(String, u64)>,
    /// Per-quantum time series (estimated vs. actual slowdown, CARs,
    /// ATS miss rates, interference cycles).
    pub series: SeriesSet,
    /// The sim-time event trace (empty unless tracing was enabled).
    pub tracer: Tracer,
    /// Measured demand-miss memory latencies.
    pub mem_latency_hist: Histogram,
}

/// The simulated multi-core system.
///
/// # Examples
///
/// ```
/// use asm_core::{System, SystemConfig};
/// use asm_workloads::suite;
///
/// let mut config = SystemConfig::default();
/// config.quantum = 50_000;
/// config.epoch = 1_000;
/// let apps = vec![suite::by_name("libquantum_like").unwrap(); 2];
/// let mut sys = System::new(&apps, config);
/// sys.run_for(100_000);
/// assert_eq!(sys.records().len(), 2);
/// ```
#[derive(Debug)]
pub struct System {
    config: SystemConfig,
    app_names: Vec<String>,
    cores: Vec<Core>,
    l1s: Vec<SetAssocCache>,
    llc: SetAssocCache,
    ats: Vec<AuxiliaryTagStore>,
    pollution: Vec<PollutionFilter>,
    prefetchers: Vec<StridePrefetcher>,
    mem: MemorySystem,
    mshr: DetHashMap<u64, MissEntry>,
    estimators: Vec<Box<dyn SlowdownEstimator>>,
    qstats: Vec<AppQuantumStats>,
    records: Vec<QuantumRecord>,
    /// Cumulative (accesses, hits, misses) per app from *completed* quanta;
    /// `app_summary` adds the in-progress quantum on top.
    lifetime: Vec<(u64, u64, u64)>,
    progress: Vec<ProgressLog>,
    record_progress: bool,
    alone_miss_hist: Option<Histogram>,
    epoch_owner: Option<AppId>,
    epoch_weights: Vec<f64>,
    epoch_counter: u64,
    throttle: mech::throttle::ThrottleState,
    rng: SimRng,
    now: Cycle,
    next_req: u64,
    active_only: Option<AppId>,
    /// Cycles actually executed (ticked); with skip mode the rest of
    /// `now` was jumped over. Diagnostic for the throughput bench.
    executed_cycles: u64,
    /// Count of hierarchy mutations outside the memory system (LLC/MSHR
    /// changes); `hier_version + mem.mutation_count()` is the version the
    /// stall memo compares against (DESIGN.md §8).
    hier_version: u64,
    /// Per core: the hierarchy version at which its last issue attempt
    /// stalled. While the version is unchanged a re-attempt would stall
    /// identically with zero side effects, so the tick is elided.
    stall_memo: Vec<Option<u64>>,
    /// Per core: cached `Core::next_event` from its last tick — a lower
    /// bound on the next cycle its tick can do real (non-stall-retry)
    /// work. `NEVER` means blocked on an external completion. Refreshed
    /// after every tick, reset to "check now" on completion delivery and
    /// at quantum boundaries (throttling can change the MLP cap). Skip
    /// mode only: saves two cross-crate calls per core per executed cycle
    /// in both the tick guard and the fast-forward fold.
    core_wake: Vec<Cycle>,
    last_quantum_end: Cycle,
    retired_at_quantum_start: Vec<u64>,
    dropped_writebacks: u64,
    completion_buf: Vec<Completion>,
    /// Per-app bank-interference cycles accumulated from miss completions
    /// this quantum (always on; folded into each [`QuantumRecord`]).
    quantum_interference: Vec<Cycle>,
    telemetry: SysTelemetry,
    /// Ground-truth cycle attribution; `None` (the default) keeps every
    /// probe site a single predictable branch.
    attrib: Option<Box<SysAttrib>>,
}

impl System {
    /// Builds the system for a multi-programmed workload: one core per
    /// profile.
    ///
    /// # Panics
    ///
    /// Panics if `profiles` is empty or the configuration is inconsistent
    /// (see [`SystemConfig::validate`]).
    #[must_use]
    pub fn new(profiles: &[AppProfile], config: SystemConfig) -> Self {
        Self::build(profiles, config, None)
    }

    /// Builds an *alone-run* system: the same hardware and workload slots,
    /// but only `app`'s core executes. Address streams and seeds match the
    /// shared run exactly.
    ///
    /// # Panics
    ///
    /// Panics if `app` is out of range or the configuration is invalid.
    #[must_use]
    pub fn new_alone(profiles: &[AppProfile], config: SystemConfig, app: AppId) -> Self {
        assert!(app.index() < profiles.len(), "alone app out of range");
        Self::build(profiles, config, Some(app))
    }

    /// Builds the system from explicit per-application specifications —
    /// the entry point for *trace-driven* workloads (each spec can carry a
    /// [`asm_cpu::TraceSource`] replaying a recorded access trace).
    ///
    /// Note: [`crate::Runner`] needs to re-create each application for its
    /// alone runs, which requires cloneable profiles; trace-driven systems
    /// are therefore driven directly via [`System`].
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty or the configuration is invalid.
    #[must_use]
    pub fn from_specs(specs: Vec<AppSpec>, config: SystemConfig) -> Self {
        assert!(!specs.is_empty(), "need at least one application");
        let names = specs.iter().map(|s| s.name.clone()).collect();
        let cores = specs
            .into_iter()
            .enumerate()
            .map(|(i, spec)| {
                Core::from_source(
                    AppId::new(i),
                    spec.source,
                    spec.mem_probability,
                    spec.mlp,
                    config.seed,
                    asm_cpu::core::DEFAULT_WINDOW,
                    asm_cpu::core::DEFAULT_WIDTH,
                )
            })
            .collect();
        Self::assemble(names, cores, config, None)
    }

    fn build(profiles: &[AppProfile], config: SystemConfig, active_only: Option<AppId>) -> Self {
        assert!(!profiles.is_empty(), "need at least one application");
        let names = profiles.iter().map(|p| p.name().to_owned()).collect();
        let cores: Vec<Core> = profiles
            .iter()
            .enumerate()
            .map(|(i, p)| Core::new(AppId::new(i), p, config.seed))
            .collect();
        Self::assemble(names, cores, config, active_only)
    }

    fn assemble(
        app_names: Vec<String>,
        cores: Vec<Core>,
        config: SystemConfig,
        active_only: Option<AppId>,
    ) -> Self {
        config.validate();
        let n = cores.len();
        let l1s = (0..n)
            .map(|_| SetAssocCache::new(config.l1_geometry, 1))
            .collect();
        let llc = SetAssocCache::new(config.llc_geometry, n);
        let ats = (0..n)
            .map(|_| AuxiliaryTagStore::new(config.llc_geometry, config.ats_sampled_sets))
            .collect();
        let pollution = (0..n)
            .map(|_| PollutionFilter::new(config.pollution_filter_bits))
            .collect();
        let prefetchers = match config.prefetcher {
            Some(pc) => (0..n)
                .map(|_| StridePrefetcher::new(pc.degree, pc.distance))
                .collect(),
            None => Vec::new(),
        };
        let mem = MemorySystem::with_seed(
            config.dram.clone(),
            config.scheduler,
            n,
            config.seed ^ 0xD12A,
        );

        let sampling_factor = config
            .ats_sampled_sets
            .map_or(1.0, |s| config.llc_geometry.sets() as f64 / s as f64);
        let mut estimators: Vec<Box<dyn SlowdownEstimator>> = Vec::new();
        if config.estimators.asm {
            let mut asm = AsmEstimator::new(n, config.llc_latency, config.latency_hist);
            asm.set_queueing_correction(config.asm_queueing_correction);
            estimators.push(Box::new(asm));
        }
        if config.estimators.fst {
            estimators.push(Box::new(FstEstimator::new(
                n,
                config.llc_latency,
                config.latency_hist,
            )));
        }
        if config.estimators.ptca {
            estimators.push(Box::new(PtcaEstimator::new(
                n,
                config.llc_latency,
                sampling_factor,
                config.latency_hist,
            )));
        }
        if config.estimators.mise {
            estimators.push(Box::new(MiseEstimator::new(n)));
        }
        if config.estimators.stfm {
            estimators.push(Box::new(StfmEstimator::new(n)));
        }

        let progress = (0..n)
            .map(|_| ProgressLog::new(config.progress_interval))
            .collect();
        let rng = SimRng::seed_from(config.seed ^ 0xE90C);
        let alone_miss_hist = config.latency_hist.map(|(w, b)| Histogram::new(w, b));

        System {
            app_names,
            cores,
            l1s,
            llc,
            ats,
            pollution,
            prefetchers,
            mem,
            mshr: DetHashMap::default(),
            estimators,
            qstats: vec![AppQuantumStats::default(); n],
            records: Vec::new(),
            lifetime: vec![(0, 0, 0); n],
            progress,
            record_progress: false,
            alone_miss_hist,
            epoch_owner: None,
            epoch_weights: vec![1.0; n],
            epoch_counter: 0,
            throttle: mech::throttle::ThrottleState::new(n),
            rng,
            now: 0,
            next_req: 0,
            active_only,
            executed_cycles: 0,
            hier_version: 0,
            stall_memo: vec![None; n],
            core_wake: vec![0; n],
            last_quantum_end: 0,
            retired_at_quantum_start: vec![0; n],
            dropped_writebacks: 0,
            completion_buf: Vec::new(),
            quantum_interference: vec![0; n],
            telemetry: SysTelemetry::new(n, false, None),
            attrib: None,
            config,
        }
    }

    /// Turns telemetry collection on (post-construction, like
    /// [`MemorySystem::enable_audit`], so configuration hashes and the
    /// alone-run cache are unaffected). `trace_sample` additionally
    /// enables the sim-time tracer, keeping 1-in-`n` request lifecycles.
    pub fn enable_telemetry(&mut self, trace_sample: Option<u64>) {
        self.telemetry = SysTelemetry::new(self.cores.len(), true, trace_sample);
    }

    /// Turns on ground-truth cycle attribution: every core cycle is
    /// classified into the [`Component`] ledger and interference cycles
    /// are blamed on their offender, per quantum (DESIGN.md §13).
    ///
    /// Call *after* [`enable_telemetry`](Self::enable_telemetry) if both
    /// are wanted — enabling telemetry replaces the registry, and this
    /// method registers the `attrib.*` counter/series families into the
    /// current one. Attribution alone (telemetry off) still maintains the
    /// ledger; the registrations then alias the disabled registry's
    /// scratch slot.
    pub fn enable_attribution(&mut self) {
        let n = self.cores.len();
        let reg = &mut self.telemetry.registry;
        let mut c_components = Vec::with_capacity(n * COMPONENTS);
        for i in 0..n {
            for comp in Component::ALL {
                c_components.push(reg.register(&names::attrib_component(i, comp.name())));
            }
        }
        let ser = &mut self.telemetry.series;
        let mut s_blame = Vec::with_capacity(n * n);
        for v in 0..n {
            for o in 0..n {
                s_blame.push(ser.register(&names::attrib_blame(v, o)));
            }
        }
        self.mem.enable_attribution();
        self.attrib = Some(Box::new(SysAttrib {
            run: RunAttrib::new(n),
            c_components,
            s_blame,
        }));
    }

    /// Whether ground-truth cycle attribution is being maintained.
    #[must_use]
    pub fn attribution_enabled(&self) -> bool {
        self.attrib.is_some()
    }

    /// The finalized per-quantum attribution ledgers (oldest first), or
    /// `None` when attribution was never enabled.
    #[must_use]
    pub fn attrib_quanta(&self) -> Option<&[QuantumLedger]> {
        self.attrib.as_deref().map(|a| a.run.quanta())
    }

    /// Whole-run component totals (`app_count × COMPONENTS`, app-major)
    /// over finalized quanta, or `None` when attribution is off.
    #[must_use]
    pub fn attrib_totals(&self) -> Option<Vec<Cycle>> {
        self.attrib.as_deref().map(|a| a.run.totals())
    }

    /// Whole-run app×app blame totals (victim-major) over finalized
    /// quanta, or `None` when attribution is off.
    #[must_use]
    pub fn attrib_blame_totals(&self) -> Option<Vec<Cycle>> {
        self.attrib.as_deref().map(|a| a.run.blame_totals())
    }

    /// Detaches everything telemetry collected, pulling end-of-run gauges
    /// (per-core retire/stall counts, per-bank DRAM row outcomes) into the
    /// counter snapshot first. Returns empty artefacts when telemetry was
    /// never enabled.
    pub fn take_telemetry(&mut self) -> RunTelemetry {
        if self.telemetry.enabled {
            let reg = &mut self.telemetry.registry;
            for (i, core) in self.cores.iter().enumerate() {
                reg.set_named(&names::core_rob_stalls(i), core.stall_episodes());
                reg.set_named(&names::core_retired(i), core.retired());
                reg.set_named(&names::core_mem_ops(i), core.mem_ops_issued());
            }
            let banks = self.config.dram.banks;
            for (flat, (hits, misses)) in self.mem.bank_row_outcomes().into_iter().enumerate() {
                let (ch, b) = (flat / banks, flat % banks);
                reg.set_named(&names::dram_bank_row_hits(ch, b), hits);
                reg.set_named(&names::dram_bank_row_misses(ch, b), misses);
            }
            reg.set_named(names::SYS_EXECUTED_CYCLES, self.executed_cycles);
            reg.set_named(names::SYS_DROPPED_WRITEBACKS, self.dropped_writebacks);
        }
        let tele = std::mem::replace(
            &mut self.telemetry,
            SysTelemetry::new(self.cores.len(), false, None),
        );
        RunTelemetry {
            counters: tele.registry.snapshot(),
            series: tele.series,
            tracer: tele.tracer,
            mem_latency_hist: Histogram::from_parts(
                MEM_HIST_BUCKET as f64,
                tele.mem_lat_counts,
                tele.mem_lat_overflow,
            ),
        }
    }

    /// Number of applications in the workload.
    #[must_use]
    pub fn app_count(&self) -> usize {
        self.cores.len()
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Profile names, indexed by application.
    #[must_use]
    pub fn app_names(&self) -> &[String] {
        &self.app_names
    }

    /// Completed quanta so far.
    #[must_use]
    pub fn records(&self) -> &[QuantumRecord] {
        &self.records
    }

    /// Current simulation cycle.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Instructions retired by `app` so far.
    #[must_use]
    pub fn retired(&self, app: AppId) -> u64 {
        self.cores[app.index()].retired()
    }

    /// Enables per-cycle progress logging (used by alone runs).
    pub fn enable_progress_logging(&mut self) {
        self.record_progress = true;
    }

    /// The progress log for `app` (meaningful when progress logging was
    /// enabled).
    #[must_use]
    pub fn progress_log(&self, app: AppId) -> &ProgressLog {
        &self.progress[app.index()]
    }

    /// Writebacks dropped because a write queue was full (diagnostic; at
    /// sane configurations this stays zero or negligible).
    #[must_use]
    pub fn dropped_writebacks(&self) -> u64 {
        self.dropped_writebacks
    }

    /// Histogram of *measured* miss latencies (only collected when
    /// `latency_hist` is configured) — during an alone run this is the
    /// ground-truth alone miss-service-time distribution of Figure 6.
    #[must_use]
    pub fn measured_miss_latency_hist(&self) -> Option<&Histogram> {
        self.alone_miss_hist.as_ref()
    }

    /// The named estimator's alone-miss-latency histogram (Figure 6).
    #[must_use]
    pub fn estimator_latency_hist(&self, name: &str) -> Option<&Histogram> {
        self.estimators
            .iter()
            .find(|e| e.name() == name)
            .and_then(|e| e.miss_latency_histogram())
    }

    /// The shared-cache way partition currently in force.
    #[must_use]
    pub fn current_partition(&self) -> Option<&WayPartition> {
        self.llc.partition()
    }

    /// Cumulative statistics for `app` over the whole run so far.
    ///
    /// # Examples
    ///
    /// ```
    /// use asm_core::{System, SystemConfig};
    /// use asm_simcore::AppId;
    /// use asm_workloads::suite;
    ///
    /// let mut config = SystemConfig::default();
    /// config.quantum = 50_000;
    /// config.epoch = 1_000;
    /// let apps = vec![suite::by_name("mcf_like").unwrap()];
    /// let mut sys = System::new(&apps, config);
    /// sys.run_for(100_000);
    /// let s = sys.app_summary(AppId::new(0));
    /// assert!(s.ipc > 0.0);
    /// assert_eq!(s.llc_accesses, s.llc_hits + s.llc_misses);
    /// ```
    #[must_use]
    pub fn app_summary(&self, app: AppId) -> AppSummary {
        let i = app.index();
        let (mut accesses, mut hits, mut misses) = self.lifetime[i];
        accesses += self.qstats[i].accesses;
        hits += self.qstats[i].hits;
        misses += self.qstats[i].misses;
        let instructions = self.cores[i].retired();
        let cycles = self.now.max(1) as f64;
        AppSummary {
            instructions,
            ipc: instructions as f64 / cycles,
            llc_accesses: accesses,
            llc_hits: hits,
            llc_misses: misses,
            llc_mpki: if instructions > 0 {
                misses as f64 * 1_000.0 / instructions as f64
            } else {
                0.0
            },
            car: accesses as f64 / cycles,
        }
    }

    /// Runs the simulation for `cycles` cycles. A quantum that completes
    /// exactly at the end of the run is finalised before returning.
    ///
    /// With [`SystemConfig::skip_mode`] on (the default), cycles on which
    /// no component can change state are jumped over in one clock
    /// adjustment; the result is bitwise-identical to stepping every
    /// cycle (DESIGN.md §8 "Fast-forward without nondeterminism").
    pub fn run_for(&mut self, cycles: Cycle) {
        let end = self.now + cycles;
        while self.now < end {
            self.step();
            if self.config.skip_mode {
                // `step` executed cycle `now - 1` and every component is
                // now quiescent until its next event; jump straight there.
                let next = self.next_event_cycle(self.now - 1);
                if next > self.now {
                    self.now = next.min(end);
                }
            }
        }
        let now = self.now;
        if now > self.last_quantum_end && now.is_multiple_of(self.config.quantum) {
            self.end_quantum(now);
        }
    }

    /// Runs for `cycles` cycles like [`run_for`](Self::run_for), but
    /// leaves a quantum that completes exactly at the end *unfinalised*:
    /// the boundary work (estimates, mechanisms, record, reset) fires as
    /// the first step of whatever continues the run — under *that* run's
    /// policies. `run_prefix(q)` + [`save_state`](Self::save_state), then
    /// [`restore_state`](Self::restore_state) + `run_for(c - q)`, is
    /// bitwise-identical to a straight `run_for(c)`; and because the
    /// cache/memory/throttle policies act only inside the quantum
    /// boundary, configurations differing only in those share one prefix
    /// trajectory.
    pub fn run_prefix(&mut self, cycles: Cycle) {
        let end = self.now + cycles;
        while self.now < end {
            self.step();
            if self.config.skip_mode {
                let next = self.next_event_cycle(self.now - 1);
                if next > self.now {
                    self.now = next.min(end);
                }
            }
        }
    }

    /// The earliest cycle after `executed` at which *anything* in the
    /// system can change state: a core fetch/retire/unstall, a memory
    /// completion / scheduler retry / refresh, or a quantum/epoch
    /// boundary (boundaries run estimator, mechanism and RNG work and
    /// must fire on their exact cycle). Progress logging needs no entry
    /// of its own: retired counts only move on executed core ticks, and
    /// every executed tick records milestones.
    fn next_event_cycle(&self, executed: Cycle) -> Cycle {
        let q = self.config.quantum;
        let mut next = (executed / q + 1) * q;
        if self.config.epochs_enabled {
            let e = self.config.epoch;
            next = next.min((executed / e + 1) * e);
        }
        if let Some(m) = self.mem.next_event(executed) {
            next = next.min(m);
        }
        // `core_wake` mirrors each core's `next_event` as of its last tick
        // (cores skipped since then are unchanged by construction, so the
        // cached value still holds). `NEVER` = blocked on a completion,
        // which is itself a memory event already folded above.
        for (i, &w) in self.core_wake.iter().enumerate() {
            if w != NEVER && self.is_active(i) {
                next = next.min(w);
            }
        }
        // Prefetchers and the MSHR are purely reactive (demand-path and
        // completion-path respectively): no autonomous wake-ups to fold.
        next.max(executed + 1)
    }

    /// Cycles on which the hierarchy was actually ticked; in skip mode
    /// the difference to [`now`](Self::now) is the fast-forwarded dead
    /// time.
    #[must_use]
    pub fn executed_cycles(&self) -> u64 {
        self.executed_cycles
    }

    /// Advances the simulation by one cycle.
    pub fn step(&mut self) {
        let now = self.now;
        self.executed_cycles += 1;
        if now > self.last_quantum_end && now.is_multiple_of(self.config.quantum) {
            self.end_quantum(now);
        }
        if self.config.epochs_enabled && now.is_multiple_of(self.config.epoch) {
            self.begin_epoch(now);
        }
        self.tick_hierarchy(now);
        if self.record_progress {
            for i in 0..self.cores.len() {
                if self.is_active(i) {
                    self.progress[i].record(self.cores[i].retired(), now);
                }
            }
        }
        self.now = now + 1;
    }

    fn is_active(&self, idx: usize) -> bool {
        self.active_only.is_none_or(|a| a.index() == idx)
    }

    /// Picks the epoch owner (§4.2: probabilistic assignment; §7.2:
    /// slowdown-proportional under ASM-Mem) and applies memory priority.
    // asm-lint: allow(R9): epoch boundary — runs once per epoch_cycles
    // (default 100k), not per cycle; trace args may allocate
    fn begin_epoch(&mut self, now: Cycle) {
        let owner = if let Some(active) = self.active_only {
            // Alone runs: the single application always has priority (it is
            // alone anyway; this keeps queueing accounting consistent).
            Some(active)
        } else {
            match self.config.epoch_assignment {
                crate::config::EpochAssignment::Probabilistic => {
                    self.rng.pick_weighted(&self.epoch_weights).map(AppId::new)
                }
                crate::config::EpochAssignment::RoundRobin => {
                    Some(AppId::new((self.epoch_counter as usize) % self.cores.len()))
                }
            }
        };
        self.epoch_counter += 1;
        self.epoch_owner = owner;
        self.mem.set_priority_app(now, owner);
        for est in &mut self.estimators {
            est.on_epoch_start(now, owner);
        }
        if self.telemetry.tracer.is_enabled() {
            let (tid, args) = match owner {
                Some(a) => (
                    a.index() as u64,
                    vec![("owner".to_owned(), JsonValue::num_u64(a.index() as u64))],
                ),
                None => (0, vec![("owner".to_owned(), JsonValue::Null)]),
            };
            self.telemetry
                .tracer
                .instant("epoch_owner", "sched", now, tid, args);
        }
    }

    /// Finalises the quantum ending at `now`: estimates, mechanisms,
    /// record, reset.
    // asm-lint: allow(R9): quantum boundary — runs once per quantum
    // (default 5M cycles); estimator/mechanism bookkeeping may allocate
    fn end_quantum(&mut self, now: Cycle) {
        self.last_quantum_end = now;
        let n = self.cores.len();
        let q = self.config.quantum;

        let queueing: Vec<Cycle> = (0..n)
            .map(|i| self.mem.queueing_cycles(AppId::new(i)))
            .collect();
        let ctx = QuantumCtx {
            now,
            quantum: q,
            epoch: self.config.epoch,
            queueing_cycles: &queueing,
            llc_latency: self.config.llc_latency,
        };
        let estimates: Vec<(String, Vec<f64>)> = self
            .estimators
            .iter_mut()
            .map(|e| (e.name().to_owned(), e.on_quantum_end(&ctx)))
            .collect();

        let asm = estimates
            .iter()
            .find(|(name, _)| name == "ASM")
            .map(|(_, v)| v.clone());
        let asm_est = self.estimators.iter().find(|e| e.name() == "ASM");
        let car_alone = asm_est.and_then(|e| e.car_alone().map(<[f64]>::to_vec));
        let ats_samples: Vec<(u64, u64)> = asm_est
            .and_then(|e| e.ats_sample_counts().map(<[(u64, u64)]>::to_vec))
            .unwrap_or_default();

        // Cache mechanism.
        let partition = mech::apply_cache_policy(
            self.config.cache_policy,
            &self.ats,
            &self.qstats,
            car_alone.as_deref(),
            q,
            self.config.llc_latency,
            self.llc.geometry().ways(),
        );
        if let Some(p) = &partition {
            self.llc.set_partition(Some(p.clone()));
        }

        // Memory (epoch-weight) mechanism.
        self.epoch_weights = mech::epoch_weights(self.config.mem_policy, asm.as_deref(), n);

        // Source throttling (FST's actuator): prefers FST's own estimates,
        // falling back to ASM's when FST is not instantiated.
        if let crate::config::ThrottlePolicy::Fst {
            unfairness_threshold,
        } = self.config.throttle_policy
        {
            let slowdowns = estimates
                .iter()
                .find(|(name, _)| name == "FST")
                .or_else(|| estimates.iter().find(|(name, _)| name == "ASM"))
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| vec![1.0; n]);
            self.throttle.update(&slowdowns, unfairness_threshold);
            for (i, core) in self.cores.iter_mut().enumerate() {
                let cap = self.throttle.mlp_cap(i, core.base_mlp());
                core.set_mlp_throttle(Some(cap));
            }
        }

        // Record.
        let retired_end: Vec<u64> = self.cores.iter().map(Core::retired).collect();
        let car_shared: Vec<f64> = self
            .qstats
            .iter()
            .map(|s| s.accesses as f64 / q as f64)
            .collect();

        // Telemetry series + trace for this boundary (no-ops when off).
        if self.telemetry.series.is_enabled() {
            for i in 0..n {
                if let Some(asm) = &asm {
                    self.telemetry
                        .series
                        .push(self.telemetry.s_est[i], now, asm[i]);
                }
                self.telemetry
                    .series
                    .push(self.telemetry.s_car_shared[i], now, car_shared[i]);
                if let Some(ca) = &car_alone {
                    self.telemetry
                        .series
                        .push(self.telemetry.s_car_alone[i], now, ca[i]);
                }
                if let Some(&(h, m)) = ats_samples.get(i) {
                    if h + m > 0 {
                        self.telemetry.series.push(
                            self.telemetry.s_ats_miss_rate[i],
                            now,
                            m as f64 / (h + m) as f64,
                        );
                    }
                }
                self.telemetry.series.push(
                    self.telemetry.s_interference[i],
                    now,
                    self.quantum_interference[i] as f64,
                );
            }
        }
        if self.telemetry.tracer.is_enabled() {
            self.telemetry.tracer.complete(
                "quantum",
                "quantum",
                now - q,
                q,
                0,
                vec![(
                    "index".to_owned(),
                    JsonValue::num_u64(self.records.len() as u64),
                )],
            );
            if let Some(p) = &partition {
                let ways: Vec<JsonValue> = p
                    .as_slice()
                    .iter()
                    .map(|&w| JsonValue::num_u64(w as u64))
                    .collect();
                self.telemetry.tracer.instant(
                    "repartition",
                    "sched",
                    now,
                    0,
                    vec![("ways".to_owned(), JsonValue::Arr(ways))],
                );
            }
        }

        self.records.push(QuantumRecord {
            start_cycle: now - q,
            end_cycle: now,
            retired_start: self.retired_at_quantum_start.clone(),
            retired_end: retired_end.clone(),
            car_shared,
            estimates,
            partition: partition.as_ref().map(|p| p.as_slice().to_vec()),
            car_alone,
            ats_samples,
            interference_cycles: std::mem::replace(&mut self.quantum_interference, vec![0; n]),
        });
        self.retired_at_quantum_start = retired_end;

        // Ground-truth attribution: close the ledger quantum and publish
        // it through telemetry. The DRAM blame counters are read *without*
        // advancing the lazy channel accounting — advancing here would
        // split the §4.3 fractional-queueing f64 accruals at different
        // points than an attrib-off run (float addition is not
        // associative), breaking the attrib-on-vs-off byte-identity of
        // estimator output. The deterministic staleness only smears blame
        // *weights* into the next quantum; ledger totals are exact.
        if let Some(att) = self.attrib.as_deref_mut() {
            let mut cum = vec![0; n * n * 3];
            self.mem.attrib_blame_into(n, &mut cum);
            let ql = att.run.end_quantum(now, &cum);
            for v in 0..n {
                for (k, comp) in Component::ALL.iter().enumerate() {
                    self.telemetry
                        .registry
                        .add(att.c_components[v * COMPONENTS + k], ql.component(v, *comp));
                }
                if self.telemetry.series.is_enabled() {
                    for o in 0..n {
                        self.telemetry.series.push(
                            att.s_blame[v * n + o],
                            now,
                            ql.blamed(v, o) as f64,
                        );
                    }
                }
            }
        }

        // Reset per-quantum state (folding it into lifetime totals first).
        for (life, s) in self.lifetime.iter_mut().zip(&self.qstats) {
            life.0 += s.accesses;
            life.1 += s.hits;
            life.2 += s.misses;
        }
        for s in &mut self.qstats {
            let mut hit_time = s.hit_time;
            let mut miss_time = s.miss_time;
            hit_time.reset();
            miss_time.reset();
            *s = AppQuantumStats {
                hit_time,
                miss_time,
                ..AppQuantumStats::default()
            };
        }
        for a in &mut self.ats {
            a.reset_counters();
        }
        for p in &mut self.pollution {
            p.clear();
        }
        self.mem.reset_queueing_cycles();
        // Throttling may have changed MLP caps (and the partition the
        // stall answers): cached wake-ups are stale, re-examine everyone.
        self.core_wake.fill(0);
    }

    /// Serializes the complete dynamic simulation state — cores, caches,
    /// ATS/pollution filters, prefetchers, the memory system, the MSHR,
    /// estimators, quantum machinery, RNG streams, and telemetry
    /// counters/series — for checkpointing. Everything derivable from the
    /// configuration (geometries, policies, counter registrations) is
    /// structural: the restore target must be constructed from the same
    /// configuration and workload, which [`restore_state`]
    /// (Self::restore_state) cross-checks where it can.
    pub fn save_state(&self, w: &mut asm_simcore::persist::StateWriter) {
        let n = self.cores.len();
        w.usize(n);
        w.opt_u64(self.active_only.map(|a| a.index() as u64));
        for c in &self.cores {
            c.save_state(w);
        }
        for l1 in &self.l1s {
            l1.save_state(w);
        }
        self.llc.save_state(w);
        for a in &self.ats {
            a.save_state(w);
        }
        for p in &self.pollution {
            p.save_state(w);
        }
        w.usize(self.prefetchers.len());
        for p in &self.prefetchers {
            p.save_state(w);
        }
        self.mem.save_state(w);
        // The MSHR map is never iterated on the simulation path, so its
        // internal order is arbitrary; write entries sorted by line for
        // canonical bytes.
        let mut lines: Vec<u64> = self.mshr.keys().copied().collect();
        lines.sort_unstable();
        w.usize(lines.len());
        for line in lines {
            w.u64(line);
            self.mshr[&line].save_state(w);
        }
        w.usize(self.estimators.len());
        for e in &self.estimators {
            w.str(e.name());
            e.save_state(w);
        }
        for s in &self.qstats {
            w.u64(s.accesses);
            w.u64(s.hits);
            w.u64(s.misses);
            s.hit_time.save_state(w);
            s.miss_time.save_state(w);
            w.u64(s.mlp_sum);
            w.u64(s.mlp_samples);
        }
        w.usize(self.records.len());
        for rec in &self.records {
            rec.save_state(w);
        }
        for &(accesses, hits, misses) in &self.lifetime {
            w.u64(accesses);
            w.u64(hits);
            w.u64(misses);
        }
        for p in &self.progress {
            p.save_state(w);
        }
        w.bool(self.alone_miss_hist.is_some());
        if let Some(h) = &self.alone_miss_hist {
            h.save_state(w);
        }
        w.opt_u64(self.epoch_owner.map(|a| a.index() as u64));
        w.f64_slice(&self.epoch_weights);
        w.u64(self.epoch_counter);
        self.throttle.save_state(w);
        self.rng.save_state(w);
        w.u64(self.now);
        w.u64(self.next_req);
        w.u64(self.executed_cycles);
        w.u64(self.hier_version);
        for &m in &self.stall_memo {
            w.opt_u64(m);
        }
        w.u64_slice(&self.core_wake);
        w.u64(self.last_quantum_end);
        w.u64_slice(&self.retired_at_quantum_start);
        w.u64(self.dropped_writebacks);
        w.u64_slice(&self.quantum_interference);
        self.telemetry.save_state(w);
        w.bool(self.attrib.is_some());
        if let Some(att) = &self.attrib {
            att.run.save_state(w);
        }
    }

    /// Restores state captured by [`save_state`](Self::save_state) into a
    /// freshly-constructed system with the same configuration and
    /// workload. Continuing the restored system is bitwise-identical to
    /// continuing the one that was saved.
    ///
    /// # Errors
    ///
    /// Propagates reader errors; `Corrupt` when the stored state does not
    /// fit this system's structure (application count, estimator set,
    /// cache geometries, telemetry registrations, index bounds).
    pub fn restore_state(
        &mut self,
        r: &mut asm_simcore::persist::StateReader<'_>,
    ) -> Result<(), asm_simcore::persist::PersistError> {
        use asm_simcore::persist::PersistError;
        let corrupt = |what: &str| PersistError::Corrupt(what.to_owned());
        let n = self.cores.len();
        let read_opt_app =
            |r: &mut asm_simcore::persist::StateReader<'_>| -> Result<Option<AppId>, PersistError> {
                match r.opt_u64()? {
                    None => Ok(None),
                    Some(i) => usize::try_from(i)
                        .ok()
                        .filter(|&i| i < n)
                        .map(|i| Some(AppId::new(i)))
                        .ok_or_else(|| corrupt("app index out of range")),
                }
            };
        if r.usize()? != n {
            return Err(corrupt("application count mismatch"));
        }
        if read_opt_app(r)? != self.active_only {
            return Err(corrupt("active-only application mismatch"));
        }
        for c in &mut self.cores {
            c.restore_state(r)?;
        }
        for l1 in &mut self.l1s {
            l1.restore_state(r)?;
        }
        self.llc.restore_state(r)?;
        for a in &mut self.ats {
            a.restore_state(r)?;
        }
        for p in &mut self.pollution {
            p.restore_state(r)?;
        }
        if r.usize()? != self.prefetchers.len() {
            return Err(corrupt("prefetcher count mismatch"));
        }
        for p in &mut self.prefetchers {
            p.restore_state(r)?;
        }
        self.mem.restore_state(r)?;
        let mshr_count = r.checked_len(16)?;
        let mut mshr = DetHashMap::default();
        for _ in 0..mshr_count {
            let line = r.u64()?;
            let entry = MissEntry::restore_from(r, n)?;
            if mshr.insert(line, entry).is_some() {
                return Err(corrupt("duplicate MSHR line"));
            }
        }
        if r.usize()? != self.estimators.len() {
            return Err(corrupt("estimator count mismatch"));
        }
        for e in &mut self.estimators {
            if r.str()? != e.name() {
                return Err(corrupt("estimator name mismatch"));
            }
            e.restore_state(r)?;
        }
        let mut qstats = Vec::with_capacity(n);
        for _ in 0..n {
            qstats.push(AppQuantumStats {
                accesses: r.u64()?,
                hits: r.u64()?,
                misses: r.u64()?,
                hit_time: UnionTime::restore_from(r)?,
                miss_time: UnionTime::restore_from(r)?,
                mlp_sum: r.u64()?,
                mlp_samples: r.u64()?,
            });
        }
        let record_count = r.checked_len(8)?;
        let mut records = Vec::with_capacity(record_count);
        for _ in 0..record_count {
            records.push(QuantumRecord::restore_from(r, n)?);
        }
        let mut lifetime = Vec::with_capacity(n);
        for _ in 0..n {
            lifetime.push((r.u64()?, r.u64()?, r.u64()?));
        }
        let mut progress = Vec::with_capacity(n);
        for _ in 0..n {
            progress.push(ProgressLog::restore_from(r)?);
        }
        if r.bool()? != self.alone_miss_hist.is_some() {
            return Err(corrupt("measured-histogram presence mismatch"));
        }
        let alone_miss_hist = if self.alone_miss_hist.is_some() {
            Some(Histogram::restore_from(r)?)
        } else {
            None
        };
        let epoch_owner = read_opt_app(r)?;
        let epoch_weights = r.f64_vec()?;
        if epoch_weights.len() != n {
            return Err(corrupt("epoch weight length mismatch"));
        }
        let epoch_counter = r.u64()?;
        self.throttle.restore_state(r)?;
        self.rng.restore_state(r)?;
        let now = r.u64()?;
        let next_req = r.u64()?;
        let executed_cycles = r.u64()?;
        let hier_version = r.u64()?;
        let mut stall_memo = Vec::with_capacity(n);
        for _ in 0..n {
            stall_memo.push(r.opt_u64()?);
        }
        let core_wake = r.u64_vec()?;
        if core_wake.len() != n {
            return Err(corrupt("core wake length mismatch"));
        }
        let last_quantum_end = r.u64()?;
        let retired_at_quantum_start = r.u64_vec()?;
        if retired_at_quantum_start.len() != n {
            return Err(corrupt("retired-at-start length mismatch"));
        }
        let dropped_writebacks = r.u64()?;
        let quantum_interference = r.u64_vec()?;
        if quantum_interference.len() != n {
            return Err(corrupt("interference length mismatch"));
        }
        self.telemetry.restore_state(r)?;
        if r.bool()? != self.attrib.is_some() {
            return Err(corrupt("attribution enabled flag mismatch"));
        }
        if let Some(att) = self.attrib.as_deref_mut() {
            att.run.restore_state(r)?;
        }
        self.mshr = mshr;
        self.qstats = qstats;
        self.records = records;
        self.lifetime = lifetime;
        self.progress = progress;
        self.alone_miss_hist = alone_miss_hist;
        self.epoch_owner = epoch_owner;
        self.epoch_weights = epoch_weights;
        self.epoch_counter = epoch_counter;
        self.now = now;
        self.next_req = next_req;
        self.executed_cycles = executed_cycles;
        self.hier_version = hier_version;
        self.stall_memo = stall_memo;
        self.core_wake = core_wake;
        self.last_quantum_end = last_quantum_end;
        self.retired_at_quantum_start = retired_at_quantum_start;
        self.dropped_writebacks = dropped_writebacks;
        self.quantum_interference = quantum_interference;
        Ok(())
    }

    /// One cycle of memory + cores.
    fn tick_hierarchy(&mut self, now: Cycle) {
        let System {
            config,
            cores,
            l1s,
            llc,
            ats,
            pollution,
            prefetchers,
            mem,
            mshr,
            estimators,
            qstats,
            epoch_owner,
            next_req,
            dropped_writebacks,
            alone_miss_hist,
            completion_buf,
            active_only,
            hier_version,
            stall_memo,
            core_wake,
            quantum_interference,
            telemetry,
            attrib,
            ..
        } = self;

        let mut hier = Hier {
            config,
            l1s,
            llc,
            ats,
            pollution,
            prefetchers,
            mem,
            mshr,
            estimators,
            qstats,
            epoch_owner: *epoch_owner,
            next_req,
            dropped_writebacks,
            alone_miss_hist,
            version: hier_version,
            quantum_interference,
            telemetry,
            attrib,
        };

        // Memory tick + completions.
        completion_buf.clear();
        hier.mem.tick(now, completion_buf);
        for c in completion_buf.drain(..) {
            hier.handle_completion(now, &c, cores, core_wake);
        }

        // Core ticks. (Indexed loop: `hier` and `cores` must borrow
        // disjointly, so iterators over `cores` cannot be used here.)
        #[allow(clippy::needless_range_loop)]
        for idx in 0..cores.len() {
            if let Some(a) = active_only {
                if a.index() != idx {
                    continue;
                }
            }
            let app = AppId::new(idx);
            let core = &mut cores[idx];
            if hier.config.skip_mode && core_wake[idx] > now {
                // `core_wake` says no real (non-stall-retry) work is
                // possible before that cycle, and no completion has been
                // delivered since it was cached — so the tick is either a
                // provable no-op (elided outright) or could only
                // re-attempt a stalled issue, which is elided while the
                // hierarchy version is unchanged (the re-attempt would
                // return the same Stall with zero side effects). Both are
                // exact no-ops, so the cycle-mode trajectory is preserved
                // bit for bit.
                match stall_memo[idx] {
                    None => continue,
                    Some(v) if v == *hier.version + hier.mem.mutation_count() => continue,
                    Some(_) => {}
                }
            }
            let retired_before = if hier.attrib.is_some() {
                core.retired()
            } else {
                0
            };
            let mut stalled_at = None;
            core.tick(now, &mut |line, is_write| {
                let r = hier.issue(now, app, line, is_write);
                if matches!(r, MemIssueResult::Stall) {
                    stalled_at = Some(*hier.version + hier.mem.mutation_count());
                }
                r
            });
            stall_memo[idx] = stalled_at;
            if let Some(att) = hier.attrib.as_deref_mut() {
                let progressed = core.retired() > retired_before;
                let head = stall_kind(core.head_stall(now));
                att.run.on_tick(idx, now, progressed, head);
            }
            if hier.config.skip_mode {
                core_wake[idx] = core.next_event(now).unwrap_or(NEVER);
            }
        }
    }
}

/// The memory-hierarchy context used during one cycle's core ticks; split
/// out of [`System`] so core ticks can borrow cores and the hierarchy
/// disjointly.
struct Hier<'a> {
    config: &'a SystemConfig,
    l1s: &'a mut Vec<SetAssocCache>,
    llc: &'a mut SetAssocCache,
    ats: &'a mut Vec<AuxiliaryTagStore>,
    pollution: &'a mut Vec<PollutionFilter>,
    prefetchers: &'a mut Vec<StridePrefetcher>,
    mem: &'a mut MemorySystem,
    mshr: &'a mut DetHashMap<u64, MissEntry>,
    estimators: &'a mut Vec<Box<dyn SlowdownEstimator>>,
    qstats: &'a mut Vec<AppQuantumStats>,
    epoch_owner: Option<AppId>,
    next_req: &'a mut u64,
    dropped_writebacks: &'a mut u64,
    alone_miss_hist: &'a mut Option<Histogram>,
    /// Bumped on every mutation of the LLC/MSHR state that a stalled
    /// core's retry decision can observe; see `System::stall_memo`.
    version: &'a mut u64,
    quantum_interference: &'a mut Vec<Cycle>,
    telemetry: &'a mut SysTelemetry,
    attrib: &'a mut Option<Box<SysAttrib>>,
}

impl Hier<'_> {
    fn fresh_id(&mut self) -> u64 {
        *self.next_req += 1;
        *self.next_req
    }

    /// Handles a finished DRAM read: fill waiters, emit the miss event,
    /// insert prefetched lines.
    fn handle_completion(
        &mut self,
        now: Cycle,
        c: &Completion,
        cores: &mut [Core],
        core_wake: &mut [Cycle],
    ) {
        let Some(entry) = self.mshr.remove(&c.line.raw()) else {
            return; // e.g. a dropped-writeback artefact; cannot happen for reads
        };
        *self.version += 1;
        // Ground-truth attribution: if this completion unblocks the waiting
        // core's reorder-buffer head, close the pending memory-stall episode
        // with this request's cause accounting — before delivery below
        // retires the head and the blocking token disappears.
        let mut stall_span = None;
        if let Some(att) = self.attrib.as_deref_mut() {
            if let Some(bt) = cores[entry.app.index()].blocking_token() {
                if entry.tokens.iter().any(|&t| t == bt) {
                    let pollution = if entry.prefetch {
                        entry.demand_merge.as_ref().is_some_and(|m| m.pollution_hit)
                    } else {
                        entry.pollution_hit
                    };
                    let ep = MemEpisode {
                        service: c.finish - c.service_start,
                        cause: c.cause,
                        induced: c.induced,
                        induced_by: c.induced_by.map(|a| a.index()),
                        pollution,
                    };
                    stall_span = att.run.on_blocking_completion(entry.app.index(), now, &ep);
                }
            }
        }
        if let Some((start, len)) = stall_span {
            self.trace_stall(entry.app, c, start, len);
        }
        for token in entry.tokens.iter() {
            cores[entry.app.index()].complete(*token, c.finish);
        }
        // The delivery may retire the head or free MLP: re-examine the
        // core this cycle instead of trusting its cached wake-up.
        core_wake[entry.app.index()] = now;
        if entry.prefetch {
            // Fill the prefetched line into the shared cache now, and
            // mirror the fill into the ATS (the alone run prefetches the
            // same stream); demand counters are not touched.
            let out = self.llc.access(c.line, entry.app, false);
            self.handle_llc_eviction(entry.app, out.eviction, now);
            self.ats[entry.app.index()].touch(c.line);
            // A demand access that merged into this prefetch experienced
            // only the residual latency; report that short miss.
            let Some(merge) = entry.demand_merge else {
                return;
            };
            self.emit_demand_miss(
                entry.app,
                c,
                merge.arrival,
                merge.epoch_owned,
                merge.ats_hit,
                merge.pollution_hit,
            );
            return;
        }
        self.emit_demand_miss(
            entry.app,
            c,
            c.arrival,
            entry.epoch_owned,
            entry.ats_hit,
            entry.pollution_hit,
        );
    }

    /// Records a finished demand miss: quantum stats, the measured-latency
    /// histogram, and the estimator event.
    #[allow(clippy::too_many_arguments)]
    fn emit_demand_miss(
        &mut self,
        app: AppId,
        c: &Completion,
        arrival: Cycle,
        epoch_owned: bool,
        ats_hit: Option<bool>,
        pollution_hit: bool,
    ) {
        let stats = &mut self.qstats[app.index()];
        stats.miss_time.add(arrival, c.finish);
        let concurrent = self.mem.outstanding_reads(app) + 1;
        stats.mlp_sum += concurrent;
        stats.mlp_samples += 1;
        if let Some(h) = self.alone_miss_hist {
            h.add((c.finish - arrival) as f64);
        }
        let interference = c.interference_cycles.min(c.finish - arrival);
        self.quantum_interference[app.index()] += interference;
        if self.telemetry.enabled {
            self.telemetry.record_mem_latency(c.finish - arrival);
        }
        self.trace_mem_read(app, c, arrival, interference);
        let epoch_end = if epoch_owned {
            (arrival / self.config.epoch + 1) * self.config.epoch
        } else {
            Cycle::MAX
        };
        let ev = MissEvent {
            app,
            line: c.line,
            arrival,
            finish: c.finish,
            interference_cycles: interference,
            concurrent_misses: concurrent,
            epoch_owned_at_issue: epoch_owned,
            epoch_end,
            was_ats_hit: ats_hit,
            pollution_hit,
        };
        for est in self.estimators.iter_mut() {
            est.on_miss_complete(&ev);
        }
    }

    /// Emits the sampled `mem_read` span for a finished demand miss.
    // asm-lint: allow(R9): sampled-trace emission — gated on
    // `sample_request`, so it allocates only for traced requests when
    // the opt-in tracer is attached
    fn trace_mem_read(&mut self, app: AppId, c: &Completion, arrival: Cycle, interference: u64) {
        if self.telemetry.tracer.sample_request(c.id) {
            self.telemetry.tracer.complete(
                "mem_read",
                "mem",
                arrival,
                c.finish - arrival,
                app.index() as u64,
                vec![
                    ("interference".to_owned(), JsonValue::num_u64(interference)),
                    ("row_hit".to_owned(), JsonValue::Bool(c.row_hit)),
                ],
            );
        }
    }

    /// Emits the sampled starvation span for a resolved memory-stall
    /// episode (attribution runs only): the interval the app's head was
    /// pinned on one request, with the request's interference context.
    // asm-lint: allow(R9): sampled-trace emission — gated on
    // `sample_request`, so it allocates only for traced requests when
    // the opt-in tracer is attached
    fn trace_stall(&mut self, app: AppId, c: &Completion, start: Cycle, len: Cycle) {
        if self.telemetry.tracer.sample_request(c.id) {
            self.telemetry.tracer.complete(
                "mem_stall",
                "attrib",
                start,
                len,
                app.index() as u64,
                vec![
                    (
                        "interference".to_owned(),
                        JsonValue::num_u64(c.interference_cycles),
                    ),
                    ("row_hit".to_owned(), JsonValue::Bool(c.row_hit)),
                ],
            );
        }
    }

    /// Side effects of an LLC insertion's eviction: pollution-filter update
    /// when another application caused the eviction, and a writeback when
    /// the line was dirty.
    fn handle_llc_eviction(
        &mut self,
        inserter: AppId,
        eviction: Option<asm_cache::EvictedLine>,
        now: Cycle,
    ) {
        let Some(ev) = eviction else { return };
        if ev.owner != inserter {
            self.pollution[ev.owner.index()].insert(ev.line);
            self.telemetry
                .registry
                .add(self.telemetry.llc_evictions_caused[inserter.index()], 1);
            if let Some(att) = self.attrib.as_deref_mut() {
                att.run.on_eviction(ev.owner.index(), inserter.index());
            }
        }
        if ev.dirty {
            let id = self.fresh_id();
            let req = MemRequest::write(id, ev.line, ev.owner, now);
            if self.mem.enqueue(req).is_err() {
                *self.dropped_writebacks += 1;
            }
        }
    }

    /// The full demand-access path: L1 → LLC → memory.
    fn issue(&mut self, now: Cycle, app: AppId, line: LineAddr, is_write: bool) -> MemIssueResult {
        let a = app.index();

        // Private L1 (single-scan hit path).
        if self.l1s[a].touch(line, is_write).is_some() {
            return MemIssueResult::Completed(now + self.config.l1_latency);
        }

        // L1 miss. Before mutating anything, make sure a memory request
        // could be issued if needed (otherwise stall the core).
        let llc_line = self.llc.find(line);
        let merged = self.mshr.contains_key(&line.raw());
        if llc_line.is_none() && !merged && !self.mem.can_accept_read(line) {
            return MemIssueResult::Stall;
        }
        *self.version += 1;

        // Commit the L1 fill (allocate-on-miss) and push any dirty victim
        // down to the LLC (or memory if not resident there). The `touch`
        // above established absence, so the fill skips the residency scan.
        let l1_victim = self.l1s[a].insert_absent(line, app, is_write);
        if let Some(victim) = l1_victim {
            if victim.dirty {
                if self.llc.touch(victim.line, true).is_some() {
                    // Resident in the LLC: absorbed as a write hit.
                } else {
                    let id = self.fresh_id();
                    let req = MemRequest::write(id, victim.line, victim.owner, now);
                    if self.mem.enqueue(req).is_err() {
                        *self.dropped_writebacks += 1;
                    }
                }
            }
        }

        // Demand access to the shared cache (this is the access CAR
        // counts). The stall check already located the line, and its
        // handle survives the victim writeback above (a promotion never
        // moves line payloads), so hit and miss take single-scan paths.
        let ats_out = self.ats[a].access(line);
        let llc_out = if let Some(handle) = llc_line {
            let pos = self.llc.promote(handle, is_write);
            asm_cache::AccessOutcome {
                hit: true,
                hit_recency: Some(pos),
                eviction: None,
            }
        } else {
            asm_cache::AccessOutcome {
                hit: false,
                hit_recency: None,
                eviction: self.llc.insert_absent(line, app, is_write),
            }
        };
        let pollution_hit = !llc_out.hit && self.pollution[a].probably_contains(line);
        self.handle_llc_eviction(app, llc_out.eviction, now);

        let stats = &mut self.qstats[a];
        stats.accesses += 1;
        if llc_out.hit {
            stats.hits += 1;
            stats.hit_time.add(now, now + self.config.llc_latency);
            self.telemetry.registry.add(self.telemetry.llc_hits[a], 1);
        } else {
            stats.misses += 1;
            self.telemetry.registry.add(self.telemetry.llc_misses[a], 1);
        }

        let event = AccessEvent {
            now,
            app,
            line,
            llc_hit: llc_out.hit,
            ats: ats_out,
            pollution_hit,
            epoch_owner: self.epoch_owner,
            is_write,
        };
        for est in self.estimators.iter_mut() {
            est.on_access(&event);
        }

        // The prefetcher observes the demand stream; its prefetches are
        // issued only after the demand request claims its queue slot, so
        // prefetch traffic can never invalidate the capacity check above.
        let prefetches = if self.prefetchers.is_empty() {
            Vec::new()
        } else {
            self.prefetchers[a].observe(line)
        };

        let result = if llc_out.hit {
            MemIssueResult::Completed(now + self.config.llc_latency)
        } else if self.mshr.contains_key(&line.raw()) {
            // Merge into the outstanding request for this line. If that
            // request is a prefetch, remember the demand context so the
            // residual wait is reported as a (short) miss.
            let epoch_owned = self.epoch_owner == Some(app);
            let token = if is_write {
                None
            } else {
                Some(self.fresh_id())
            };
            let entry = self.mshr.get_mut(&line.raw()).expect("checked above");
            if entry.prefetch && entry.demand_merge.is_none() {
                entry.demand_merge = Some(DemandMerge {
                    arrival: now,
                    epoch_owned,
                    ats_hit: ats_out.map(|o| o.hit),
                    pollution_hit,
                });
            }
            match token {
                Some(token) => {
                    entry.tokens.push(token);
                    MemIssueResult::Pending(token)
                }
                None => MemIssueResult::Completed(now + 1),
            }
        } else {
            let id = self.fresh_id();
            let tokens = if is_write {
                TokenList::default()
            } else {
                TokenList::one(id)
            };
            self.mshr.insert(
                line.raw(),
                MissEntry {
                    app,
                    tokens,
                    prefetch: false,
                    epoch_owned: self.epoch_owner == Some(app),
                    ats_hit: ats_out.map(|o| o.hit),
                    pollution_hit,
                    demand_merge: None,
                },
            );
            self.mem
                .enqueue(MemRequest::read(id, line, app, now))
                .expect("capacity was checked before mutation");
            if is_write {
                MemIssueResult::Completed(now + 1)
            } else {
                MemIssueResult::Pending(id)
            }
        };

        for pline in prefetches {
            self.maybe_prefetch(now, app, pline);
        }
        result
    }

    /// Issues a prefetch for `line` if it is absent everywhere and the
    /// memory system has room. The ATS is updated when the fill completes
    /// (see `handle_completion`), keeping its state aligned with the
    /// shared cache's actual contents.
    fn maybe_prefetch(&mut self, now: Cycle, app: AppId, line: LineAddr) {
        if self.llc.probe(line)
            || self.mshr.contains_key(&line.raw())
            || !self.mem.can_accept_read(line)
        {
            return;
        }
        *self.version += 1;
        let id = self.fresh_id();
        self.mshr.insert(
            line.raw(),
            MissEntry {
                app,
                tokens: TokenList::default(),
                prefetch: true,
                epoch_owned: false,
                ats_hit: None,
                pollution_hit: false,
                demand_merge: None,
            },
        );
        self.mem
            .enqueue(MemRequest::prefetch(id, line, app, now))
            .expect("capacity was checked");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CachePolicy, EstimatorSet, MemPolicy};
    use asm_workloads::suite;

    fn small_config() -> SystemConfig {
        let mut c = SystemConfig::default();
        c.quantum = 50_000;
        c.epoch = 1_000;
        c.estimators = EstimatorSet::all();
        c
    }

    fn two_apps() -> Vec<AppProfile> {
        vec![
            suite::by_name("libquantum_like").unwrap(),
            suite::by_name("h264ref_like").unwrap(),
        ]
    }

    #[test]
    fn quanta_are_recorded() {
        let mut sys = System::new(&two_apps(), small_config());
        sys.run_for(150_000);
        assert_eq!(sys.records().len(), 3);
        let r = &sys.records()[1];
        assert_eq!(r.start_cycle, 50_000);
        assert_eq!(r.end_cycle, 100_000);
        assert_eq!(r.estimates.len(), 4); // ASM, FST, PTCA, MISE
    }

    #[test]
    fn telemetry_does_not_change_simulation() {
        let run = |telemetry: bool| {
            let mut sys = System::new(&two_apps(), small_config());
            if telemetry {
                sys.enable_telemetry(Some(1));
            }
            sys.run_for(100_000);
            (
                sys.retired(AppId::new(0)),
                sys.retired(AppId::new(1)),
                sys.records()
                    .iter()
                    .flat_map(|r| r.car_shared.iter().map(|c| c.to_bits()))
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn telemetry_collects_counters_series_and_trace() {
        let mut sys = System::new(&two_apps(), small_config());
        sys.enable_telemetry(Some(1));
        sys.run_for(100_000);
        let t = sys.take_telemetry();

        let get = |name: &str| {
            t.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
                .unwrap_or_else(|| panic!("missing counter {name}"))
        };
        // The registry agrees with the system's own accounting.
        let s0 = sys.app_summary(AppId::new(0));
        assert_eq!(get("llc.app0.hits"), s0.llc_hits);
        assert_eq!(get("llc.app0.misses"), s0.llc_misses);
        assert_eq!(get("core1.retired"), sys.retired(AppId::new(1)));
        assert_eq!(get("sys.executed_cycles"), sys.executed_cycles());

        // Per-quantum series sampled at each boundary.
        let est = t.series.id_of("app0.est_slowdown").expect("series exists");
        let samples = t.series.samples(est);
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].0, 50_000);
        assert!(samples.iter().all(|&(_, v)| v >= 1.0));

        // The trace holds epoch/quantum events and memory lifecycles.
        let events = t.tracer.events();
        assert!(events.iter().any(|e| e.name == "epoch_owner"));
        assert!(events.iter().any(|e| e.name == "quantum"));
        assert!(events.iter().any(|e| e.name == "mem_read" && e.dur > 0));

        assert!(t.mem_latency_hist.total() > 0);

        // A second take returns empty artefacts.
        assert!(sys.take_telemetry().counters.is_empty());
    }

    #[test]
    fn attribution_does_not_change_simulation() {
        let run = |attrib: bool| {
            let mut sys = System::new(&two_apps(), small_config());
            if attrib {
                sys.enable_attribution();
            }
            sys.run_for(100_000);
            (
                sys.retired(AppId::new(0)),
                sys.retired(AppId::new(1)),
                sys.records()
                    .iter()
                    .flat_map(|r| r.car_shared.iter().map(|c| c.to_bits()))
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn attribution_conserves_and_blames_offenders() {
        let mut sys = System::new(&two_apps(), small_config());
        sys.enable_telemetry(None);
        sys.enable_attribution();
        sys.run_for(150_000);

        let quanta = sys.attrib_quanta().expect("attribution on").to_vec();
        assert_eq!(quanta.len(), 3);
        for q in &quanta {
            assert!(q.conserved(), "ledger violates conservation");
            let quantum = q.end - q.start;
            for v in 0..2 {
                let ledger_row: Cycle = Component::ALL.iter().map(|&c| q.component(v, c)).sum();
                assert_eq!(ledger_row, quantum, "ledger row {v} != quantum length");
                let blame_row: Cycle = (0..2).map(|o| q.blamed(v, o)).sum();
                assert_eq!(blame_row, quantum, "blame row {v} != quantum length");
            }
        }

        // Two memory-hungry co-runners interfere: some cycles land in an
        // interference component and the blame matrix names the offender.
        let totals = sys.attrib_totals().expect("attribution on");
        let mut interference: Cycle = 0;
        for v in 0..2 {
            for c in Component::ALL.iter().filter(|c| c.is_interference()) {
                interference += totals[v * COMPONENTS + c.index()];
            }
        }
        assert!(interference > 0, "no interference attributed");
        let blame = sys.attrib_blame_totals().expect("attribution on");
        let off_diag: Cycle = blame[0 * 2 + 1] + blame[1 * 2 + 0];
        assert_eq!(off_diag, interference, "blame off-diagonal != interference cycles");

        // Reconciliation with the per-request interference charges (the
        // FST/PTCA signal): an episode's DRAM-cause components are clipped
        // from its request's charge split, so the ledger's DRAM-cause
        // interference can never exceed the charges the quantum records
        // accumulated.
        for v in 0..2 {
            let dram_cause: Cycle = [
                Component::DramWriteDrain,
                Component::DramFrfcfs,
                Component::DramBankConflict,
            ]
            .iter()
            .map(|&c| totals[v * COMPONENTS + c.index()])
            .sum();
            let charged: Cycle = sys.records().iter().map(|r| r.interference_cycles[v]).sum();
            assert!(
                dram_cause <= charged,
                "app{v}: ledger DRAM-cause interference {dram_cause} exceeds charges {charged}"
            );
        }

        // The ledger is republished through telemetry: per-component
        // counters match the totals and every blame series is sampled at
        // each quantum boundary.
        let t = sys.take_telemetry();
        let get = |name: &str| {
            t.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
                .unwrap_or_else(|| panic!("missing counter {name}"))
        };
        for v in 0..2 {
            for comp in Component::ALL {
                assert_eq!(
                    get(&names::attrib_component(v, comp.name())),
                    totals[v * COMPONENTS + comp.index()],
                );
            }
        }
        let s = t
            .series
            .id_of("attrib.app0.blame.app1")
            .expect("blame series registered");
        assert_eq!(t.series.samples(s).len(), 3);
    }

    #[test]
    fn attribution_alone_run_blames_nobody() {
        let mut sys = System::new(&[two_apps().remove(0)], small_config());
        sys.enable_attribution();
        sys.run_for(100_000);
        let totals = sys.attrib_totals().expect("attribution on");
        for comp in Component::ALL {
            if comp.is_interference() {
                assert_eq!(
                    totals[comp.index()],
                    0,
                    "{} attributed with no co-runner",
                    comp.name()
                );
            }
        }
        let blame = sys.attrib_blame_totals().expect("attribution on");
        assert_eq!(blame.len(), 1);
        let attributed: Cycle = sys
            .attrib_quanta()
            .expect("attribution on")
            .iter()
            .map(|q| q.end - q.start)
            .sum();
        assert_eq!(blame[0], attributed);
    }

    #[test]
    fn quantum_records_carry_introspection_fields() {
        let mut sys = System::new(&two_apps(), small_config());
        sys.run_for(100_000);
        for r in sys.records() {
            let ca = r.car_alone.as_ref().expect("ASM instantiated");
            assert_eq!(ca.len(), 2);
            assert_eq!(r.ats_samples.len(), 2);
            assert_eq!(r.interference_cycles.len(), 2);
        }
        // Two memory-hungry apps interfere at the banks.
        let total: Cycle = sys
            .records()
            .iter()
            .flat_map(|r| r.interference_cycles.iter())
            .sum();
        assert!(total > 0, "no interference recorded");
    }

    #[test]
    fn cores_make_progress_and_access_memory() {
        let mut sys = System::new(&two_apps(), small_config());
        sys.run_for(60_000);
        for i in 0..2 {
            assert!(sys.retired(AppId::new(i)) > 1_000, "app{i} stalled");
        }
        let r = &sys.records()[0];
        assert!(r.car_shared.iter().all(|&c| c > 0.0));
    }

    #[test]
    fn estimates_are_at_least_unity() {
        let mut sys = System::new(&two_apps(), small_config());
        sys.run_for(100_000);
        for r in sys.records() {
            for (_, est) in &r.estimates {
                for &s in est {
                    assert!(s >= 1.0, "estimate {s} below 1");
                }
            }
        }
    }

    #[test]
    fn alone_run_only_executes_target() {
        let mut sys = System::new_alone(&two_apps(), small_config(), AppId::new(1));
        sys.run_for(60_000);
        assert_eq!(sys.retired(AppId::new(0)), 0);
        assert!(sys.retired(AppId::new(1)) > 1_000);
    }

    #[test]
    fn alone_run_is_faster_than_shared() {
        let apps = vec![
            suite::by_name("mcf_like").unwrap(),
            suite::by_name("libquantum_like").unwrap(),
            suite::by_name("soplex_like").unwrap(),
            suite::by_name("milc_like").unwrap(),
        ];
        let cfg = small_config();
        let mut shared = System::new(&apps, cfg.clone());
        shared.run_for(200_000);
        let mut alone = System::new_alone(&apps, cfg, AppId::new(0));
        alone.run_for(200_000);
        let shared_ipc = shared.retired(AppId::new(0));
        let alone_ipc = alone.retired(AppId::new(0));
        assert!(
            alone_ipc > shared_ipc,
            "alone {alone_ipc} should outpace shared {shared_ipc}"
        );
    }

    #[test]
    fn determinism_across_runs() {
        let run = || {
            let mut sys = System::new(&two_apps(), small_config());
            sys.run_for(100_000);
            (
                sys.retired(AppId::new(0)),
                sys.retired(AppId::new(1)),
                sys.records()
                    .iter()
                    .flat_map(|r| r.car_shared.clone())
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn progress_logging_records_milestones() {
        let mut sys = System::new_alone(&two_apps(), small_config(), AppId::new(0));
        sys.enable_progress_logging();
        sys.run_for(50_000);
        assert!(sys.progress_log(AppId::new(0)).milestones() > 0);
    }

    #[test]
    fn prefetcher_runs_without_breaking_anything() {
        let mut cfg = small_config();
        cfg.prefetcher = Some(crate::config::PrefetchConfig::default());
        let mut with_pf = System::new(&two_apps(), cfg);
        with_pf.run_for(100_000);
        let mut without_pf = System::new(&two_apps(), small_config());
        without_pf.run_for(100_000);
        // The streaming app should benefit from (or at least not be hurt
        // much by) prefetching.
        let w = with_pf.retired(AppId::new(0));
        let wo = without_pf.retired(AppId::new(0));
        assert!(
            w as f64 > wo as f64 * 0.8,
            "prefetching collapsed performance: {w} vs {wo}"
        );
    }

    #[test]
    fn asm_cache_policy_installs_partition() {
        let mut cfg = small_config();
        cfg.cache_policy = CachePolicy::AsmCache;
        let mut sys = System::new(&two_apps(), cfg);
        sys.run_for(120_000);
        let p = sys.current_partition().expect("partition installed");
        assert_eq!(p.total_ways(), 16);
    }

    #[test]
    fn mem_policy_weights_follow_estimates() {
        let mut cfg = small_config();
        cfg.mem_policy = MemPolicy::SlowdownWeighted;
        let mut sys = System::new(&two_apps(), cfg);
        sys.run_for(120_000);
        // Weights must be valid probabilities-in-waiting (positive).
        assert!(sys.epoch_weights.iter().all(|&w| w > 0.0));
    }

    fn system_bytes(sys: &System) -> Vec<u8> {
        let mut w = asm_simcore::persist::StateWriter::new("test-system", 1);
        sys.save_state(&mut w);
        w.finish()
    }

    fn restore_into(sys: &mut System, bytes: &[u8]) {
        let mut r = asm_simcore::persist::StateReader::new(bytes, "test-system", 1).unwrap();
        sys.restore_state(&mut r).unwrap();
        r.finish().unwrap();
    }

    #[test]
    fn checkpoint_roundtrip_matches_straight_run() {
        let mut cfg = small_config();
        cfg.latency_hist = Some((50.0, 40));
        cfg.cache_policy = CachePolicy::AsmCache;
        cfg.mem_policy = MemPolicy::SlowdownWeighted;

        let mut straight = System::new(&two_apps(), cfg.clone());
        straight.run_for(150_000);

        let mut prefix = System::new(&two_apps(), cfg.clone());
        prefix.run_prefix(50_000);
        let snap = system_bytes(&prefix);
        let mut resumed = System::new(&two_apps(), cfg);
        restore_into(&mut resumed, &snap);
        resumed.run_for(100_000);

        assert_eq!(resumed.now(), straight.now());
        assert_eq!(resumed.records().len(), straight.records().len());
        assert_eq!(
            system_bytes(&resumed),
            system_bytes(&straight),
            "restored continuation diverged from the straight run"
        );
    }

    #[test]
    fn run_prefix_defers_the_boundary_to_the_continuation() {
        let mut sys = System::new(&two_apps(), small_config());
        sys.run_prefix(50_000);
        // The quantum that ends exactly at the prefix end is unfinalised.
        assert_eq!(sys.now(), 50_000);
        assert!(sys.records().is_empty());
        sys.run_for(50_000);
        assert_eq!(sys.records().len(), 2);
    }

    #[test]
    fn checkpoint_roundtrip_with_telemetry_and_prefetcher() {
        let mut cfg = small_config();
        cfg.prefetcher = Some(crate::config::PrefetchConfig::default());
        let run_cold = || {
            let mut sys = System::new(&two_apps(), cfg.clone());
            sys.enable_telemetry(None);
            sys
        };

        let mut straight = run_cold();
        straight.run_for(150_000);

        let mut prefix = run_cold();
        prefix.run_prefix(50_000);
        let snap = system_bytes(&prefix);
        let mut resumed = run_cold();
        restore_into(&mut resumed, &snap);
        resumed.run_for(100_000);

        assert_eq!(system_bytes(&resumed), system_bytes(&straight));
        let a = straight.take_telemetry();
        let b = resumed.take_telemetry();
        assert_eq!(a.counters, b.counters);
    }

    #[test]
    fn restore_rejects_structural_mismatch() {
        let mut sys = System::new(&two_apps(), small_config());
        sys.run_prefix(50_000);
        let snap = system_bytes(&sys);

        // Wrong estimator set: structure disagrees with the snapshot.
        let mut other_cfg = small_config();
        other_cfg.estimators = EstimatorSet::asm_only();
        let mut other = System::new(&two_apps(), other_cfg);
        let mut r = asm_simcore::persist::StateReader::new(&snap, "test-system", 1).unwrap();
        assert!(other.restore_state(&mut r).is_err());

        // Truncated payload.
        let cut = &snap[..snap.len() - 9];
        assert!(asm_simcore::persist::StateReader::new(cut, "test-system", 1).is_err());
    }

    #[test]
    fn latency_histograms_collect_when_enabled() {
        let mut cfg = small_config();
        cfg.latency_hist = Some((50.0, 40));
        let mut sys = System::new(&two_apps(), cfg);
        sys.run_for(100_000);
        assert!(sys.measured_miss_latency_hist().unwrap().total() > 0);
        assert!(sys.estimator_latency_hist("ASM").is_some());
        assert!(sys.estimator_latency_hist("FST").unwrap().total() > 0);
    }
}
