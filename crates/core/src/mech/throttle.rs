//! FST-style source throttling [Ebrahimi+, ASPLOS 2010] (§8 "source
//! throttling").
//!
//! FST's *actuator*: when estimated unfairness (max slowdown / min
//! slowdown) exceeds a threshold, the least-slowed-down memory-intensive
//! application — the one causing the interference — has its memory request
//! rate throttled down (here: its outstanding-miss budget is cut through
//! FST's discrete throttle levels). When unfairness recedes, applications
//! are released one level per quantum.

/// FST's throttle levels, as fractions of the application's full MLP
/// (100% / 50% / 25% / 10%, matching the paper's aggressive steps).
pub const LEVELS: &[f64] = &[1.0, 0.5, 0.25, 0.1];

/// Per-application throttle state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThrottleState {
    /// Index into [`LEVELS`] per application (0 = unthrottled).
    levels: Vec<usize>,
}

impl ThrottleState {
    /// All applications unthrottled.
    #[must_use]
    pub fn new(apps: usize) -> Self {
        ThrottleState {
            levels: vec![0; apps],
        }
    }

    /// The current level index of application `i`.
    #[must_use]
    pub fn level(&self, i: usize) -> usize {
        self.levels.get(i).copied().unwrap_or(0)
    }

    /// The outstanding-miss cap for application `i` given its intrinsic
    /// `full_mlp` (never below 1).
    #[must_use]
    pub fn mlp_cap(&self, i: usize, full_mlp: u32) -> u32 {
        let frac = LEVELS[self.level(i)];
        ((f64::from(full_mlp) * frac).round() as u32).max(1)
    }

    /// One quantum's throttling decision, FST-style: if
    /// `max(slowdowns) / min(slowdowns) > threshold`, throttle the least
    /// slowed-down application one level further; otherwise release every
    /// application one level. Returns the index of the newly throttled
    /// application, if any.
    ///
    /// Applications with non-finite slowdown estimates are ignored.
    // asm-lint: allow(R9): quantum boundary — the throttling decision is
    // made once per quantum from `end_quantum`, not per cycle
    pub fn update(&mut self, slowdowns: &[f64], threshold: f64) -> Option<usize> {
        let valid: Vec<(usize, f64)> = slowdowns
            .iter()
            .copied()
            .enumerate()
            .filter(|(_, s)| s.is_finite() && *s >= 1.0)
            .collect();
        let (Some(max), Some(min)) = (
            valid
                .iter()
                .map(|(_, s)| *s)
                .fold(None, |a: Option<f64>, s| Some(a.map_or(s, |a| a.max(s)))),
            valid
                .iter()
                .map(|(_, s)| *s)
                .fold(None, |a: Option<f64>, s| Some(a.map_or(s, |a| a.min(s)))),
        ) else {
            return None;
        };
        if min > 0.0 && max / min > threshold {
            // Throttle the interferer: the least slowed-down application.
            let culprit = valid
                .iter()
                .min_by(|(_, a), (_, b)| a.total_cmp(b))
                .map(|(i, _)| *i)?;
            let level = &mut self.levels[culprit];
            if *level + 1 < LEVELS.len() {
                *level += 1;
            }
            Some(culprit)
        } else {
            for level in &mut self.levels {
                *level = level.saturating_sub(1);
            }
            None
        }
    }

    /// Serializes the per-application throttle levels for checkpointing.
    pub fn save_state(&self, w: &mut asm_simcore::persist::StateWriter) {
        w.usize(self.levels.len());
        for &l in &self.levels {
            w.usize(l);
        }
    }

    /// Restores levels captured by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// Propagates reader errors; `Corrupt` when the application count or a
    /// level index disagrees with this state's structure.
    pub fn restore_state(
        &mut self,
        r: &mut asm_simcore::persist::StateReader<'_>,
    ) -> Result<(), asm_simcore::persist::PersistError> {
        use asm_simcore::persist::PersistError;
        let corrupt = |what: &str| PersistError::Corrupt(what.to_owned());
        if r.usize()? != self.levels.len() {
            return Err(corrupt("throttle app count mismatch"));
        }
        let mut levels = Vec::with_capacity(self.levels.len());
        for _ in 0..self.levels.len() {
            let l = r.usize()?;
            if l >= LEVELS.len() {
                return Err(corrupt("throttle level out of range"));
            }
            levels.push(l);
        }
        self.levels = levels;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unfairness_throttles_the_least_slowed_app() {
        let mut st = ThrottleState::new(3);
        let culprit = st.update(&[3.0, 1.1, 2.0], 1.5);
        assert_eq!(culprit, Some(1));
        assert_eq!(st.level(1), 1);
        assert_eq!(st.level(0), 0);
    }

    #[test]
    fn fairness_releases_everyone() {
        let mut st = ThrottleState::new(2);
        st.update(&[3.0, 1.0], 1.5);
        st.update(&[3.0, 1.0], 1.5);
        assert_eq!(st.level(1), 2);
        st.update(&[1.2, 1.1], 1.5);
        assert_eq!(st.level(1), 1);
        st.update(&[1.2, 1.1], 1.5);
        assert_eq!(st.level(1), 0);
    }

    #[test]
    fn level_saturates_at_deepest() {
        let mut st = ThrottleState::new(2);
        for _ in 0..10 {
            st.update(&[5.0, 1.0], 1.5);
        }
        assert_eq!(st.level(1), LEVELS.len() - 1);
    }

    #[test]
    fn mlp_cap_follows_levels_and_never_hits_zero() {
        let mut st = ThrottleState::new(1);
        assert_eq!(st.mlp_cap(0, 12), 12);
        st.levels[0] = 1;
        assert_eq!(st.mlp_cap(0, 12), 6);
        st.levels[0] = 3;
        assert_eq!(st.mlp_cap(0, 12), 1); // 10% of 12 rounds to 1
        assert_eq!(st.mlp_cap(0, 1), 1);
    }

    #[test]
    fn invalid_estimates_are_ignored() {
        let mut st = ThrottleState::new(3);
        let culprit = st.update(&[f64::NAN, 3.0, 1.0], 1.5);
        assert_eq!(culprit, Some(2));
    }

    #[test]
    fn empty_or_all_invalid_is_noop() {
        let mut st = ThrottleState::new(2);
        assert_eq!(st.update(&[f64::NAN, f64::INFINITY], 1.5), None);
        assert_eq!(st.level(0), 0);
    }
}
