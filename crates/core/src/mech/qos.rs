//! Soft slowdown guarantees (§7.3).
//!
//! - **ASM-QoS**: give the application of interest the *smallest* way
//!   allocation whose predicted slowdown (via the ASM-Cache model) meets
//!   the bound, then partition the remaining ways among the other
//!   applications with slowdown-utility look-ahead — minimising collateral
//!   damage (Figure 11).
//! - **Naive-QoS**: give the application of interest *all* the ways,
//!   meeting any achievable bound but slowing everyone else maximally.

use asm_cache::{lookahead_partition, AuxiliaryTagStore, BenefitCurves, WayPartition};
use asm_simcore::{AppId, Cycle};

use crate::config::QosConfig;
use crate::mech::asm_cache::slowdown_curve;
use crate::system::AppQuantumStats;

/// Computes the ASM-QoS partition: the minimum allocation meeting
/// `qos.bound` for `qos.target`, ASM-Cache look-ahead for the rest.
///
/// # Panics
///
/// Panics if the target is out of range, inputs misalign, or there are
/// more applications than ways.
#[must_use]
pub fn asm_qos_partition(
    qos: QosConfig,
    ats: &[AuxiliaryTagStore],
    qstats: &[AppQuantumStats],
    car_alone: Option<&[f64]>,
    quantum: Cycle,
    llc_latency: Cycle,
    ways: usize,
) -> WayPartition {
    let n = ats.len();
    let t = qos.target.index();
    assert!(t < n, "QoS target out of range");
    assert_eq!(ats.len(), qstats.len(), "per-app inputs must align");
    assert!(n <= ways, "more applications than ways");

    // Every other application keeps at least one way.
    let max_target_ways = ways - (n - 1);
    let target_car = car_alone.and_then(|c| c.get(t)).copied();
    let curve = slowdown_curve(&ats[t], &qstats[t], target_car, quantum, llc_latency, ways);
    let target_ways = (1..=max_target_ways)
        .find(|&w| curve[w] <= qos.bound)
        .unwrap_or(max_target_ways);

    // Partition the rest with slowdown-utility look-ahead.
    let remaining = ways - target_ways;
    let others: Vec<usize> = (0..n).filter(|&i| i != t).collect();
    let mut alloc = vec![0usize; n];
    alloc[t] = target_ways;
    if !others.is_empty() {
        let mut benefit = BenefitCurves::new(others.len(), remaining + 1);
        for (k, &i) in others.iter().enumerate() {
            let ca = car_alone.and_then(|c| c.get(i)).copied();
            let full = slowdown_curve(&ats[i], &qstats[i], ca, quantum, llc_latency, ways);
            for (v, sd) in benefit.row_mut(k).iter_mut().zip(&full) {
                *v = -sd;
            }
        }
        let sub = lookahead_partition(&benefit, remaining, 1);
        for (k, &i) in others.iter().enumerate() {
            alloc[i] = sub.ways_for(AppId::new(k));
        }
    }
    WayPartition::new(alloc)
}

/// The Naive-QoS partition: all ways to the target, zero to everyone else.
///
/// # Panics
///
/// Panics if the target is out of range.
#[must_use]
pub fn naive_qos_partition(target: AppId, apps: usize, ways: usize) -> WayPartition {
    assert!(target.index() < apps, "QoS target out of range");
    let mut alloc = vec![0usize; apps];
    alloc[target.index()] = ways;
    WayPartition::new(alloc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mech::testutil::{ats_with_curve, stats};

    fn curvy_inputs() -> (Vec<AuxiliaryTagStore>, Vec<AppQuantumStats>) {
        let ats = vec![
            ats_with_curve(16, 10, 20),
            ats_with_curve(16, 6, 10),
            ats_with_curve(16, 4, 5),
            ats_with_curve(16, 2, 2),
        ];
        let mut qs = Vec::new();
        for _ in 0..4 {
            let mut s = stats(100, 100);
            s.miss_time.add(0, 40_000);
            s.hit_time.add(0, 2_000);
            qs.push(s);
        }
        (ats, qs)
    }

    #[test]
    fn naive_gives_everything_to_target() {
        let p = naive_qos_partition(AppId::new(2), 4, 16);
        assert_eq!(p.ways_for(AppId::new(2)), 16);
        assert_eq!(p.total_ways(), 16);
        for i in [0, 1, 3] {
            assert_eq!(p.ways_for(AppId::new(i)), 0);
        }
    }

    #[test]
    fn tighter_bound_means_more_ways_for_target() {
        let (ats, qs) = curvy_inputs();
        let car = [0.02, 0.01, 0.01, 0.01];
        let loose = asm_qos_partition(
            QosConfig {
                target: AppId::new(0),
                bound: 10.0,
            },
            &ats,
            &qs,
            Some(&car),
            1_000_000,
            20,
            16,
        );
        let tight = asm_qos_partition(
            QosConfig {
                target: AppId::new(0),
                bound: 1.01,
            },
            &ats,
            &qs,
            Some(&car),
            1_000_000,
            20,
            16,
        );
        assert!(tight.ways_for(AppId::new(0)) >= loose.ways_for(AppId::new(0)));
    }

    #[test]
    fn others_always_keep_a_way() {
        let (ats, qs) = curvy_inputs();
        let car = [0.05, 0.01, 0.01, 0.01];
        let p = asm_qos_partition(
            QosConfig {
                target: AppId::new(0),
                bound: 0.5,
            }, // unreachable bound
            &ats,
            &qs,
            Some(&car),
            1_000_000,
            20,
            16,
        );
        assert_eq!(p.total_ways(), 16);
        for i in 1..4 {
            assert!(p.ways_for(AppId::new(i)) >= 1);
        }
        assert_eq!(p.ways_for(AppId::new(0)), 13); // 16 - 3 others
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_target_rejected() {
        let _ = naive_qos_partition(AppId::new(9), 4, 16);
    }
}
