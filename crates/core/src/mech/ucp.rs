//! Utility-based Cache Partitioning [Qureshi & Patt, MICRO 2006].
//!
//! UCP's utility of giving an application `n` ways is the number of its
//! accesses that would hit with `n` ways — read directly off the ATS's
//! per-recency-position hit counters. The look-ahead algorithm then
//! maximises total marginal utility. The paper's critique (§7.1.2): miss
//! counts are only a *proxy* for performance, blind to how much each miss
//! actually costs each application.

use asm_cache::{lookahead_partition, AuxiliaryTagStore, BenefitCurves, WayPartition};

/// Computes the UCP partition from this quantum's ATS hit curves.
///
/// # Panics
///
/// Panics if `ats` is empty or has more entries than `ways` (every
/// application is reserved one way).
#[must_use]
pub fn partition(ats: &[AuxiliaryTagStore], ways: usize) -> WayPartition {
    let mut benefit = BenefitCurves::new(ats.len(), ways + 1);
    for (a, t) in ats.iter().enumerate() {
        fill_hit_curve(t, benefit.row_mut(a));
    }
    lookahead_partition(&benefit, ways, 1)
}

/// The cumulative-hits utility curve: `curve[n]` = sampled accesses that
/// would hit with `n` ways.
#[must_use]
pub fn hit_curve(ats: &AuxiliaryTagStore, ways: usize) -> Vec<f64> {
    let mut curve = vec![0.0; ways + 1];
    fill_hit_curve(ats, &mut curve);
    curve
}

/// Writes the cumulative-hits curve into `row` (one entry per way count,
/// `row[0]` = zero ways).
pub fn fill_hit_curve(ats: &AuxiliaryTagStore, row: &mut [f64]) {
    for (n, v) in row.iter_mut().enumerate() {
        *v = ats.hits_with_ways(n.min(ats.geometry().ways())) as f64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mech::testutil::ats_with_curve;

    #[test]
    fn cache_hungry_app_gets_more_ways() {
        // App 0 re-hits 8 distinct depths many times; app 1 barely reuses.
        let ats = vec![ats_with_curve(16, 8, 20), ats_with_curve(16, 2, 1)];
        let p = partition(&ats, 16);
        assert!(p.ways_for(asm_simcore::AppId::new(0)) > p.ways_for(asm_simcore::AppId::new(1)));
        assert_eq!(p.total_ways(), 16);
    }

    #[test]
    fn hit_curve_is_monotone() {
        let ats = ats_with_curve(16, 8, 5);
        let c = hit_curve(&ats, 16);
        for w in c.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(c.len(), 17);
    }

    #[test]
    fn every_app_keeps_at_least_one_way() {
        let ats = vec![
            ats_with_curve(16, 12, 50),
            ats_with_curve(16, 1, 0),
            ats_with_curve(16, 1, 0),
            ats_with_curve(16, 1, 0),
        ];
        let p = partition(&ats, 16);
        for i in 0..4 {
            assert!(p.ways_for(asm_simcore::AppId::new(i)) >= 1);
        }
    }
}
