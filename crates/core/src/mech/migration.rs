//! Job migration and admission control advice (§7.5).
//!
//! Previous work migrates applications based on proxies (miss counts,
//! bandwidth utilisation); ASM's slowdown estimates are a *direct* measure
//! of the impact of interference, so the system software can act on them:
//! migrate applications away from machines where slowdowns are high, and
//! refuse new admissions where current tenants already exceed their SLAs.
//! This module implements that decision logic over per-machine slowdown
//! snapshots; it is advisory (the actual migration is the OS/cluster
//! manager's job).

/// One machine's latest per-application slowdown estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSnapshot {
    /// Machine identifier.
    pub machine: usize,
    /// Slowdown estimate per resident application.
    pub slowdowns: Vec<f64>,
}

impl MachineSnapshot {
    /// The machine's worst-case slowdown (infinity-free; empty machines
    /// report 1.0).
    #[must_use]
    pub fn max_slowdown(&self) -> f64 {
        self.slowdowns
            .iter()
            .copied()
            .filter(|s| s.is_finite())
            .fold(1.0, f64::max)
    }
}

/// A recommended migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Migration {
    /// Source machine.
    pub from: usize,
    /// Index of the application on the source machine.
    pub app_index: usize,
    /// Destination machine.
    pub to: usize,
}

/// Recommends migrating the most-slowed-down application from the most
/// contended machine to the least contended one, when the gap exceeds
/// `threshold` (e.g. 1.5 = only migrate if the worst machine's maximum
/// slowdown is 1.5x the best machine's).
///
/// Returns `None` when fewer than two machines are given or no move clears
/// the threshold.
#[must_use]
pub fn recommend_migration(snapshots: &[MachineSnapshot], threshold: f64) -> Option<Migration> {
    if snapshots.len() < 2 {
        return None;
    }
    let worst = snapshots
        .iter()
        .max_by(|a, b| a.max_slowdown().total_cmp(&b.max_slowdown()))?;
    let best = snapshots
        .iter()
        .min_by(|a, b| a.max_slowdown().total_cmp(&b.max_slowdown()))?;
    if worst.machine == best.machine || worst.max_slowdown() < threshold * best.max_slowdown() {
        return None;
    }
    let app_index = worst
        .slowdowns
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.total_cmp(b))
        .map(|(i, _)| i)?;
    Some(Migration {
        from: worst.machine,
        app_index,
        to: best.machine,
    })
}

/// Admission control: may a new application be scheduled on this machine
/// without (further) violating the SLA bound on current tenants?
///
/// Conservative rule: admit only if every resident application currently
/// sits below `sla_bound` with `headroom` to spare (e.g. bound 3.0,
/// headroom 0.5 admits while all slowdowns are below 2.5).
#[must_use]
pub fn admit(snapshot: &MachineSnapshot, sla_bound: f64, headroom: f64) -> bool {
    snapshot
        .slowdowns
        .iter()
        .all(|s| s.is_finite() && *s + headroom <= sla_bound)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(machine: usize, slowdowns: &[f64]) -> MachineSnapshot {
        MachineSnapshot {
            machine,
            slowdowns: slowdowns.to_vec(),
        }
    }

    #[test]
    fn migrates_hottest_app_from_hottest_machine() {
        let snaps = [snap(0, &[1.2, 1.1]), snap(1, &[4.0, 2.0]), snap(2, &[1.5])];
        let m = recommend_migration(&snaps, 1.5).expect("migration recommended");
        assert_eq!(m.from, 1);
        assert_eq!(m.app_index, 0);
        assert_eq!(m.to, 0);
    }

    #[test]
    fn no_migration_below_threshold() {
        let snaps = [snap(0, &[2.0]), snap(1, &[2.5])];
        assert_eq!(recommend_migration(&snaps, 1.5), None);
    }

    #[test]
    fn single_machine_never_migrates() {
        let snaps = [snap(0, &[10.0])];
        assert_eq!(recommend_migration(&snaps, 1.0), None);
    }

    #[test]
    fn admission_requires_headroom() {
        let m = snap(0, &[2.0, 2.4]);
        assert!(admit(&m, 3.0, 0.5));
        assert!(!admit(&m, 3.0, 0.7));
    }

    #[test]
    fn empty_machine_admits() {
        let m = snap(0, &[]);
        assert!(admit(&m, 3.0, 0.5));
        assert!((m.max_slowdown() - 1.0).abs() < 1e-12);
    }
}
