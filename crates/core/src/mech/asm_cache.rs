//! ASM-Cache: slowdown-aware cache partitioning (§7.1).
//!
//! For every candidate allocation `n`, ASM-Cache predicts the
//! application's slowdown:
//!
//! ```text
//! slowdown_n = CAR_alone / CAR_n
//! CAR_n = (quantum_hits + quantum_misses) / cycles_n
//! cycles_n = Q − Δhits × (quantum_miss_time − quantum_hit_time)
//! Δhits = quantum_hits_n − quantum_hits        (from the ATS, §7.1.1)
//! ```
//!
//! and then runs UCP's look-ahead loop on *marginal slowdown utility*
//! (`(slowdown_n − slowdown_{n+k}) / k`) instead of marginal miss utility.
//! The paper stresses that this extension is only straightforward because
//! ASM works with aggregate access rates (§3.3, third reason).

use asm_cache::{lookahead_partition, AuxiliaryTagStore, BenefitCurves, WayPartition};
use asm_simcore::Cycle;

use crate::system::AppQuantumStats;

/// Fallback average miss time (cycles) when an application had no misses
/// this quantum.
const DEFAULT_MISS_TIME: f64 = 200.0;

/// Predicted slowdown of one application for every way allocation
/// `0..=ways`.
///
/// Returns a flat all-ones curve when the application was idle or no
/// `CAR_alone` estimate is available.
#[must_use]
pub fn slowdown_curve(
    ats: &AuxiliaryTagStore,
    stats: &AppQuantumStats,
    car_alone: Option<f64>,
    quantum: Cycle,
    llc_latency: Cycle,
    ways: usize,
) -> Vec<f64> {
    let mut curve = vec![0.0; ways + 1];
    fill_slowdown_curve(ats, stats, car_alone, quantum, llc_latency, &mut curve);
    curve
}

/// Writes the predicted-slowdown curve into `row` (one entry per way
/// count, `row[0]` = zero ways); all-ones when the application was idle or
/// no `CAR_alone` estimate is available.
pub fn fill_slowdown_curve(
    ats: &AuxiliaryTagStore,
    stats: &AppQuantumStats,
    car_alone: Option<f64>,
    quantum: Cycle,
    llc_latency: Cycle,
    row: &mut [f64],
) {
    let accesses = stats.hits + stats.misses;
    let Some(car_alone) = car_alone.filter(|c| *c > 0.0) else {
        row.fill(1.0);
        return;
    };
    if accesses == 0 {
        row.fill(1.0);
        return;
    }
    let factor = ats.sampling_factor();
    let hit_t = stats.avg_hit_time(llc_latency as f64);
    let miss_t = stats.avg_miss_time(DEFAULT_MISS_TIME);
    let penalty = (miss_t - hit_t).max(0.0);
    let q = quantum as f64;

    for (n, v) in row.iter_mut().enumerate() {
        let hits_n = ats.hits_with_ways(n.min(ats.geometry().ways())) as f64 * factor;
        let delta_hits = hits_n - stats.hits as f64;
        let cycles_n = (q - delta_hits * penalty).clamp(q * 0.05, q * 4.0);
        let car_n = accesses as f64 / cycles_n;
        *v = (car_alone / car_n).max(0.01);
    }
}

/// Computes the ASM-Cache partition for this quantum.
///
/// `car_alone` is ASM's per-application `CAR_alone` estimate; without it
/// (ASM disabled) the partition degrades gracefully to an even-ish split
/// driven by flat curves.
///
/// # Panics
///
/// Panics if `ats`/`qstats` lengths differ or exceed `ways`.
#[must_use]
pub fn partition(
    ats: &[AuxiliaryTagStore],
    qstats: &[AppQuantumStats],
    car_alone: Option<&[f64]>,
    quantum: Cycle,
    llc_latency: Cycle,
    ways: usize,
) -> WayPartition {
    assert_eq!(ats.len(), qstats.len(), "per-app inputs must align");
    // Benefit = negated slowdown, so marginal utility = slowdown decrease.
    let mut benefit = BenefitCurves::new(ats.len(), ways + 1);
    for (i, (a, s)) in ats.iter().zip(qstats).enumerate() {
        let ca = car_alone.and_then(|c| c.get(i)).copied();
        let row = benefit.row_mut(i);
        fill_slowdown_curve(a, s, ca, quantum, llc_latency, row);
        for v in row {
            *v = -*v;
        }
    }
    lookahead_partition(&benefit, ways, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mech::testutil::{ats_with_curve, stats};
    use asm_simcore::AppId;

    #[test]
    fn curve_without_car_alone_is_flat() {
        let ats = ats_with_curve(16, 4, 5);
        let c = slowdown_curve(&ats, &stats(10, 10), None, 1_000_000, 20, 16);
        assert!(c.iter().all(|&s| s == 1.0));
    }

    #[test]
    fn more_ways_less_predicted_slowdown() {
        let ats = ats_with_curve(16, 8, 20);
        let mut st = stats(50, 100);
        // Make misses expensive so extra hits matter.
        st.miss_time.add(0, 30_000);
        st.hit_time.add(0, 1_000);
        let c = slowdown_curve(&ats, &st, Some(0.01), 1_000_000, 20, 16);
        assert!(
            c[16] <= c[1],
            "slowdown should not increase with more ways: {c:?}"
        );
    }

    #[test]
    fn slowdown_sensitive_app_wins_ways() {
        // App 0: deep reuse + expensive misses -> big slowdown reduction
        // from ways. App 1: no reuse -> flat curve.
        let ats = vec![ats_with_curve(16, 12, 30), ats_with_curve(16, 1, 0)];
        let mut st0 = stats(100, 200);
        st0.miss_time.add(0, 60_000);
        st0.hit_time.add(0, 2_000);
        let st1 = stats(5, 300);
        let p = partition(&ats, &[st0, st1], Some(&[0.02, 0.01]), 1_000_000, 20, 16);
        assert!(p.ways_for(AppId::new(0)) > p.ways_for(AppId::new(1)));
        assert_eq!(p.total_ways(), 16);
    }

    #[test]
    fn idle_apps_get_minimum_allocation() {
        let ats = vec![ats_with_curve(16, 8, 10), ats_with_curve(16, 1, 0)];
        let p = partition(
            &ats,
            &[stats(100, 50), stats(0, 0)],
            Some(&[0.01, 0.0]),
            1_000_000,
            20,
            16,
        );
        assert!(p.ways_for(AppId::new(1)) >= 1);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_inputs_rejected() {
        let ats = vec![ats_with_curve(16, 2, 1)];
        let _ = partition(&ats, &[], None, 1_000, 20, 16);
    }
}
