//! Fair pricing in consolidated cloud systems (§7.4).
//!
//! Cloud pricing schemes bill by resource allocation and wall-clock run
//! length, which silently charges tenants for the interference their
//! co-tenants caused. With an online slowdown estimate, the provider can
//! bill for *alone-equivalent* time instead: a job that ran three hours at
//! an estimated 3x slowdown is billed one hour.

use std::time::Duration;

/// A tenant's usage over a billing period.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UsageRecord {
    /// Wall-clock time the job ran while consolidated.
    pub wall_time: Duration,
    /// The mean slowdown estimated over the period (≥ 1).
    pub estimated_slowdown: f64,
}

impl UsageRecord {
    /// The alone-equivalent time to bill: `wall_time / slowdown`.
    ///
    /// Slowdowns below 1 (estimator noise) are clamped to 1, so a tenant
    /// is never billed more than wall time.
    ///
    /// # Examples
    ///
    /// ```
    /// use asm_core::mech::billing::UsageRecord;
    /// use std::time::Duration;
    /// let rec = UsageRecord {
    ///     wall_time: Duration::from_secs(3 * 3600),
    ///     estimated_slowdown: 3.0,
    /// };
    /// assert_eq!(rec.billable_time(), Duration::from_secs(3600));
    /// ```
    #[must_use]
    pub fn billable_time(&self) -> Duration {
        let slowdown = self.estimated_slowdown.max(1.0);
        Duration::from_secs_f64(self.wall_time.as_secs_f64() / slowdown)
    }

    /// Fraction of the wall-time bill the tenant is refunded due to
    /// interference (`1 - 1/slowdown`).
    #[must_use]
    pub fn interference_discount(&self) -> f64 {
        1.0 - 1.0 / self.estimated_slowdown.max(1.0)
    }
}

/// Aggregates per-quantum slowdown estimates into one billing-period mean,
/// weighting each quantum equally (quanta have fixed length).
///
/// Returns `None` when `estimates` is empty or contains non-finite values.
#[must_use]
pub fn mean_slowdown(estimates: &[f64]) -> Option<f64> {
    if estimates.is_empty() || estimates.iter().any(|s| !s.is_finite()) {
        return None;
    }
    // asm-lint: allow(R5): a billing period holds far fewer than 2^53
    // quanta, so the usize→f64 conversion of the count is exact
    Some(estimates.iter().sum::<f64>() / estimates.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_interference_bills_wall_time() {
        let rec = UsageRecord {
            wall_time: Duration::from_secs(100),
            estimated_slowdown: 1.0,
        };
        assert_eq!(rec.billable_time(), Duration::from_secs(100));
        assert_eq!(rec.interference_discount(), 0.0);
    }

    #[test]
    fn sub_unity_slowdown_clamped() {
        let rec = UsageRecord {
            wall_time: Duration::from_secs(100),
            estimated_slowdown: 0.5,
        };
        assert_eq!(rec.billable_time(), Duration::from_secs(100));
    }

    #[test]
    fn discount_matches_slowdown() {
        let rec = UsageRecord {
            wall_time: Duration::from_secs(100),
            estimated_slowdown: 4.0,
        };
        assert!((rec.interference_discount() - 0.75).abs() < 1e-12);
        assert_eq!(rec.billable_time(), Duration::from_secs(25));
    }

    #[test]
    fn mean_slowdown_validates_input() {
        assert_eq!(mean_slowdown(&[]), None);
        assert_eq!(mean_slowdown(&[1.0, f64::NAN]), None);
        assert_eq!(mean_slowdown(&[1.0, 3.0]), Some(2.0));
    }
}
