//! ASM-Mem: slowdown-aware memory-bandwidth partitioning (§7.2).
//!
//! ASM-Mem does not replace the memory scheduler; it changes *who gets the
//! epochs*. The probability that an epoch is assigned to application `i`
//! is
//!
//! ```text
//! P(i) = slowdown(i) / Σ_k slowdown(k)
//! ```
//!
//! so the most slowed-down applications get the most prioritised memory
//! time. The epoch sampling itself lives in the system's
//! `begin_epoch`; this module computes the weights.

/// Computes epoch-assignment weights proportional to ASM's slowdown
/// estimates. Falls back to uniform weights when no estimates exist yet
/// (e.g. the first quantum).
#[must_use]
pub fn weights(asm_estimates: Option<&[f64]>, apps: usize) -> Vec<f64> {
    match asm_estimates {
        Some(est) if est.len() == apps && est.iter().all(|s| s.is_finite() && *s > 0.0) => {
            est.to_vec()
        }
        _ => vec![1.0; apps],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_follow_estimates() {
        let w = weights(Some(&[1.0, 3.0]), 2);
        assert_eq!(w, vec![1.0, 3.0]);
    }

    #[test]
    fn missing_estimates_fall_back_to_uniform() {
        assert_eq!(weights(None, 3), vec![1.0; 3]);
    }

    #[test]
    fn invalid_estimates_fall_back_to_uniform() {
        assert_eq!(weights(Some(&[1.0, f64::NAN]), 2), vec![1.0; 2]);
        assert_eq!(weights(Some(&[1.0]), 2), vec![1.0; 2]);
        assert_eq!(weights(Some(&[0.0, 1.0]), 2), vec![1.0; 2]);
    }
}
