//! Simplified MCFQ: MLP- and cache-friendliness-aware quasi-partitioning
//! [Kaseridis+, IEEE TC 2014].
//!
//! The full MCFQ scheme quasi-partitions by adjusting insertion/promotion
//! policies; we implement its decision core on top of strict way
//! partitioning, preserving the two ideas the paper contrasts with
//! ASM-Cache (§7.1.2):
//!
//! 1. **cache friendliness**: streaming/thrashing applications (no reuse in
//!    the ATS even with the full cache) are confined to a single way;
//! 2. **MLP awareness**: an application that overlaps its misses suffers
//!    less per miss, so its hit utility is discounted by its measured MLP.
//!
//! What it (by design) lacks — and what Figure 9 shows hurts under
//! memory-intensive workloads — is any notion of *memory bandwidth*
//! interference: utilities are still cache-local.

use asm_cache::{lookahead_partition, AuxiliaryTagStore, BenefitCurves, WayPartition};

use crate::system::AppQuantumStats;

/// ATS hit-rate threshold below which an application is treated as
/// thrashing/streaming and confined to one way.
const THRASH_HIT_RATE: f64 = 0.05;

/// Computes the MCFQ partition for this quantum.
///
/// # Panics
///
/// Panics if `ats`/`qstats` lengths differ or exceed `ways`.
#[must_use]
pub fn partition(
    ats: &[AuxiliaryTagStore],
    qstats: &[AppQuantumStats],
    ways: usize,
) -> WayPartition {
    assert_eq!(ats.len(), qstats.len(), "per-app inputs must align");
    let mut benefit = BenefitCurves::new(ats.len(), ways + 1);
    for (i, (a, s)) in ats.iter().zip(qstats).enumerate() {
        let sampled = a.accesses();
        let full_hits = a.hits_with_ways(a.geometry().ways());
        let hit_rate = if sampled > 0 {
            full_hits as f64 / sampled as f64
        } else {
            0.0
        };
        let cap = if hit_rate < THRASH_HIT_RATE { 1 } else { ways };
        // Discount hit utility by MLP: overlapped misses hurt less.
        let weight = 1.0 / s.avg_mlp().sqrt();
        for (n, v) in benefit.row_mut(i).iter_mut().enumerate() {
            *v = weight * a.hits_with_ways(n.min(cap).min(a.geometry().ways())) as f64;
        }
    }
    lookahead_partition(&benefit, ways, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mech::testutil::{ats_with_curve, stats};
    use asm_simcore::AppId;

    #[test]
    fn thrashing_app_confined_to_one_way() {
        // App 1 never re-hits in its ATS: thrashing.
        let ats = vec![ats_with_curve(16, 8, 10), ats_with_curve(16, 8, 0)];
        let p = partition(&ats, &[stats(100, 50), stats(0, 500)], 16);
        assert_eq!(p.ways_for(AppId::new(1)), 1);
        assert_eq!(p.ways_for(AppId::new(0)), 15);
    }

    #[test]
    fn high_mlp_app_discounted() {
        let ats = vec![ats_with_curve(16, 8, 10), ats_with_curve(16, 8, 10)];
        let mut st0 = stats(100, 50);
        st0.mlp_sum = 50; // avg MLP 1
        st0.mlp_samples = 50;
        let mut st1 = stats(100, 50);
        st1.mlp_sum = 800; // avg MLP 16
        st1.mlp_samples = 50;
        let p = partition(&ats, &[st0, st1], 16);
        assert!(
            p.ways_for(AppId::new(0)) >= p.ways_for(AppId::new(1)),
            "low-MLP app should be favoured: {:?}",
            p.as_slice()
        );
    }

    #[test]
    fn all_ways_distributed() {
        let ats = vec![
            ats_with_curve(16, 4, 3),
            ats_with_curve(16, 6, 2),
            ats_with_curve(16, 2, 8),
            ats_with_curve(16, 8, 1),
        ];
        let qs = vec![stats(10, 10); 4];
        let p = partition(&ats, &qs, 16);
        assert_eq!(p.total_ways(), 16);
    }
}
