//! Resource-management mechanisms built on slowdown estimates (§7) and the
//! prior-work baselines they are compared against.
//!
//! - [`asm_cache`]: ASM-Cache (§7.1) — marginal *slowdown* utility cache
//!   partitioning.
//! - [`ucp`]: Utility-based Cache Partitioning \[56\] — marginal *miss*
//!   utility.
//! - [`mcfq`]: simplified MCFQ \[27\] — MLP- and friendliness-aware
//!   partitioning.
//! - [`qos`]: ASM-QoS and Naive-QoS (§7.3) — soft slowdown guarantees.
//! - [`asm_mem`]: ASM-Mem (§7.2) — slowdown-proportional epoch assignment.
//! - [`billing`]: fair (alone-equivalent) cloud pricing (§7.4).
//! - [`migration`]: slowdown-driven migration and admission control (§7.5).
//! - [`throttle`]: FST-style source throttling (§8).
//!
//! All cache mechanisms run at quantum boundaries and produce a
//! [`WayPartition`] the system installs in the shared cache.

pub mod asm_cache;
pub mod asm_mem;
pub mod billing;
pub mod mcfq;
pub mod migration;
pub mod qos;
pub mod throttle;
pub mod ucp;

use ::asm_cache::{AuxiliaryTagStore, WayPartition};
use asm_simcore::Cycle;

use crate::config::{CachePolicy, MemPolicy};
use crate::system::AppQuantumStats;

/// Computes the way partition the configured cache policy wants at this
/// quantum boundary (`None` = leave the cache unpartitioned / unchanged).
#[must_use]
pub fn apply_cache_policy(
    policy: CachePolicy,
    ats: &[AuxiliaryTagStore],
    qstats: &[AppQuantumStats],
    car_alone: Option<&[f64]>,
    quantum: Cycle,
    llc_latency: Cycle,
    ways: usize,
) -> Option<WayPartition> {
    match policy {
        CachePolicy::None => None,
        CachePolicy::Ucp => Some(ucp::partition(ats, ways)),
        CachePolicy::Mcfq => Some(mcfq::partition(ats, qstats, ways)),
        CachePolicy::AsmCache => Some(asm_cache::partition(
            ats,
            qstats,
            car_alone,
            quantum,
            llc_latency,
            ways,
        )),
        CachePolicy::AsmQos(qos_cfg) => Some(qos::asm_qos_partition(
            qos_cfg,
            ats,
            qstats,
            car_alone,
            quantum,
            llc_latency,
            ways,
        )),
        CachePolicy::NaiveQos(target) => Some(qos::naive_qos_partition(target, ats.len(), ways)),
    }
}

/// Computes next quantum's epoch-assignment weights.
#[must_use]
pub fn epoch_weights(policy: MemPolicy, asm_estimates: Option<&[f64]>, apps: usize) -> Vec<f64> {
    match policy {
        MemPolicy::Uniform => vec![1.0; apps],
        MemPolicy::SlowdownWeighted => asm_mem::weights(asm_estimates, apps),
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use ::asm_cache::CacheGeometry;
    use asm_simcore::LineAddr;

    /// A small ATS pre-populated so that `hits_with_ways(n)` grows with `n`
    /// at a controllable rate: `reuses` hits at stack positions spread over
    /// `depth` ways.
    pub fn ats_with_curve(ways: usize, depth: usize, reuses: usize) -> AuxiliaryTagStore {
        let geom = CacheGeometry::new(4, ways);
        let mut ats = AuxiliaryTagStore::new(geom, None);
        // Touch `depth` distinct lines mapping to set 0, then re-touch them
        // in reverse order so hits land at varying stack depths.
        for k in 0..depth as u64 {
            ats.access(LineAddr::new(k * 4));
        }
        for _ in 0..reuses {
            for k in (0..depth as u64).rev() {
                ats.access(LineAddr::new(k * 4));
            }
        }
        ats
    }

    pub fn stats(hits: u64, misses: u64) -> AppQuantumStats {
        AppQuantumStats {
            accesses: hits + misses,
            hits,
            misses,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use testutil::*;

    #[test]
    fn none_policy_yields_no_partition() {
        let p = apply_cache_policy(CachePolicy::None, &[], &[], None, 1_000, 20, 16);
        assert!(p.is_none());
    }

    #[test]
    fn uniform_weights_are_equal() {
        assert_eq!(epoch_weights(MemPolicy::Uniform, None, 3), vec![1.0; 3]);
    }

    #[test]
    fn ucp_policy_produces_full_partition() {
        let ats = vec![ats_with_curve(8, 4, 10), ats_with_curve(8, 2, 1)];
        let qs = vec![stats(100, 10), stats(10, 100)];
        let p = apply_cache_policy(CachePolicy::Ucp, &ats, &qs, None, 1_000_000, 20, 8).unwrap();
        assert_eq!(p.total_ways(), 8);
    }
}
