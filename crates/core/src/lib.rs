#![warn(missing_docs)]
//! The Application Slowdown Model (ASM) — the paper's primary contribution
//! — together with the full-system simulator it runs in, the prior-work
//! estimators it is compared against, and the resource-management
//! mechanisms built on top of it.
//!
//! # What this crate contains
//!
//! - [`System`]: a cycle-level multi-core system — out-of-order cores,
//!   private L1s, a shared LLC, auxiliary tag stores, pollution filters,
//!   an optional stride prefetcher, and the DDR3 memory system — driven
//!   one cycle at a time with quantum/epoch machinery (§4).
//! - [`estimator`]: the slowdown estimators. [`estimator::AsmEstimator`]
//!   implements the paper's model (Table 1 counters, the `CAR_alone`
//!   formula of §4.2, the queueing correction of §4.3 and the ATS sampling
//!   of §4.4); [`estimator::FstEstimator`], [`estimator::PtcaEstimator`]
//!   and [`estimator::MiseEstimator`] implement the prior work compared in
//!   §6.
//! - [`mech`]: the ASM use cases of §7 — slowdown-aware cache partitioning
//!   (ASM-Cache), slowdown-aware memory-bandwidth partitioning (ASM-Mem),
//!   soft slowdown guarantees (ASM-QoS) — plus the UCP and MCFQ baselines.
//! - [`runner`]: pairs shared runs with per-application alone runs to
//!   compute ground-truth slowdowns (`IPC_alone / IPC_shared` over the
//!   same work, §5) and produce the records every experiment consumes.
//! - [`checkpoint`]: deterministic system snapshots — fork one shared
//!   first-quantum warmup into every policy variant of a sweep, and
//!   resume interrupted campaigns — with byte-identical results either
//!   way (DESIGN.md §11).
//!
//! # Quick start
//!
//! ```
//! use asm_core::{Runner, SystemConfig};
//! use asm_workloads::suite;
//!
//! let mut config = SystemConfig::default();
//! config.quantum = 100_000; // scaled down for the doctest
//! config.epoch = 2_000;
//! let apps = vec![
//!     suite::by_name("mcf_like").unwrap(),
//!     suite::by_name("h264ref_like").unwrap(),
//! ];
//! let runner = Runner::new(config);
//! let result = runner.run(&apps, 200_000);
//! assert_eq!(result.quanta.len(), 2);
//! // Each quantum carries an ASM estimate and the measured slowdown.
//! let q = &result.quanta[0];
//! assert_eq!(q.estimates[0].0, "ASM");
//! assert_eq!(q.actual.len(), 2);
//! ```

pub mod checkpoint;
pub mod config;
pub mod estimator;
pub mod mech;
pub mod runner;
pub mod system;

pub use config::{
    CachePolicy, EpochAssignment, EstimatorSet, MemPolicy, PrefetchConfig, QosConfig, SystemConfig,
    ThrottlePolicy,
};
pub use asm_attrib::{Component, QuantumLedger, COMPONENTS};
pub use runner::{
    config_hash, AloneCache, QuantumResult, RunAttribution, RunOptions, RunResult, Runner,
};
pub use system::{AppSpec, AppSummary, QuantumRecord, RunTelemetry, System};
