//! STFM: stall-time fair memory scheduling's slowdown model [Mutlu &
//! Moscibroda, MICRO 2007] (§2.1).
//!
//! STFM estimates slowdown as the ratio of *memory stall times*:
//! `T_stall_shared / T_stall_alone`, where the alone stall time is obtained
//! by subtracting, per request, the cycles the request was delayed by other
//! applications — divided by a *parallelism factor* because overlapped
//! requests do not stall the processor serially. It is the original
//! per-request accounting model; FST and PTCA extend it with shared-cache
//! interference, and MISE/ASM replace it with aggregate epoch measurement.
//!
//! STFM is memory-only (no shared-cache term). Our implementation tracks
//! per-application memory stall time as the union of outstanding-miss
//! intervals, and interference as the per-request bank-wait cycles divided
//! by the concurrent-miss count.

use asm_simcore::{AppId, Cycle};

use super::{AccessEvent, MissEvent, QuantumCtx, SlowdownEstimator, UnionTime};

#[derive(Debug, Clone, Copy, Default)]
struct AppState {
    /// Union of outstanding-miss intervals: the shared memory stall time.
    stall_time: UnionTime,
    /// Estimated interference cycles (per-request, parallelism-scaled).
    interference: f64,
}

/// The STFM slowdown estimator.
///
/// # Examples
///
/// ```
/// use asm_core::estimator::{SlowdownEstimator, StfmEstimator};
/// let est = StfmEstimator::new(4);
/// assert_eq!(est.name(), "STFM");
/// ```
#[derive(Debug)]
pub struct StfmEstimator {
    apps: Vec<AppState>,
}

impl StfmEstimator {
    /// Creates the estimator for `app_count` applications.
    #[must_use]
    pub fn new(app_count: usize) -> Self {
        StfmEstimator {
            apps: vec![AppState::default(); app_count],
        }
    }
}

impl SlowdownEstimator for StfmEstimator {
    fn name(&self) -> &'static str {
        "STFM"
    }

    fn on_epoch_start(&mut self, _now: Cycle, _owner: Option<AppId>) {}

    fn on_access(&mut self, _ev: &AccessEvent) {}

    fn on_miss_complete(&mut self, ev: &MissEvent) {
        let st = &mut self.apps[ev.app.index()];
        st.stall_time.add(ev.arrival, ev.finish);
        let par = ev.concurrent_misses.max(1) as f64;
        st.interference += ev.interference_cycles as f64 / par;
    }

    fn on_quantum_end(&mut self, ctx: &QuantumCtx<'_>) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.apps.len());
        for st in &mut self.apps {
            let shared_stall = st.stall_time.total as f64;
            let slowdown = if shared_stall <= 0.0 {
                1.0
            } else {
                // Alone stall time = shared stall minus estimated
                // interference; the processor time outside memory stalls is
                // assumed unaffected (STFM's model).
                let alone_stall = (shared_stall - st.interference).max(shared_stall * 0.1);
                let non_stall = (ctx.quantum as f64 - shared_stall).max(0.0);
                ((non_stall + shared_stall) / (non_stall + alone_stall)).max(1.0)
            };
            out.push(slowdown);
            let mut stall_time = st.stall_time;
            stall_time.reset();
            *st = AppState {
                stall_time,
                interference: 0.0,
            };
        }
        out
    }

    fn save_state(&self, w: &mut asm_simcore::persist::StateWriter) {
        w.usize(self.apps.len());
        for st in &self.apps {
            st.stall_time.save_state(w);
            w.f64(st.interference);
        }
    }

    fn restore_state(
        &mut self,
        r: &mut asm_simcore::persist::StateReader<'_>,
    ) -> Result<(), asm_simcore::persist::PersistError> {
        use asm_simcore::persist::PersistError;
        if r.usize()? != self.apps.len() {
            return Err(PersistError::Corrupt(
                "estimator app count mismatch".to_owned(),
            ));
        }
        let mut apps = Vec::with_capacity(self.apps.len());
        for _ in 0..self.apps.len() {
            apps.push(AppState {
                stall_time: UnionTime::restore_from(r)?,
                interference: r.f64()?,
            });
        }
        self.apps = apps;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asm_simcore::LineAddr;

    fn ctx() -> QuantumCtx<'static> {
        QuantumCtx {
            now: 100_000,
            quantum: 100_000,
            epoch: 1_000,
            queueing_cycles: &[],
            llc_latency: 20,
        }
    }

    fn miss(arrival: Cycle, finish: Cycle, interference: Cycle, concurrent: u64) -> MissEvent {
        MissEvent {
            app: AppId::new(0),
            line: LineAddr::new(0),
            arrival,
            finish,
            interference_cycles: interference,
            concurrent_misses: concurrent,
            epoch_owned_at_issue: false,
            epoch_end: Cycle::MAX,
            was_ats_hit: None,
            pollution_hit: false,
        }
    }

    #[test]
    fn no_misses_means_no_slowdown() {
        let mut est = StfmEstimator::new(1);
        assert_eq!(est.on_quantum_end(&ctx())[0], 1.0);
    }

    #[test]
    fn interference_free_misses_mean_no_slowdown() {
        let mut est = StfmEstimator::new(1);
        for k in 0..100u64 {
            est.on_miss_complete(&miss(k * 500, k * 500 + 200, 0, 1));
        }
        assert_eq!(est.on_quantum_end(&ctx())[0], 1.0);
    }

    #[test]
    fn interference_raises_estimate() {
        let mut est = StfmEstimator::new(1);
        // 100 serialised misses, 400 of each 500 cycles due to others.
        for k in 0..100u64 {
            est.on_miss_complete(&miss(k * 500, k * 500 + 500, 400, 1));
        }
        let s = est.on_quantum_end(&ctx())[0];
        // Stall 50k of 100k; alone stall 10k -> 100k / 60k.
        assert!((s - 100.0 / 60.0).abs() < 1e-9, "got {s}");
    }

    #[test]
    fn parallelism_factor_discounts_overlap() {
        let run = |concurrent| {
            let mut est = StfmEstimator::new(1);
            for k in 0..100u64 {
                est.on_miss_complete(&miss(k * 500, k * 500 + 500, 400, concurrent));
            }
            est.on_quantum_end(&ctx())[0]
        };
        assert!(run(8) < run(1));
    }

    #[test]
    fn overlapping_misses_share_stall_time() {
        let mut est = StfmEstimator::new(1);
        // Two fully overlapping misses: stall time counted once.
        est.on_miss_complete(&miss(0, 500, 0, 2));
        est.on_miss_complete(&miss(0, 500, 0, 2));
        assert_eq!(est.apps[0].stall_time.total, 500);
    }

    #[test]
    fn resets_between_quanta() {
        let mut est = StfmEstimator::new(1);
        est.on_miss_complete(&miss(0, 500, 400, 1));
        est.on_quantum_end(&ctx());
        assert_eq!(est.on_quantum_end(&ctx())[0], 1.0);
    }
}
