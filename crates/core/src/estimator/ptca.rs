//! Per-Thread Cycle Accounting [Du Bois+, HiPEAC 2013] (§2.1).
//!
//! Like FST, PTCA accounts interference cycles *per request*; it differs in
//! identifying contention misses with a per-application auxiliary tag store
//! instead of a pollution filter. With a full ATS this is exact (PTCA
//! beats FST unsampled in Figure 2); but when the ATS is *set-sampled*,
//! PTCA can only observe the requests that map to sampled sets and must
//! scale their interference cycles up by the sampling factor — and because
//! per-request latencies vary wildly, scaling a small latency sample is far
//! noisier than scaling a count, which is why PTCA degrades most under
//! sampling (Figure 3: 14.7% → 40.4%).

use asm_simcore::{Cycle, Histogram};

use super::{AccessEvent, MissEvent, QuantumCtx, SlowdownEstimator};

/// Upper bound on the per-request cache-contention penalty (cycles); see
/// the same constant in the FST estimator.
const CACHE_PENALTY_CAP: f64 = 1_000.0;

/// The PTCA slowdown estimator.
///
/// # Examples
///
/// ```
/// use asm_core::estimator::{PtcaEstimator, SlowdownEstimator};
/// let est = PtcaEstimator::new(4, 20, 32.0, None);
/// assert_eq!(est.name(), "PTCA");
/// ```
#[derive(Debug)]
pub struct PtcaEstimator {
    excess: Vec<f64>,
    llc_latency: Cycle,
    /// `total sets / sampled sets` of the ATS (1.0 when unsampled).
    sampling_factor: f64,
    latency_hist: Option<Histogram>,
}

impl PtcaEstimator {
    /// Creates the estimator; `sampling_factor` is the ATS's
    /// total-to-sampled set ratio.
    ///
    /// # Panics
    ///
    /// Panics if `sampling_factor < 1.0`.
    #[must_use]
    pub fn new(
        app_count: usize,
        llc_latency: Cycle,
        sampling_factor: f64,
        latency_hist: Option<(f64, usize)>,
    ) -> Self {
        assert!(sampling_factor >= 1.0, "sampling factor must be >= 1");
        PtcaEstimator {
            excess: vec![0.0; app_count],
            llc_latency,
            sampling_factor,
            latency_hist: latency_hist.map(|(w, n)| Histogram::new(w, n)),
        }
    }
}

impl SlowdownEstimator for PtcaEstimator {
    fn name(&self) -> &'static str {
        "PTCA"
    }

    fn on_epoch_start(&mut self, _now: Cycle, _owner: Option<asm_simcore::AppId>) {}

    fn on_access(&mut self, _ev: &AccessEvent) {}

    fn on_miss_complete(&mut self, ev: &MissEvent) {
        // PTCA only observes requests mapping to sampled ATS sets, and
        // scales their cycle counts to the whole cache.
        let Some(ats_hit) = ev.was_ats_hit else {
            return;
        };
        let par = ev.concurrent_misses.max(1) as f64;
        let excess = &mut self.excess[ev.app.index()];
        *excess += self.sampling_factor * ev.interference_cycles as f64 / par;
        if ats_hit {
            // Contention miss: alone it would have been a cache hit.
            let cache_penalty =
                (ev.latency().saturating_sub(self.llc_latency) as f64).min(CACHE_PENALTY_CAP);
            *excess += self.sampling_factor * cache_penalty / par;
        }
        if let Some(h) = &mut self.latency_hist {
            let alone = ev.latency().saturating_sub(ev.interference_cycles);
            h.add(alone as f64);
        }
    }

    fn on_quantum_end(&mut self, ctx: &QuantumCtx<'_>) -> Vec<f64> {
        let q = ctx.quantum as f64;
        let out = self
            .excess
            .iter()
            .map(|excess| {
                let alone = (q - excess).max(q * 0.1);
                (q / alone).max(1.0)
            })
            .collect();
        self.excess.fill(0.0);
        out
    }

    fn miss_latency_histogram(&self) -> Option<&Histogram> {
        self.latency_hist.as_ref()
    }

    fn save_state(&self, w: &mut asm_simcore::persist::StateWriter) {
        w.f64_slice(&self.excess);
        w.bool(self.latency_hist.is_some());
        if let Some(h) = &self.latency_hist {
            h.save_state(w);
        }
    }

    fn restore_state(
        &mut self,
        r: &mut asm_simcore::persist::StateReader<'_>,
    ) -> Result<(), asm_simcore::persist::PersistError> {
        use asm_simcore::persist::PersistError;
        let corrupt = |what: &str| PersistError::Corrupt(what.to_owned());
        let excess = r.f64_vec()?;
        if excess.len() != self.excess.len() {
            return Err(corrupt("estimator app count mismatch"));
        }
        if r.bool()? != self.latency_hist.is_some() {
            return Err(corrupt("histogram presence mismatch"));
        }
        let latency_hist = if self.latency_hist.is_some() {
            Some(Histogram::restore_from(r)?)
        } else {
            None
        };
        self.excess = excess;
        self.latency_hist = latency_hist;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asm_simcore::{AppId, LineAddr};

    fn ctx() -> QuantumCtx<'static> {
        QuantumCtx {
            now: 100_000,
            quantum: 100_000,
            epoch: 1_000,
            queueing_cycles: &[],
            llc_latency: 20,
        }
    }

    fn miss(latency: Cycle, interference: Cycle, ats: Option<bool>) -> MissEvent {
        MissEvent {
            app: AppId::new(0),
            line: LineAddr::new(0),
            arrival: 0,
            finish: latency,
            interference_cycles: interference,
            concurrent_misses: 1,
            epoch_owned_at_issue: false,
            epoch_end: Cycle::MAX,
            was_ats_hit: ats,
            pollution_hit: false,
        }
    }

    #[test]
    fn unsampled_requests_are_invisible() {
        let mut est = PtcaEstimator::new(1, 20, 32.0, None);
        for _ in 0..100 {
            est.on_miss_complete(&miss(500, 400, None));
        }
        let s = est.on_quantum_end(&ctx());
        assert_eq!(s[0], 1.0);
    }

    #[test]
    fn sampled_interference_is_scaled() {
        let mut unsampled = PtcaEstimator::new(1, 20, 1.0, None);
        let mut sampled = PtcaEstimator::new(1, 20, 32.0, None);
        // One observed request out of 32 (the others unsampled).
        sampled.on_miss_complete(&miss(500, 320, Some(false)));
        for _ in 0..32 {
            unsampled.on_miss_complete(&miss(500, 320, Some(false)));
        }
        let a = sampled.on_quantum_end(&ctx())[0];
        let b = unsampled.on_quantum_end(&ctx())[0];
        assert!((a - b).abs() < 1e-9, "scaled {a} vs full {b}");
    }

    #[test]
    fn contention_miss_adds_cache_penalty() {
        let mut with = PtcaEstimator::new(1, 20, 1.0, None);
        let mut without = PtcaEstimator::new(1, 20, 1.0, None);
        for _ in 0..50 {
            with.on_miss_complete(&miss(320, 100, Some(true)));
            without.on_miss_complete(&miss(320, 100, Some(false)));
        }
        assert!(with.on_quantum_end(&ctx())[0] > without.on_quantum_end(&ctx())[0]);
    }

    #[test]
    fn resets_between_quanta() {
        let mut est = PtcaEstimator::new(1, 20, 1.0, None);
        est.on_miss_complete(&miss(500, 400, Some(true)));
        est.on_quantum_end(&ctx());
        assert_eq!(est.on_quantum_end(&ctx())[0], 1.0);
    }

    #[test]
    #[should_panic(expected = "sampling factor")]
    fn rejects_sub_unity_sampling() {
        let _ = PtcaEstimator::new(1, 20, 0.5, None);
    }
}
