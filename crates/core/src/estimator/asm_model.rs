//! The Application Slowdown Model (§3–§4).
//!
//! ASM estimates each application's slowdown as
//! `CAR_alone / CAR_shared` (§3.1). `CAR_shared` is measured directly
//! (§4.1). `CAR_alone` is estimated from the metrics of Table 1, gathered
//! during the application's *epochs* — short windows in which the memory
//! controller gives the application's requests highest priority:
//!
//! ```text
//! CAR_alone = (epoch_hits + epoch_misses)
//!           / (epoch_count * E  -  epoch_excess_cycles
//!                               -  epoch_ATS_misses * avg_queueing_delay)
//!
//! epoch_excess_cycles = contention_misses * (avg_miss_time - avg_hit_time)
//! contention_misses   = epoch_ATS_hits - epoch_hits
//! ```
//!
//! With a sampled ATS (§4.4), `epoch_ATS_hits/misses` are reconstructed
//! from the sampled hit/miss *fractions* times the total epoch accesses —
//! sampling a count is far more robust than sampling per-request latencies,
//! which is the paper's explanation for ASM's robustness in Figure 3.

use asm_simcore::{AppId, Cycle, Histogram};

use super::{AccessEvent, MissEvent, QuantumCtx, SlowdownEstimator, UnionTime};

#[derive(Debug, Clone, Default)]
struct AppState {
    /// All shared-cache accesses this quantum (CAR_shared numerator).
    accesses: u64,
    /// Epochs assigned to this application.
    epoch_count: u64,
    /// Table 1 metrics, gathered during this application's epochs.
    epoch_hits: u64,
    epoch_misses: u64,
    epoch_hit_time: UnionTime,
    epoch_miss_time: UnionTime,
    /// Sampled ATS outcomes during this application's epochs.
    ats_hits_sampled: u64,
    ats_misses_sampled: u64,
}

/// The ASM slowdown estimator.
///
/// # Examples
///
/// ```
/// use asm_core::estimator::{AsmEstimator, SlowdownEstimator};
/// let est = AsmEstimator::new(2, 20, None);
/// assert_eq!(est.name(), "ASM");
/// ```
#[derive(Debug)]
pub struct AsmEstimator {
    apps: Vec<AppState>,
    llc_latency: Cycle,
    /// Miss-service-time distribution during owned epochs (ASM's alone
    /// miss-latency estimate; Figure 6).
    latency_hist: Option<Histogram>,
    last_car_alone: Vec<f64>,
    /// Per-app `(ats_hits, ats_misses)` from the last completed quantum,
    /// captured before the quantum reset (telemetry introspection).
    last_ats: Vec<(u64, u64)>,
    queueing_correction: bool,
}

impl AsmEstimator {
    /// Creates the estimator for `app_count` applications; `latency_hist`
    /// enables Figure 6-style histogram collection.
    #[must_use]
    pub fn new(app_count: usize, llc_latency: Cycle, latency_hist: Option<(f64, usize)>) -> Self {
        AsmEstimator {
            apps: vec![AppState::default(); app_count],
            llc_latency,
            latency_hist: latency_hist.map(|(w, n)| Histogram::new(w, n)),
            last_car_alone: vec![0.0; app_count],
            last_ats: vec![(0, 0); app_count],
            queueing_correction: true,
        }
    }

    /// Enables or disables the §4.3 memory-queueing-delay correction
    /// (ablation switch; on by default).
    pub fn set_queueing_correction(&mut self, enabled: bool) {
        self.queueing_correction = enabled;
    }
}

impl SlowdownEstimator for AsmEstimator {
    fn name(&self) -> &'static str {
        "ASM"
    }

    fn on_epoch_start(&mut self, _now: Cycle, owner: Option<AppId>) {
        if let Some(owner) = owner {
            self.apps[owner.index()].epoch_count += 1;
        }
    }

    fn on_access(&mut self, ev: &AccessEvent) {
        let st = &mut self.apps[ev.app.index()];
        st.accesses += 1;
        if ev.epoch_owner != Some(ev.app) {
            return;
        }
        if ev.llc_hit {
            st.epoch_hits += 1;
            st.epoch_hit_time.add(ev.now, ev.now + self.llc_latency);
        } else {
            st.epoch_misses += 1;
        }
        if let Some(ats) = ev.ats {
            if ats.hit {
                st.ats_hits_sampled += 1;
            } else {
                st.ats_misses_sampled += 1;
            }
        }
    }

    fn on_miss_complete(&mut self, ev: &MissEvent) {
        if !ev.epoch_owned_at_issue {
            return;
        }
        let st = &mut self.apps[ev.app.index()];
        // Table 1: epoch-miss-time counts cycles "during its assigned
        // epochs" — service that spills past the epoch boundary (where the
        // application no longer holds priority) is excluded.
        st.epoch_miss_time
            .add(ev.arrival, ev.finish.min(ev.epoch_end));
        if let Some(h) = &mut self.latency_hist {
            h.add(ev.latency() as f64);
        }
    }

    fn on_quantum_end(&mut self, ctx: &QuantumCtx<'_>) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.apps.len());
        for (i, st) in self.apps.iter_mut().enumerate() {
            let estimate =
                estimate_slowdown(st, ctx, i, self.llc_latency, self.queueing_correction);
            self.last_car_alone[i] = estimate.car_alone;
            self.last_ats[i] = (st.ats_hits_sampled, st.ats_misses_sampled);
            out.push(estimate.slowdown);
            *st = AppState {
                // Union trackers keep their horizons across quanta.
                epoch_hit_time: {
                    let mut u = st.epoch_hit_time;
                    u.reset();
                    u
                },
                epoch_miss_time: {
                    let mut u = st.epoch_miss_time;
                    u.reset();
                    u
                },
                ..AppState::default()
            };
        }
        out
    }

    fn car_alone(&self) -> Option<&[f64]> {
        Some(&self.last_car_alone)
    }

    fn miss_latency_histogram(&self) -> Option<&Histogram> {
        self.latency_hist.as_ref()
    }

    fn ats_sample_counts(&self) -> Option<&[(u64, u64)]> {
        Some(&self.last_ats)
    }

    fn save_state(&self, w: &mut asm_simcore::persist::StateWriter) {
        w.usize(self.apps.len());
        for st in &self.apps {
            w.u64(st.accesses);
            w.u64(st.epoch_count);
            w.u64(st.epoch_hits);
            w.u64(st.epoch_misses);
            st.epoch_hit_time.save_state(w);
            st.epoch_miss_time.save_state(w);
            w.u64(st.ats_hits_sampled);
            w.u64(st.ats_misses_sampled);
        }
        w.bool(self.latency_hist.is_some());
        if let Some(h) = &self.latency_hist {
            h.save_state(w);
        }
        w.f64_slice(&self.last_car_alone);
        for &(hits, misses) in &self.last_ats {
            w.u64(hits);
            w.u64(misses);
        }
    }

    fn restore_state(
        &mut self,
        r: &mut asm_simcore::persist::StateReader<'_>,
    ) -> Result<(), asm_simcore::persist::PersistError> {
        use asm_simcore::persist::PersistError;
        let corrupt = |what: &str| PersistError::Corrupt(what.to_owned());
        if r.usize()? != self.apps.len() {
            return Err(corrupt("estimator app count mismatch"));
        }
        let mut apps = Vec::with_capacity(self.apps.len());
        for _ in 0..self.apps.len() {
            apps.push(AppState {
                accesses: r.u64()?,
                epoch_count: r.u64()?,
                epoch_hits: r.u64()?,
                epoch_misses: r.u64()?,
                epoch_hit_time: UnionTime::restore_from(r)?,
                epoch_miss_time: UnionTime::restore_from(r)?,
                ats_hits_sampled: r.u64()?,
                ats_misses_sampled: r.u64()?,
            });
        }
        if r.bool()? != self.latency_hist.is_some() {
            return Err(corrupt("histogram presence mismatch"));
        }
        let latency_hist = if self.latency_hist.is_some() {
            Some(asm_simcore::Histogram::restore_from(r)?)
        } else {
            None
        };
        let last_car_alone = r.f64_vec()?;
        if last_car_alone.len() != self.apps.len() {
            return Err(corrupt("car-alone length mismatch"));
        }
        let mut last_ats = Vec::with_capacity(self.apps.len());
        for _ in 0..self.apps.len() {
            last_ats.push((r.u64()?, r.u64()?));
        }
        self.apps = apps;
        self.latency_hist = latency_hist;
        self.last_car_alone = last_car_alone;
        self.last_ats = last_ats;
        Ok(())
    }
}

/// Minimum accesses observed during owned epochs before the model trusts
/// its extrapolation (sparser data degenerates like Table 3's short-Q
/// cells).
const MIN_EPOCH_ACCESSES: u64 = 16;

/// Plausibility ceiling on a single-quantum estimate; even 16-core
/// workloads stay far below this.
const MAX_SLOWDOWN: f64 = 50.0;

struct Estimate {
    slowdown: f64,
    car_alone: f64,
}

/// The §4.2/§4.3 model, with guards for degenerate quanta (no accesses, no
/// epochs assigned).
fn estimate_slowdown(
    st: &AppState,
    ctx: &QuantumCtx<'_>,
    app_index: usize,
    llc_latency: Cycle,
    queueing_correction: bool,
) -> Estimate {
    let car_shared = st.accesses as f64 / ctx.quantum as f64;
    // Keep the degenerate-quantum test in integer cycles (asm-lint R3):
    // comparing the f64 image of this product against 0.0 is exact today
    // but fragile under refactoring.
    let epoch_cycles_int = st.epoch_count * ctx.epoch;
    let epoch_cycles = epoch_cycles_int as f64;
    let epoch_accesses = st.epoch_hits + st.epoch_misses;

    if st.accesses == 0 || epoch_accesses < MIN_EPOCH_ACCESSES || epoch_cycles_int == 0 {
        // Too little information: the application is compute-bound or was
        // barely observed under priority this quantum (Table 3 shows the
        // model needs enough epoch samples); report no slowdown.
        return Estimate {
            slowdown: 1.0,
            car_alone: car_shared,
        };
    }

    // §4.4: reconstruct ATS counts from sampled fractions.
    let sampled_total = st.ats_hits_sampled + st.ats_misses_sampled;
    let (ats_hit_frac, ats_miss_frac) = if sampled_total > 0 {
        (
            st.ats_hits_sampled as f64 / sampled_total as f64,
            st.ats_misses_sampled as f64 / sampled_total as f64,
        )
    } else {
        // No sampled accesses: fall back to observed shared hit rate
        // (i.e. assume no cache contention information).
        (
            st.epoch_hits as f64 / epoch_accesses as f64,
            st.epoch_misses as f64 / epoch_accesses as f64,
        )
    };
    let epoch_ats_hits = ats_hit_frac * epoch_accesses as f64;
    let epoch_ats_misses = ats_miss_frac * epoch_accesses as f64;

    // §4.2: excess cycles from contention misses.
    let contention_misses = (epoch_ats_hits - st.epoch_hits as f64).max(0.0);
    let avg_miss_time = if st.epoch_misses > 0 {
        st.epoch_miss_time.total as f64 / st.epoch_misses as f64
    } else {
        0.0
    };
    let avg_hit_time = if st.epoch_hits > 0 {
        st.epoch_hit_time.total as f64 / st.epoch_hits as f64
    } else {
        llc_latency as f64
    };
    let excess = contention_misses * (avg_miss_time - avg_hit_time).max(0.0);

    // §4.3: queueing-delay correction for the misses that remain even when
    // run alone.
    let queueing = if queueing_correction {
        ctx.queueing_cycles.get(app_index).copied().unwrap_or(0) as f64
    } else {
        0.0
    };
    let avg_queueing_delay = if st.epoch_misses > 0 {
        queueing / st.epoch_misses as f64
    } else {
        0.0
    };

    let mut denom = epoch_cycles - excess - epoch_ats_misses * avg_queueing_delay;
    // The alone run cannot be more than ~20x faster within an epoch; guard
    // against degenerate denominators.
    denom = denom.max(epoch_cycles * 0.05);

    let car_alone = epoch_accesses as f64 / denom;
    let slowdown = (car_alone / car_shared).clamp(1.0, MAX_SLOWDOWN);
    Estimate {
        slowdown,
        car_alone,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asm_cache::AtsOutcome;
    use asm_simcore::LineAddr;

    fn ctx(queueing: &[Cycle]) -> QuantumCtx<'_> {
        QuantumCtx {
            now: 100_000,
            quantum: 100_000,
            epoch: 1_000,
            queueing_cycles: queueing,
            llc_latency: 20,
        }
    }

    fn access(
        app: usize,
        hit: bool,
        owner: Option<usize>,
        ats_hit: Option<bool>,
        now: Cycle,
    ) -> AccessEvent {
        AccessEvent {
            now,
            app: AppId::new(app),
            line: LineAddr::new(0),
            llc_hit: hit,
            ats: ats_hit.map(|hit| AtsOutcome {
                hit,
                recency: hit.then_some(0),
            }),
            pollution_hit: false,
            epoch_owner: owner.map(AppId::new),
            is_write: false,
        }
    }

    fn miss(app: usize, arrival: Cycle, finish: Cycle, owned: bool) -> MissEvent {
        MissEvent {
            app: AppId::new(app),
            line: LineAddr::new(0),
            arrival,
            finish,
            interference_cycles: 0,
            concurrent_misses: 1,
            epoch_owned_at_issue: owned,
            epoch_end: Cycle::MAX,
            was_ats_hit: None,
            pollution_hit: false,
        }
    }

    #[test]
    fn idle_app_estimates_unity() {
        let mut est = AsmEstimator::new(2, 20, None);
        let q = [0, 0];
        let s = est.on_quantum_end(&ctx(&q));
        assert_eq!(s, vec![1.0, 1.0]);
    }

    #[test]
    fn no_interference_yields_near_unity() {
        // App runs in every epoch, all hits, no contention: CAR_alone
        // should equal its access rate during epochs which matches the
        // whole-quantum rate.
        let mut est = AsmEstimator::new(1, 20, None);
        let mut now = 0;
        for e in 0..100 {
            est.on_epoch_start(now, Some(AppId::new(0)));
            for _ in 0..50 {
                est.on_access(&access(0, true, Some(0), Some(true), now));
                now += 20;
            }
            now = (e + 1) * 1_000;
        }
        let q = [0];
        let s = est.on_quantum_end(&ctx(&q));
        assert!((s[0] - 1.0).abs() < 0.2, "slowdown {}", s[0]);
    }

    #[test]
    fn contention_misses_raise_estimate() {
        // Same accesses, but most misses would have hit alone (ATS hits):
        // the excess-cycle subtraction should raise CAR_alone above
        // CAR_shared.
        let mut est = AsmEstimator::new(1, 20, None);
        let mut now = 0;
        for _ in 0..50 {
            est.on_epoch_start(now, Some(AppId::new(0)));
            for k in 0..10u64 {
                // ATS says hit, shared cache missed: contention miss.
                est.on_access(&access(0, false, Some(0), Some(true), now));
                est.on_miss_complete(&miss(0, now, now + 300, true));
                now += 300 + k;
            }
            now += 1_000 - (now % 1_000);
        }
        let q = [0];
        let s = est.on_quantum_end(&ctx(&q));
        assert!(s[0] > 1.5, "slowdown {}", s[0]);
    }

    #[test]
    fn epoch_metrics_only_counted_for_owner() {
        let mut est = AsmEstimator::new(2, 20, None);
        est.on_epoch_start(0, Some(AppId::new(1)));
        // App 0 accesses while app 1 owns the epoch: only CAR_shared moves.
        est.on_access(&access(0, true, Some(1), Some(true), 10));
        assert_eq!(est.apps[0].accesses, 1);
        assert_eq!(est.apps[0].epoch_hits, 0);
        assert_eq!(est.apps[0].ats_hits_sampled, 0);
    }

    #[test]
    fn quantum_end_resets_state() {
        let mut est = AsmEstimator::new(1, 20, None);
        est.on_epoch_start(0, Some(AppId::new(0)));
        est.on_access(&access(0, true, Some(0), Some(true), 10));
        let q = [0];
        est.on_quantum_end(&ctx(&q));
        assert_eq!(est.apps[0].accesses, 0);
        assert_eq!(est.apps[0].epoch_count, 0);
    }

    #[test]
    fn car_alone_exposed_after_quantum() {
        let mut est = AsmEstimator::new(1, 20, None);
        est.on_epoch_start(0, Some(AppId::new(0)));
        for k in 0..100 {
            est.on_access(&access(0, true, Some(0), Some(true), k * 20));
        }
        let q = [0];
        est.on_quantum_end(&ctx(&q));
        let car = est.car_alone().unwrap();
        assert!(car[0] > 0.0);
    }

    #[test]
    fn ats_sample_counts_survive_the_quantum_reset() {
        let mut est = AsmEstimator::new(1, 20, None);
        est.on_epoch_start(0, Some(AppId::new(0)));
        est.on_access(&access(0, true, Some(0), Some(true), 10));
        est.on_access(&access(0, false, Some(0), Some(false), 30));
        let q = [0];
        est.on_quantum_end(&ctx(&q));
        assert_eq!(est.ats_sample_counts(), Some(&[(1, 1)][..]));
        assert_eq!(est.apps[0].ats_hits_sampled, 0, "live counters reset");
    }

    #[test]
    fn histogram_collects_epoch_miss_latencies() {
        let mut est = AsmEstimator::new(1, 20, Some((50.0, 10)));
        est.on_miss_complete(&miss(0, 0, 120, true));
        est.on_miss_complete(&miss(0, 0, 480, true));
        est.on_miss_complete(&miss(0, 0, 480, false)); // not epoch-owned
        let h = est.miss_latency_histogram().unwrap();
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn queueing_correction_reduces_estimate() {
        // With heavy residual queueing reported, the denominator shrinks
        // less aggressively... i.e. the correction removes queueing cycles
        // and *raises* CAR_alone, raising slowdown.
        let run = |queueing: Cycle| {
            let mut est = AsmEstimator::new(1, 20, None);
            let mut now = 0;
            for _ in 0..50 {
                est.on_epoch_start(now, Some(AppId::new(0)));
                for _ in 0..5 {
                    est.on_access(&access(0, false, Some(0), Some(false), now));
                    est.on_miss_complete(&miss(0, now, now + 200, true));
                    now += 200;
                }
                now += 1_000 - (now % 1_000);
            }
            let q = [queueing];
            est.on_quantum_end(&ctx(&q))[0]
        };
        let without = run(0);
        let with = run(10_000);
        assert!(
            with > without,
            "queueing correction should raise the estimate: {with} vs {without}"
        );
    }
}
