//! Slowdown estimators.
//!
//! All estimators are passive observers of the same simulated execution:
//! the [`crate::System`] feeds them shared-cache access events and
//! main-memory completion events, and asks each for per-application
//! slowdown estimates at every quantum boundary. This mirrors the paper's
//! methodology, where ASM, FST and PTCA are evaluated on identical
//! workloads (§5).
//!
//! | Estimator | Granularity | Cache interference via | Paper |
//! |---|---|---|---|
//! | [`AsmEstimator`] | aggregate (epochs) | ATS contention-miss *count* | this paper |
//! | [`FstEstimator`] | per request | pollution filter | \[15\] |
//! | [`PtcaEstimator`] | per request | ATS per-request | \[14\] |
//! | [`MiseEstimator`] | aggregate (epochs) | — (memory only) | \[66\] |
//! | [`StfmEstimator`] | per request | — (memory only) | \[46\] |

mod asm_model;
mod fst;
mod mise;
mod ptca;
mod stfm;

pub use asm_model::AsmEstimator;
pub use fst::FstEstimator;
pub use mise::MiseEstimator;
pub use ptca::PtcaEstimator;
pub use stfm::StfmEstimator;

use asm_cache::AtsOutcome;
use asm_simcore::{AppId, Cycle, Histogram, LineAddr};

/// A demand access to the shared cache, observed as it happens.
#[derive(Debug, Clone, Copy)]
pub struct AccessEvent {
    /// Current cycle.
    pub now: Cycle,
    /// The accessing application.
    pub app: AppId,
    /// The accessed line.
    pub line: LineAddr,
    /// Whether the access hit in the shared cache.
    pub llc_hit: bool,
    /// The auxiliary-tag-store outcome, if the line's set is sampled.
    pub ats: Option<AtsOutcome>,
    /// Whether the line hit in the application's pollution filter (FST's
    /// contention-miss signal; only meaningful when `llc_hit` is false).
    pub pollution_hit: bool,
    /// The application currently holding epoch priority, if any.
    pub epoch_owner: Option<AppId>,
    /// Whether the access was a store.
    pub is_write: bool,
}

/// A completed main-memory read for a demand miss.
#[derive(Debug, Clone, Copy)]
pub struct MissEvent {
    /// The owning application.
    pub app: AppId,
    /// The missing line.
    pub line: LineAddr,
    /// Cycle the miss entered the memory system.
    pub arrival: Cycle,
    /// Cycle the data returned.
    pub finish: Cycle,
    /// Cycles spent waiting behind other applications' bank occupancy
    /// (the per-request interference signal).
    pub interference_cycles: Cycle,
    /// The application's concurrent outstanding misses at completion
    /// (per-request models use this as a parallelism divisor, like STFM's
    /// parallelism factor).
    pub concurrent_misses: u64,
    /// Whether the application held epoch priority when the miss issued.
    pub epoch_owned_at_issue: bool,
    /// End of the epoch in which the miss issued (`Cycle::MAX` when the
    /// application did not own that epoch). Table 1's `epoch-miss-time`
    /// counts only cycles *during assigned epochs*, so interval
    /// accumulation clips at this boundary.
    pub epoch_end: Cycle,
    /// ATS outcome captured at access time: `Some(true)` = contention miss
    /// (would have hit alone), `Some(false)` = miss even alone, `None` =
    /// set not sampled.
    pub was_ats_hit: Option<bool>,
    /// Pollution-filter outcome captured at access time.
    pub pollution_hit: bool,
}

impl MissEvent {
    /// Total memory latency of the miss.
    #[must_use]
    pub fn latency(&self) -> Cycle {
        self.finish - self.arrival
    }
}

/// Per-quantum context handed to estimators at the quantum boundary.
#[derive(Debug, Clone, Copy)]
pub struct QuantumCtx<'a> {
    /// Cycle at which the quantum ends.
    pub now: Cycle,
    /// Quantum length Q.
    pub quantum: Cycle,
    /// Epoch length E.
    pub epoch: Cycle,
    /// Per-application §4.3 queueing-cycle counters for this quantum.
    pub queueing_cycles: &'a [Cycle],
    /// Shared-cache hit latency.
    pub llc_latency: Cycle,
}

/// A slowdown estimator driven by system events.
///
/// Implementations accumulate state over a quantum; `on_quantum_end`
/// returns one slowdown estimate per application and resets for the next
/// quantum.
pub trait SlowdownEstimator: std::fmt::Debug + Send {
    /// Short display name ("ASM", "FST", "PTCA", "MISE").
    fn name(&self) -> &'static str;

    /// Notifies the estimator that a new epoch began with the given owner.
    fn on_epoch_start(&mut self, now: Cycle, owner: Option<AppId>);

    /// Observes a demand access to the shared cache.
    fn on_access(&mut self, ev: &AccessEvent);

    /// Observes a completed demand miss.
    fn on_miss_complete(&mut self, ev: &MissEvent);

    /// Produces per-application slowdown estimates for the finished quantum
    /// and resets quantum state.
    fn on_quantum_end(&mut self, ctx: &QuantumCtx<'_>) -> Vec<f64>;

    /// The most recent `CAR_alone` estimates (accesses/cycle), if this
    /// estimator computes them (ASM does; used by ASM-Cache).
    fn car_alone(&self) -> Option<&[f64]> {
        None
    }

    /// Histogram of this estimator's *alone miss service time* estimates
    /// (Figure 6), when histogram collection is enabled.
    fn miss_latency_histogram(&self) -> Option<&Histogram> {
        None
    }

    /// Per-application `(ats_hits, ats_misses)` sampled over the *last
    /// completed* quantum, if this estimator samples an auxiliary tag
    /// store (ASM does). Telemetry reads these at quantum boundaries to
    /// expose the ATS-sampled miss rate as a time series.
    fn ats_sample_counts(&self) -> Option<&[(u64, u64)]> {
        None
    }

    /// Serializes the estimator's accumulated quantum state for
    /// checkpointing.
    fn save_state(&self, w: &mut asm_simcore::persist::StateWriter);

    /// Restores state captured by [`save_state`](Self::save_state) into an
    /// estimator constructed with the same configuration.
    ///
    /// # Errors
    ///
    /// Propagates reader errors; `Corrupt` when the stored shape disagrees
    /// with this estimator's structure.
    fn restore_state(
        &mut self,
        r: &mut asm_simcore::persist::StateReader<'_>,
    ) -> Result<(), asm_simcore::persist::PersistError>;
}

/// Tracks the union length of possibly-overlapping service intervals —
/// "# cycles during which the application has at least one outstanding
/// hit/miss" (Table 1) — in O(1) per interval.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct UnionTime {
    busy_until: Cycle,
    pub total: Cycle,
}

impl UnionTime {
    /// Adds the interval `[start, end)`.
    pub fn add(&mut self, start: Cycle, end: Cycle) {
        if end <= start {
            return;
        }
        let effective_start = start.max(self.busy_until);
        if end > effective_start {
            self.total += end - effective_start;
            self.busy_until = end;
        }
    }

    /// Clears accumulated time (keeps the busy horizon so intervals
    /// spanning the boundary are not double counted).
    pub fn reset(&mut self) {
        self.total = 0;
    }

    /// Serializes both the accumulated total and the busy horizon (the
    /// horizon survives [`reset`](Self::reset), so it is live state).
    pub fn save_state(&self, w: &mut asm_simcore::persist::StateWriter) {
        w.u64(self.busy_until);
        w.u64(self.total);
    }

    /// Reads a tracker previously written by
    /// [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// Propagates reader errors.
    pub fn restore_from(
        r: &mut asm_simcore::persist::StateReader<'_>,
    ) -> Result<Self, asm_simcore::persist::PersistError> {
        Ok(UnionTime {
            busy_until: r.u64()?,
            total: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_time_merges_overlaps() {
        let mut u = UnionTime::default();
        u.add(0, 10);
        u.add(5, 15); // 5 overlapping cycles
        assert_eq!(u.total, 15);
        u.add(20, 25);
        assert_eq!(u.total, 20);
    }

    #[test]
    fn union_time_ignores_contained_intervals() {
        let mut u = UnionTime::default();
        u.add(0, 100);
        u.add(10, 50);
        assert_eq!(u.total, 100);
    }

    #[test]
    fn union_time_reset_keeps_horizon() {
        let mut u = UnionTime::default();
        u.add(0, 10);
        u.reset();
        u.add(5, 8); // still inside the old horizon
        assert_eq!(u.total, 0);
        u.add(10, 12);
        assert_eq!(u.total, 2);
    }

    #[test]
    fn union_time_empty_interval_is_noop() {
        let mut u = UnionTime::default();
        u.add(5, 5);
        u.add(9, 3);
        assert_eq!(u.total, 0);
    }

    #[test]
    fn miss_event_latency() {
        let ev = MissEvent {
            app: AppId::new(0),
            line: LineAddr::new(0),
            arrival: 100,
            finish: 350,
            interference_cycles: 10,
            concurrent_misses: 2,
            epoch_owned_at_issue: true,
            epoch_end: Cycle::MAX,
            was_ats_hit: None,
            pollution_hit: false,
        };
        assert_eq!(ev.latency(), 250);
    }
}
