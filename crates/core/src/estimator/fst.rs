//! Fairness via Source Throttling's slowdown estimation [Ebrahimi+,
//! ASPLOS 2010] (§2.1).
//!
//! FST estimates slowdown as `shared_time / alone_time` and obtains
//! `alone_time` by subtracting, *per request*, the cycles the request was
//! delayed by interference:
//!
//! - **memory interference**: the cycles the request waited behind other
//!   applications' bank occupancy (divided by the concurrent-miss count, a
//!   parallelism factor in the spirit of STFM — without it, overlapping
//!   misses would be double-counted even more severely);
//! - **shared-cache interference**: for each *contention miss* — a miss
//!   that hits in the application's pollution filter (a Bloom filter of
//!   lines evicted by other applications) — the extra cycles a miss costs
//!   over a shared-cache hit.
//!
//! Both components inherit the fundamental inaccuracy the paper identifies
//! (§2.2): with overlapping requests, per-request delays do not add up to
//! wall-clock delay, and the Bloom filter adds false positives as it
//! shrinks (Figure 3).

use asm_simcore::{Cycle, Histogram};

use super::{AccessEvent, MissEvent, QuantumCtx, SlowdownEstimator};

/// Upper bound on the per-request cache-contention penalty (cycles): a
/// contention miss cannot reasonably be charged more than a few worst-case
/// DRAM accesses, even if the observed latency included unrelated queueing.
const CACHE_PENALTY_CAP: f64 = 1_000.0;

/// The FST slowdown estimator.
///
/// # Examples
///
/// ```
/// use asm_core::estimator::{FstEstimator, SlowdownEstimator};
/// let est = FstEstimator::new(4, 20, None);
/// assert_eq!(est.name(), "FST");
/// ```
#[derive(Debug)]
pub struct FstEstimator {
    /// Estimated interference (excess) cycles per application this quantum.
    excess: Vec<f64>,
    llc_latency: Cycle,
    latency_hist: Option<Histogram>,
}

impl FstEstimator {
    /// Creates the estimator for `app_count` applications.
    #[must_use]
    pub fn new(app_count: usize, llc_latency: Cycle, latency_hist: Option<(f64, usize)>) -> Self {
        FstEstimator {
            excess: vec![0.0; app_count],
            llc_latency,
            latency_hist: latency_hist.map(|(w, n)| Histogram::new(w, n)),
        }
    }
}

impl SlowdownEstimator for FstEstimator {
    fn name(&self) -> &'static str {
        "FST"
    }

    fn on_epoch_start(&mut self, _now: Cycle, _owner: Option<asm_simcore::AppId>) {}

    fn on_access(&mut self, _ev: &AccessEvent) {}

    fn on_miss_complete(&mut self, ev: &MissEvent) {
        let par = ev.concurrent_misses.max(1) as f64;
        let excess = &mut self.excess[ev.app.index()];
        // Per-request memory interference.
        *excess += ev.interference_cycles as f64 / par;
        // Per-request cache interference for pollution-filter hits.
        if ev.pollution_hit {
            let cache_penalty =
                (ev.latency().saturating_sub(self.llc_latency) as f64).min(CACHE_PENALTY_CAP);
            *excess += cache_penalty / par;
        }
        if let Some(h) = &mut self.latency_hist {
            // FST's alone-latency estimate: observed latency minus the
            // per-request interference estimate.
            let alone = ev.latency().saturating_sub(ev.interference_cycles);
            h.add(alone as f64);
        }
    }

    fn on_quantum_end(&mut self, ctx: &QuantumCtx<'_>) -> Vec<f64> {
        let q = ctx.quantum as f64;
        let out = self
            .excess
            .iter()
            .map(|excess| {
                let alone = (q - excess).max(q * 0.1);
                (q / alone).max(1.0)
            })
            .collect();
        self.excess.fill(0.0);
        out
    }

    fn miss_latency_histogram(&self) -> Option<&Histogram> {
        self.latency_hist.as_ref()
    }

    fn save_state(&self, w: &mut asm_simcore::persist::StateWriter) {
        w.f64_slice(&self.excess);
        w.bool(self.latency_hist.is_some());
        if let Some(h) = &self.latency_hist {
            h.save_state(w);
        }
    }

    fn restore_state(
        &mut self,
        r: &mut asm_simcore::persist::StateReader<'_>,
    ) -> Result<(), asm_simcore::persist::PersistError> {
        use asm_simcore::persist::PersistError;
        let corrupt = |what: &str| PersistError::Corrupt(what.to_owned());
        let excess = r.f64_vec()?;
        if excess.len() != self.excess.len() {
            return Err(corrupt("estimator app count mismatch"));
        }
        if r.bool()? != self.latency_hist.is_some() {
            return Err(corrupt("histogram presence mismatch"));
        }
        let latency_hist = if self.latency_hist.is_some() {
            Some(Histogram::restore_from(r)?)
        } else {
            None
        };
        self.excess = excess;
        self.latency_hist = latency_hist;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asm_simcore::{AppId, LineAddr};

    fn ctx() -> QuantumCtx<'static> {
        QuantumCtx {
            now: 100_000,
            quantum: 100_000,
            epoch: 1_000,
            queueing_cycles: &[],
            llc_latency: 20,
        }
    }

    fn miss(
        app: usize,
        latency: Cycle,
        interference: Cycle,
        concurrent: u64,
        polluted: bool,
    ) -> MissEvent {
        MissEvent {
            app: AppId::new(app),
            line: LineAddr::new(0),
            arrival: 1_000,
            finish: 1_000 + latency,
            interference_cycles: interference,
            concurrent_misses: concurrent,
            epoch_owned_at_issue: false,
            epoch_end: Cycle::MAX,
            was_ats_hit: None,
            pollution_hit: polluted,
        }
    }

    #[test]
    fn no_interference_estimates_unity() {
        let mut est = FstEstimator::new(1, 20, None);
        est.on_miss_complete(&miss(0, 200, 0, 1, false));
        let s = est.on_quantum_end(&ctx());
        assert_eq!(s[0], 1.0);
    }

    #[test]
    fn memory_interference_raises_estimate() {
        let mut est = FstEstimator::new(1, 20, None);
        for _ in 0..100 {
            est.on_miss_complete(&miss(0, 500, 400, 1, false));
        }
        let s = est.on_quantum_end(&ctx());
        // 40k excess out of 100k -> slowdown ~1.67.
        assert!((s[0] - 100.0 / 60.0).abs() < 1e-6, "got {}", s[0]);
    }

    #[test]
    fn parallelism_factor_divides_interference() {
        let run = |concurrent| {
            let mut est = FstEstimator::new(1, 20, None);
            for _ in 0..100 {
                est.on_miss_complete(&miss(0, 500, 400, concurrent, false));
            }
            est.on_quantum_end(&ctx())[0]
        };
        assert!(run(4) < run(1));
    }

    #[test]
    fn pollution_hits_add_cache_penalty() {
        let mut est = FstEstimator::new(1, 20, None);
        for _ in 0..50 {
            est.on_miss_complete(&miss(0, 320, 0, 1, true));
        }
        let s = est.on_quantum_end(&ctx());
        // 50 * (320 - 20) = 15k excess of 100k -> ~1.176.
        assert!(s[0] > 1.1, "got {}", s[0]);
    }

    #[test]
    fn excess_clamped_to_quantum() {
        let mut est = FstEstimator::new(1, 20, None);
        for _ in 0..10_000 {
            est.on_miss_complete(&miss(0, 500, 490, 1, true));
        }
        let s = est.on_quantum_end(&ctx());
        assert!(s[0] <= 10.0); // 1 / 0.1
    }

    #[test]
    fn state_resets_each_quantum() {
        let mut est = FstEstimator::new(1, 20, None);
        est.on_miss_complete(&miss(0, 500, 400, 1, false));
        est.on_quantum_end(&ctx());
        let s = est.on_quantum_end(&ctx());
        assert_eq!(s[0], 1.0);
    }

    #[test]
    fn histogram_subtracts_interference() {
        let mut est = FstEstimator::new(1, 20, Some((100.0, 10)));
        est.on_miss_complete(&miss(0, 450, 400, 1, false));
        let h = est.miss_latency_histogram().unwrap();
        // 450 - 400 = 50 -> first bucket.
        assert_eq!(h.bucket_count(0), 1);
    }
}
