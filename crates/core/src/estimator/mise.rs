//! MISE: Memory-interference-induced Slowdown Estimation [Subramanian+,
//! HPCA 2013] (§2.1, §6.4).
//!
//! MISE is ASM's direct ancestor: it observes that a *memory-bound*
//! application's performance is proportional to the rate at which its
//! *main-memory* requests are served, and estimates slowdown as the ratio
//! of alone to shared request service rates, measuring the alone rate with
//! the same epoch-prioritisation trick ASM uses. Its weakness — the reason
//! §6.4 exists — is that it is blind to shared-cache interference: the
//! miss *stream* itself changes when the cache is shared, which MISE
//! cannot see. The full MISE model is implemented, including the
//! non-memory-bound α correction: `slowdown = 1 − α + α · rate_ratio`,
//! where α is the fraction of time the application stalls on memory
//! (measured as the union of its outstanding-miss intervals).

use asm_simcore::{AppId, Cycle};

use super::{AccessEvent, MissEvent, QuantumCtx, SlowdownEstimator, UnionTime};

#[derive(Debug, Clone, Copy, Default)]
struct AppState {
    /// Main-memory requests (LLC misses) over the whole quantum.
    misses: u64,
    /// Requests issued during this application's epochs.
    epoch_misses: u64,
    /// Epochs assigned.
    epoch_count: u64,
    /// Union of outstanding-miss intervals: memory stall time, the basis
    /// of MISE's α (memory-boundedness) estimate.
    stall_time: UnionTime,
}

/// The MISE slowdown estimator.
///
/// # Examples
///
/// ```
/// use asm_core::estimator::{MiseEstimator, SlowdownEstimator};
/// let est = MiseEstimator::new(4);
/// assert_eq!(est.name(), "MISE");
/// ```
#[derive(Debug)]
pub struct MiseEstimator {
    apps: Vec<AppState>,
}

impl MiseEstimator {
    /// Creates the estimator for `app_count` applications.
    #[must_use]
    pub fn new(app_count: usize) -> Self {
        MiseEstimator {
            apps: vec![AppState::default(); app_count],
        }
    }
}

impl SlowdownEstimator for MiseEstimator {
    fn name(&self) -> &'static str {
        "MISE"
    }

    fn on_epoch_start(&mut self, _now: Cycle, owner: Option<AppId>) {
        if let Some(owner) = owner {
            self.apps[owner.index()].epoch_count += 1;
        }
    }

    fn on_access(&mut self, ev: &AccessEvent) {
        if !ev.llc_hit {
            let st = &mut self.apps[ev.app.index()];
            st.misses += 1;
            if ev.epoch_owner == Some(ev.app) {
                st.epoch_misses += 1;
            }
        }
    }

    fn on_miss_complete(&mut self, ev: &MissEvent) {
        self.apps[ev.app.index()]
            .stall_time
            .add(ev.arrival, ev.finish);
    }

    fn on_quantum_end(&mut self, ctx: &QuantumCtx<'_>) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.apps.len());
        for (i, st) in self.apps.iter_mut().enumerate() {
            // Like ASM, MISE needs enough epoch samples before its
            // extrapolation is trustworthy.
            let slowdown = if st.misses == 0 || st.epoch_misses < 16 || st.epoch_count == 0 {
                1.0
            } else {
                let shared_rate = st.misses as f64 / ctx.quantum as f64;
                // Alone rate during prioritised epochs, with the §4.3
                // queueing-cycle correction (MISE introduced it).
                let queueing = ctx.queueing_cycles.get(i).copied().unwrap_or(0) as f64;
                let epoch_cycles = (st.epoch_count * ctx.epoch) as f64;
                let denom = (epoch_cycles - queueing).max(epoch_cycles * 0.05);
                let alone_rate = st.epoch_misses as f64 / denom;
                let rate_ratio = (alone_rate / shared_rate).clamp(1.0, 50.0);
                // α correction: only the memory-stalled fraction of time
                // scales with the request service rate.
                let alpha = (st.stall_time.total as f64 / ctx.quantum as f64).clamp(0.0, 1.0);
                (1.0 - alpha + alpha * rate_ratio).max(1.0)
            };
            out.push(slowdown);
            let mut stall_time = st.stall_time;
            stall_time.reset();
            *st = AppState {
                stall_time,
                ..AppState::default()
            };
        }
        out
    }

    fn save_state(&self, w: &mut asm_simcore::persist::StateWriter) {
        w.usize(self.apps.len());
        for st in &self.apps {
            w.u64(st.misses);
            w.u64(st.epoch_misses);
            w.u64(st.epoch_count);
            st.stall_time.save_state(w);
        }
    }

    fn restore_state(
        &mut self,
        r: &mut asm_simcore::persist::StateReader<'_>,
    ) -> Result<(), asm_simcore::persist::PersistError> {
        use asm_simcore::persist::PersistError;
        if r.usize()? != self.apps.len() {
            return Err(PersistError::Corrupt(
                "estimator app count mismatch".to_owned(),
            ));
        }
        let mut apps = Vec::with_capacity(self.apps.len());
        for _ in 0..self.apps.len() {
            apps.push(AppState {
                misses: r.u64()?,
                epoch_misses: r.u64()?,
                epoch_count: r.u64()?,
                stall_time: UnionTime::restore_from(r)?,
            });
        }
        self.apps = apps;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asm_simcore::LineAddr;

    fn access(app: usize, hit: bool, owner: Option<usize>, now: Cycle) -> AccessEvent {
        AccessEvent {
            now,
            app: AppId::new(app),
            line: LineAddr::new(0),
            llc_hit: hit,
            ats: None,
            pollution_hit: false,
            epoch_owner: owner.map(AppId::new),
            is_write: false,
        }
    }

    fn ctx(queueing: &[Cycle]) -> QuantumCtx<'_> {
        QuantumCtx {
            now: 100_000,
            quantum: 100_000,
            epoch: 1_000,
            queueing_cycles: queueing,
            llc_latency: 20,
        }
    }

    #[test]
    fn cache_hits_are_invisible_to_mise() {
        let mut est = MiseEstimator::new(1);
        est.on_epoch_start(0, Some(AppId::new(0)));
        for k in 0..100 {
            est.on_access(&access(0, true, Some(0), k));
        }
        let q = [0];
        assert_eq!(est.on_quantum_end(&ctx(&q))[0], 1.0);
    }

    fn miss(arrival: Cycle, finish: Cycle) -> super::MissEvent {
        super::MissEvent {
            app: AppId::new(0),
            line: LineAddr::new(0),
            arrival,
            finish,
            interference_cycles: 0,
            concurrent_misses: 1,
            epoch_owned_at_issue: false,
            epoch_end: Cycle::MAX,
            was_ats_hit: None,
            pollution_hit: false,
        }
    }

    #[test]
    fn higher_epoch_rate_means_higher_slowdown() {
        // 10 epochs owned (10k cycles) with 100 misses -> alone rate 0.01.
        // Whole quantum: 200 misses / 100k -> shared rate 0.002; rate
        // ratio 5. The app stalls half the quantum -> alpha 0.5, so the
        // full MISE model predicts 1 - 0.5 + 0.5 * 5 = 3.
        let mut est = MiseEstimator::new(1);
        for e in 0..10 {
            est.on_epoch_start(e * 1_000, Some(AppId::new(0)));
            for k in 0..10 {
                est.on_access(&access(0, false, Some(0), e * 1_000 + k));
            }
        }
        for k in 0..100 {
            est.on_access(&access(0, false, None, 50_000 + k));
        }
        est.on_miss_complete(&miss(0, 50_000));
        let q = [0];
        let s = est.on_quantum_end(&ctx(&q))[0];
        assert!((s - 3.0).abs() < 1e-9, "got {s}");
    }

    #[test]
    fn fully_memory_bound_app_uses_raw_rate_ratio() {
        let mut est = MiseEstimator::new(1);
        for e in 0..10 {
            est.on_epoch_start(e * 1_000, Some(AppId::new(0)));
            for k in 0..10 {
                est.on_access(&access(0, false, Some(0), e * 1_000 + k));
            }
        }
        for k in 0..100 {
            est.on_access(&access(0, false, None, 50_000 + k));
        }
        est.on_miss_complete(&miss(0, 100_000)); // stalled the whole quantum
        let q = [0];
        let s = est.on_quantum_end(&ctx(&q))[0];
        assert!((s - 5.0).abs() < 1e-9, "got {s}");
    }

    #[test]
    fn state_resets() {
        let mut est = MiseEstimator::new(1);
        est.on_epoch_start(0, Some(AppId::new(0)));
        est.on_access(&access(0, false, Some(0), 1));
        let q = [0];
        est.on_quantum_end(&ctx(&q));
        assert_eq!(est.on_quantum_end(&ctx(&q))[0], 1.0);
    }
}
