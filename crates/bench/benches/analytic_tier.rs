//! Throughput of the analytic fast tier: mixes solved per second and the
//! one-time profile-extraction cost.
//!
//! The tier's whole reason to exist is sweep throughput — the ISSUE gate
//! is >=100x over the cycle-accurate tier on the same mix (compare
//! `mixes_1k` here against `sim_throughput/mcf_mix_10m_skip`: one cycle
//! run simulates 10M cycles of a 4-app mix, one analytic solve replaces
//! it outright). `scripts/bench_snapshot.sh` reads both ids into
//! `BENCH_<tag>.json` and records the ratio; keep the ids stable.
//!
//! `mixes_1k` reuses one `MixSolver` across 1000 4-app solves, the way
//! `asm-experiments --tier analytic` drives it (profiles extracted once,
//! solver state recycled). `profile_extract` measures the cached
//! one-time cost per workload.

use asm_analytic::{AnalyticConfig, MixSolver, ProfileParams, ReuseProfile};
use asm_core::SystemConfig;
use asm_workloads::{mix, suite};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_analytic_tier(c: &mut Criterion) {
    let config = SystemConfig::default();
    let params = ProfileParams::from_system(&config);
    let mut g = c.benchmark_group("analytic_tier");

    // 1000 stratified 4-app mixes over the full suite, profiles
    // extracted once up front (the harness's steady state).
    let mixes = mix::binned_mixes(1000, 4, 7);
    let names: std::collections::BTreeSet<&str> =
        mixes.iter().flatten().map(|p| p.name()).collect();
    let profiles: std::collections::BTreeMap<&str, ReuseProfile> = names
        .iter()
        .map(|&n| {
            let p = suite::by_name(n).expect("suite profile exists");
            (n, ReuseProfile::extract(&p, &params))
        })
        .collect();
    let mix_refs: Vec<Vec<&ReuseProfile>> = mixes
        .iter()
        .map(|m| m.iter().map(|p| &profiles[p.name()]).collect())
        .collect();

    g.bench_function("mixes_1k", |b| {
        let mut solver = MixSolver::new(AnalyticConfig::from_system(&config));
        b.iter(|| {
            let mut acc = 0.0f64;
            for m in &mix_refs {
                solver.solve(black_box(m));
                let sol = solver.solution(m);
                acc += sol.weighted_speedup();
            }
            black_box(acc)
        });
    });

    g.bench_function("profile_extract", |b| {
        let app = suite::by_name("mcf_like").expect("suite profile exists");
        b.iter(|| black_box(ReuseProfile::extract(black_box(&app), &params)));
    });

    g.finish();
}

criterion_group!(benches, bench_analytic_tier);
criterion_main!(benches);
