//! Cost of the cycle-attribution ledger on the hot simulation path.
//!
//! Two variants of the same 10M-cycle memory-intensive run
//! (`telemetry_overhead.rs`'s configuration, so the off-variant lines
//! up with pre-attribution snapshots):
//!
//! - `mcf_mix_10m_off` — attribution compiled in but disabled (the
//!   production configuration every experiment runs in by default). The
//!   per-tick and per-completion hooks still test the disabled state, so
//!   this measures the always-on cost of having the ledger in the
//!   binary. The acceptance gate lives in `scripts/bench_compare.py`:
//!   off may cost at most 1% over the *previous* snapshot's off run
//!   (`attrib_overhead/mcf_mix_10m_off`, or
//!   `telemetry_overhead/mcf_mix_10m_off` in snapshots that predate the
//!   ledger — the identical run before the hooks existed).
//! - `mcf_mix_10m_on` — ledger enabled (`--attrib`-equivalent, no
//!   telemetry). Informational; reported but not gated.
//!
//! `scripts/bench_snapshot.sh` parses this output; keep the ids stable.

use std::time::Duration;

use asm_core::{EstimatorSet, System, SystemConfig};
use asm_cpu::AppProfile;
use asm_workloads::suite;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Same horizon as `telemetry_overhead.rs` so the off variants line up.
pub const SIM_CYCLES: u64 = 10_000_000;

fn config() -> SystemConfig {
    let mut c = SystemConfig::default();
    c.quantum = 1_000_000;
    c.epoch = 10_000;
    c.estimators = EstimatorSet::asm_only();
    c.skip_mode = true;
    c
}

fn mcf_mix() -> Vec<AppProfile> {
    ["mcf_like", "mcf_like", "mcf_like", "mcf_like"]
        .iter()
        .map(|n| suite::by_name(n).expect("suite profile exists"))
        .collect()
}

fn run(profiles: &[AppProfile], attrib: bool) -> u64 {
    let mut sys = System::new(profiles, config());
    if attrib {
        sys.enable_attribution();
    }
    sys.run_for(SIM_CYCLES);
    if attrib {
        black_box(sys.attrib_totals());
    }
    sys.executed_cycles()
}

fn bench_attrib_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("attrib_overhead");
    // The compare gate on off-vs-previous-snapshot is 1%, well below the
    // container's run-to-run noise at 10 samples — the min needs many
    // draws to reach the floor on both sides.
    g.sample_size(80);
    g.measurement_time(Duration::from_secs(30));

    let mix = mcf_mix();
    g.bench_function("mcf_mix_10m_off", |b| {
        b.iter(|| black_box(run(&mix, false)));
    });
    g.bench_function("mcf_mix_10m_on", |b| {
        b.iter(|| black_box(run(&mix, true)));
    });
    g.finish();
}

criterion_group!(benches, bench_attrib_overhead);
criterion_main!(benches);
