//! The sampled tier's reason to exist: one 38-configuration policy
//! sweep (19 cache policies × 2 memory policies on a fixed 4-app mix,
//! 16M cycles of 50k-cycle quanta), full cycle-accurate vs
//! `--tier sampled` with K = 2 representative intervals of L = 2 quanta.
//!
//! The sampled variant runs the real campaign driver
//! (`asm_experiments::sampled::run_campaign`): three class fingerprints
//! (neutral / partitioned / starved trajectories), deterministic
//! k-means selection, and two medoid probes per non-exact member. The
//! accuracy side of the same sweep is pinned by
//! `crates/experiments/tests/sampled_gate.rs`; this group measures only
//! the wall-clock side.
//!
//! The alone-run cache is pre-populated outside the timed region and
//! installed process-wide, so both variants read cached alone records —
//! the amortization `--alone-cache` gives the CLI across invocations.
//! Both variants run serially (`jobs = 1`): the ratio isolates
//! simulated-work savings, not thread-pool fan-out.
//! `scripts/bench_snapshot.sh` parses this output into `BENCH_<tag>.json`
//! and, with `scripts/bench_compare.py`, enforces the >=10x
//! sweep-speedup gate; keep the benchmark ids stable.

use std::sync::Arc;
use std::time::Duration;

use asm_core::{
    AloneCache, CachePolicy, EstimatorSet, MemPolicy, QosConfig, Runner, SystemConfig,
};
use asm_cpu::AppProfile;
use asm_experiments::plan::PlannedRun;
use asm_experiments::{collect, sampled, Scale};
use asm_simcore::AppId;
use asm_workloads::suite;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Same geometry as `crates/experiments/tests/sampled_gate.rs`: 160
/// intervals of two 50k-cycle quanta.
const QUANTUM: u64 = 50_000;
const CYCLES: u64 = 16_000_000;

fn base_config() -> SystemConfig {
    let mut c = SystemConfig::default();
    c.quantum = QUANTUM;
    c.epoch = 2_000;
    c.estimators = EstimatorSet::asm_only();
    c.epochs_enabled = true;
    c
}

/// The same 38-member sweep as the accuracy gate.
fn sweep_configs() -> Vec<SystemConfig> {
    let target = AppId::new(0);
    let mut cache_policies = vec![
        CachePolicy::None,
        CachePolicy::Ucp,
        CachePolicy::Mcfq,
        CachePolicy::AsmCache,
        CachePolicy::NaiveQos(target),
    ];
    for k in 0..14 {
        cache_policies.push(CachePolicy::AsmQos(QosConfig {
            target,
            bound: 1.5 + 0.5 * f64::from(k),
        }));
    }
    let mut configs = Vec::new();
    for &cache in &cache_policies {
        for mem in [MemPolicy::Uniform, MemPolicy::SlowdownWeighted] {
            let mut c = base_config();
            c.cache_policy = cache;
            c.mem_policy = mem;
            configs.push(c);
        }
    }
    assert_eq!(configs.len(), 38, "the sweep is sized by the PR acceptance");
    configs
}

fn mix() -> Vec<AppProfile> {
    ["mcf_like", "libquantum_like", "soplex_like", "h264ref_like"]
        .iter()
        .map(|n| suite::by_name(n).expect("suite profile exists"))
        .collect()
}

fn bench_sampled_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("sampled_sweep");
    // The full sweep takes tens of seconds per iteration; two samples
    // inside a generous budget keep the total tractable while the
    // min-based snapshot statistics stay meaningful.
    g.sample_size(2);
    g.measurement_time(Duration::from_secs(60));

    let apps = mix();
    let runs: Vec<PlannedRun> = sweep_configs()
        .into_iter()
        .map(|c| PlannedRun::new(c, apps.clone(), CYCLES))
        .collect();

    // Pre-populate the alone-run cache outside both timed regions and
    // install it process-wide so the campaign driver shares it.
    let cache = Arc::new(AloneCache::new());
    let warm = Runner::with_cache(runs[0].config.clone(), Arc::clone(&cache));
    for slot in 0..apps.len() {
        let _ = warm.alone_progress(&apps, slot, CYCLES);
    }
    collect::install_alone_cache(Arc::clone(&cache));

    g.bench_function("sweep38_full", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for run in &runs {
                let runner = Runner::with_cache(run.config.clone(), Arc::clone(&cache));
                let r = runner.run(&run.apps, run.cycles);
                acc ^= r.whole_run_slowdowns[0].to_bits();
            }
            black_box(acc)
        });
    });

    let mut scale = Scale::reduced();
    scale.quantum = QUANTUM;
    scale.cycles = CYCLES;
    scale.sample_intervals = 2;
    scale.sample_quanta = 2;
    scale.jobs = 1;

    g.bench_function("sweep38_sampled", |b| {
        b.iter(|| {
            let est = sampled::run_campaign(&runs, &scale);
            let mut acc = 0u64;
            for e in &est {
                acc ^= e.slowdowns[0].value.to_bits();
            }
            black_box(acc)
        });
    });

    g.finish();
}

criterion_group!(benches, bench_sampled_sweep);
criterion_main!(benches);
