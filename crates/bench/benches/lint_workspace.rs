//! Wall-clock cost of the whole-workspace determinism lint.
//!
//! The linter is part of the tier-1 gate (`scripts/ci.sh` runs it on
//! every change), so its own latency is budgeted: one full
//! `run_workspace` pass — filesystem walk, lex/parse of every
//! simulation and harness file, symbol resolution, and the call-graph
//! reachability pass — must stay under one second. The budget is
//! enforced by `scripts/bench_snapshot.sh`, which reads the
//! `full_pass` id from this group; keep the id stable.
//!
//! `analyze_only` isolates the in-memory analysis from the I/O walk so
//! a regression can be attributed to the right layer.

use asm_lint::{analyze_sources, run_workspace, Options};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("bench crate lives two levels under the workspace root")
        .to_path_buf()
}

fn bench_lint_workspace(c: &mut Criterion) {
    let root = workspace_root();
    let mut g = c.benchmark_group("lint_workspace");

    g.bench_function("full_pass", |b| {
        b.iter(|| {
            let analysis = run_workspace(black_box(&root)).expect("workspace tree is readable");
            assert!(analysis.diagnostics.is_empty(), "the repo lints clean");
            black_box(analysis.files)
        });
    });

    // Pre-read the tree once; measures lex/parse/resolve/callgraph only.
    let files = asm_lint::read_workspace_sources(&root).expect("workspace tree is readable");
    g.bench_function("analyze_only", |b| {
        b.iter(|| {
            let analysis = analyze_sources(black_box(&files), &Options::default());
            black_box(analysis.diagnostics.len())
        });
    });

    g.finish();
}

criterion_group!(benches, bench_lint_workspace);
criterion_main!(benches);
