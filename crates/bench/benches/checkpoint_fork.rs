//! Prefix-shared checkpoint forking: one 38-configuration policy sweep
//! on a fixed mix, cold vs forked.
//!
//! The 38 members differ only in the quantum-boundary policies (19 cache
//! policies × 2 memory policies), so they share one warmup prefix: the
//! cold variant simulates every run from cycle 0 (38 × 1.25 quanta of
//! shared-run work), the forked variant simulates the first quantum once
//! under the neutral prefix configuration and restores the snapshot into
//! all 38 continuations (1 + 38 × 0.25 quanta). Results are bitwise
//! identical either way — pinned by `crates/core/src/checkpoint.rs`'s
//! unit tests and `checkpoint_equivalence_prop.rs`; this group measures
//! only the wall-clock side of the trade.
//!
//! The alone-run cache is pre-populated outside the timed region: both
//! variants pay zero alone-simulation cost, so the measured ratio
//! isolates the shared-run savings the planner's phase A/B split buys.
//! `scripts/bench_snapshot.sh` parses this output into `BENCH_<tag>.json`
//! and enforces the >=2x sweep-speedup gate; keep the benchmark ids
//! stable.

use std::sync::Arc;
use std::time::Duration;

use asm_core::{
    AloneCache, CachePolicy, EstimatorSet, MemPolicy, QosConfig, RunOptions, Runner, SystemConfig,
};
use asm_cpu::AppProfile;
use asm_simcore::AppId;
use asm_workloads::suite;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// One shared-prefix quantum plus a quarter-quantum of post-fork tail.
/// The quantum is sized so the per-fork fixed cost (snapshot restore,
/// ~1ms for a full LLC tag store) stays small next to the tail it
/// replaces; at short quanta that constant dominates and the measured
/// ratio collapses toward 1 regardless of how much warmup is shared.
const QUANTUM: u64 = 800_000;
const CYCLES: u64 = 1_000_000;

fn base_config() -> SystemConfig {
    let mut c = SystemConfig::default();
    c.quantum = QUANTUM;
    c.epoch = 2_000;
    c.estimators = EstimatorSet::asm_only();
    c.epochs_enabled = true;
    c
}

/// The 38-member policy sweep: every member agrees with every other on
/// the prefix-relevant configuration (`checkpoint::prefix_config`), so
/// all 38 share a single warmup key.
fn sweep_configs() -> Vec<SystemConfig> {
    let target = AppId::new(0);
    let mut cache_policies = vec![
        CachePolicy::None,
        CachePolicy::Ucp,
        CachePolicy::Mcfq,
        CachePolicy::AsmCache,
        CachePolicy::NaiveQos(target),
    ];
    for k in 0..14 {
        cache_policies.push(CachePolicy::AsmQos(QosConfig {
            target,
            bound: 1.5 + 0.25 * f64::from(k),
        }));
    }
    let mut configs = Vec::new();
    for &cache in &cache_policies {
        for mem in [MemPolicy::Uniform, MemPolicy::SlowdownWeighted] {
            let mut c = base_config();
            c.cache_policy = cache;
            c.mem_policy = mem;
            configs.push(c);
        }
    }
    assert_eq!(configs.len(), 38, "the sweep is sized by the PR acceptance");
    configs
}

fn mix() -> Vec<AppProfile> {
    ["mcf_like", "libquantum_like", "soplex_like", "h264ref_like"]
        .iter()
        .map(|n| suite::by_name(n).expect("suite profile exists"))
        .collect()
}

fn bench_checkpoint_fork(c: &mut Criterion) {
    let mut g = c.benchmark_group("checkpoint_fork");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(20));

    let configs = sweep_configs();
    let apps = mix();
    let opts = RunOptions::default();

    // Pre-populate the alone-run cache (shared by every runner below):
    // both variants then read cached alone records, so the measured
    // ratio is pure shared-run simulation.
    let cache = Arc::new(AloneCache::new());
    let _ = Runner::with_cache(configs[0].clone(), Arc::clone(&cache)).run(&apps, CYCLES);

    g.bench_function("sweep38_cold", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for cfg in &configs {
                let runner = Runner::with_cache(cfg.clone(), Arc::clone(&cache));
                let r = runner.run_with(&apps, CYCLES, opts);
                acc ^= r.whole_run_slowdowns[0].to_bits();
            }
            black_box(acc)
        });
    });

    g.bench_function("sweep38_forked", |b| {
        b.iter(|| {
            let warm = Runner::with_cache(configs[0].clone(), Arc::clone(&cache));
            let snapshot = warm.warm_snapshot(&apps, opts);
            let mut acc = 0u64;
            for cfg in &configs {
                let runner = Runner::with_cache(cfg.clone(), Arc::clone(&cache));
                let r = runner
                    .run_with_snapshot(&apps, CYCLES, opts, &snapshot)
                    .expect("fresh snapshot restores into its own sweep");
                acc ^= r.whole_run_slowdowns[0].to_bits();
            }
            black_box(acc)
        });
    });

    g.finish();
}

criterion_group!(benches, bench_checkpoint_fork);
criterion_main!(benches);
