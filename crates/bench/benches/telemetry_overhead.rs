//! Cost of the telemetry layer on the hot simulation path.
//!
//! Three variants of the same 10M-cycle memory-intensive run:
//!
//! - `mcf_mix_10m_off` — telemetry compiled in but disabled (the
//!   production configuration every experiment runs in by default). The
//!   counter probes still execute — a disabled registry aliases every
//!   counter onto one scratch slot — so this measures the always-on cost.
//! - `mcf_mix_10m_idle` — counters, series and the latency histogram
//!   enabled (`--stats-json`-equivalent), no tracing. The acceptance gate
//!   lives in `scripts/bench_compare.py`: idle may cost at most 1% over
//!   off.
//! - `mcf_mix_10m_traced` — full request tracing at the harness's 1-in-64
//!   sampling on top (informational; not gated).
//!
//! `scripts/bench_snapshot.sh` parses this output; keep the ids stable.

use std::time::Duration;

use asm_core::{EstimatorSet, System, SystemConfig};
use asm_cpu::AppProfile;
use asm_workloads::suite;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Same horizon as `throughput.rs` so the off-variant numbers line up.
pub const SIM_CYCLES: u64 = 10_000_000;

fn config() -> SystemConfig {
    let mut c = SystemConfig::default();
    c.quantum = 1_000_000;
    c.epoch = 10_000;
    c.estimators = EstimatorSet::asm_only();
    c.skip_mode = true;
    c
}

fn mcf_mix() -> Vec<AppProfile> {
    ["mcf_like", "mcf_like", "mcf_like", "mcf_like"]
        .iter()
        .map(|n| suite::by_name(n).expect("suite profile exists"))
        .collect()
}

/// `trace_sample`: `None` = telemetry off, `Some(0)` = counters/series
/// only, `Some(n)` = plus 1-in-n request tracing.
fn run(profiles: &[AppProfile], mode: Option<u64>) -> u64 {
    let mut sys = System::new(profiles, config());
    match mode {
        None => {}
        Some(0) => sys.enable_telemetry(None),
        Some(n) => sys.enable_telemetry(Some(n)),
    }
    sys.run_for(SIM_CYCLES);
    black_box(sys.take_telemetry());
    sys.executed_cycles()
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry_overhead");
    // The compare gate on idle-vs-off is 1%, well below this container's
    // run-to-run noise at 10 samples — the min needs ~80 draws to reach
    // the floor on both sides before a 1% comparison is meaningful.
    g.sample_size(80);
    g.measurement_time(Duration::from_secs(30));

    let mix = mcf_mix();
    g.bench_function("mcf_mix_10m_off", |b| {
        b.iter(|| black_box(run(&mix, None)));
    });
    g.bench_function("mcf_mix_10m_idle", |b| {
        b.iter(|| black_box(run(&mix, Some(0))));
    });
    g.bench_function("mcf_mix_10m_traced", |b| {
        b.iter(|| black_box(run(&mix, Some(64))));
    });
    g.finish();
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
