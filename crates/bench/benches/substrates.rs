//! Micro-benchmarks of the simulator building blocks.

use std::time::Duration;

use asm_cache::{
    lookahead_partition, AuxiliaryTagStore, BenefitCurves, CacheGeometry, PollutionFilter,
    SetAssocCache,
};
use asm_cpu::{AppProfile, Core, MemIssueResult, StridePrefetcher};
use asm_dram::{DramConfig, MemRequest, MemorySystem, SchedulerKind};
use asm_simcore::{AppId, LineAddr, SimRng};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.measurement_time(Duration::from_secs(1));

    g.bench_function("llc_access_mixed_100k", |b| {
        let geom = CacheGeometry::from_capacity(2 << 20, 16);
        b.iter(|| {
            let mut cache = SetAssocCache::new(geom, 4);
            let mut rng = SimRng::seed_from(1);
            let mut hits = 0u64;
            for i in 0..100_000u64 {
                let app = AppId::new((i % 4) as usize);
                let line = LineAddr::new(rng.gen_range(1 << 16));
                hits += u64::from(cache.access(line, app, i % 5 == 0).hit);
            }
            black_box(hits)
        });
    });

    g.bench_function("ats_sampled_access_100k", |b| {
        let geom = CacheGeometry::from_capacity(2 << 20, 16);
        b.iter(|| {
            let mut ats = AuxiliaryTagStore::new(geom, Some(64));
            let mut rng = SimRng::seed_from(2);
            for _ in 0..100_000u64 {
                black_box(ats.access(LineAddr::new(rng.gen_range(1 << 16))));
            }
            ats.hits()
        });
    });

    g.bench_function("pollution_filter_100k", |b| {
        b.iter(|| {
            let mut f = PollutionFilter::new(1 << 15);
            let mut rng = SimRng::seed_from(3);
            let mut hits = 0u64;
            for i in 0..100_000u64 {
                let line = LineAddr::new(rng.gen_range(1 << 14));
                if i % 2 == 0 {
                    f.insert(line);
                } else {
                    hits += u64::from(f.probably_contains(line));
                }
            }
            black_box(hits)
        });
    });

    g.bench_function("ucp_lookahead_16way_8apps", |b| {
        let curves = BenefitCurves::from_fn(8, 17, |a, n| ((a + 1) * n) as f64);
        b.iter(|| black_box(lookahead_partition(&curves, 16, 1)));
    });
    g.finish();
}

fn bench_dram(c: &mut Criterion) {
    let mut g = c.benchmark_group("dram");
    g.measurement_time(Duration::from_secs(1));

    for kind in [
        SchedulerKind::FrFcfs,
        SchedulerKind::Parbs,
        SchedulerKind::Tcm,
    ] {
        g.bench_function(format!("stream_2k_requests_{kind}"), |b| {
            b.iter(|| {
                let mut mem = MemorySystem::new(DramConfig::default(), kind, 4);
                let mut rng = SimRng::seed_from(4);
                let mut out = Vec::new();
                let mut sent = 0u64;
                let mut now = 0u64;
                while sent < 2_000 || !out.len().eq(&(sent as usize)) {
                    if sent < 2_000 {
                        let line = LineAddr::new(rng.gen_range(1 << 20));
                        if mem
                            .enqueue(MemRequest::read(
                                sent,
                                line,
                                AppId::new((sent % 4) as usize),
                                now,
                            ))
                            .is_ok()
                        {
                            sent += 1;
                        }
                    }
                    mem.tick(now, &mut out);
                    now += 1;
                    if now > 3_000_000 {
                        break;
                    }
                }
                black_box(out.len())
            });
        });
    }
    g.finish();
}

/// FR-FCFS scheduler picks at a steady queue depth. The controller keeps
/// per-bank candidate lists incrementally and the interference accounting
/// accrues per-bank charge counters instead of walking the queue, so the
/// cost of retiring a fixed number of requests stays near-flat as the
/// queue deepens — before those changes every pick and every accounting
/// event rescanned the whole queue, making this bench linear in depth.
fn bench_frfcfs_pick(c: &mut Criterion) {
    let mut g = c.benchmark_group("frfcfs_pick");
    g.measurement_time(Duration::from_secs(1));

    for depth in [8usize, 32, 128] {
        g.bench_function(format!("retire_1k_at_queue_depth_{depth}"), |b| {
            b.iter(|| {
                let cfg = DramConfig {
                    read_queue_capacity: depth,
                    ..DramConfig::default()
                };
                let mut mem = MemorySystem::new(cfg, SchedulerKind::FrFcfs, 4);
                let mut rng = SimRng::seed_from(9);
                let mut out = Vec::new();
                let mut sent = 0u64;
                let mut done = 0usize;
                let mut now = 0u64;
                while done < 1_000 && now < 5_000_000 {
                    // Top the queue back up so every pick scans a full one.
                    while mem
                        .enqueue(MemRequest::read(
                            sent,
                            LineAddr::new(rng.gen_range(1 << 20)),
                            AppId::new((sent % 4) as usize),
                            now,
                        ))
                        .is_ok()
                    {
                        sent += 1;
                    }
                    out.clear();
                    mem.tick(now, &mut out);
                    done += out.len();
                    now += 1;
                }
                black_box(done)
            });
        });
    }
    g.finish();
}

fn bench_cpu(c: &mut Criterion) {
    let mut g = c.benchmark_group("cpu");
    g.measurement_time(Duration::from_secs(1));

    g.bench_function("core_tick_100k_cycles", |b| {
        let profile = AppProfile::builder("bench").mem_per_kilo(100).build();
        b.iter(|| {
            let mut core = Core::new(AppId::new(0), &profile, 5);
            for now in 0..100_000 {
                core.tick(now, &mut |_, _| MemIssueResult::Completed(now + 50));
            }
            black_box(core.retired())
        });
    });

    g.bench_function("prefetcher_observe_100k", |b| {
        b.iter(|| {
            let mut pf = StridePrefetcher::new(4, 24);
            let mut issued = 0usize;
            for i in 0..100_000u64 {
                issued += pf.observe(LineAddr::new(i)).len();
            }
            black_box(issued)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_cache, bench_dram, bench_frfcfs_pick, bench_cpu);
criterion_main!(benches);
