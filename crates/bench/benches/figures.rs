//! One benchmark per paper table/figure, at miniature scale.
//!
//! These validate that every experiment's code path runs end-to-end and
//! track its simulation cost over time; the full-scale numbers come from
//! the `asm-experiments` binary (see EXPERIMENTS.md).

use std::time::Duration;

use asm_bench::{micro_config, micro_cycles, micro_workload};
use asm_cache::CacheGeometry;
use asm_core::{
    CachePolicy, EstimatorSet, MemPolicy, PrefetchConfig, QosConfig, Runner, System, SystemConfig,
};
use asm_dram::SchedulerKind;
use asm_simcore::AppId;
use asm_workloads::{hog_profile, suite};
use criterion::{criterion_group, criterion_main, Criterion};

fn run_once(config: SystemConfig) -> f64 {
    let runner = Runner::new(config);
    let r = runner.run(&micro_workload(), micro_cycles());
    // Return something data-dependent so the optimiser keeps everything.
    r.whole_run_slowdowns.iter().sum()
}

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300));

    // Figure 1: app + hog co-run, CAR/performance measurement.
    g.bench_function("fig01_car_correlation", |b| {
        b.iter(|| {
            let apps = vec![suite::by_name("h264ref_like").unwrap(), hog_profile(3, 6)];
            let mut cfg = micro_config();
            cfg.estimators = EstimatorSet::asm_only();
            let mut sys = System::new(&apps, cfg);
            sys.run_for(micro_cycles());
            sys.records().len()
        });
    });

    // Figure 2: accuracy with the full (unsampled) ATS.
    g.bench_function("fig02_error_unsampled", |b| {
        b.iter(|| {
            let mut cfg = micro_config();
            cfg.ats_sampled_sets = None;
            cfg.pollution_filter_bits = 1 << 20;
            run_once(cfg)
        });
    });

    // Figure 3: accuracy with the 64-set sampled ATS.
    g.bench_function("fig03_error_sampled", |b| {
        b.iter(|| {
            let mut cfg = micro_config();
            cfg.ats_sampled_sets = Some(64);
            run_once(cfg)
        });
    });

    // Figure 4: the same runs feed the error distribution.
    g.bench_function("fig04_error_distribution", |b| {
        b.iter(|| run_once(micro_config()));
    });

    // Figure 5: accuracy with a stride prefetcher.
    g.bench_function("fig05_prefetch", |b| {
        b.iter(|| {
            let mut cfg = micro_config();
            cfg.prefetcher = Some(PrefetchConfig::default());
            run_once(cfg)
        });
    });

    // Figure 6: latency-distribution collection enabled.
    g.bench_function("fig06_latency_dist", |b| {
        b.iter(|| {
            let mut cfg = micro_config();
            cfg.latency_hist = Some((40.0, 30));
            run_once(cfg)
        });
    });

    // Database workloads.
    g.bench_function("db_workloads", |b| {
        b.iter(|| {
            let runner = Runner::new(micro_config());
            let apps: Vec<_> = suite::db().into_iter().cycle().take(4).collect();
            let r = runner.run(&apps, micro_cycles());
            r.whole_run_slowdowns.iter().sum::<f64>()
        });
    });

    // §6.4 MISE vs ASM: both estimators active.
    g.bench_function("mise_vs_asm", |b| {
        b.iter(|| {
            let mut cfg = micro_config();
            cfg.estimators = EstimatorSet {
                asm: true,
                mise: true,
                ..EstimatorSet::none()
            };
            run_once(cfg)
        });
    });

    // Figure 7: 8-core run (core-count scaling).
    g.bench_function("fig07_core_count", |b| {
        b.iter(|| {
            let apps: Vec<_> = suite::all().into_iter().take(8).collect();
            let mut sys = System::new(&apps, micro_config());
            sys.run_for(micro_cycles());
            sys.retired(AppId::new(0))
        });
    });

    // Figure 8: 4 MB cache configuration.
    g.bench_function("fig08_cache_size", |b| {
        b.iter(|| {
            let mut cfg = micro_config();
            cfg.llc_geometry = CacheGeometry::from_capacity(4 << 20, 16);
            run_once(cfg)
        });
    });

    // Table 3: a different (Q, E) point.
    g.bench_function("table3_qe_sweep", |b| {
        b.iter(|| {
            let mut cfg = micro_config();
            cfg.quantum = 100_000;
            cfg.epoch = 1_000;
            run_once(cfg)
        });
    });

    // Figure 9: ASM-Cache partitioning active.
    g.bench_function("fig09_asm_cache", |b| {
        b.iter(|| {
            let mut cfg = micro_config();
            cfg.estimators = EstimatorSet::asm_only();
            cfg.cache_policy = CachePolicy::AsmCache;
            run_once(cfg)
        });
    });

    // Figure 10: ASM-Mem (slowdown-weighted epochs).
    g.bench_function("fig10_asm_mem", |b| {
        b.iter(|| {
            let mut cfg = micro_config();
            cfg.estimators = EstimatorSet::asm_only();
            cfg.mem_policy = MemPolicy::SlowdownWeighted;
            run_once(cfg)
        });
    });

    // Combined scheme vs PARBS+UCP substrate.
    g.bench_function("combined_cache_mem", |b| {
        b.iter(|| {
            let mut cfg = micro_config();
            cfg.estimators = EstimatorSet::asm_only();
            cfg.cache_policy = CachePolicy::AsmCache;
            cfg.mem_policy = MemPolicy::SlowdownWeighted;
            let a = run_once(cfg);
            let mut cfg = micro_config();
            cfg.estimators = EstimatorSet::asm_only();
            cfg.scheduler = SchedulerKind::Parbs;
            cfg.cache_policy = CachePolicy::Ucp;
            a + run_once(cfg)
        });
    });

    // Figure 11: ASM-QoS.
    g.bench_function("fig11_qos", |b| {
        b.iter(|| {
            let mut cfg = micro_config();
            cfg.estimators = EstimatorSet::asm_only();
            cfg.cache_policy = CachePolicy::AsmQos(QosConfig {
                target: AppId::new(0),
                bound: 3.0,
            });
            run_once(cfg)
        });
    });

    g.finish();
}

/// A miniature fig2-style sweep through the parallel harness, sequential
/// vs one worker per core. The per-job wall-clock ratio is the speedup
/// the `--jobs` flag buys on this machine (the acceptance criterion asks
/// for >=2x on four cores at real scales).
fn bench_parallel_sweep(c: &mut Criterion) {
    use asm_experiments::collect::collect_accuracy;
    use asm_experiments::pool::default_jobs;
    use asm_workloads::mix;

    let mut g = c.benchmark_group("parallel_sweep");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    let jobs_many = default_jobs();
    for jobs in [1, jobs_many] {
        g.bench_function(format!("fig2_micro_8_workloads_jobs_{jobs}"), |b| {
            b.iter(|| {
                let mut cfg = micro_config();
                cfg.estimators = EstimatorSet::all();
                let workloads = mix::random_mixes(8, 4, 42);
                let stats =
                    collect_accuracy(&cfg, &workloads, micro_cycles(), 0, jobs);
                stats.mean_error("ASM").unwrap_or(f64::NAN)
            });
        });
        if jobs_many == 1 {
            break; // single-core machine: the two points coincide
        }
    }
    g.finish();
}

criterion_group!(benches, bench_figures, bench_parallel_sweep);
criterion_main!(benches);
