//! End-to-end simulation throughput: simulated cycles per second of wall
//! time, with the deterministic fast-forward (`skip_mode`) on and off.
//!
//! The memory-intensive mix is where skipping pays: most cycles are dead
//! time with every core blocked on DRAM, so the skip loop executes only a
//! small fraction of the simulated cycles (the exact outputs are bitwise
//! identical either way — pinned by `crates/core/tests/skip_equivalence.rs`
//! and the `exps/` differential matrix). The compute-bound mix is the
//! worst case: nearly every cycle has real work, so skip mode's next-event
//! fold is pure overhead and this group measures how small it is.
//!
//! `scripts/bench_snapshot.sh` parses this output into `BENCH_<tag>.json`
//! (currently `BENCH_pr4.json`); keep the benchmark ids stable.

use std::time::Duration;

use asm_cache::{CacheGeometry, SetAssocCache, WayPartition};
use asm_core::{EstimatorSet, System, SystemConfig};
use asm_cpu::AppProfile;
use asm_simcore::{AppId, LineAddr, SimRng};
use asm_workloads::suite;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Simulated cycles per benchmark iteration. Long enough that steady
/// state dominates the cold-start transient (a cold LLC misses more, so
/// the first million cycles are unrepresentatively event-dense). The
/// snapshot script divides this by the measured per-iteration time to
/// get cycles/sec.
pub const SIM_CYCLES: u64 = 10_000_000;

fn config(skip: bool) -> SystemConfig {
    let mut c = SystemConfig::default();
    c.quantum = 1_000_000;
    c.epoch = 10_000;
    c.estimators = EstimatorSet::asm_only();
    c.skip_mode = skip;
    c
}

fn mcf_mix() -> Vec<AppProfile> {
    // An mcf_like-class mix: all four slots memory-intensive, the regime
    // the paper's workloads live in (§5: memory-intensive SPEC mixes).
    ["mcf_like", "mcf_like", "mcf_like", "mcf_like"]
        .iter()
        .map(|n| suite::by_name(n).expect("suite profile exists"))
        .collect()
}

fn compute_mix() -> Vec<AppProfile> {
    ["h264ref_like", "povray_like", "h264ref_like", "povray_like"]
        .iter()
        .map(|n| suite::by_name(n).expect("suite profile exists"))
        .collect()
}

fn run(profiles: &[AppProfile], skip: bool) -> u64 {
    let mut sys = System::new(profiles, config(skip));
    sys.run_for(SIM_CYCLES);
    sys.executed_cycles()
}

fn bench_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_throughput");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(20));

    let mem = mcf_mix();
    g.bench_function("mcf_mix_10m_skip", |b| {
        b.iter(|| black_box(run(&mem, true)));
    });
    g.bench_function("mcf_mix_10m_no_skip", |b| {
        b.iter(|| black_box(run(&mem, false)));
    });

    let cpu = compute_mix();
    g.bench_function("compute_mix_10m_skip", |b| {
        b.iter(|| black_box(run(&cpu, true)));
    });
    g.bench_function("compute_mix_10m_no_skip", |b| {
        b.iter(|| black_box(run(&cpu, false)));
    });
    g.finish();
}

/// Shared-LLC access cost as the app count scales, with and without way
/// partitioning. Partitioned misses take the UCP victim-pick path (per-app
/// quota enforcement), the slowest replacement decision in the tag store;
/// the unpartitioned rows isolate the plain LRU path. App count matters
/// because the per-set per-app occupancy scratch scales with it.
fn bench_llc_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("llc_scaling");
    g.measurement_time(Duration::from_secs(1));

    for apps in [4usize, 8, 16] {
        for partitioned in [false, true] {
            let label = if partitioned { "part" } else { "unpart" };
            g.bench_function(format!("llc_access_100k_{apps}apps_{label}"), |b| {
                let geom = CacheGeometry::from_capacity(2 << 20, 16);
                b.iter(|| {
                    let mut cache = SetAssocCache::new(geom, apps);
                    if partitioned {
                        cache.set_partition(Some(WayPartition::even(16, apps)));
                    }
                    let mut rng = SimRng::seed_from(7);
                    let mut hits = 0u64;
                    for i in 0..100_000u64 {
                        let app = AppId::new((i % apps as u64) as usize);
                        let line = LineAddr::new(rng.gen_range(1 << 16));
                        hits += u64::from(cache.access(line, app, i % 5 == 0).hit);
                    }
                    black_box(hits)
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_throughput, bench_llc_scaling);
criterion_main!(benches);
