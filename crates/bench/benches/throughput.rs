//! End-to-end simulation throughput: simulated cycles per second of wall
//! time, with the deterministic fast-forward (`skip_mode`) on and off.
//!
//! The memory-intensive mix is where skipping pays: most cycles are dead
//! time with every core blocked on DRAM, so the skip loop executes only a
//! small fraction of the simulated cycles (the exact outputs are bitwise
//! identical either way — pinned by `crates/core/tests/skip_equivalence.rs`
//! and the `exps/` differential matrix). The compute-bound mix is the
//! worst case: nearly every cycle has real work, so skip mode's next-event
//! fold is pure overhead and this group measures how small it is.
//!
//! `scripts/bench_snapshot.sh` parses this output into `BENCH_pr3.json`;
//! keep the benchmark ids stable.

use std::time::Duration;

use asm_core::{EstimatorSet, System, SystemConfig};
use asm_cpu::AppProfile;
use asm_workloads::suite;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Simulated cycles per benchmark iteration. Long enough that steady
/// state dominates the cold-start transient (a cold LLC misses more, so
/// the first million cycles are unrepresentatively event-dense). The
/// snapshot script divides this by the measured per-iteration time to
/// get cycles/sec.
pub const SIM_CYCLES: u64 = 10_000_000;

fn config(skip: bool) -> SystemConfig {
    let mut c = SystemConfig::default();
    c.quantum = 1_000_000;
    c.epoch = 10_000;
    c.estimators = EstimatorSet::asm_only();
    c.skip_mode = skip;
    c
}

fn mcf_mix() -> Vec<AppProfile> {
    // An mcf_like-class mix: all four slots memory-intensive, the regime
    // the paper's workloads live in (§5: memory-intensive SPEC mixes).
    ["mcf_like", "mcf_like", "mcf_like", "mcf_like"]
        .iter()
        .map(|n| suite::by_name(n).expect("suite profile exists"))
        .collect()
}

fn compute_mix() -> Vec<AppProfile> {
    ["h264ref_like", "povray_like", "h264ref_like", "povray_like"]
        .iter()
        .map(|n| suite::by_name(n).expect("suite profile exists"))
        .collect()
}

fn run(profiles: &[AppProfile], skip: bool) -> u64 {
    let mut sys = System::new(profiles, config(skip));
    sys.run_for(SIM_CYCLES);
    sys.executed_cycles()
}

fn bench_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_throughput");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(20));

    let mem = mcf_mix();
    g.bench_function("mcf_mix_10m_skip", |b| {
        b.iter(|| black_box(run(&mem, true)));
    });
    g.bench_function("mcf_mix_10m_no_skip", |b| {
        b.iter(|| black_box(run(&mem, false)));
    });

    let cpu = compute_mix();
    g.bench_function("compute_mix_10m_skip", |b| {
        b.iter(|| black_box(run(&cpu, true)));
    });
    g.bench_function("compute_mix_10m_no_skip", |b| {
        b.iter(|| black_box(run(&cpu, false)));
    });
    g.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
