//! Ablation benches for the design choices DESIGN.md §5 calls out.
//!
//! Each ablation computes its *quality* metric (mean estimation error or
//! unfairness) once, prints it to stderr, and then times the configuration
//! under Criterion, so `cargo bench` both regenerates the ablation numbers
//! and tracks their simulation cost.

use std::time::Duration;

use asm_bench::{micro_config, micro_cycles, micro_workload};
use asm_core::{EpochAssignment, EstimatorSet, MemPolicy, PrefetchConfig, Runner, SystemConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Mean ASM error (%) under a configuration, across all quanta but the
/// first.
fn asm_error(config: &SystemConfig) -> f64 {
    let runner = Runner::new(config.clone());
    let r = runner.run(&micro_workload(), micro_cycles());
    let mut agg = asm_metrics_error_aggregate();
    for q in r.quanta.iter().skip(1) {
        if let Some(est) = q.estimates.iter().find(|(n, _)| n == "ASM") {
            for (&e, &a) in est.1.iter().zip(&q.actual) {
                if a.is_finite() && a > 0.0 {
                    agg.add_error_pct(asm_metrics::estimation_error_pct(e, a));
                }
            }
        }
    }
    agg.mean_pct().unwrap_or(f64::NAN)
}

fn asm_metrics_error_aggregate() -> asm_metrics::ErrorAggregate {
    asm_metrics::ErrorAggregate::new()
}

fn run_once(config: SystemConfig) -> f64 {
    let runner = Runner::new(config);
    let r = runner.run(&micro_workload(), micro_cycles());
    r.whole_run_slowdowns.iter().sum()
}

fn bench_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300));

    // 1) Aggregation granularity: epoch-based (ASM) vs per-request
    // (FST/PTCA): the paper's central claim, quantified in figures 2-3.
    g.bench_function("aggregation_epoch_based", |b| {
        let mut cfg = micro_config();
        cfg.estimators = EstimatorSet::asm_only();
        eprintln!(
            "[ablation] ASM (epoch aggregation) error: {:.1}%",
            asm_error(&cfg)
        );
        b.iter(|| black_box(run_once(cfg.clone())));
    });
    g.bench_function("aggregation_per_request", |b| {
        let mut cfg = micro_config();
        cfg.estimators = EstimatorSet {
            fst: true,
            ptca: true,
            ..EstimatorSet::none()
        };
        b.iter(|| black_box(run_once(cfg.clone())));
    });

    // 2) ATS sampling factor.
    for sets in [8usize, 64, 256] {
        g.bench_function(format!("ats_sampling_{sets}_sets"), |b| {
            let mut cfg = micro_config();
            cfg.estimators = EstimatorSet::asm_only();
            cfg.ats_sampled_sets = Some(sets);
            eprintln!(
                "[ablation] ASM error with {sets} sampled sets: {:.1}%",
                asm_error(&cfg)
            );
            b.iter(|| black_box(run_once(cfg.clone())));
        });
    }

    // 3) Probabilistic vs round-robin epoch assignment (§4.2).
    for (label, assignment) in [
        ("probabilistic", EpochAssignment::Probabilistic),
        ("round_robin", EpochAssignment::RoundRobin),
    ] {
        g.bench_function(format!("epoch_assignment_{label}"), |b| {
            let mut cfg = micro_config();
            cfg.estimators = EstimatorSet::asm_only();
            cfg.epoch_assignment = assignment;
            eprintln!(
                "[ablation] ASM error with {label} epochs: {:.1}%",
                asm_error(&cfg)
            );
            b.iter(|| black_box(run_once(cfg.clone())));
        });
    }

    // 4) §4.3 queueing-delay correction on/off.
    for (label, enabled) in [("on", true), ("off", false)] {
        g.bench_function(format!("queueing_correction_{label}"), |b| {
            let mut cfg = micro_config();
            cfg.estimators = EstimatorSet::asm_only();
            cfg.asm_queueing_correction = enabled;
            eprintln!(
                "[ablation] ASM error with queueing correction {label}: {:.1}%",
                asm_error(&cfg)
            );
            b.iter(|| black_box(run_once(cfg.clone())));
        });
    }

    // 5) Prefetcher interaction.
    for (label, pf) in [("off", None), ("on", Some(PrefetchConfig::default()))] {
        g.bench_function(format!("prefetcher_{label}"), |b| {
            let mut cfg = micro_config();
            cfg.estimators = EstimatorSet::asm_only();
            cfg.prefetcher = pf;
            eprintln!(
                "[ablation] ASM error with prefetcher {label}: {:.1}%",
                asm_error(&cfg)
            );
            b.iter(|| black_box(run_once(cfg.clone())));
        });
    }

    // 6) The epoch substrate itself (uniform priority rotation) vs none —
    // quantifies how much of any mechanism gain comes from epochs alone.
    for (label, epochs) in [("on", true), ("off", false)] {
        g.bench_function(format!("epoch_substrate_{label}"), |b| {
            let mut cfg = micro_config();
            cfg.estimators = if epochs {
                EstimatorSet::asm_only()
            } else {
                EstimatorSet::none()
            };
            cfg.epochs_enabled = epochs;
            cfg.mem_policy = MemPolicy::Uniform;
            let runner = Runner::new(cfg.clone());
            let r = runner.run(&micro_workload(), micro_cycles());
            let max = r
                .whole_run_slowdowns
                .iter()
                .copied()
                .fold(f64::MIN, f64::max);
            eprintln!("[ablation] max slowdown with epochs {label}: {max:.2}");
            b.iter(|| black_box(run_once(cfg.clone())));
        });
    }

    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
