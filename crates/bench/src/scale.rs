//! Reduced-scale experiment parameters for benches.

use asm_core::{EstimatorSet, SystemConfig};
use asm_cpu::AppProfile;
use asm_simcore::Cycle;
use asm_workloads::suite;

/// How much to shrink the paper-scale experiments when running under
/// Criterion (which repeats each measurement many times).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchScale {
    /// Simulated cycles per run.
    pub cycles: u64,
    /// Number of workload mixes.
    pub workloads: usize,
}

impl BenchScale {
    /// A scale small enough for Criterion's repeated sampling.
    #[must_use]
    pub fn tiny() -> Self {
        BenchScale {
            cycles: 200_000,
            workloads: 2,
        }
    }
}

impl Default for BenchScale {
    fn default() -> Self {
        Self::tiny()
    }
}

/// System configuration for bench-scale runs: Table 2 hardware with a
/// 200k-cycle quantum.
#[must_use]
pub fn micro_config() -> SystemConfig {
    let mut c = SystemConfig::default();
    c.quantum = 100_000;
    c.epoch = 5_000;
    c.estimators = EstimatorSet::all();
    c
}

/// Cycles per bench-scale run (two quanta).
#[must_use]
pub fn micro_cycles() -> Cycle {
    200_000
}

/// A fixed 4-application workload spanning the behaviour space.
#[must_use]
pub fn micro_workload() -> Vec<AppProfile> {
    vec![
        suite::by_name("bzip2_like").expect("profile"),
        suite::by_name("libquantum_like").expect("profile"),
        suite::by_name("mcf_like").expect("profile"),
        suite::by_name("h264ref_like").expect("profile"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_config_is_valid() {
        micro_config().validate();
        assert!(micro_cycles() >= micro_config().quantum);
    }

    #[test]
    fn micro_workload_has_four_distinct_apps() {
        let w = micro_workload();
        assert_eq!(w.len(), 4);
        let names: std::collections::HashSet<_> = w.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn tiny_scale_is_tiny() {
        let s = BenchScale::tiny();
        assert!(s.cycles <= 1_000_000);
        assert_eq!(BenchScale::default(), s);
    }
}
