//! Shared helpers for the Criterion benchmark harness.
//!
//! The bench targets live in `benches/`:
//! - `figures.rs` — one benchmark per paper table/figure, running a
//!   miniaturised version of the corresponding experiment (the full
//!   versions live in the `asm-experiments` binary);
//! - `substrates.rs` — micro-benchmarks of the simulator building blocks
//!   (cache, ATS, DRAM, core, partitioning algorithm);
//! - `ablation.rs` — the design-choice ablations listed in `DESIGN.md` §5,
//!   each printing its quality metric once and then timing the run.

pub mod scale;

pub use scale::{micro_config, micro_cycles, micro_workload, BenchScale};
