//! Fairness and system-performance metrics (Figures 9 and 10).

/// Maximum slowdown across a workload — the paper's unfairness metric
/// (§7.1.2, citing [13, 30, 31, 61, 66, 69]). Lower is fairer.
///
/// Returns `None` for an empty slice.
///
/// # Examples
///
/// ```
/// use asm_metrics::max_slowdown;
/// assert_eq!(max_slowdown(&[1.2, 3.0, 1.5]), Some(3.0));
/// ```
#[must_use]
pub fn max_slowdown(slowdowns: &[f64]) -> Option<f64> {
    slowdowns
        .iter()
        .copied()
        .fold(None, |acc, s| Some(acc.map_or(s, |a: f64| a.max(s))))
}

/// Harmonic speedup [Luo+, ISPASS 2001; Eyerman & Eeckhout, IEEE Micro
/// 2008] — the paper's system-performance metric:
///
/// `N / Σ_i (IPC_alone_i / IPC_shared_i)  =  N / Σ_i slowdown_i`.
///
/// Higher is better. Returns `None` for an empty slice or non-positive
/// slowdowns.
///
/// # Examples
///
/// ```
/// use asm_metrics::harmonic_speedup;
/// // Two apps, each slowed down 2x: harmonic speedup 0.5.
/// assert_eq!(harmonic_speedup(&[2.0, 2.0]), Some(0.5));
/// ```
#[must_use]
pub fn harmonic_speedup(slowdowns: &[f64]) -> Option<f64> {
    if slowdowns.is_empty() || slowdowns.iter().any(|s| *s <= 0.0) {
        return None;
    }
    let sum: f64 = slowdowns.iter().sum();
    Some(slowdowns.len() as f64 / sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_slowdown_empty_is_none() {
        assert_eq!(max_slowdown(&[]), None);
    }

    #[test]
    fn harmonic_speedup_of_no_slowdown_is_one() {
        assert_eq!(harmonic_speedup(&[1.0, 1.0, 1.0]), Some(1.0));
    }

    #[test]
    fn harmonic_speedup_penalises_outliers() {
        // Same average slowdown, but the unbalanced case scores worse than
        // the perfectly estimated version of itself would under max
        // slowdown; harmonic speedup is equal for equal sums.
        let balanced = harmonic_speedup(&[2.0, 2.0]).unwrap();
        let unbalanced = harmonic_speedup(&[1.0, 3.0]).unwrap();
        assert_eq!(balanced, unbalanced);
        assert!(max_slowdown(&[1.0, 3.0]) > max_slowdown(&[2.0, 2.0]));
    }

    #[test]
    fn invalid_slowdowns_are_none() {
        assert_eq!(harmonic_speedup(&[]), None);
        assert_eq!(harmonic_speedup(&[1.0, 0.0]), None);
    }
}
