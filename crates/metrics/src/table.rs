//! Plain-text table rendering for the experiment harness.

use std::fmt;

/// A simple aligned text table; each experiment prints one per paper
/// table/figure.
///
/// # Examples
///
/// ```
/// use asm_metrics::Table;
/// let mut t = Table::new(vec!["model".into(), "error".into()]);
/// t.row(vec!["ASM".into(), "9.9%".into()]);
/// t.row(vec!["FST".into(), "29.4%".into()]);
/// let s = t.to_string();
/// assert!(s.contains("ASM"));
/// assert!(s.lines().count() >= 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(headers: Vec<String>) -> Self {
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded or truncated to the header width).
    pub fn row(&mut self, mut cells: Vec<String>) {
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as RFC-4180-style CSV (fields containing commas,
    /// quotes or newlines are quoted; quotes are doubled).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let mut out = String::new();
        let line = |row: &[String]| -> String {
            row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
        };
        out.push_str(&line(&self.headers));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                if c.len() > w[i] {
                    w[i] = c.len();
                }
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, c) in cells.iter().enumerate() {
                write!(f, " {c:<width$} |", width = w[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        write!(f, "|")?;
        for width in &w {
            write!(f, "{}|", "-".repeat(width + 2))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a".into(), "long_header".into()]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["only_one".into()]);
        assert_eq!(t.len(), 1);
        let s = t.to_string();
        assert!(s.contains("only_one"));
    }

    #[test]
    fn empty_table_has_header_and_rule() {
        let t = Table::new(vec!["h".into()]);
        assert!(t.is_empty());
        assert_eq!(t.to_string().lines().count(), 2);
    }
}
