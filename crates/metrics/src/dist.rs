//! Error-bucket distributions (Figure 4).

use std::fmt;

/// Buckets slowdown-estimation errors into ranges (Figure 4 uses 10%-wide
/// buckets) and reports the fraction of estimates in each.
///
/// # Examples
///
/// ```
/// use asm_metrics::ErrorDistribution;
/// let mut d = ErrorDistribution::new(10.0, 5);
/// for e in [3.0, 7.0, 15.0, 95.0] {
///     d.add(e);
/// }
/// assert_eq!(d.fraction_within(20.0), 0.75);
/// assert_eq!(d.max_error(), Some(95.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorDistribution {
    hist: asm_simcore::Histogram,
    max_error: Option<f64>,
}

impl ErrorDistribution {
    /// Creates a distribution with `buckets` buckets of `width` percent
    /// each plus an overflow bucket.
    ///
    /// # Panics
    ///
    /// Panics if `width` is non-positive or `buckets` is zero.
    #[must_use]
    pub fn new(width: f64, buckets: usize) -> Self {
        ErrorDistribution {
            hist: asm_simcore::Histogram::new(width, buckets),
            max_error: None,
        }
    }

    /// Adds one error sample (percent; NaN ignored).
    pub fn add(&mut self, error_pct: f64) {
        if !error_pct.is_finite() {
            return;
        }
        self.hist.add(error_pct);
        self.max_error = Some(self.max_error.map_or(error_pct, |m| m.max(error_pct)));
    }

    /// Fraction of samples with error strictly below `threshold_pct`
    /// (threshold must align with a bucket boundary for an exact answer).
    #[must_use]
    pub fn fraction_within(&self, threshold_pct: f64) -> f64 {
        if self.hist.total() == 0 {
            return 0.0;
        }
        let buckets = (threshold_pct / self.hist.bucket_width()) as usize;
        let within: u64 = (0..buckets.min(self.hist.buckets()))
            .map(|i| self.hist.bucket_count(i))
            .sum();
        within as f64 / self.hist.total() as f64
    }

    /// The largest error seen.
    #[must_use]
    pub fn max_error(&self) -> Option<f64> {
        self.max_error
    }

    /// Number of samples.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.hist.total()
    }

    /// Per-bucket (range, fraction) pairs, then the overflow fraction.
    #[must_use]
    pub fn buckets(&self) -> Vec<((f64, f64), f64)> {
        let total = self.hist.total().max(1) as f64;
        let mut out: Vec<((f64, f64), f64)> = (0..self.hist.buckets())
            .map(|i| {
                (
                    self.hist.bucket_range(i),
                    self.hist.bucket_count(i) as f64 / total,
                )
            })
            .collect();
        let last = self.hist.buckets() as f64 * self.hist.bucket_width();
        out.push(((last, f64::INFINITY), self.hist.overflow() as f64 / total));
        out
    }
}

impl fmt::Display for ErrorDistribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for ((lo, hi), frac) in self.buckets() {
            if hi.is_infinite() {
                writeln!(f, "  >{lo:5.0}%      : {:5.1}%", frac * 100.0)?;
            } else {
                writeln!(f, "  [{lo:3.0}%, {hi:3.0}%): {:5.1}%", frac * 100.0)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_accumulate() {
        let mut d = ErrorDistribution::new(10.0, 4);
        for e in [1.0, 2.0, 11.0, 25.0, 55.0] {
            d.add(e);
        }
        assert!((d.fraction_within(10.0) - 0.4).abs() < 1e-12);
        assert!((d.fraction_within(30.0) - 0.8).abs() < 1e-12);
        assert_eq!(d.total(), 5);
    }

    #[test]
    fn nan_samples_ignored() {
        let mut d = ErrorDistribution::new(10.0, 4);
        d.add(f64::NAN);
        assert_eq!(d.total(), 0);
        assert_eq!(d.max_error(), None);
    }

    #[test]
    fn overflow_fraction_reported() {
        let mut d = ErrorDistribution::new(10.0, 2);
        d.add(5.0);
        d.add(500.0);
        let buckets = d.buckets();
        let overflow = buckets.last().unwrap();
        assert!(overflow.0 .1.is_infinite());
        assert!((overflow.1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_distribution_is_zero_within() {
        let d = ErrorDistribution::new(10.0, 2);
        assert_eq!(d.fraction_within(10.0), 0.0);
    }
}
