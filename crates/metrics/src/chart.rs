//! Terminal bar charts for experiment output.
//!
//! The paper's figures are bar charts; rendering them directly in the
//! terminal makes `asm-experiments` output self-contained (CSV export
//! remains available for real plotting).

use std::fmt;

/// A horizontal bar chart with labelled bars, optionally grouped.
///
/// # Examples
///
/// ```
/// use asm_metrics::BarChart;
/// let mut c = BarChart::new("slowdown estimation error (%)");
/// c.bar("FST", 29.4);
/// c.bar("PTCA", 40.4);
/// c.bar("ASM", 9.9);
/// let s = c.to_string();
/// assert!(s.contains("ASM"));
/// assert!(s.contains('█'));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BarChart {
    title: String,
    bars: Vec<(String, f64)>,
    width: usize,
}

impl BarChart {
    /// Creates an empty chart with a title.
    #[must_use]
    pub fn new(title: &str) -> Self {
        BarChart {
            title: title.to_owned(),
            bars: Vec::new(),
            width: 50,
        }
    }

    /// Sets the maximum bar width in characters (default 50).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn set_width(&mut self, width: usize) {
        assert!(width > 0, "width must be positive");
        self.width = width;
    }

    /// Appends one bar. Negative or non-finite values render as empty bars.
    pub fn bar(&mut self, label: &str, value: f64) {
        self.bars.push((label.to_owned(), value));
    }

    /// Number of bars.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bars.len()
    }

    /// Whether the chart has no bars.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bars.is_empty()
    }
}

impl fmt::Display for BarChart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        let max = self
            .bars
            .iter()
            .map(|(_, v)| if v.is_finite() { v.max(0.0) } else { 0.0 })
            .fold(0.0f64, f64::max);
        let label_w = self.bars.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        for (label, value) in &self.bars {
            let v = if value.is_finite() {
                value.max(0.0)
            } else {
                0.0
            };
            let chars = if max > 0.0 {
                ((v / max) * self.width as f64).round() as usize
            } else {
                0
            };
            writeln!(f, "  {label:<label_w$} |{} {v:.2}", "█".repeat(chars))?;
        }
        Ok(())
    }
}

/// The eight-level block ramp used by [`sparkline`].
const SPARK_LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders `values` as a one-line Unicode sparkline (`▁▂▃▄▅▆▇█`).
///
/// Values are scaled linearly between the finite minimum and maximum;
/// non-finite values render as a space. A flat (or single-sample) series
/// renders at the mid level so it is visibly present but carries no
/// fake shape. An empty slice yields an empty string.
///
/// # Examples
///
/// ```
/// use asm_metrics::sparkline;
/// assert_eq!(sparkline(&[0.0, 1.0, 2.0, 3.0]), "▁▃▆█");
/// assert_eq!(sparkline(&[5.0, 5.0]), "▄▄");
/// assert_eq!(sparkline(&[]), "");
/// ```
#[must_use]
pub fn sparkline(values: &[f64]) -> String {
    let finite = values.iter().copied().filter(|v| v.is_finite());
    let (min, max) = finite.fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
        (lo.min(v), hi.max(v))
    });
    let span = max - min;
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                ' '
            } else if span <= 0.0 || !span.is_finite() {
                SPARK_LEVELS[3]
            } else {
                let idx = ((v - min) / span * 7.0).round() as usize;
                SPARK_LEVELS[idx.min(7)]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_golden() {
        // A monotone ramp visits every level exactly once.
        let ramp: Vec<f64> = (0..8).map(f64::from).collect();
        assert_eq!(sparkline(&ramp), "▁▂▃▄▅▆▇█");
        // A characteristic shape, pinned byte-for-byte.
        assert_eq!(
            sparkline(&[1.0, 4.0, 2.0, 8.0, 5.0, 1.0, 7.0]),
            "▁▄▂█▅▁▇"
        );
    }

    #[test]
    fn sparkline_handles_degenerate_input() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[3.0]), "▄");
        assert_eq!(sparkline(&[2.0, 2.0, 2.0]), "▄▄▄");
        assert_eq!(sparkline(&[1.0, f64::NAN, 3.0]), "▁ █");
        assert_eq!(sparkline(&[f64::NAN, f64::INFINITY]), "  ");
    }

    #[test]
    fn sparkline_constant_series_renders_mid_level_at_any_value() {
        // Zero span: every point renders the mid glyph regardless of the
        // constant's sign or magnitude, one glyph per input point.
        for v in [-7.5, 0.0, 1e9] {
            let s = sparkline(&[v; 5]);
            assert_eq!(s.chars().count(), 5, "value {v}: {s}");
            assert!(s.chars().all(|c| c == '▄'), "value {v}: {s}");
        }
        // And the empty series stays empty — no placeholder glyphs.
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn sparkline_extremes_map_to_end_levels() {
        let s = sparkline(&[-10.0, 0.0, 10.0]);
        assert!(s.starts_with('▁') && s.ends_with('█'));
    }

    #[test]
    fn bars_scale_to_the_maximum() {
        let mut c = BarChart::new("t");
        c.set_width(10);
        c.bar("a", 5.0);
        c.bar("b", 10.0);
        let s = c.to_string();
        let bar_len = |label: &str| {
            s.lines()
                .find(|l| l.trim_start().starts_with(label))
                .map(|l| l.matches('█').count())
                .unwrap()
        };
        assert_eq!(bar_len("b"), 10);
        assert_eq!(bar_len("a"), 5);
    }

    #[test]
    fn degenerate_values_render_empty() {
        let mut c = BarChart::new("t");
        c.bar("nan", f64::NAN);
        c.bar("neg", -3.0);
        let s = c.to_string();
        assert!(!s.contains('█'));
    }

    #[test]
    fn empty_chart_is_just_the_title() {
        let c = BarChart::new("only title");
        assert!(c.is_empty());
        assert_eq!(c.to_string().trim(), "only title");
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_rejected() {
        let mut c = BarChart::new("t");
        c.set_width(0);
    }
}
