//! Slowdown-estimation accuracy (§5, Metrics).

use asm_simcore::RunningStats;

/// One quantum's slowdown estimate for one application.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowdownSample {
    /// Profile name of the application.
    pub app_name: String,
    /// The model's estimated slowdown.
    pub estimated: f64,
    /// The measured slowdown (`IPC_alone / IPC_shared` over the same work).
    pub actual: f64,
}

impl SlowdownSample {
    /// This sample's estimation error in percent.
    #[must_use]
    pub fn error_pct(&self) -> f64 {
        estimation_error_pct(self.estimated, self.actual)
    }
}

/// The paper's error metric:
/// `|Estimated − Actual| / Actual × 100%`.
///
/// Returns `f64::NAN` if `actual` is not positive (no valid ground truth).
///
/// # Examples
///
/// ```
/// use asm_metrics::estimation_error_pct;
/// assert_eq!(estimation_error_pct(1.1, 1.0), 10.000000000000009);
/// assert_eq!(estimation_error_pct(0.9, 1.0), 9.999999999999998);
/// ```
#[must_use]
pub fn estimation_error_pct(estimated: f64, actual: f64) -> f64 {
    if actual <= 0.0 {
        return f64::NAN;
    }
    ((estimated - actual) / actual).abs() * 100.0
}

/// Aggregates samples into mean error, standard deviation, and maximum —
/// the per-benchmark bars of Figures 2/3 and the spread bars of Figures
/// 5/7/8.
#[derive(Debug, Clone, Default)]
pub struct ErrorAggregate {
    stats: RunningStats,
}

impl ErrorAggregate {
    /// Creates an empty aggregate.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample (ignored if its error is NaN).
    pub fn add(&mut self, sample: &SlowdownSample) {
        let e = sample.error_pct();
        if e.is_finite() {
            self.stats.add(e);
        }
    }

    /// Adds a raw error percentage.
    pub fn add_error_pct(&mut self, e: f64) {
        if e.is_finite() {
            self.stats.add(e);
        }
    }

    /// Mean error in percent, or `None` if empty.
    #[must_use]
    pub fn mean_pct(&self) -> Option<f64> {
        self.stats.mean()
    }

    /// Population standard deviation of the error.
    #[must_use]
    pub fn std_dev_pct(&self) -> Option<f64> {
        self.stats.population_std_dev()
    }

    /// Largest observed error.
    #[must_use]
    pub fn max_pct(&self) -> Option<f64> {
        self.stats.max()
    }

    /// Number of samples aggregated.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.stats.count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_symmetric_in_magnitude() {
        let over = estimation_error_pct(1.2, 1.0);
        let under = estimation_error_pct(0.8, 1.0);
        assert!((over - 20.0).abs() < 1e-9);
        assert!((under - 20.0).abs() < 1e-9);
    }

    #[test]
    fn perfect_estimate_is_zero_error() {
        assert_eq!(estimation_error_pct(2.5, 2.5), 0.0);
    }

    #[test]
    fn invalid_actual_is_nan() {
        assert!(estimation_error_pct(1.0, 0.0).is_nan());
        assert!(estimation_error_pct(1.0, -1.0).is_nan());
    }

    #[test]
    fn aggregate_tracks_mean_and_max() {
        let mut agg = ErrorAggregate::new();
        for (e, a) in [(1.1, 1.0), (1.3, 1.0)] {
            agg.add(&SlowdownSample {
                app_name: "x".into(),
                estimated: e,
                actual: a,
            });
        }
        assert!((agg.mean_pct().unwrap() - 20.0).abs() < 1e-9);
        assert!((agg.max_pct().unwrap() - 30.0).abs() < 1e-9);
        assert_eq!(agg.count(), 2);
    }

    #[test]
    fn aggregate_skips_nan() {
        let mut agg = ErrorAggregate::new();
        agg.add(&SlowdownSample {
            app_name: "x".into(),
            estimated: 1.0,
            actual: 0.0,
        });
        assert_eq!(agg.count(), 0);
    }
}
