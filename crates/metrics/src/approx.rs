//! Epsilon comparison for slowdown/CAR ratios.
//!
//! Exact `==`/`!=` on `f64` is banned in simulation code (asm-lint rule
//! R3): slowdown estimates and cycles-per-access ratios come out of
//! division chains whose rounding differs across optimisation levels and
//! evaluation orders. Compare them with an explicit tolerance instead.

/// Default tolerance for slowdown/ratio comparisons.
///
/// Slowdowns live in `[1, ~50]` and the paper reports them to two
/// decimal places; `1e-9` is far below any reportable difference while
/// far above accumulated f64 rounding error for the division chains the
/// estimators use.
pub const EPSILON: f64 = 1e-9;

/// Whether `a` and `b` are within `eps` of each other.
///
/// Non-finite inputs are never approximately equal (NaN compares unequal
/// to everything, mirroring IEEE semantics).
#[must_use]
pub fn approx_eq_eps(a: f64, b: f64, eps: f64) -> bool {
    (a - b).abs() <= eps
}

/// Whether `a` and `b` are within [`EPSILON`] of each other.
#[must_use]
pub fn approx_eq(a: f64, b: f64) -> bool {
    approx_eq_eps(a, b, EPSILON)
}

/// Whether `x` is within [`EPSILON`] of zero.
#[must_use]
pub fn approx_zero(x: f64) -> bool {
    approx_eq_eps(x, 0.0, EPSILON)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_and_nearly_equal() {
        assert!(approx_eq(1.0, 1.0));
        assert!(approx_eq(1.0, 1.0 + 1e-12));
        assert!(!approx_eq(1.0, 1.0 + 1e-6));
    }

    #[test]
    fn zero_detection() {
        assert!(approx_zero(0.0));
        assert!(approx_zero(-1e-12));
        assert!(!approx_zero(1e-6));
    }

    #[test]
    fn non_finite_is_never_equal() {
        assert!(!approx_eq(f64::NAN, f64::NAN));
        assert!(!approx_eq(f64::INFINITY, f64::INFINITY), "inf - inf is NaN");
        assert!(!approx_eq(f64::NAN, 0.0));
    }
}
