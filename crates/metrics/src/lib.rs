#![warn(missing_docs)]
//! Metrics for the ASM reproduction's evaluation.
//!
//! - [`slowdown`]: the paper's accuracy metric (§5):
//!   `|estimated − actual| / actual × 100%`, plus aggregation helpers.
//! - [`fairness`]: maximum slowdown (unfairness) and harmonic speedup
//!   (system performance), the metrics of Figures 9 and 10.
//! - [`dist`]: error-bucket distributions for Figure 4.
//! - [`chart`]: terminal bar charts for figure-style output.
//! - [`table`]: plain-text table rendering for the experiment harness.

pub mod approx;
pub mod chart;
pub mod dist;
pub mod fairness;
pub mod slowdown;
pub mod table;

pub use approx::{approx_eq, approx_eq_eps, approx_zero, EPSILON};
pub use chart::{sparkline, BarChart};
pub use dist::ErrorDistribution;
pub use fairness::{harmonic_speedup, max_slowdown};
pub use slowdown::{estimation_error_pct, ErrorAggregate, SlowdownSample};
pub use table::Table;
