//! Named synthetic profiles standing in for the paper's benchmarks.
//!
//! Parameters are chosen relative to the simulated hierarchy (64 KB L1 =
//! 1024 lines; 2 MB LLC = 32768 lines):
//!
//! - *compute-bound* profiles keep their hot set L1-resident and access
//!   memory rarely;
//! - *cache-sensitive* profiles (`bzip2_like`, `dealII_like`, `ft_like`)
//!   have hot sets that fit the LLC only when they get enough of it — they
//!   lose the most to shared-cache interference;
//! - *memory-intensive streaming* profiles (`libquantum_like`, `lbm_like`)
//!   sweep footprints far beyond the LLC with long sequential bursts (high
//!   row-buffer locality);
//! - *memory-intensive irregular* profiles (`mcf_like`, `cg_like`) do the
//!   same with short bursts (row-buffer hostile) and high MLP.

use asm_cpu::AppProfile;

/// Builds one profile by short name. Names follow the paper's benchmarks
/// with a `_like` suffix. (One positional argument per profile axis keeps
/// the suite tables readable.)
#[allow(clippy::too_many_arguments)]
fn make(
    name: &str,
    mpk: u32,
    ws: u64,
    hot: u64,
    hot_frac: f64,
    run: u32,
    mlp: u32,
    wf: f64,
) -> AppProfile {
    AppProfile::builder(name)
        .mem_per_kilo(mpk)
        .working_set_lines(ws)
        .hot_lines(hot)
        .hot_frac(hot_frac)
        .seq_run(run)
        .mlp(mlp)
        .write_frac(wf)
        .build()
}

/// SPEC CPU2006-like profiles, in increasing memory intensity (the x-axis
/// order of Figures 2 and 3).
#[must_use]
pub fn spec() -> Vec<AppProfile> {
    vec![
        make("povray_like", 5, 2_048, 512, 0.95, 16, 2, 0.20),
        make("calculix_like", 8, 4_096, 1_024, 0.92, 16, 2, 0.20),
        make("tonto_like", 10, 6_144, 1_024, 0.90, 12, 3, 0.25),
        make("namd_like", 12, 8_192, 2_048, 0.90, 32, 4, 0.20),
        make("perlbench_like", 15, 12_288, 2_048, 0.85, 6, 3, 0.30),
        make("gobmk_like", 18, 12_288, 3_072, 0.82, 4, 3, 0.25),
        make("sjeng_like", 18, 16_384, 4_096, 0.85, 4, 3, 0.25),
        make("gcc_like", 20, 20_480, 4_096, 0.80, 8, 4, 0.30),
        make("h264ref_like", 25, 16_384, 4_096, 0.85, 24, 4, 0.25),
        make("gromacs_like", 28, 16_384, 2_048, 0.75, 24, 4, 0.20),
        make("bzip2_like", 35, 30_720, 12_288, 0.75, 12, 4, 0.30),
        make("astar_like", 38, 32_768, 8_192, 0.65, 3, 4, 0.25),
        make("dealII_like", 40, 40_960, 16_384, 0.80, 8, 4, 0.25),
        make("hmmer_like", 42, 24_576, 6_144, 0.70, 16, 4, 0.20),
        make("cactusADM_like", 45, 65_536, 8_192, 0.55, 24, 6, 0.30),
        make("sphinx3_like", 45, 65_536, 8_192, 0.60, 16, 6, 0.15),
        make("zeusmp_like", 50, 98_304, 4_096, 0.45, 32, 6, 0.30),
        make("omnetpp_like", 60, 262_144, 2_048, 0.40, 2, 6, 0.30),
        make("leslie3d_like", 70, 262_144, 1_024, 0.20, 48, 8, 0.30),
        make("GemsFDTD_like", 80, 524_288, 1_024, 0.20, 32, 8, 0.30),
        make("milc_like", 85, 524_288, 512, 0.15, 24, 8, 0.30),
        make("lbm_like", 90, 524_288, 512, 0.10, 64, 10, 0.40),
        make("soplex_like", 100, 524_288, 4_096, 0.30, 6, 8, 0.20),
        make("libquantum_like", 110, 524_288, 256, 0.05, 96, 12, 0.25),
        make("mcf_like", 120, 1_048_576, 8_192, 0.35, 2, 10, 0.20),
    ]
}

/// NAS Parallel Benchmark-like profiles, in increasing memory intensity.
#[must_use]
pub fn nas() -> Vec<AppProfile> {
    vec![
        make("bt_like", 15, 16_384, 4_096, 0.85, 24, 4, 0.30),
        make("sp_like", 25, 32_768, 6_144, 0.75, 24, 4, 0.30),
        make("ua_like", 35, 49_152, 8_192, 0.65, 8, 4, 0.30),
        make("is_like", 50, 131_072, 2_048, 0.35, 2, 6, 0.35),
        make("lu_like", 55, 65_536, 8_192, 0.60, 32, 6, 0.30),
        make("ft_like", 55, 36_864, 24_576, 0.75, 16, 6, 0.30),
        make("mg_like", 75, 262_144, 2_048, 0.25, 48, 8, 0.30),
        make("cg_like", 95, 524_288, 1_024, 0.20, 2, 10, 0.20),
    ]
}

/// Database-workload-like profiles (TPC-C / YCSB; §6 "Accuracy with
/// Database Workloads").
#[must_use]
pub fn db() -> Vec<AppProfile> {
    vec![
        make("tpcc_like", 55, 1_048_576, 16_384, 0.50, 3, 4, 0.35),
        make("ycsb_like", 45, 1_048_576, 8_192, 0.60, 4, 6, 0.25),
    ]
}

/// Every profile (SPEC-like then NAS-like; database profiles are separate
/// as in the paper).
#[must_use]
pub fn all() -> Vec<AppProfile> {
    let mut v = spec();
    v.extend(nas());
    v
}

/// Looks up a profile by name across all suites (including database
/// profiles).
#[must_use]
pub fn by_name(name: &str) -> Option<AppProfile> {
    all().into_iter().chain(db()).find(|p| p.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_expected_sizes() {
        assert_eq!(spec().len(), 25);
        assert_eq!(nas().len(), 8);
        assert_eq!(db().len(), 2);
        assert_eq!(all().len(), 33);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = all().iter().map(|p| p.name().to_owned()).collect();
        names.extend(db().iter().map(|p| p.name().to_owned()));
        let count = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), count);
    }

    #[test]
    fn spec_sorted_by_intensity() {
        let s = spec();
        for w in s.windows(2) {
            assert!(
                w[0].mem_per_kilo() <= w[1].mem_per_kilo(),
                "{} > {}",
                w[0].name(),
                w[1].name()
            );
        }
    }

    #[test]
    fn by_name_finds_db_profiles() {
        assert!(by_name("tpcc_like").is_some());
        assert!(by_name("mcf_like").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn hot_sets_within_working_sets() {
        for p in all().iter().chain(db().iter()) {
            assert!(p.hot_lines() <= p.working_set_lines(), "{}", p.name());
        }
    }

    #[test]
    fn suite_spans_cache_sensitivity_spectrum() {
        const LLC_LINES: u64 = 32_768; // 2 MB / 64 B
        let profiles = all();
        let fits_llc = profiles
            .iter()
            .filter(|p| p.hot_lines() <= LLC_LINES && p.hot_lines() > 1_024)
            .count();
        let exceeds_llc = profiles
            .iter()
            .filter(|p| p.working_set_lines() > 4 * LLC_LINES)
            .count();
        assert!(
            fits_llc >= 8,
            "need cache-sensitive profiles, got {fits_llc}"
        );
        assert!(
            exceeds_llc >= 8,
            "need memory-bound profiles, got {exceeds_llc}"
        );
    }
}
