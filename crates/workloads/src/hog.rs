//! The memory-bandwidth / cache-capacity hog of the Figure 1 experiment.
//!
//! Figure 1 validates ASM's core observation (performance ∝ shared-cache
//! access rate) by co-running each application with "a memory
//! bandwidth/cache capacity hog program" whose "cache and memory access
//! behavior can be varied to cause different amounts of interference".

use asm_cpu::AppProfile;

/// Builds a hog profile at interference `level` out of `levels`.
///
/// Level 0 is a near-idle hog; the maximum level is a full-rate streaming
/// sweep of a footprint many times the shared cache, saturating both cache
/// capacity and memory bandwidth.
///
/// # Panics
///
/// Panics if `levels` is zero or `level >= levels`.
///
/// # Examples
///
/// ```
/// use asm_workloads::hog_profile;
/// let quiet = hog_profile(0, 5);
/// let loud = hog_profile(4, 5);
/// assert!(loud.mem_per_kilo() > quiet.mem_per_kilo());
/// ```
#[must_use]
pub fn hog_profile(level: usize, levels: usize) -> AppProfile {
    assert!(levels > 0, "need at least one level");
    assert!(level < levels, "level {level} out of range 0..{levels}");
    let t = if levels == 1 {
        1.0
    } else {
        level as f64 / (levels - 1) as f64
    };
    // Intensity ramps 5 -> 300 accesses per kilo-instruction; footprint
    // ramps from L1-resident to 16x the LLC.
    let mpk = (5.0 + t * 295.0) as u32;
    let ws = (1_024.0 * (512.0f64).powf(t)) as u64; // 1k -> 512k lines
    AppProfile::builder(&format!("hog_l{level}"))
        .mem_per_kilo(mpk)
        .working_set_lines(ws.max(1_024))
        .hot_lines(256)
        .hot_frac(0.05)
        .seq_run(32)
        .mlp(12)
        .write_frac(0.3)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_increase_interference_monotonically() {
        let hogs: Vec<_> = (0..6).map(|l| hog_profile(l, 6)).collect();
        for w in hogs.windows(2) {
            assert!(w[0].mem_per_kilo() <= w[1].mem_per_kilo());
            assert!(w[0].working_set_lines() <= w[1].working_set_lines());
        }
    }

    #[test]
    fn max_hog_overwhelms_llc() {
        let h = hog_profile(4, 5);
        assert!(h.working_set_lines() > 32_768 * 8);
        assert!(h.mem_per_kilo() >= 290);
    }

    #[test]
    fn single_level_is_maximum() {
        let h = hog_profile(0, 1);
        assert!(h.mem_per_kilo() >= 290);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_level_rejected() {
        let _ = hog_profile(5, 5);
    }
}
