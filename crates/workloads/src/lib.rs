#![warn(missing_docs)]
//! Synthetic workloads for the ASM reproduction.
//!
//! The paper evaluates on SPEC CPU2006 and NAS Parallel Benchmark
//! applications (plus TPC-C and YCSB database workloads), traced with Pin.
//! We substitute deterministic synthetic profiles — one per paper benchmark
//! — whose parameters (memory intensity, working-set size, hot-set reuse,
//! sequential-burst length, MLP) place them in the same region of behaviour
//! space as published characterisations of those benchmarks. `DESIGN.md`
//! documents why this substitution preserves the evaluation's shape.
//!
//! - [`suite`]: the named profiles (`mcf_like`, `libquantum_like`, …).
//! - [`mix`]: random multi-programmed workload construction (§5:
//!   "We construct workloads with varying memory intensity, randomly
//!   choosing applications for each workload").
//! - [`hog`]: the configurable memory-bandwidth/cache-capacity hog of the
//!   Figure 1 experiment.
//!
//! # Examples
//!
//! ```
//! use asm_workloads::{mix, suite};
//!
//! let all = suite::all();
//! assert!(all.len() > 30);
//! let workloads = mix::random_mixes(5, 4, 42);
//! assert_eq!(workloads.len(), 5);
//! assert_eq!(workloads[0].len(), 4);
//! ```

pub mod hog;
pub mod mix;
pub mod suite;

pub use hog::hog_profile;
pub use mix::{binned_mixes, random_mix, random_mixes};
