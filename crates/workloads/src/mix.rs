//! Random multi-programmed workload construction (§5, Workloads).

use asm_cpu::AppProfile;
use asm_simcore::SimRng;

use crate::suite;

/// Draws one `count`-application workload, sampling uniformly from the
/// SPEC-like + NAS-like suite (applications may repeat across slots, as in
/// the paper's random mixes).
///
/// # Examples
///
/// ```
/// use asm_simcore::SimRng;
/// let mut rng = SimRng::seed_from(1);
/// let mix = asm_workloads::random_mix(4, &mut rng);
/// assert_eq!(mix.len(), 4);
/// ```
#[must_use]
pub fn random_mix(count: usize, rng: &mut SimRng) -> Vec<AppProfile> {
    let pool = suite::all();
    (0..count)
        .map(|_| pool[rng.gen_range(pool.len() as u64) as usize].clone())
        .collect()
}

/// Draws `workloads` independent workloads of `count` applications each,
/// deterministically from `seed`.
#[must_use]
pub fn random_mixes(workloads: usize, count: usize, seed: u64) -> Vec<Vec<AppProfile>> {
    let mut rng = SimRng::seed_from(seed);
    (0..workloads)
        .map(|_| random_mix(count, &mut rng))
        .collect()
}

/// Draws workloads binned by memory intensity, cycling through target
/// fractions of memory-intensive applications (25% / 50% / 75% / 100%) —
/// the workload-construction methodology of §5 ("workloads with varying
/// memory intensity") made explicit.
///
/// An application is classed memory-intensive when its `mem_per_kilo` is
/// at or above the suite median.
///
/// # Examples
///
/// ```
/// let mixes = asm_workloads::mix::binned_mixes(4, 4, 7);
/// assert_eq!(mixes.len(), 4);
/// ```
#[must_use]
pub fn binned_mixes(workloads: usize, count: usize, seed: u64) -> Vec<Vec<AppProfile>> {
    let mut pool = suite::all();
    pool.sort_by_key(AppProfile::mem_per_kilo);
    let split = pool.len() / 2;
    let (light, heavy) = pool.split_at(split);
    let fractions = [0.25, 0.5, 0.75, 1.0];
    let mut rng = SimRng::seed_from(seed);
    (0..workloads)
        .map(|w| {
            let frac = fractions[w % fractions.len()];
            let heavy_slots = ((count as f64 * frac).round() as usize).min(count);
            let mut mix: Vec<AppProfile> = Vec::with_capacity(count);
            for _ in 0..heavy_slots {
                mix.push(heavy[rng.gen_range(heavy.len() as u64) as usize].clone());
            }
            for _ in heavy_slots..count {
                mix.push(light[rng.gen_range(light.len() as u64) as usize].clone());
            }
            rng.shuffle(&mut mix);
            mix
        })
        .collect()
}

/// Draws workloads from a specific pool (used for the database-workload
/// accuracy study, which mixes DB profiles with the main suite).
#[must_use]
pub fn mixes_from_pool(
    pool: &[AppProfile],
    workloads: usize,
    count: usize,
    seed: u64,
) -> Vec<Vec<AppProfile>> {
    assert!(!pool.is_empty(), "pool must be non-empty");
    let mut rng = SimRng::seed_from(seed);
    (0..workloads)
        .map(|_| {
            (0..count)
                .map(|_| pool[rng.gen_range(pool.len() as u64) as usize].clone())
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_are_deterministic() {
        let a = random_mixes(3, 4, 9);
        let b = random_mixes(3, 4, 9);
        let names = |m: &Vec<Vec<AppProfile>>| -> Vec<String> {
            m.iter()
                .flat_map(|w| w.iter().map(|p| p.name().to_owned()))
                .collect()
        };
        assert_eq!(names(&a), names(&b));
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_mixes(5, 4, 1);
        let b = random_mixes(5, 4, 2);
        let flat = |m: &Vec<Vec<AppProfile>>| -> Vec<String> {
            m.iter()
                .flat_map(|w| w.iter().map(|p| p.name().to_owned()))
                .collect()
        };
        assert_ne!(flat(&a), flat(&b));
    }

    #[test]
    fn mix_covers_suite_over_many_draws() {
        let mixes = random_mixes(100, 4, 3);
        let mut seen = std::collections::HashSet::new();
        for w in &mixes {
            for p in w {
                seen.insert(p.name().to_owned());
            }
        }
        // 400 draws from 33 profiles should see most of them.
        assert!(seen.len() > 25, "saw only {} profiles", seen.len());
    }

    #[test]
    fn pool_mixes_respect_pool() {
        let pool = suite::db();
        let mixes = mixes_from_pool(&pool, 4, 4, 5);
        for w in &mixes {
            for p in w {
                assert!(p.name().contains("tpcc") || p.name().contains("ycsb"));
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_pool_rejected() {
        let _ = mixes_from_pool(&[], 1, 1, 1);
    }

    #[test]
    fn binned_mixes_cycle_intensity_fractions() {
        let mixes = binned_mixes(4, 4, 11);
        let median = {
            let mut v: Vec<u32> = suite::all().iter().map(AppProfile::mem_per_kilo).collect();
            v.sort_unstable();
            v[v.len() / 2]
        };
        let heavy_counts: Vec<usize> = mixes
            .iter()
            .map(|w| w.iter().filter(|p| p.mem_per_kilo() >= median).count())
            .collect();
        // Fractions 25/50/75/100 of 4 slots, in order (pre-shuffle the
        // counts are fixed; shuffling only permutes slots).
        assert_eq!(heavy_counts, vec![1, 2, 3, 4]);
    }

    #[test]
    fn binned_mixes_deterministic() {
        let names = |m: Vec<Vec<AppProfile>>| -> Vec<String> {
            m.into_iter()
                .flatten()
                .map(|p| p.name().to_owned())
                .collect()
        };
        assert_eq!(names(binned_mixes(6, 4, 3)), names(binned_mixes(6, 4, 3)));
    }
}
