//! CLI-boundary guarantees of `--tier sampled`:
//!
//! 1. Sampled output (selection, weights, `value ±ci` cells) is
//!    byte-identical for any `--jobs` value.
//! 2. `--checkpoint-dir` + `--resume` replays sampled manifests with,
//!    again, byte-identical stdout.
//! 3. Experiments outside `SAMPLED_CAPABLE` are rejected up front
//!    (exit 2), as are horizons that do not divide into intervals.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_asm-experiments"))
        .args(args)
        .output()
        .expect("spawn asm-experiments")
}

fn tmp_dir(label: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("sampled_cli_{label}"));
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

fn assert_ok(out: &Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn sampled_output_is_byte_identical_across_jobs() {
    let base = run(&["fig11", "--tiny", "--tier", "sampled", "--jobs", "1"]);
    assert_ok(&base, "sampled fig11");
    let stdout = String::from_utf8_lossy(&base.stdout);
    assert!(
        stdout.contains("tier: sampled"),
        "missing tier banner:\n{stdout}"
    );
    assert!(
        stdout.contains('\u{b1}'),
        "sampled tables must carry ±ci cells:\n{stdout}"
    );
    for jobs in ["2", "4"] {
        let par = run(&["fig11", "--tiny", "--tier", "sampled", "--jobs", jobs]);
        assert_ok(&par, "sampled fig11 (parallel)");
        assert!(
            base.stdout == par.stdout,
            "sampled stdout depends on --jobs {jobs}:\n--- jobs 1 ---\n{}\n--- jobs {jobs} ---\n{}",
            String::from_utf8_lossy(&base.stdout),
            String::from_utf8_lossy(&par.stdout),
        );
    }
}

#[test]
fn sampled_resume_replays_manifests_byte_identically() {
    let dir = tmp_dir("resume");
    let ckpt_path = dir.join("ckpt");
    let ckpt = ckpt_path.to_str().expect("utf8 tmp path");
    let cold = run(&["fig11", "--tiny", "--tier", "sampled"]);
    assert_ok(&cold, "cold sampled fig11");

    let first = run(&[
        "fig11", "--tiny", "--tier", "sampled", "--checkpoint-dir", ckpt,
    ]);
    assert_ok(&first, "first checkpointed sampled pass");
    assert!(
        cold.stdout == first.stdout,
        "checkpointed sampled stdout differs from cold"
    );
    let manifests = std::fs::read_dir(ckpt_path.join("sampled"))
        .expect("sampled manifest dir exists after a checkpointed campaign")
        .count();
    assert!(manifests > 0, "campaign saved no sampled manifests");

    let resumed = run(&[
        "fig11", "--tiny", "--tier", "sampled", "--checkpoint-dir", ckpt, "--resume",
    ]);
    assert_ok(&resumed, "resumed sampled pass");
    assert!(
        cold.stdout == resumed.stdout,
        "sampled manifest replay differs from cold:\n--- cold ---\n{}\n--- resumed ---\n{}",
        String::from_utf8_lossy(&cold.stdout),
        String::from_utf8_lossy(&resumed.stdout),
    );
}

#[test]
fn unsupported_experiments_are_rejected() {
    let out = run(&["fig2", "--tiny", "--tier", "sampled"]);
    assert_eq!(out.status.code(), Some(2), "expected exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("does not support --tier sampled"),
        "stderr should explain the rejection, got:\n{stderr}"
    );
}

#[test]
fn indivisible_horizons_are_rejected() {
    // --tiny quantum is 200k; 500k cycles is not a multiple.
    let out = run(&["fig11", "--tiny", "--tier", "sampled", "--cycles", "500000"]);
    assert_eq!(out.status.code(), Some(2), "expected exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("multiple"),
        "stderr should explain the divisibility requirement, got:\n{stderr}"
    );
}
