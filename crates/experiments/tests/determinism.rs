//! The parallel harness's core guarantee, pinned as tests: for any
//! `--jobs` value the experiment output is **byte-identical** to the
//! sequential run. Workers only simulate; every statistics fold happens
//! sequentially on the caller's thread in submission order, so `jobs` is
//! schedule-only state (see DESIGN.md §8).

use asm_core::EstimatorSet;
use asm_experiments::collect::{collect_accuracy, eval_mechanism, pct};
use asm_experiments::Scale;
use asm_metrics::Table;
use asm_workloads::{mix, suite};

/// Renders the fig2-style accuracy table for `jobs` workers, returning
/// the exact strings the CLI would print (table) and export (CSV).
fn accuracy_table(scale: &Scale, jobs: usize) -> (String, String) {
    let mut config = scale.base_config();
    config.estimators = EstimatorSet::all();
    let workloads = mix::random_mixes(scale.workloads, 4, scale.seed);
    let stats = collect_accuracy(&config, &workloads, scale.cycles, scale.warmup_quanta, jobs);

    let mut table = Table::new(vec![
        "benchmark".into(),
        "FST".into(),
        "PTCA".into(),
        "ASM".into(),
    ]);
    for p in suite::all() {
        let name = p.name();
        if stats.mean_error_for_app("ASM", name).is_none() {
            continue;
        }
        table.row(vec![
            name.into(),
            pct(stats.mean_error_for_app("FST", name)),
            pct(stats.mean_error_for_app("PTCA", name)),
            pct(stats.mean_error_for_app("ASM", name)),
        ]);
    }
    table.row(vec![
        "AVERAGE".into(),
        pct(stats.mean_error("FST")),
        pct(stats.mean_error("PTCA")),
        pct(stats.mean_error("ASM")),
    ]);
    (table.to_string(), table.to_csv())
}

fn small_scale() -> Scale {
    let mut scale = Scale::tiny();
    scale.workloads = 4; // enough to actually spread across 4 workers
    scale
}

#[test]
fn accuracy_sweep_is_byte_identical_across_job_counts() {
    let scale = small_scale();
    let (table_seq, csv_seq) = accuracy_table(&scale, 1);
    let (table_par, csv_par) = accuracy_table(&scale, 4);
    assert_eq!(table_seq, table_par, "rendered table must not depend on --jobs");
    assert_eq!(csv_seq, csv_par, "CSV export must not depend on --jobs");
    // Sanity: the sweep produced real rows, not an empty table.
    assert!(table_seq.lines().count() > 2, "{table_seq}");
}

#[test]
fn mechanism_eval_is_bitwise_identical_across_job_counts() {
    let scale = small_scale();
    let config = scale.base_config();
    let workloads = mix::random_mixes(scale.workloads, 2, scale.seed + 1);
    let seq = eval_mechanism(&config, &workloads, scale.cycles, 1);
    let par = eval_mechanism(&config, &workloads, scale.cycles, 4);
    // Bitwise f64 equality: the sequential fold must see the exact same
    // values in the exact same order regardless of worker scheduling.
    assert_eq!(seq.unfairness.to_bits(), par.unfairness.to_bits());
    assert_eq!(seq.unfairness_std.to_bits(), par.unfairness_std.to_bits());
    assert_eq!(
        seq.harmonic_speedup.to_bits(),
        par.harmonic_speedup.to_bits()
    );
    assert!(seq.unfairness.is_finite() && seq.unfairness >= 1.0);
}
