//! The cross-validation gate: the analytic tier must agree with the
//! cycle-accurate tier across the 38-config sweep (the 36 ordered
//! interference-matrix pairs + two intensity-binned 4-app mixes) at
//! `Scale::reduced()` — the scale `asm-experiments xval` reports and
//! EXPERIMENTS.md records.
//!
//! Gates (symmetric per-app slowdown error, `max/min − 1`):
//!   - sweep-wide geometric mean ≤ 10% (the ISSUE acceptance bound);
//!   - per-class geomeans within the envelope published in
//!     EXPERIMENTS.md (kept tight so silent drift shows up here first).
//!
//! One cycle-accurate sweep at reduced scale costs ~10s of CPU across
//! the job pool; the analytic side is microseconds. This is the
//! expensive end of the test suite, deliberately: it is the contract
//! that makes `--tier analytic` results trustworthy.

use asm_experiments::exps::xval::{sweep_mixes, envelope, Envelope};
use asm_experiments::Scale;

/// Per-class upper bounds on the geomean error, with headroom over the
/// measured envelope (EXPERIMENTS.md "Cross-validation" table: 8.1%,
/// 6.9%, 9.5% at calibration) so small drifts do not flake the suite but
/// regressions trip it. No matrix app classifies as `compute` — the
/// class only appears in random-mix reporting, not the gated sweep.
const CLASS_BOUNDS: &[(&str, f64)] = &[
    ("cache-sensitive", 0.11),
    ("streaming", 0.10),
    ("irregular", 0.13),
];

#[test]
fn analytic_tier_matches_cycle_tier_within_envelope() {
    let scale = Scale::reduced();
    let mixes = sweep_mixes(scale);
    assert_eq!(mixes.len(), 38, "the gated sweep is 38 configurations");
    let env = envelope(scale, &mixes);

    let all = env.all_samples();
    let geo = Envelope::geomean(&all).expect("sweep produced samples");
    assert!(
        geo <= 0.10,
        "sweep geomean per-app slowdown error {:.1}% exceeds the 10% gate",
        geo * 100.0
    );

    for &(class, bound) in CLASS_BOUNDS {
        let Some(samples) = env.per_class.get(class) else {
            panic!("class {class} produced no samples — sweep shrank?");
        };
        let g = Envelope::geomean(samples).expect("non-empty class");
        assert!(
            g <= bound,
            "class {class}: geomean error {:.1}% exceeds its {:.0}% envelope bound",
            g * 100.0,
            bound * 100.0
        );
    }
}
