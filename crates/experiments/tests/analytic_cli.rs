//! CLI-boundary guarantees of `--tier analytic`:
//!
//! 1. stdout is byte-identical for any `--jobs` value and across
//!    repeated runs (the solver is bitwise deterministic and the pool
//!    merges in submission order).
//! 2. `--profile-cache` round-trips: a warm cache changes nothing but
//!    wall time; a corrupt or stale cache file warns on stderr and falls
//!    back to re-extraction, again changing nothing.
//! 3. Experiments that model per-quantum estimator behaviour reject the
//!    analytic tier up front (exit 2).

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_asm-experiments"))
        .args(args)
        .output()
        .expect("spawn asm-experiments")
}

fn tmp_dir(label: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("analytic_cli_{label}"));
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

fn assert_ok(out: &Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn analytic_matrix_is_byte_identical_across_jobs_and_runs() {
    let cache = tmp_dir("jobs").join("profiles.cache");
    let cache = cache.to_str().expect("utf8 tmp path");
    let mut outputs = Vec::new();
    for jobs in ["1", "3", "1"] {
        let out = run(&[
            "matrix",
            "--tier",
            "analytic",
            "--tiny",
            "--jobs",
            jobs,
            "--profile-cache",
            cache,
        ]);
        assert_ok(&out, "matrix --tier analytic");
        outputs.push(out.stdout);
    }
    assert!(
        outputs[0] == outputs[1],
        "stdout differs between --jobs 1 and --jobs 3:\n--- jobs 1 ---\n{}\n--- jobs 3 ---\n{}",
        String::from_utf8_lossy(&outputs[0]),
        String::from_utf8_lossy(&outputs[1]),
    );
    assert!(
        outputs[0] == outputs[2],
        "stdout differs across repeated runs (warm profile cache)"
    );
}

#[test]
fn corrupt_profile_cache_warns_and_falls_back() {
    let dir = tmp_dir("corrupt");
    let cache_path = dir.join("profiles.cache");
    let cache = cache_path.to_str().expect("utf8 tmp path");
    let args = ["matrix", "--tier", "analytic", "--tiny", "--profile-cache", cache];

    // Cold run writes the cache.
    let cold = run(&args);
    assert_ok(&cold, "cold run");
    assert!(cache_path.exists(), "cache file written on exit");

    // Corrupt it: wrong header simulates a stale format version.
    std::fs::write(&cache_path, "asm-profile-cache v999\nprofiles 0\n").expect("overwrite");
    let warm = run(&args);
    assert_ok(&warm, "run with corrupt cache");
    let stderr = String::from_utf8_lossy(&warm.stderr);
    assert!(
        stderr.contains("warning: profile-cache: ignoring"),
        "expected a profile-cache warning on stderr, got:\n{stderr}"
    );
    assert!(
        cold.stdout == warm.stdout,
        "a corrupt cache file must never change results"
    );

    // The fallback rewrote a valid cache; a third run stays identical
    // and warning-free.
    let healed = run(&args);
    assert_ok(&healed, "run after cache heal");
    assert!(
        !String::from_utf8_lossy(&healed.stderr).contains("warning: profile-cache"),
        "healed cache should load cleanly"
    );
    assert!(cold.stdout == healed.stdout);
}

#[test]
fn estimator_experiments_reject_the_analytic_tier() {
    let out = run(&["fig4", "--tier", "analytic", "--tiny"]);
    assert_eq!(out.status.code(), Some(2), "expected exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("analytic"),
        "stderr should explain the rejection, got:\n{stderr}"
    );
}

#[test]
fn unknown_tier_is_rejected() {
    let out = run(&["matrix", "--tier", "nope", "--tiny"]);
    assert_eq!(out.status.code(), Some(2), "expected exit 2");
}
