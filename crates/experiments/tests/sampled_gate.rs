//! The sampled-tier accuracy gate: representative-interval estimates
//! must agree with the full cycle-accurate runs across the same
//! 38-configuration policy sweep the `sampled_sweep` bench group times
//! (19 cache policies × 2 memory policies on one 4-app mix, 160
//! intervals of two 50k-cycle quanta each, K = 2 representatives).
//!
//! Gate: the geometric mean of the symmetric figure-metric ratio
//! (unfairness = max slowdown, and harmonic speedup, sampled vs full,
//! per configuration) stays below 1.05. The PR aspiration was <2%; the
//! measured floor of this estimator on a *policy* sweep is ~4%, and
//! DESIGN.md §12 documents why the gap is structural: the sweep members
//! differ in allocation policy, so their per-interval member/proxy
//! ratios drift across the run (QoS equilibria, slowdown-weighted
//! boosts), and K medoids sample that drift — a noise term that per-app
//! SMARTS-style warming cannot remove without giving back the ≥10×
//! wall-clock the tier exists for. Per-app slowdowns (noisier than the
//! metrics: errors partially cancel inside unfairness/harmonic-speedup)
//! are additionally gated at <8% geomean.
//!
//! A second, looser assertion checks the reported 95% confidence
//! intervals are not decorative: at least half of the sampled
//! (nonzero-CI) estimates must cover their full-run value within 3
//! half-widths. (The CI uses the proxy's within-cluster variance as a
//! surrogate for the member's — DESIGN.md §12 documents the blind spot —
//! so exact nominal coverage is not promised.)

use std::sync::Arc;

use asm_core::{
    AloneCache, CachePolicy, EstimatorSet, MemPolicy, QosConfig, SystemConfig,
};
use asm_cpu::AppProfile;
use asm_experiments::plan::PlannedRun;
use asm_experiments::{collect, sampled};
use asm_experiments::Scale;
use asm_simcore::AppId;
use asm_workloads::suite;

const QUANTUM: u64 = 50_000;
const CYCLES: u64 = 16_000_000; // 160 intervals of two quanta

fn base_config() -> SystemConfig {
    let mut c = SystemConfig::default();
    c.quantum = QUANTUM;
    c.epoch = 2_000;
    c.estimators = EstimatorSet::asm_only();
    c.epochs_enabled = true;
    c
}

/// The same 38-member sweep as `crates/bench/benches/sampled_sweep.rs`.
fn sweep_configs() -> Vec<SystemConfig> {
    let target = AppId::new(0);
    let mut cache_policies = vec![
        CachePolicy::None,
        CachePolicy::Ucp,
        CachePolicy::Mcfq,
        CachePolicy::AsmCache,
        CachePolicy::NaiveQos(target),
    ];
    for k in 0..14 {
        cache_policies.push(CachePolicy::AsmQos(QosConfig {
            target,
            bound: 1.5 + 0.5 * f64::from(k),
        }));
    }
    let mut configs = Vec::new();
    for &cache in &cache_policies {
        for mem in [MemPolicy::Uniform, MemPolicy::SlowdownWeighted] {
            let mut c = base_config();
            c.cache_policy = cache;
            c.mem_policy = mem;
            configs.push(c);
        }
    }
    assert_eq!(configs.len(), 38, "the sweep is sized by the PR acceptance");
    configs
}

fn mix() -> Vec<AppProfile> {
    ["mcf_like", "libquantum_like", "soplex_like", "h264ref_like"]
        .iter()
        .map(|n| suite::by_name(n).expect("suite profile exists"))
        .collect()
}

#[test]
fn sampled_tier_matches_full_runs_on_figure_metrics() {
    let apps = mix();
    let runs: Vec<PlannedRun> = sweep_configs()
        .into_iter()
        .map(|c| PlannedRun::new(c, apps.clone(), CYCLES))
        .collect();

    // One alone cache for both tiers, pre-warmed so neither side pays
    // the 4 alone simulations inside its comparison — the same
    // amortization `--alone-cache` gives the CLI across invocations.
    let cache = Arc::new(AloneCache::new());
    let warm = asm_core::Runner::with_cache(runs[0].config.clone(), Arc::clone(&cache));
    for slot in 0..apps.len() {
        let _ = warm.alone_progress(&apps, slot, CYCLES);
    }
    collect::install_alone_cache(Arc::clone(&cache));

    let mut scale = Scale::reduced();
    scale.quantum = QUANTUM;
    scale.cycles = CYCLES;
    scale.sample_intervals = 2;
    scale.sample_quanta = 2;
    let estimates = sampled::run_campaign(&runs, &scale);

    // Full reference over the shared alone cache (bitwise what
    // `plan::run_campaign` computes, without depending on it).
    let full: Vec<Vec<f64>> = asm_experiments::pool::run_ordered(scale.jobs, &runs, |_, run| {
        asm_core::Runner::with_cache(run.config.clone(), Arc::clone(&cache))
            .run(&run.apps, run.cycles)
            .whole_run_slowdowns
    });

    let mut app_log_sum = 0.0f64;
    let mut app_samples = 0usize;
    let mut metric_log_sum = 0.0f64;
    let mut metric_samples = 0usize;
    let mut ci_samples = 0usize;
    let mut ci_covered = 0usize;
    for (est, truth) in estimates.iter().zip(&full) {
        assert_eq!(est.slowdowns.len(), truth.len());
        for (e, &a) in est.slowdowns.iter().zip(truth) {
            if !(e.value.is_finite() && a.is_finite() && a > 0.0) {
                continue;
            }
            let ratio = (e.value / a).max(a / e.value);
            app_log_sum += ratio.ln();
            app_samples += 1;
            if e.ci > 0.0 {
                ci_samples += 1;
                if (e.value - a).abs() <= 3.0 * e.ci {
                    ci_covered += 1;
                }
            }
        }
        // The figure metrics the sweep exists to reproduce.
        let unf_e = est
            .slowdowns
            .iter()
            .map(|x| x.value)
            .fold(f64::NAN, f64::max);
        let unf_t = truth.iter().copied().fold(f64::NAN, f64::max);
        let hs_e = est.slowdowns.len() as f64
            / est.slowdowns.iter().map(|x| 1.0 / x.value).sum::<f64>();
        let hs_t = truth.len() as f64 / truth.iter().map(|x| 1.0 / x).sum::<f64>();
        for (ev, tv) in [(unf_e, unf_t), (hs_e, hs_t)] {
            if ev.is_finite() && tv.is_finite() && tv > 0.0 {
                let r = (ev / tv).max(tv / ev);
                metric_log_sum += r.ln();
                metric_samples += 1;
            }
        }
    }
    assert!(
        app_samples >= 38 * 4 - 4,
        "sweep produced too few samples"
    );
    assert_eq!(metric_samples, 38 * 2, "two figure metrics per config");
    let metric_geomean = (metric_log_sum / metric_samples as f64).exp();
    assert!(
        metric_geomean - 1.0 < 0.05,
        "sampled-vs-full geomean figure-metric error {:.2}% exceeds the 5% gate",
        (metric_geomean - 1.0) * 100.0
    );
    let app_geomean = (app_log_sum / app_samples as f64).exp();
    assert!(
        app_geomean - 1.0 < 0.08,
        "sampled-vs-full geomean per-app slowdown error {:.2}% exceeds the 8% gate",
        (app_geomean - 1.0) * 100.0
    );

    assert!(
        ci_samples >= app_samples / 2,
        "sweep groups should actually sample: only {ci_samples}/{app_samples} estimates carry a CI"
    );
    assert!(
        ci_covered * 2 >= ci_samples,
        "confidence intervals are decorative: {ci_covered}/{ci_samples} cover within 3 half-widths"
    );
}
