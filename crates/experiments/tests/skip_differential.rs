//! The fast-forward's end-to-end guarantee, pinned at the CLI boundary:
//! for **every** experiment, `--no-skip` (simulate each cycle) and the
//! default fast-forward produce byte-identical stdout and byte-identical
//! CSV exports. This is the differential matrix backing DESIGN.md §8 —
//! the in-core equivalence tests (`crates/core/tests/skip_equivalence.rs`)
//! pin QuantumRecords; this test pins everything downstream of them,
//! including the float formatting in rendered tables.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

/// Every dispatchable experiment, paper figures plus the extra sweeps
/// (kept in sync with `exps::run`; a typo here fails the run loudly).
/// `xval` is deliberately absent: it runs both tiers itself, its skip
/// invariance is covered by the experiments it composes, and its own
/// gates live in `tests/analytic_gate.rs` and `tests/analytic_cli.rs`.
const EXPERIMENTS: &[&str] = &[
    "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "db", "mise", "fig7", "fig8", "table3",
    "fig9", "fig10", "combined", "fig11", "channels", "ablation", "matrix", "workloads",
];

/// Runs one experiment in a child process at a sub-tiny scale, returning
/// its exact stdout bytes and the bytes of every CSV it exported.
fn run(exp: &str, no_skip: bool, csv_dir: &Path) -> (Vec<u8>, BTreeMap<String, Vec<u8>>) {
    std::fs::create_dir_all(csv_dir).expect("create csv dir");
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_asm-experiments"));
    cmd.arg(exp)
        .args(["--tiny", "--workloads", "1", "--cycles", "400000", "--csv"])
        .arg(csv_dir);
    if no_skip {
        cmd.arg("--no-skip");
    }
    let out = cmd.output().expect("spawn asm-experiments");
    assert!(
        out.status.success(),
        "{exp} (no_skip={no_skip}) failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let mut csvs = BTreeMap::new();
    for entry in std::fs::read_dir(csv_dir).expect("read csv dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        csvs.insert(name, std::fs::read(entry.path()).expect("read csv"));
    }
    (out.stdout, csvs)
}

fn tmp_dir(label: &str) -> PathBuf {
    Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("skip_differential_{label}"))
}

#[test]
fn every_experiment_is_byte_identical_with_and_without_skip() {
    for exp in EXPERIMENTS {
        let (stdout_skip, csv_skip) = run(exp, false, &tmp_dir(&format!("{exp}_skip")));
        let (stdout_cycle, csv_cycle) = run(exp, true, &tmp_dir(&format!("{exp}_cycle")));
        assert!(
            stdout_skip == stdout_cycle,
            "{exp}: stdout differs between skip and cycle-by-cycle:\n\
             --- skip ---\n{}\n--- cycle ---\n{}",
            String::from_utf8_lossy(&stdout_skip),
            String::from_utf8_lossy(&stdout_cycle)
        );
        assert_eq!(
            csv_skip.keys().collect::<Vec<_>>(),
            csv_cycle.keys().collect::<Vec<_>>(),
            "{exp}: CSV file sets differ"
        );
        for (name, bytes) in &csv_skip {
            assert!(
                bytes == &csv_cycle[name],
                "{exp}: {name} differs between skip and cycle-by-cycle"
            );
        }
        // Guard against a silently empty comparison: every experiment
        // prints at least its scale banner.
        assert!(!stdout_skip.is_empty(), "{exp}: produced no stdout");
    }
}
