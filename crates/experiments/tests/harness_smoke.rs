//! Smoke test: every registered experiment must run to completion at a
//! micro scale. Guards `asm-experiments all` against bit-rot in any
//! single experiment.

use asm_experiments::{exps, Scale, Tier};

/// A scale even smaller than `Scale::tiny()`, so the whole sweep stays
/// test-suite friendly.
fn micro() -> Scale {
    Scale {
        workloads: 1,
        cycles: 200_000,
        quantum: 100_000,
        epoch: 5_000,
        warmup_quanta: 1,
        seed: 7,
        jobs: 2,
        skip: true,
        tier: Tier::Cycle,
        sample_intervals: 2,
        sample_quanta: 1,
    }
}

#[test]
fn every_experiment_runs_at_micro_scale() {
    for name in exps::ALL {
        // `all` recurses; skip it (it is the loop we are running).
        if *name == "all" {
            continue;
        }
        assert!(exps::run(name, micro()), "experiment {name} not found");
    }
}

#[test]
fn unknown_experiment_is_rejected() {
    assert!(!exps::run("definitely-not-an-experiment", micro()));
}
