//! End-to-end guarantees of the telemetry layer, pinned at the CLI
//! boundary:
//!
//! 1. **Zero observable cost when off**: every experiment's stdout and
//!    CSV exports are byte-identical whether or not telemetry artefacts
//!    are requested (instrumentation is compiled in either way — the
//!    flags only decide whether it is *enabled*).
//! 2. **Jobs-independence**: `--stats-json` output is byte-identical for
//!    `--jobs 1` and `--jobs 4` (snapshots merge in submission order).
//! 3. **Artefact validity**: `--stats-json` round-trips through the
//!    hand-rolled JSON parser with the expected schema, and `--trace`
//!    is well-formed Chrome trace-event JSON.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

use asm_telemetry::json::{parse, JsonValue};

/// Every dispatchable experiment (kept in sync with `exps::run`).
const EXPERIMENTS: &[&str] = &[
    "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "db", "mise", "fig7", "fig8", "table3",
    "fig9", "fig10", "combined", "fig11", "channels", "ablation", "matrix", "workloads",
];

fn tmp_dir(label: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("telemetry_{label}"));
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

/// Runs one experiment at sub-tiny scale with `extra` flags appended,
/// returning stdout bytes and every exported CSV's bytes.
fn run(exp: &str, csv_dir: &Path, extra: &[&str]) -> (Vec<u8>, BTreeMap<String, Vec<u8>>) {
    std::fs::create_dir_all(csv_dir).expect("create csv dir");
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_asm-experiments"));
    cmd.arg(exp)
        .args(["--tiny", "--workloads", "1", "--cycles", "400000", "--csv"])
        .arg(csv_dir)
        .args(extra);
    let out = cmd.output().expect("spawn asm-experiments");
    assert!(
        out.status.success(),
        "{exp} {extra:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let mut csvs = BTreeMap::new();
    for entry in std::fs::read_dir(csv_dir).expect("read csv dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        csvs.insert(name, std::fs::read(entry.path()).expect("read csv"));
    }
    (out.stdout, csvs)
}

#[test]
fn every_experiment_is_byte_identical_with_telemetry_on() {
    for exp in EXPERIMENTS {
        let (stdout_off, csv_off) = run(exp, &tmp_dir(&format!("{exp}_off")), &[]);
        let on_dir = tmp_dir(&format!("{exp}_on"));
        let stats = on_dir.join("stats.json");
        let (stdout_on, csv_on) = run(
            exp,
            &on_dir.join("csv"),
            &["--stats-json", stats.to_str().expect("utf-8 tmp path")],
        );
        assert!(
            stdout_off == stdout_on,
            "{exp}: stdout differs with telemetry enabled:\n\
             --- off ---\n{}\n--- on ---\n{}",
            String::from_utf8_lossy(&stdout_off),
            String::from_utf8_lossy(&stdout_on)
        );
        assert_eq!(
            csv_off.keys().collect::<Vec<_>>(),
            csv_on.keys().collect::<Vec<_>>(),
            "{exp}: CSV file sets differ"
        );
        for (name, bytes) in &csv_off {
            assert!(
                bytes == &csv_on[name],
                "{exp}: {name} differs with telemetry enabled"
            );
        }
        assert!(stats.is_file(), "{exp}: --stats-json wrote nothing");
    }
}

#[test]
fn stats_json_is_jobs_independent() {
    for jobs in ["1", "4"] {
        let dir = tmp_dir(&format!("jobs{jobs}"));
        let stats = dir.join("stats.json");
        let (_, _) = run(
            "fig4",
            &dir.join("csv"),
            &[
                "--jobs",
                jobs,
                "--stats-json",
                stats.to_str().expect("utf-8 tmp path"),
            ],
        );
    }
    let one = std::fs::read(tmp_dir("jobs1").join("stats.json")).expect("jobs=1 stats");
    let four = std::fs::read(tmp_dir("jobs4").join("stats.json")).expect("jobs=4 stats");
    assert!(
        one == four,
        "--stats-json differs between --jobs 1 and --jobs 4"
    );
}

#[test]
fn stats_json_round_trips_with_expected_schema() {
    let dir = tmp_dir("schema");
    let stats = dir.join("stats.json");
    let series_dir = dir.join("series");
    let _ = run(
        "fig4",
        &dir.join("csv"),
        &[
            "--stats-json",
            stats.to_str().expect("utf-8 tmp path"),
            "--series-csv",
            series_dir.to_str().expect("utf-8 tmp path"),
        ],
    );

    let text = std::fs::read_to_string(&stats).expect("stats.json written");
    let doc = parse(&text).expect("stats.json parses");
    assert_eq!(
        doc.get("schema").and_then(JsonValue::as_str),
        Some("asm-telemetry v1")
    );
    let workloads = doc
        .get("workloads")
        .and_then(JsonValue::as_arr)
        .expect("workloads array");
    assert!(!workloads.is_empty());
    for w in workloads {
        let counters = w.get("counters").expect("counters object");
        for key in ["llc.app0.hits", "core0.retired", "sys.executed_cycles"] {
            assert!(
                counters.get(key).and_then(JsonValue::as_num).is_some(),
                "missing counter {key}"
            );
        }
        let lat = w.get("dram_read_latency").expect("latency object");
        let samples = lat
            .get("samples")
            .and_then(JsonValue::as_num)
            .expect("sample count");
        if samples > 0.0 {
            assert!(lat.get("p95").and_then(JsonValue::as_num).is_some());
        }
        let series = w.get("series").expect("series object");
        assert!(series.get("app0.est_slowdown").is_some());
        assert!(series.get("app0.actual_slowdown").is_some());
    }

    // Serialize → parse → serialize is a fixed point (the writer emits
    // exactly what the parser reads).
    let reparsed = parse(&doc.to_json()).expect("round-trip parses");
    assert_eq!(doc.to_json(), reparsed.to_json());

    // The per-workload series CSVs exist and carry the long format.
    let mut csvs: Vec<_> = std::fs::read_dir(&series_dir)
        .expect("series dir written")
        .map(|e| e.expect("dir entry").path())
        .collect();
    csvs.sort();
    assert_eq!(csvs.len(), workloads.len());
    let body = std::fs::read_to_string(&csvs[0]).expect("series csv");
    assert!(body.starts_with("series,cycle,value\n"));
    assert!(body.lines().count() > 1, "series csv has no samples");
}

#[test]
fn trace_is_valid_chrome_trace_event_json() {
    let dir = tmp_dir("trace");
    let trace = dir.join("trace.json");
    let _ = run(
        "fig4",
        &dir.join("csv"),
        &["--trace", trace.to_str().expect("utf-8 tmp path")],
    );

    let text = std::fs::read_to_string(&trace).expect("trace written");
    let doc = parse(&text).expect("trace parses");
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty(), "trace recorded no events");
    let mut cats = std::collections::BTreeSet::new();
    for e in events {
        let ph = e.get("ph").and_then(JsonValue::as_str).expect("ph field");
        assert!(matches!(ph, "i" | "X"), "unexpected phase {ph}");
        assert!(e.get("name").and_then(JsonValue::as_str).is_some());
        assert!(e.get("ts").and_then(JsonValue::as_num).is_some());
        assert!(e.get("pid").and_then(JsonValue::as_num).is_some());
        assert!(e.get("tid").and_then(JsonValue::as_num).is_some());
        if ph == "X" {
            assert!(e.get("dur").and_then(JsonValue::as_num).is_some());
        }
        cats.insert(e.get("cat").and_then(JsonValue::as_str).expect("cat field"));
    }
    assert!(cats.contains("sched"), "no scheduler events in trace");
    assert!(cats.contains("mem"), "no memory lifecycle events in trace");
    assert!(doc.get("displayTimeUnit").is_some());
}
