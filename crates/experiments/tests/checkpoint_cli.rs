//! CLI-boundary guarantees of `--checkpoint-dir` / `--resume`:
//!
//! 1. A checkpointed campaign emits stdout byte-identical to an
//!    uncheckpointed one, for any `--jobs` value — checkpoint state can
//!    accelerate a campaign but never steer it.
//! 2. `--resume` replays finished runs from their manifests (and reuses
//!    the shared warmup snapshot) with, again, byte-identical stdout.
//! 3. Damaged checkpoint artefacts are warned about on stderr and
//!    rebuilt; results stay identical.
//! 4. `--resume` without `--checkpoint-dir` is a usage error (exit 2).
//!
//! The kill-mid-campaign leg of this story lives in `scripts/ci.sh`
//! (leg 5), where a real SIGKILL interrupts the process.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_asm-experiments"))
        .args(args)
        .output()
        .expect("spawn asm-experiments")
}

fn tmp_dir(label: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("checkpoint_cli_{label}"));
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

fn assert_ok(out: &Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

fn assert_same_stdout(a: &Output, b: &Output, what: &str) {
    assert!(
        a.stdout == b.stdout,
        "{what}:\n--- left ---\n{}\n--- right ---\n{}",
        String::from_utf8_lossy(&a.stdout),
        String::from_utf8_lossy(&b.stdout),
    );
}

#[test]
fn checkpointed_campaign_matches_cold_for_any_jobs() {
    let ckpt = tmp_dir("jobs").join("ckpt");
    let ckpt = ckpt.to_str().expect("utf8 tmp path");

    let cold = run(&["fig11", "--tiny"]);
    assert_ok(&cold, "cold fig11");

    for jobs in ["1", "3"] {
        let warm = run(&["fig11", "--tiny", "--jobs", jobs, "--checkpoint-dir", ckpt]);
        assert_ok(&warm, "checkpointed fig11");
        assert_same_stdout(
            &cold,
            &warm,
            "checkpointed stdout differs from cold",
        );
    }
}

#[test]
fn resume_replays_manifests_byte_identically() {
    let dir = tmp_dir("resume");
    let ckpt_path = dir.join("ckpt");
    let ckpt = ckpt_path.to_str().expect("utf8 tmp path");

    let cold = run(&["fig11", "--tiny"]);
    assert_ok(&cold, "cold fig11");

    // First checkpointed pass populates warmup snapshots and manifests.
    let first = run(&["fig11", "--tiny", "--checkpoint-dir", ckpt]);
    assert_ok(&first, "first checkpointed pass");
    assert_same_stdout(&cold, &first, "first pass differs from cold");
    let manifests = std::fs::read_dir(ckpt_path.join("runs"))
        .expect("runs dir exists after a checkpointed campaign")
        .count();
    assert!(manifests > 0, "campaign saved no run manifests");

    // Resume replays every run from its manifest.
    let resumed = run(&["fig11", "--tiny", "--checkpoint-dir", ckpt, "--resume"]);
    assert_ok(&resumed, "resumed pass");
    assert_same_stdout(&cold, &resumed, "manifest replay differs from cold");
}

#[test]
fn damaged_artefacts_warn_and_rebuild() {
    let dir = tmp_dir("damage");
    let ckpt_path = dir.join("ckpt");
    let ckpt = ckpt_path.to_str().expect("utf8 tmp path");
    let args = ["fig11", "--tiny", "--checkpoint-dir", ckpt, "--resume"];

    let cold = run(&["fig11", "--tiny"]);
    assert_ok(&cold, "cold fig11");
    let first = run(&args);
    assert_ok(&first, "first checkpointed pass");

    // Truncate every artefact on disk: warmup snapshots and manifests.
    for sub in ["warmups", "runs"] {
        for entry in std::fs::read_dir(ckpt_path.join(sub)).expect("artefact dir") {
            let p = entry.expect("dir entry").path();
            std::fs::write(&p, b"asm").expect("truncate artefact");
        }
    }

    let healed = run(&args);
    assert_ok(&healed, "pass over damaged artefacts");
    let stderr = String::from_utf8_lossy(&healed.stderr);
    assert!(
        stderr.contains("checkpoint:"),
        "expected a checkpoint warning on stderr, got:\n{stderr}"
    );
    assert_same_stdout(&cold, &healed, "damaged artefacts changed results");

    // The damaged files were rewritten: a third pass replays cleanly.
    let replayed = run(&args);
    assert_ok(&replayed, "pass after artefact heal");
    assert!(
        !String::from_utf8_lossy(&replayed.stderr).contains("checkpoint:"),
        "healed artefacts should load cleanly"
    );
    assert_same_stdout(&cold, &replayed, "healed replay differs from cold");
}

#[test]
fn resume_without_checkpoint_dir_is_a_usage_error() {
    let out = run(&["fig11", "--tiny", "--resume"]);
    assert_eq!(out.status.code(), Some(2), "expected exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--checkpoint-dir"),
        "stderr should name the missing flag, got:\n{stderr}"
    );
}
