//! Experiment scale: the paper simulates 100 workloads × 100 M cycles per
//! configuration; the default scale here is reduced so the whole suite
//! finishes in minutes. `--full` restores paper scale.

use asm_core::SystemConfig;
use asm_simcore::Cycle;

/// Which simulation tier an experiment runs on (`--tier`).
///
/// The cycle tier is the event-driven `asm_core::System`; the analytic
/// tier is the reuse-distance model in `asm-analytic`, which trades
/// per-cycle fidelity for mix throughput measured in microseconds (see
/// DESIGN.md §10). Only experiments listed in
/// [`crate::exps::ANALYTIC_CAPABLE`] accept the analytic tier. The
/// sampled tier simulates only `K` representative intervals per run and
/// reports every metric with a confidence interval (DESIGN.md §12);
/// only experiments in [`crate::exps::SAMPLED_CAPABLE`] accept it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Tier {
    /// Cycle-accurate event-driven simulation (the default).
    #[default]
    Cycle,
    /// Analytical reuse-distance slowdown model.
    Analytic,
    /// Representative-interval sampling with confidence intervals.
    Sampled,
}

impl Tier {
    /// The CLI spelling of this tier.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Tier::Cycle => "cycle",
            Tier::Analytic => "analytic",
            Tier::Sampled => "sampled",
        }
    }

    /// Parses the CLI spelling.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "cycle" => Some(Tier::Cycle),
            "analytic" => Some(Tier::Analytic),
            "sampled" => Some(Tier::Sampled),
            _ => None,
        }
    }
}

/// How big to run each experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Number of multi-programmed workloads per configuration.
    pub workloads: usize,
    /// Simulated cycles per run.
    pub cycles: Cycle,
    /// Quantum length Q.
    pub quantum: Cycle,
    /// Epoch length E.
    pub epoch: Cycle,
    /// Leading quanta excluded from error statistics (cache warm-up).
    pub warmup_quanta: usize,
    /// Master seed.
    pub seed: u64,
    /// Worker threads for the sweep (`--jobs`). Schedule-only state: it
    /// decides how runs are spread across cores, never what they compute
    /// (see DESIGN.md §8).
    pub jobs: usize,
    /// Deterministic fast-forward (`--no-skip` clears it). Like `jobs`,
    /// this may never change what a run computes — outputs are
    /// byte-identical either way (see DESIGN.md §8).
    pub skip: bool,
    /// Simulation tier (`--tier cycle|analytic|sampled`).
    pub tier: Tier,
    /// Representative intervals simulated per run on the sampled tier
    /// (`--sample-intervals`, the clustering's `K`). Ignored elsewhere.
    pub sample_intervals: usize,
    /// Quanta per sampling interval (`--sample-quanta`, the interval
    /// length `L` in units of Q). Ignored outside the sampled tier.
    pub sample_quanta: u64,
}

impl Scale {
    /// The default reduced scale (minutes for the whole suite).
    #[must_use]
    pub fn reduced() -> Self {
        Scale {
            workloads: 15,
            cycles: 8_000_000,
            quantum: 1_000_000,
            epoch: 10_000,
            warmup_quanta: 2,
            seed: 42,
            jobs: crate::pool::default_jobs(),
            skip: true,
            tier: Tier::default(),
            sample_intervals: 4,
            sample_quanta: 1,
        }
    }

    /// The paper's scale (§5): Q = 5 M, E = 10 k, 100 workloads, 100 M
    /// cycles. Expect hours.
    #[must_use]
    pub fn full() -> Self {
        Scale {
            workloads: 100,
            cycles: 100_000_000,
            quantum: 5_000_000,
            epoch: 10_000,
            warmup_quanta: 2,
            seed: 42,
            jobs: crate::pool::default_jobs(),
            skip: true,
            tier: Tier::default(),
            sample_intervals: 4,
            sample_quanta: 1,
        }
    }

    /// A tiny scale for smoke tests and benches. Single-threaded: at this
    /// size spawn overhead would dominate the runs themselves.
    #[must_use]
    pub fn tiny() -> Self {
        Scale {
            workloads: 2,
            cycles: 600_000,
            quantum: 200_000,
            epoch: 5_000,
            warmup_quanta: 1,
            seed: 42,
            jobs: 1,
            skip: true,
            tier: Tier::default(),
            sample_intervals: 2,
            sample_quanta: 1,
        }
    }

    /// The sampled tier's interval geometry at this scale.
    #[must_use]
    pub fn sample_spec(&self) -> asm_sampling::SampleSpec {
        asm_sampling::SampleSpec {
            intervals: self.sample_intervals,
            quanta: self.sample_quanta,
        }
    }

    /// Base system configuration at this scale (Table 2 hardware).
    #[must_use]
    pub fn base_config(&self) -> SystemConfig {
        let mut c = SystemConfig::default();
        c.quantum = self.quantum;
        c.epoch = self.epoch;
        c.seed = self.seed;
        c.skip_mode = self.skip;
        c
    }

    /// Quanta that contribute to statistics at this scale.
    #[must_use]
    pub fn measured_quanta(&self) -> usize {
        ((self.cycles / self.quantum) as usize).saturating_sub(self.warmup_quanta)
    }
}

impl Default for Scale {
    fn default() -> Self {
        Self::reduced()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_matches_paper_parameters() {
        let s = Scale::full();
        assert_eq!(s.quantum, 5_000_000);
        assert_eq!(s.epoch, 10_000);
        assert_eq!(s.workloads, 100);
    }

    #[test]
    fn base_config_inherits_q_and_e() {
        let s = Scale::reduced();
        let c = s.base_config();
        assert_eq!(c.quantum, s.quantum);
        assert_eq!(c.epoch, s.epoch);
    }

    #[test]
    fn measured_quanta_excludes_warmup() {
        let s = Scale::reduced();
        assert_eq!(s.measured_quanta(), 6);
    }
}
