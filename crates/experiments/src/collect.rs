//! Shared accuracy-collection machinery for the estimation-error
//! experiments (Figures 2-8, Table 3, §6.4 and the database study).

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

use asm_core::{AloneCache, RunResult, Runner, SystemConfig};
use asm_cpu::AppProfile;
use asm_metrics::{ErrorAggregate, ErrorDistribution};
use asm_simcore::Cycle;

use crate::pool;

/// The process-wide alone-run cache, shared by every runner the
/// experiments construct once set: `--alone-cache <path>` installs a
/// file-backed one, [`install_alone_cache`] an in-memory one.
static ALONE_CACHE: OnceLock<(Option<PathBuf>, Arc<AloneCache>)> = OnceLock::new();

/// Loads (or initializes) the persistent alone-run cache at `path` and
/// routes all subsequent [`make_runner`] calls through it. A missing file
/// starts empty; a corrupt or stale file is ignored with a warning (the
/// run then recomputes and overwrites it on [`save_alone_cache`]).
/// Progress chatter goes to stderr: stdout must stay byte-identical with
/// and without a cache.
pub fn set_alone_cache_path(path: PathBuf) {
    let (cache, warning) = AloneCache::load_or_warn(&path);
    if let Some(w) = warning {
        eprintln!("warning: alone-cache: {w}");
    } else if !cache.is_empty() {
        eprintln!(
            "alone-cache: loaded {} run(s) from {}",
            cache.len(),
            path.display()
        );
    }
    let _ = ALONE_CACHE.set((Some(path), Arc::new(cache)));
}

/// Routes all subsequent runners and campaigns through an in-memory
/// cache with no backing file ([`save_alone_cache`] becomes a no-op).
/// Harnesses that compare tiers (the sampled-accuracy gate, the
/// `sampled_sweep` bench) pre-warm one cache and install it so both
/// tiers amortize the same alone runs — exactly what `--alone-cache`
/// gives the CLI across invocations. First installation wins, like the
/// CLI flag.
pub fn install_alone_cache(cache: Arc<AloneCache>) {
    let _ = ALONE_CACHE.set((None, cache));
}

/// A runner for `config` backed by the persistent alone-run cache when
/// one is configured, else by a fresh private cache. All experiment code
/// constructs runners through here.
#[must_use]
pub fn make_runner(config: SystemConfig) -> Runner {
    match ALONE_CACHE.get() {
        Some((_, cache)) => Runner::with_cache(config, Arc::clone(cache)),
        None => Runner::new(config),
    }
}

/// Writes the persistent alone-run cache back to its file, if one was
/// configured. Called once at the end of the CLI run.
pub fn save_alone_cache() {
    if let Some((Some(path), cache)) = ALONE_CACHE.get() {
        match cache.save_to(path) {
            Ok(()) => eprintln!(
                "alone-cache: saved {} run(s) to {}",
                cache.len(),
                path.display()
            ),
            Err(e) => eprintln!("warning: alone-cache: could not save {}: {e}", path.display()),
        }
    }
}

/// Simulates every workload under `config`, fanning runs across `jobs`
/// worker threads, and returns the results **in workload order**.
///
/// This is the deterministic parallel driver every sweep goes through:
/// workloads are independent, the shared [`asm_core::AloneCache`] dedupes
/// alone runs across threads, and because the returned `Vec` preserves
/// submission order, any sequential fold over it is byte-identical for
/// every `jobs` value (including `jobs = 1`, which runs inline).
///
/// Prints one progress dot per completed workload to stderr.
#[must_use]
pub fn run_parallel(
    config: &SystemConfig,
    workloads: &[Vec<AppProfile>],
    cycles: Cycle,
    jobs: usize,
) -> Vec<RunResult> {
    let runner = make_runner(config.clone());
    run_parallel_with(&runner, workloads, cycles, jobs)
}

/// Like [`run_parallel`], reusing an existing runner — and therefore its
/// alone-run cache. Use with [`Runner::set_policies`] when sweeping
/// mechanisms on identical hardware.
#[must_use]
pub fn run_parallel_with(
    runner: &Runner,
    workloads: &[Vec<AppProfile>],
    cycles: Cycle,
    jobs: usize,
) -> Vec<RunResult> {
    let opts = crate::sink::options();
    let results = pool::run_ordered(jobs, workloads, |_, w| {
        let r = runner.run_with(w, cycles, opts);
        eprint!(".");
        r
    });
    eprintln!();
    // Telemetry snapshots are recorded here, sequentially and in
    // submission order, so the sink's artefacts stay jobs-independent.
    for r in &results {
        crate::sink::record(r);
    }
    results
}

/// Accumulated accuracy statistics across a set of workloads.
#[derive(Debug, Default)]
pub struct AccuracyStats {
    /// Mean/max error per estimator.
    pub per_estimator: BTreeMap<String, ErrorAggregate>,
    /// Mean error per (estimator, benchmark name).
    pub per_app: BTreeMap<(String, String), ErrorAggregate>,
    /// Error distribution per estimator (10%-wide buckets).
    pub dist: BTreeMap<String, ErrorDistribution>,
    /// Per-workload mean error per estimator (for std-dev error bars).
    pub per_workload: BTreeMap<String, Vec<f64>>,
}

impl AccuracyStats {
    /// Mean error (%) of `estimator` across all samples.
    #[must_use]
    pub fn mean_error(&self, estimator: &str) -> Option<f64> {
        self.per_estimator.get(estimator)?.mean_pct()
    }

    /// Standard deviation of per-workload mean errors (the paper's error
    /// bars in Figures 5, 7, 8).
    #[must_use]
    pub fn workload_std_dev(&self, estimator: &str) -> Option<f64> {
        let v = self.per_workload.get(estimator)?;
        if v.is_empty() {
            return None;
        }
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        Some((v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / v.len() as f64).sqrt())
    }

    /// Benchmark names seen, in first-seen order of the provided list.
    #[must_use]
    pub fn mean_error_for_app(&self, estimator: &str, app: &str) -> Option<f64> {
        self.per_app
            .get(&(estimator.to_owned(), app.to_owned()))?
            .mean_pct()
    }
}

/// Runs `workloads` under `config` on `jobs` worker threads and
/// accumulates estimation-error statistics, skipping `warmup_quanta`
/// leading quanta of every run.
///
/// Simulations run via [`run_parallel`]; the statistics fold happens
/// sequentially on the caller's thread in workload order, so the result
/// is bitwise identical for every `jobs` value.
#[must_use]
pub fn collect_accuracy(
    config: &SystemConfig,
    workloads: &[Vec<AppProfile>],
    cycles: Cycle,
    warmup_quanta: usize,
    jobs: usize,
) -> AccuracyStats {
    let results = run_parallel(config, workloads, cycles, jobs);
    let mut stats = AccuracyStats::default();
    for result in &results {
        let mut workload_err: BTreeMap<String, ErrorAggregate> = BTreeMap::new();
        for q in result.quanta.iter().skip(warmup_quanta) {
            for (name, est) in &q.estimates {
                for (i, (&e, &a)) in est.iter().zip(&q.actual).enumerate() {
                    if !(a.is_finite() && a > 0.0) {
                        continue;
                    }
                    let err = asm_metrics::estimation_error_pct(e, a);
                    stats
                        .per_estimator
                        .entry(name.clone())
                        .or_default()
                        .add_error_pct(err);
                    stats
                        .per_app
                        .entry((name.clone(), result.app_names[i].clone()))
                        .or_default()
                        .add_error_pct(err);
                    stats
                        .dist
                        .entry(name.clone())
                        .or_insert_with(|| ErrorDistribution::new(10.0, 15))
                        .add(err);
                    workload_err
                        .entry(name.clone())
                        .or_default()
                        .add_error_pct(err);
                }
            }
        }
        for (name, agg) in workload_err {
            if let Some(m) = agg.mean_pct() {
                stats.per_workload.entry(name).or_default().push(m);
            }
        }
        if std::env::var_os("ASM_DEBUG_SIGNED").is_some() {
            for q in result.quanta.iter().skip(warmup_quanta).take(1) {
                for (name, est) in &q.estimates {
                    let pairs: Vec<String> = est
                        .iter()
                        .zip(&q.actual)
                        .map(|(e, a)| format!("{e:.2}/{a:.2}"))
                        .collect();
                    eprintln!("[signed] {name}: est/actual {}", pairs.join(" "));
                }
            }
        }
    }
    stats
}

/// Formats an optional percentage for table cells.
#[must_use]
pub fn pct(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.1}%"),
        None => "-".to_owned(),
    }
}

/// Averaged fairness/performance outcome of a resource-management
/// mechanism across workloads (Figures 9-11).
#[derive(Debug, Clone, Copy, Default)]
pub struct MechOutcome {
    /// Mean of per-workload maximum slowdown (unfairness; lower is better).
    pub unfairness: f64,
    /// Standard deviation of per-workload maximum slowdown.
    pub unfairness_std: f64,
    /// Mean harmonic speedup (system performance; higher is better).
    pub harmonic_speedup: f64,
}

/// Runs `workloads` under `config` on `jobs` worker threads and averages
/// whole-run unfairness and harmonic speedup.
#[must_use]
pub fn eval_mechanism(
    config: &SystemConfig,
    workloads: &[Vec<AppProfile>],
    cycles: Cycle,
    jobs: usize,
) -> MechOutcome {
    let runner = make_runner(config.clone());
    eval_mechanism_with(&runner, workloads, cycles, jobs)
}

/// Like [`eval_mechanism`], reusing an existing runner (and its cached
/// alone runs — use with [`Runner::set_policies`] when sweeping
/// mechanisms on identical hardware).
#[must_use]
pub fn eval_mechanism_with(
    runner: &Runner,
    workloads: &[Vec<AppProfile>],
    cycles: Cycle,
    jobs: usize,
) -> MechOutcome {
    mech_outcome(&run_parallel_with(runner, workloads, cycles, jobs))
}

/// Folds per-workload results into the averaged fairness/performance
/// outcome. Sequential and order-dependent only on the slice order, so a
/// caller that slices a [`crate::plan::run_campaign`] result by scheme
/// gets output byte-identical to the per-scheme sweeps it replaces.
#[must_use]
pub fn mech_outcome(results: &[RunResult]) -> MechOutcome {
    let mut maxes = Vec::new();
    let mut hspeeds = Vec::new();
    for r in results {
        let slowdowns: Vec<f64> = r
            .whole_run_slowdowns
            .iter()
            .copied()
            .filter(|s| s.is_finite())
            .collect();
        if let Some(m) = asm_metrics::max_slowdown(&slowdowns) {
            maxes.push(m);
        }
        if let Some(h) = asm_metrics::harmonic_speedup(&slowdowns) {
            hspeeds.push(h);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let m = mean(&maxes);
    let std =
        (maxes.iter().map(|x| (x - m).powi(2)).sum::<f64>() / maxes.len().max(1) as f64).sqrt();
    MechOutcome {
        unfairness: m,
        unfairness_std: std,
        harmonic_speedup: mean(&hspeeds),
    }
}

/// The alone-run cache a campaign's runners share: the persistent global
/// cache when `--alone-cache` is configured, else one fresh cache per
/// campaign — either way, every runner of the campaign dedupes alone
/// simulations against the same table.
#[must_use]
pub fn campaign_cache() -> Arc<AloneCache> {
    match ALONE_CACHE.get() {
        Some((_, cache)) => Arc::clone(cache),
        None => Arc::new(AloneCache::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;
    use asm_core::EstimatorSet;
    use asm_workloads::mix;

    #[test]
    fn collects_errors_for_all_estimators() {
        let scale = Scale::tiny();
        let mut config = scale.base_config();
        config.estimators = EstimatorSet::all();
        let workloads = mix::random_mixes(1, 2, 7);
        let stats = collect_accuracy(&config, &workloads, scale.cycles, scale.warmup_quanta, 1);
        for name in ["ASM", "FST", "PTCA", "MISE"] {
            assert!(stats.mean_error(name).is_some(), "missing stats for {name}");
        }
        assert!(stats.workload_std_dev("ASM").is_some());
    }

    #[test]
    fn run_parallel_preserves_workload_order() {
        let scale = Scale::tiny();
        let config = scale.base_config();
        let workloads = mix::random_mixes(3, 2, 11);
        let results = run_parallel(&config, &workloads, scale.cycles, 3);
        assert_eq!(results.len(), workloads.len());
        for (r, w) in results.iter().zip(&workloads) {
            let expected: Vec<String> = w.iter().map(|a| a.name().to_owned()).collect();
            assert_eq!(r.app_names, expected);
        }
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(Some(12.34)), "12.3%");
        assert_eq!(pct(None), "-");
    }
}
