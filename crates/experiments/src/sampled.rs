//! The sampled-tier campaign driver: representative-interval simulation
//! with confidence intervals (`--tier sampled`, DESIGN.md §12).
//!
//! Like [`crate::plan::run_campaign`], this evaluates a flat list of
//! [`PlannedRun`]s and returns results **in submission order**, so every
//! sequential fold over them is byte-identical for any `--jobs` value.
//! Unlike the planner, members of a sweep group (runs sharing a
//! prefix-relevant configuration, mix and horizon) are not simulated in
//! full: one *fingerprint* pass per group slices the run into intervals,
//! clusters them ([`asm_sampling::fingerprint`]), and every member then
//! simulates only the `K` medoid intervals, reconstructing its whole-run
//! slowdowns as weighted estimates with 95% confidence intervals.
//!
//! Runs that cannot be sampled run in full and report exact values
//! (`ci = 0`): groups of one (the fingerprint would cost more than it
//! saves), horizons that do not divide into intervals, and `K ≥ N`
//! (sampling every interval is not cheaper than the run, and summing
//! member intervals warmed from *neutral-prefix* snapshots is not
//! bitwise the member's full run — the §12 blind spot).
//!
//! ## Trajectory classes
//!
//! A one-interval fork is only accurate from snapshots whose *policy
//! equilibrium* matches the member's: partitioning policies spend many
//! quanta granting victims their hot set back, and a binding QoS bound
//! starves non-targets from the first boundary on, so forks across
//! those classes inherit the wrong compounded cache state. Members are
//! therefore classified ([`TrajectoryClass`]) against the neutral
//! proxy's slowdowns, and each anchor class (neutral, partitioned,
//! starved) gets its own fingerprint pass, run under a deterministic
//! class representative's full configuration; the representative itself
//! reads its exact result straight off the pass
//! ([`IntervalPlan::proxy_slowdowns`]). Borderline QoS bounds — inside
//! the margin band, where the trajectory sits between the partitioned
//! and starved equilibria — are measured from *both* anchor plans and
//! blended ([`blend`]), with the anchor spread folded into the CI. The
//! bind rule and its margin are documented in DESIGN.md §12.
//!
//! With `--checkpoint-dir` each run's estimates are persisted as a
//! manifest (`<dir>/sampled/<key>.bin`, values and CIs as bit patterns);
//! `--resume` replays them byte-identically and skips the fingerprints
//! of fully-replayed groups.

use std::collections::BTreeMap;
use std::sync::Arc;

use asm_core::checkpoint;
use asm_core::{config_hash, CachePolicy, RunOptions, Runner, SystemConfig};
use asm_cpu::ProgressLog;
use asm_sampling::{estimate_slowdowns, fingerprint, measure_interval, Estimate, IntervalPlan};
use asm_sampling::SampleSpec;
use asm_simcore::hash::DetHasher;
use asm_simcore::persist::{self, PersistError, StateReader, StateWriter};

use crate::plan::PlannedRun;
use crate::scale::Scale;
use crate::{collect, pool};

const MANIFEST_FORMAT: &str = "asm-sampled-manifest";
const MANIFEST_VERSION: u32 = 1;

/// One run's sampled outcome: per-app whole-run slowdown estimates.
/// Exact (fully-simulated) runs carry `ci = 0`.
#[derive(Debug, Clone)]
pub struct SampledResult {
    /// Benchmark names, in slot order.
    pub app_names: Vec<String>,
    /// Per-app whole-run slowdown estimates with 95% CIs.
    pub slowdowns: Vec<Estimate>,
}

/// Averaged fairness/performance outcome across a scheme's workloads —
/// the CI-carrying analogue of [`crate::collect::MechOutcome`].
#[derive(Debug, Clone, Copy)]
pub struct SampledOutcome {
    /// Mean of per-workload maximum slowdown (lower is better).
    pub unfairness: Estimate,
    /// Mean harmonic speedup (higher is better).
    pub harmonic_speedup: Estimate,
}

/// Folds per-workload sampled results into the averaged outcome, the way
/// [`crate::collect::mech_outcome`] folds [`asm_core::RunResult`]s.
#[must_use]
pub fn sampled_outcome(results: &[SampledResult]) -> SampledOutcome {
    let nan = Estimate::exact(f64::NAN);
    let maxes: Vec<Estimate> = results
        .iter()
        .filter_map(|r| Estimate::max_of(&r.slowdowns))
        .collect();
    let hspeeds: Vec<Estimate> = results
        .iter()
        .filter_map(|r| Estimate::harmonic_speedup_of(&r.slowdowns))
        .collect();
    SampledOutcome {
        unfairness: Estimate::mean_of(&maxes).unwrap_or(nan),
        harmonic_speedup: Estimate::mean_of(&hspeeds).unwrap_or(nan),
    }
}

/// The key a run's sampled manifest is stored under: everything the
/// estimates are a pure function of — the *full* configuration, the mix,
/// the horizon, and the sampling spec.
fn manifest_key(run: &PlannedRun, spec: SampleSpec) -> u64 {
    use std::hash::Hasher as _;
    let mut h = DetHasher::default();
    h.write_u64(config_hash(&run.config));
    h.write(checkpoint::mix_signature(&run.apps).as_bytes());
    h.write_u64(run.cycles);
    h.write_u64(spec.intervals as u64);
    h.write_u64(spec.quanta);
    h.finish()
}

fn manifest_path(dir: &std::path::Path, key: u64) -> std::path::PathBuf {
    dir.join("sampled").join(format!("{key:016x}.bin"))
}

fn save_manifest(result: &SampledResult, key: u64) -> Vec<u8> {
    let mut w = StateWriter::new(MANIFEST_FORMAT, MANIFEST_VERSION);
    w.u64(key);
    w.usize(result.app_names.len());
    for (name, est) in result.app_names.iter().zip(&result.slowdowns) {
        w.str(name);
        w.f64(est.value);
        w.f64(est.ci);
    }
    w.finish()
}

fn load_manifest(bytes: &[u8], key: u64) -> Result<SampledResult, PersistError> {
    let mut r = StateReader::new(bytes, MANIFEST_FORMAT, MANIFEST_VERSION)?;
    let found = r.u64()?;
    if found != key {
        return Err(PersistError::Corrupt(format!(
            "manifest key {found:016x}, expected {key:016x}"
        )));
    }
    let n = r.checked_len(1)?;
    let mut app_names = Vec::with_capacity(n);
    let mut slowdowns = Vec::with_capacity(n);
    for _ in 0..n {
        app_names.push(r.str()?.to_owned());
        let value = r.f64()?;
        let ci = r.f64()?;
        slowdowns.push(Estimate { value, ci });
    }
    r.finish()?;
    Ok(SampledResult {
        app_names,
        slowdowns,
    })
}

/// A targeted-QoS member forks from the starved fingerprint when its
/// bound sits at least this far (relatively) below the neutral proxy's
/// slowdown of the target — i.e. when holding the bound requires
/// starving the other applications for most of the run. Bounds inside
/// the margin intervene only sporadically and stay on the neutral plan.
const QOS_BIND_MARGIN: f64 = 0.15;

/// The `(target slot, effective bound)` a targeted-QoS cache policy
/// imposes: NaiveQos grants the target everything unconditionally
/// (bound 0); other policies impose none.
fn qos_pressure(config: &SystemConfig) -> Option<(usize, f64)> {
    match config.cache_policy {
        CachePolicy::NaiveQos(target) => Some((target.index(), 0.0)),
        CachePolicy::AsmQos(q) => Some((q.target.index(), q.bound)),
        _ => None,
    }
}

/// The policy-equilibrium class a member's trajectory converges to. Each
/// class walks a qualitatively different trajectory (DESIGN.md §12), so
/// each gets its own fingerprint; forks are only accurate within class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum TrajectoryClass {
    /// Free-for-all shared cache — the neutral prefix's own trajectory.
    Neutral,
    /// A partitioning policy at its fairness equilibrium (UCP, MCFQ,
    /// ASM-Cache, or a QoS bound loose enough not to bind): victims
    /// eventually win back their hot set, which a neutral fork cannot
    /// reproduce.
    Partitioned,
    /// A targeted-QoS bound inside the margin band — tight enough to
    /// intervene, too loose to starve outright. The trajectory sits
    /// *between* the partitioned and starved equilibria, so the member
    /// is estimated from both anchor plans and blended ([`blend`]).
    Borderline,
    /// A binding targeted-QoS bound: non-target applications are starved
    /// from the first boundary on.
    Starved,
}

/// The class assignment rule of DESIGN.md §12, against the neutral
/// proxy's slowdowns: a QoS bound at least the margin below the target's
/// unconstrained slowdown is starved, one merely below it is borderline.
fn trajectory_class(config: &SystemConfig, neutral_slowdowns: &[f64]) -> TrajectoryClass {
    if let Some((slot, bound)) = qos_pressure(config) {
        if let Some(&unconstrained) = neutral_slowdowns.get(slot) {
            if unconstrained.is_finite() {
                if bound * (1.0 + QOS_BIND_MARGIN) < unconstrained {
                    return TrajectoryClass::Starved;
                }
                if bound < unconstrained {
                    return TrajectoryClass::Borderline;
                }
            }
        }
    }
    if matches!(config.cache_policy, CachePolicy::None) {
        TrajectoryClass::Neutral
    } else {
        TrajectoryClass::Partitioned
    }
}

/// Geometric midpoint of the two anchor-class estimates for a borderline
/// member. Its true trajectory lies between the starved and partitioned
/// equilibria, and the spread between the anchor estimates dominates the
/// within-plan sampling noise, so half that spread is folded into the
/// reported CI.
fn blend(a: Estimate, b: Estimate) -> Estimate {
    if !a.value.is_finite() {
        return b;
    }
    if !b.value.is_finite() {
        return a;
    }
    Estimate {
        value: (a.value * b.value).sqrt(),
        ci: 0.5 * (a.ci + b.ci) + 0.5 * (a.value - b.value).abs(),
    }
}

/// A sweep group's shared fingerprint artefacts.
struct GroupPlan {
    /// The neutral-prefix fingerprint every group has.
    plan: IntervalPlan,
    /// `plan`'s own whole-run slowdowns — the class rule's reference.
    neutral_slowdowns: Vec<f64>,
    /// Per-class fingerprints for the non-neutral classes that have at
    /// least two unfinished members (a class of one just runs in full).
    class_plans: BTreeMap<TrajectoryClass, IntervalPlan>,
    alone: Vec<Arc<ProgressLog>>,
}

/// Evaluates every planned run on the sampled tier and returns the
/// results in submission order (byte-identical for every `--jobs` value
/// and across `--resume`, pinned by tests).
#[must_use]
pub fn run_campaign(runs: &[PlannedRun], scale: &Scale) -> Vec<SampledResult> {
    let spec = scale.sample_spec();
    let cache = collect::campaign_cache();
    let cfg = crate::plan::checkpoint_cfg();

    // Group runs by (prefix configuration, mix, horizon): members share
    // bitwise-identical fingerprint passes and boundary snapshots.
    let mut group_of: Vec<(u64, String, u64)> = Vec::with_capacity(runs.len());
    let mut groups: BTreeMap<(u64, String, u64), Vec<usize>> = BTreeMap::new();
    for (i, run) in runs.iter().enumerate() {
        let prefix = checkpoint::prefix_config(&run.config);
        let key = (
            config_hash(&prefix),
            checkpoint::mix_signature(&run.apps),
            run.cycles,
        );
        group_of.push(key.clone());
        groups.entry(key).or_default().push(i);
    }

    // A group samples only when the fingerprint amortises (≥ 2 members)
    // and sampling is actually cheaper than running (K < N intervals).
    let samples: BTreeMap<&(u64, String, u64), bool> = groups
        .iter()
        .map(|(key, members)| {
            let rep = &runs[members[0]];
            let n = spec.interval_count(rep.config.quantum, rep.cycles);
            (key, members.len() >= 2 && n > 0 && spec.intervals < n)
        })
        .collect();

    // Resume: replay finished runs from their manifests before paying
    // for any fingerprint.
    let preloaded: Vec<Option<SampledResult>> = runs
        .iter()
        .map(|run| {
            let (dir, resume) = cfg?;
            if !resume {
                return None;
            }
            let key = manifest_key(run, spec);
            let bytes = std::fs::read(manifest_path(dir, key)).ok()?;
            match load_manifest(&bytes, key) {
                Ok(r) => Some(r),
                Err(e) => {
                    eprintln!("checkpoint: ignoring sampled manifest ({e})");
                    None
                }
            }
        })
        .collect();

    // Phase A: fingerprint each sampled group with unfinished members,
    // in parallel. The pass runs under the group's *neutral prefix*
    // configuration, so its features, clustering and snapshots are a
    // pure function of the group key — identical for every member.
    let want: Vec<&(u64, String, u64)> = groups
        .iter()
        .filter(|(key, members)| {
            samples[*key] && members.iter().any(|&i| preloaded[i].is_none())
        })
        .map(|(key, _)| key)
        .collect();
    let mut plans: BTreeMap<&(u64, String, u64), GroupPlan> =
        pool::run_ordered(scale.jobs, &want, |_, key| {
            let rep = &runs[groups[*key][0]];
            let prefix = checkpoint::prefix_config(&rep.config);
            let runner = Runner::with_cache(prefix.clone(), Arc::clone(&cache));
            let alone: Vec<Arc<ProgressLog>> = (0..rep.apps.len())
                .map(|slot| runner.alone_progress(&rep.apps, slot, rep.cycles))
                .collect();
            let plan = fingerprint(&rep.apps, &prefix, rep.cycles, spec, &alone);
            let neutral_slowdowns = plan.proxy_slowdowns();
            eprint!(".");
            (
                *key,
                GroupPlan {
                    plan,
                    neutral_slowdowns,
                    class_plans: BTreeMap::new(),
                    alone,
                },
            )
        })
        .into_iter()
        .collect();

    // Phase A2: the starved and partitioned anchor classes get their own
    // fingerprints, run under a deterministic class representative's
    // full configuration: the smallest effective bound for the starved
    // class (NaiveQos counts as 0), the first unfinished member in
    // submission order otherwise — never a function of `--jobs`.
    // Borderline members add demand for *both* anchor plans (they blend
    // the two) but never stand in as representatives; a plan is only
    // fingerprinted when a pure member anchors it and at least two
    // members in total draw on it.
    struct RepTally {
        sel: (bool, f64), // (not-pure?, bound): pure members always win
        idx: usize,
        pure: usize,
        demand: usize,
    }
    let want_class: Vec<(&(u64, String, u64), TrajectoryClass, usize)> = plans
        .iter()
        .flat_map(|(key, group)| {
            let mut reps: BTreeMap<TrajectoryClass, RepTally> = BTreeMap::new();
            let mut tally = |class: TrajectoryClass, sel: (bool, f64), idx: usize, pure: bool| {
                let entry = reps.entry(class).or_insert(RepTally {
                    sel: (true, f64::INFINITY),
                    idx,
                    pure: 0,
                    demand: 0,
                });
                if sel < entry.sel {
                    (entry.sel, entry.idx) = (sel, idx);
                }
                if pure {
                    entry.pure += 1;
                }
                entry.demand += 1;
            };
            for &i in &groups[*key] {
                if preloaded[i].is_some() {
                    continue;
                }
                let config = &runs[i].config;
                let bound = qos_pressure(config).map_or(f64::INFINITY, |(_, b)| b);
                match trajectory_class(config, &group.neutral_slowdowns) {
                    TrajectoryClass::Neutral => {}
                    TrajectoryClass::Starved => {
                        tally(TrajectoryClass::Starved, (false, bound), i, true);
                    }
                    TrajectoryClass::Partitioned => {
                        tally(TrajectoryClass::Partitioned, (false, 0.0), i, true);
                    }
                    TrajectoryClass::Borderline => {
                        tally(TrajectoryClass::Starved, (true, bound), i, false);
                        tally(TrajectoryClass::Partitioned, (true, 0.0), i, false);
                    }
                }
            }
            reps.into_iter()
                .filter(|(_, t)| t.pure >= 1 && t.demand >= 2)
                .map(|(class, t)| (*key, class, t.idx))
                .collect::<Vec<_>>()
        })
        .collect();
    let class_plans: Vec<(&(u64, String, u64), TrajectoryClass, IntervalPlan)> =
        pool::run_ordered(scale.jobs, &want_class, |_, (key, class, rep_idx)| {
            let rep = &runs[*rep_idx];
            let group = &plans[*key];
            let plan = fingerprint(&rep.apps, &rep.config, rep.cycles, spec, &group.alone);
            eprint!(".");
            (*key, *class, plan)
        });
    for (key, class, plan) in class_plans {
        plans
            .get_mut(key)
            .expect("phase A made this group")
            .class_plans
            .insert(class, plan);
    }

    for group in plans.values() {
        let fingerprints = std::iter::once(&group.plan).chain(group.class_plans.values());
        for name in fingerprints.flat_map(|p| &p.wrapped) {
            eprintln!(
                "warning: sampled: telemetry series '{name}' wrapped its ring during \
                 fingerprinting; early-interval features may be degraded"
            );
        }
    }
    let plans = plans;

    // Phase B: every run, in parallel. Sampled members measure the K
    // medoid intervals under their own policies; everything else (and
    // any member whose snapshot fails to restore) runs in full.
    let results = pool::run_ordered(scale.jobs, runs, |i, run| {
        if let Some(r) = &preloaded[i] {
            eprint!(".");
            return r.clone();
        }
        let app_names: Vec<String> = run.apps.iter().map(|a| a.name().to_owned()).collect();
        let result = match plans.get(&group_of[i]) {
            Some(group) if samples[&group_of[i]] => {
                // Estimate the member from one plan: exact when the
                // member *is* the fingerprint configuration (the pass
                // already simulated its whole run — the telescoped
                // per-interval alone sum), otherwise measure the K
                // medoid intervals under the member's own policies.
                let estimate_with = |plan: &IntervalPlan| -> Result<Vec<Estimate>, PersistError> {
                    if config_hash(&run.config) == plan.prefix_hash {
                        return Ok(plan
                            .proxy_slowdowns()
                            .iter()
                            .map(|&s| Estimate::exact(s))
                            .collect());
                    }
                    let member_alone: Vec<Vec<f64>> = plan
                        .clustering
                        .medoids
                        .iter()
                        .map(|&m| measure_interval(&run.apps, &run.config, plan, m, &group.alone))
                        .collect::<Result<_, _>>()?;
                    Ok(estimate_slowdowns(plan, &member_alone))
                };
                let class = trajectory_class(&run.config, &group.neutral_slowdowns);
                let estimated: Option<Result<Vec<Estimate>, PersistError>> = match class {
                    TrajectoryClass::Neutral => Some(estimate_with(&group.plan)),
                    TrajectoryClass::Borderline => {
                        let starved = group.class_plans.get(&TrajectoryClass::Starved);
                        let parted = group.class_plans.get(&TrajectoryClass::Partitioned);
                        match (starved, parted) {
                            (Some(s), Some(p)) => Some(estimate_with(s).and_then(|a| {
                                let b = estimate_with(p)?;
                                Ok(a.into_iter().zip(b).map(|(x, y)| blend(x, y)).collect())
                            })),
                            (Some(only), None) | (None, Some(only)) => Some(estimate_with(only)),
                            (None, None) => None,
                        }
                    }
                    class => group.class_plans.get(&class).map(&estimate_with),
                };
                match estimated {
                    // A class with no plan (no fingerprint amortises):
                    // a neutral fork would cross trajectory classes, so
                    // run it in full instead.
                    None => full_run(run, &cache),
                    Some(Ok(slowdowns)) => SampledResult {
                        app_names,
                        slowdowns,
                    },
                    Some(Err(e)) => {
                        eprintln!("warning: sampled: interval restore failed ({e}); running full");
                        full_run(run, &cache)
                    }
                }
            }
            _ => full_run(run, &cache),
        };
        if let Some((dir, _)) = cfg {
            let key = manifest_key(run, spec);
            let path = manifest_path(dir, key);
            if let Err(e) = persist::write_atomic(&path, &save_manifest(&result, key)) {
                eprintln!("warning: checkpoint: could not save {}: {e}", path.display());
            }
        }
        eprint!(".");
        result
    });
    eprintln!();
    results
}

/// Simulates one run in full and wraps its slowdowns as exact estimates.
fn full_run(run: &PlannedRun, cache: &Arc<asm_core::AloneCache>) -> SampledResult {
    let runner = Runner::with_cache(run.config.clone(), Arc::clone(cache));
    let r = runner.run_with(&run.apps, run.cycles, RunOptions::default());
    SampledResult {
        app_names: r.app_names,
        slowdowns: r
            .whole_run_slowdowns
            .iter()
            .map(|&s| Estimate::exact(s))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asm_core::{CachePolicy, EstimatorSet, SystemConfig};
    use asm_workloads::suite;

    fn base_config() -> SystemConfig {
        let mut c = SystemConfig::default();
        c.quantum = 50_000;
        c.epoch = 1_000;
        c.estimators = EstimatorSet::asm_only();
        c
    }

    fn mix() -> Vec<asm_cpu::AppProfile> {
        vec![
            suite::by_name("mcf_like").unwrap(),
            suite::by_name("h264ref_like").unwrap(),
        ]
    }

    fn sweep(cycles: u64) -> Vec<PlannedRun> {
        [CachePolicy::None, CachePolicy::Ucp, CachePolicy::AsmCache]
            .into_iter()
            .map(|policy| {
                let mut c = base_config();
                c.cache_policy = policy;
                PlannedRun::new(c, mix(), cycles)
            })
            .collect()
    }

    fn scale_with(jobs: usize, intervals: usize) -> Scale {
        let mut s = Scale::tiny();
        s.jobs = jobs;
        s.quantum = 50_000;
        s.sample_intervals = intervals;
        s.sample_quanta = 1;
        s
    }

    fn assert_bitwise_equal(a: &[SampledResult], b: &[SampledResult]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.app_names, y.app_names);
            let xb: Vec<(u64, u64)> = x
                .slowdowns
                .iter()
                .map(|e| (e.value.to_bits(), e.ci.to_bits()))
                .collect();
            let yb: Vec<(u64, u64)> = y
                .slowdowns
                .iter()
                .map(|e| (e.value.to_bits(), e.ci.to_bits()))
                .collect();
            assert_eq!(xb, yb, "estimates differ");
        }
    }

    #[test]
    fn sampled_campaign_is_bitwise_identical_across_jobs() {
        let runs = sweep(400_000);
        let reference = run_campaign(&runs, &scale_with(1, 2));
        for jobs in [2, 4] {
            assert_bitwise_equal(&run_campaign(&runs, &scale_with(jobs, 2)), &reference);
        }
        // Sampled estimates carry a nonzero CI somewhere: the sweep has
        // ≥2 members per group and 8 intervals for K=2.
        assert!(reference
            .iter()
            .any(|r| r.slowdowns.iter().any(|e| e.ci > 0.0)));
    }

    #[test]
    fn k_at_least_n_degrades_to_exact_full_runs() {
        let runs = sweep(150_000); // 3 intervals
        let results = run_campaign(&runs, &scale_with(1, 3));
        let reference: Vec<SampledResult> = runs
            .iter()
            .map(|r| full_run(r, &Arc::new(asm_core::AloneCache::new())))
            .collect();
        assert_bitwise_equal(&results, &reference);
        for r in &results {
            assert!(
                r.slowdowns.iter().all(|e| e.ci.to_bits() == 0),
                "exact runs: ci 0"
            );
        }
    }

    #[test]
    fn singleton_groups_run_in_full() {
        let runs = vec![PlannedRun::new(base_config(), mix(), 400_000)];
        let results = run_campaign(&runs, &scale_with(1, 2));
        assert_eq!(results.len(), 1);
        assert!(results[0].slowdowns.iter().all(|e| e.ci.to_bits() == 0));
    }

    #[test]
    fn indivisible_horizons_run_in_full() {
        let runs = sweep(430_000); // not a multiple of 50k
        let results = run_campaign(&runs, &scale_with(2, 2));
        for r in &results {
            assert!(r.slowdowns.iter().all(|e| e.ci.to_bits() == 0));
        }
    }

    #[test]
    fn manifest_round_trips_bitwise() {
        let r = SampledResult {
            app_names: vec!["a".into(), "b".into()],
            slowdowns: vec![
                Estimate {
                    value: 2.5,
                    ci: 0.125,
                },
                Estimate {
                    value: f64::NAN,
                    ci: 0.0,
                },
            ],
        };
        let bytes = save_manifest(&r, 77);
        let back = load_manifest(&bytes, 77).unwrap();
        assert_eq!(back.app_names, r.app_names);
        for (x, y) in back.slowdowns.iter().zip(&r.slowdowns) {
            assert_eq!(x.value.to_bits(), y.value.to_bits());
            assert_eq!(x.ci.to_bits(), y.ci.to_bits());
        }
        assert!(load_manifest(&bytes, 78).is_err(), "key mismatch rejected");
    }
}
