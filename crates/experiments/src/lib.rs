//! Experiment harness regenerating every table and figure of the ASM
//! paper's evaluation (see `DESIGN.md` §4 for the experiment index and
//! `EXPERIMENTS.md` for recorded paper-vs-measured results).
//!
//! Run via the `asm-experiments` binary:
//!
//! ```text
//! asm-experiments <experiment> [--full|--tiny] [--workloads N]
//!                 [--cycles N] [--seed N] [--jobs N]
//! ```
//!
//! where `<experiment>` is one of `fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8
//! table3 mise db fig9 fig10 fig11 combined all`.
//!
//! Sweeps fan out across `--jobs` worker threads (default: one per core)
//! via [`pool::run_ordered`]; results merge in submission order, so every
//! table and CSV is byte-identical for any `--jobs` value. Policy sweeps
//! additionally route through [`plan::run_campaign`], which warms each
//! shared configuration prefix once and forks it into every member
//! (`--checkpoint-dir` / `--resume` persist the work across invocations;
//! DESIGN.md §11).

pub mod analytic;
pub mod collect;
pub mod exps;
pub mod output;
pub mod plan;
pub mod pool;
pub mod sampled;
pub mod scale;
pub mod sink;

pub use scale::{Scale, Tier};
