//! Harness plumbing for the analytical tier (`--tier analytic`).
//!
//! Mirrors [`crate::collect`]'s alone-run cache: one process-wide
//! [`ProfileStore`] holds every reuse profile extracted this run, an
//! optional `--profile-cache` file persists it across invocations, and a
//! corrupt or stale file is ignored with a warning (results may never
//! depend on cache state).
//!
//! The store is populated *sequentially* before any fan-out: the solve
//! loop then shares an immutable snapshot across worker threads, so the
//! analytic tier needs no locks on its hot path and — because
//! [`crate::pool::run_ordered`] returns results in submission order —
//! its output is byte-identical for every `--jobs` value.

use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};

use asm_analytic::{AnalyticConfig, MixSolution, MixSolver, ProfileParams, ProfileStore};
use asm_core::SystemConfig;
use asm_cpu::AppProfile;

use crate::pool;

/// Where to persist reuse profiles (`--profile-cache <path>`), if anywhere.
static PROFILE_CACHE_PATH: OnceLock<PathBuf> = OnceLock::new();

/// Every reuse profile extracted (or loaded) so far this process.
static STORE: OnceLock<Mutex<ProfileStore>> = OnceLock::new();

fn store() -> &'static Mutex<ProfileStore> {
    STORE.get_or_init(|| Mutex::new(ProfileStore::new()))
}

/// Loads (or initializes) the persistent reuse-profile cache at `path`.
/// A missing file starts empty; a corrupt file is ignored with a warning
/// and overwritten on [`save_profile_cache`]. Stale *entries* (parameter
/// or algorithm fingerprint mismatch) are re-extracted individually by
/// `ProfileStore::ensure`. Chatter goes to stderr: stdout must stay
/// byte-identical with and without a cache.
pub fn set_profile_cache_path(path: PathBuf) {
    let (loaded, warning) = ProfileStore::load_or_warn(&path);
    if let Some(w) = warning {
        eprintln!("warning: profile-cache: {w}");
    } else if !loaded.is_empty() {
        eprintln!(
            "profile-cache: loaded {} profile(s) from {}",
            loaded.len(),
            path.display()
        );
    }
    *store().lock().expect("profile store poisoned") = loaded;
    let _ = PROFILE_CACHE_PATH.set(path);
}

/// Writes the reuse-profile cache back to its file, if one was
/// configured. Called once at the end of the CLI run.
pub fn save_profile_cache() {
    if let Some(path) = PROFILE_CACHE_PATH.get() {
        let s = store().lock().expect("profile store poisoned");
        match s.save_to(path) {
            Ok(()) => eprintln!(
                "profile-cache: saved {} profile(s) to {}",
                s.len(),
                path.display()
            ),
            Err(e) => eprintln!(
                "warning: profile-cache: could not save {}: {e}",
                path.display()
            ),
        }
    }
}

/// Solves every mix analytically, fanning solves across `jobs` worker
/// threads, and returns the solutions **in workload order** — the
/// analytic twin of [`crate::collect::run_parallel`].
///
/// Profiles are extracted (or fetched from the cache) sequentially
/// up front; the fan-out then reads an immutable snapshot, so the result
/// is bitwise identical for every `jobs` value (pinned by tests).
#[must_use]
pub fn solve_mixes(
    config: &SystemConfig,
    workloads: &[Vec<AppProfile>],
    jobs: usize,
) -> Vec<MixSolution> {
    let params = ProfileParams::from_system(config);
    let snapshot = {
        let mut s = store().lock().expect("profile store poisoned");
        for w in workloads {
            for app in w {
                s.ensure(app, &params);
            }
        }
        s.clone()
    };
    let cfg = AnalyticConfig::from_system(config);
    pool::run_ordered(jobs, workloads, |_, w| {
        let profiles: Vec<_> = w
            .iter()
            .map(|a| snapshot.get(a.name()).expect("profile extracted above"))
            .collect();
        MixSolver::new(cfg).run(&profiles)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use asm_workloads::mix;

    #[test]
    fn solve_mixes_is_jobs_independent() {
        let config = SystemConfig::default();
        let workloads = mix::random_mixes(6, 3, 17);
        let a = solve_mixes(&config, &workloads, 1);
        let b = solve_mixes(&config, &workloads, 4);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            let xb: Vec<u64> = x.slowdowns.iter().map(|v| v.to_bits()).collect();
            let yb: Vec<u64> = y.slowdowns.iter().map(|v| v.to_bits()).collect();
            assert_eq!(xb, yb, "slowdowns differ across --jobs");
        }
    }
}
