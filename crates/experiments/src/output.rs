//! Experiment output: pretty-printing plus optional CSV export.
//!
//! When `--csv <dir>` is passed to `asm-experiments`, every emitted table
//! is additionally written to `<dir>/<name>.csv`, so results can be
//! plotted without scraping stdout.

use std::path::PathBuf;
use std::sync::OnceLock;

use asm_metrics::Table;

static CSV_DIR: OnceLock<PathBuf> = OnceLock::new();

/// Sets the CSV output directory (once per process; later calls are
/// ignored). The directory is created on first write.
pub fn set_csv_dir(dir: PathBuf) {
    let _ = CSV_DIR.set(dir);
}

/// Prints `table` to stdout and, when CSV export is enabled, writes it to
/// `<csv dir>/<name>.csv`. I/O failures are reported to stderr but never
/// abort the experiment.
pub fn emit(name: &str, table: &Table) {
    println!("{table}");
    let Some(dir) = CSV_DIR.get() else {
        return;
    };
    let write = || -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        std::fs::write(&path, table.to_csv())?;
        Ok(path)
    };
    match write() {
        Ok(path) => eprintln!("[csv] wrote {}", path.display()),
        Err(e) => eprintln!("[csv] failed to write {name}.csv: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_without_csv_dir_only_prints() {
        // Must not panic or create files.
        let mut t = Table::new(vec!["a".into()]);
        t.row(vec!["1".into()]);
        emit("smoke_test_no_csv", &t);
    }
}
