//! The sweep planner: prefix-shared warmups and resumable campaigns.
//!
//! A *campaign* is a flat list of [`PlannedRun`]s — full configurations,
//! workload mixes and cycle counts — evaluated by [`run_campaign`] with
//! results returned **in submission order**, so any sequential fold over
//! them is byte-identical for every `--jobs` value, exactly like
//! [`crate::collect::run_parallel`]. On top of that contract the planner
//! layers two optimisations, both invisible in the output:
//!
//! * **Fork-shared warmups.** Runs whose configurations agree on the
//!   prefix-relevant subset ([`asm_core::checkpoint::prefix_config`]) and
//!   share a workload mix have bitwise-identical first quanta, because
//!   the quantum-boundary policies they differ in never act before the
//!   first boundary. The planner groups runs by [`Runner::warmup_key`],
//!   simulates each multi-member group's first quantum once (phase A, in
//!   parallel), and forks the snapshot into every member's continuation
//!   (phase B). A fork that fails — stale artefact, damage — falls back
//!   to a cold run with a stderr warning; results may never depend on it.
//! * **Resumable campaigns.** With `--checkpoint-dir` the warmup
//!   snapshots and each finished run's result manifest are persisted
//!   (atomically — kill-safe at any instant). With `--resume` a later
//!   invocation replays finished runs from their manifests instead of
//!   simulating, byte-identically: manifests store every float as its
//!   bit pattern.
//!
//! Telemetry-instrumented runs fork warmups like any others (counter and
//! series state rides in the snapshot) but are never manifest-replayed —
//! a [`asm_core::RunTelemetry`] is an introspection artefact, not a
//! result, and serializing its tracer would dwarf the runs it describes.
//! Traced runs (`--trace`) bypass checkpointing entirely.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

use asm_core::checkpoint;
use asm_core::{config_hash, RunResult, Runner, SystemConfig};
use asm_cpu::AppProfile;
use asm_simcore::hash::DetHasher;
use asm_simcore::persist;
use asm_simcore::Cycle;

use crate::{collect, pool};

/// `--checkpoint-dir` / `--resume` settings, set once by the CLI before
/// any experiment runs (process-global like the sink and the caches).
static CHECKPOINT: OnceLock<CheckpointCfg> = OnceLock::new();

#[derive(Debug)]
struct CheckpointCfg {
    dir: PathBuf,
    resume: bool,
}

/// Persists campaign warmup snapshots (`<dir>/warmups/<key>.bin`) and
/// finished-run manifests (`<dir>/runs/<key>.bin`) under `dir`. With
/// `resume`, manifests found there short-circuit their simulations.
/// Later calls are ignored (first flag wins, matching the sink).
pub fn set_checkpoint_dir(dir: PathBuf, resume: bool) {
    let _ = CHECKPOINT.set(CheckpointCfg { dir, resume });
}

/// The configured checkpoint directory and whether `--resume` is on.
/// The sampled tier stores its estimate manifests under
/// `<dir>/sampled/<key>.bin` alongside this module's artefacts.
pub(crate) fn checkpoint_cfg() -> Option<(&'static std::path::Path, bool)> {
    CHECKPOINT.get().map(|c| (c.dir.as_path(), c.resume))
}

/// One run of a sweep campaign.
#[derive(Debug, Clone)]
pub struct PlannedRun {
    /// Full system configuration, boundary policies included.
    pub config: SystemConfig,
    /// Workload mix (slot order matters).
    pub apps: Vec<AppProfile>,
    /// Cycles to simulate.
    pub cycles: Cycle,
}

impl PlannedRun {
    /// Convenience constructor.
    #[must_use]
    pub fn new(config: SystemConfig, apps: Vec<AppProfile>, cycles: Cycle) -> Self {
        PlannedRun {
            config,
            apps,
            cycles,
        }
    }
}

/// The key a finished run's manifest is stored under: the *full*
/// configuration hash (boundary policies included — unlike the warmup
/// key), the mix, and the cycle count. Everything a [`RunResult`] is a
/// pure function of.
fn manifest_key(run: &PlannedRun) -> u64 {
    use std::hash::Hasher as _;
    let mut h = DetHasher::default();
    h.write_u64(config_hash(&run.config));
    h.write(checkpoint::mix_signature(&run.apps).as_bytes());
    h.write_u64(run.cycles);
    h.finish()
}

fn warmup_path(cfg: &CheckpointCfg, key: u64) -> PathBuf {
    cfg.dir.join("warmups").join(format!("{key:016x}.bin"))
}

fn manifest_path(cfg: &CheckpointCfg, key: u64) -> PathBuf {
    cfg.dir.join("runs").join(format!("{key:016x}.bin"))
}

/// Evaluates every planned run and returns the results in submission
/// order, warming each shared prefix exactly once (module docs). The
/// output is byte-identical to `runs.iter().map(cold run)` for every
/// `jobs` value, with or without a checkpoint directory, cold or
/// resumed — pinned by tests and the `ci.sh` resume leg.
///
/// Telemetry snapshots are recorded into [`crate::sink`] here,
/// sequentially and in submission order, so sink artefacts stay
/// jobs-independent — callers must not record them again.
#[must_use]
pub fn run_campaign(runs: &[PlannedRun], jobs: usize) -> Vec<RunResult> {
    let opts = crate::sink::options();
    let cache = collect::campaign_cache();
    let cfg = CHECKPOINT.get();

    // Group snapshot-eligible runs by warmup key. Runs shorter than one
    // quantum have no shareable prefix; traced runs are ineligible (the
    // tracer is deliberately outside snapshots).
    let mut key_of: Vec<Option<u64>> = vec![None; runs.len()];
    let mut groups: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    if opts.trace_sample.is_none() {
        for (i, run) in runs.iter().enumerate() {
            if run.cycles >= run.config.quantum {
                let runner = Runner::with_cache(run.config.clone(), Arc::clone(&cache));
                let key = runner.warmup_key(&run.apps, opts);
                key_of[i] = Some(key);
                groups.entry(key).or_default().push(i);
            }
        }
    }

    // Phase A: warm each group worth warming — more than one member, or
    // a singleton whose snapshot already sits on disk from an earlier
    // (possibly killed) invocation. Warming a fresh singleton would cost
    // exactly what it saves.
    let warm_reps: Vec<(u64, usize)> = groups
        .iter()
        .filter(|(key, members)| {
            members.len() >= 2 || cfg.is_some_and(|c| warmup_path(c, **key).exists())
        })
        .map(|(key, members)| (*key, members[0]))
        .collect();
    let snapshots: BTreeMap<u64, Vec<u8>> = pool::run_ordered(jobs, &warm_reps, |_, &(key, rep)| {
        let run = &runs[rep];
        if let Some(path) = cfg.map(|c| warmup_path(c, key)) {
            if let Ok(bytes) = std::fs::read(&path) {
                match checkpoint::peek_key(&bytes) {
                    Ok(found) if found == key => return (key, bytes),
                    Ok(_) | Err(_) => {
                        eprintln!("checkpoint: ignoring stale warmup {}", path.display());
                    }
                }
            }
        }
        let runner = Runner::with_cache(run.config.clone(), Arc::clone(&cache));
        let bytes = runner.warm_snapshot(&run.apps, opts);
        if let Some(path) = cfg.map(|c| warmup_path(c, key)) {
            if let Err(e) = persist::write_atomic(&path, &bytes) {
                eprintln!("warning: checkpoint: could not save {}: {e}", path.display());
            }
        }
        (key, bytes)
    })
    .into_iter()
    .collect();

    // Phase B: every run, in parallel, forking its group's snapshot when
    // one exists. Manifests only make sense for uninstrumented runs
    // (attribution artefacts, like telemetry, are not stored in them).
    let manifests = opts.trace_sample.is_none() && !opts.telemetry && !opts.attrib;
    let results = pool::run_ordered(jobs, runs, |i, run| {
        let mkey = manifest_key(run);
        if manifests {
            if let Some(path) = cfg.filter(|c| c.resume).map(|c| manifest_path(c, mkey)) {
                if let Ok(bytes) = std::fs::read(&path) {
                    match checkpoint::load_manifest(&bytes, mkey) {
                        Ok(r) => {
                            eprint!(".");
                            return r;
                        }
                        Err(e) => {
                            eprintln!("checkpoint: ignoring manifest {}: {e}", path.display());
                        }
                    }
                }
            }
        }
        let runner = Runner::with_cache(run.config.clone(), Arc::clone(&cache));
        let result = match key_of[i].and_then(|k| snapshots.get(&k)) {
            Some(snap) => runner
                .run_with_snapshot(&run.apps, run.cycles, opts, snap)
                .unwrap_or_else(|e| {
                    eprintln!("warning: checkpoint: fork failed ({e}); running cold");
                    runner.run_with(&run.apps, run.cycles, opts)
                }),
            None => runner.run_with(&run.apps, run.cycles, opts),
        };
        if manifests {
            if let Some(path) = cfg.map(|c| manifest_path(c, mkey)) {
                match checkpoint::save_manifest(&result, mkey) {
                    Ok(bytes) => {
                        if let Err(e) = persist::write_atomic(&path, &bytes) {
                            eprintln!(
                                "warning: checkpoint: could not save {}: {e}",
                                path.display()
                            );
                        }
                    }
                    Err(e) => eprintln!("warning: checkpoint: {e}"),
                }
            }
        }
        eprint!(".");
        result
    });
    eprintln!();
    for r in &results {
        crate::sink::record(r);
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use asm_core::{CachePolicy, RunOptions};
    use asm_workloads::suite;

    fn base_config() -> SystemConfig {
        let mut c = SystemConfig::default();
        c.quantum = 50_000;
        c.epoch = 1_000;
        c.estimators = asm_core::EstimatorSet::asm_only();
        c
    }

    fn mixes() -> Vec<Vec<AppProfile>> {
        vec![
            vec![
                suite::by_name("mcf_like").unwrap(),
                suite::by_name("h264ref_like").unwrap(),
            ],
            vec![
                suite::by_name("lbm_like").unwrap(),
                suite::by_name("povray_like").unwrap(),
            ],
        ]
    }

    fn policy_sweep(cycles: Cycle) -> Vec<PlannedRun> {
        let policies = [CachePolicy::None, CachePolicy::Ucp, CachePolicy::AsmCache];
        let mut runs = Vec::new();
        for policy in policies {
            for apps in mixes() {
                let mut c = base_config();
                c.cache_policy = policy;
                runs.push(PlannedRun::new(c, apps, cycles));
            }
        }
        runs
    }

    fn assert_bitwise_equal(a: &[RunResult], b: &[RunResult]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.app_names, y.app_names);
            let xb: Vec<u64> = x.whole_run_slowdowns.iter().map(|v| v.to_bits()).collect();
            let yb: Vec<u64> = y.whole_run_slowdowns.iter().map(|v| v.to_bits()).collect();
            assert_eq!(xb, yb, "whole-run slowdowns differ");
            assert_eq!(x.quanta.len(), y.quanta.len());
            for (qx, qy) in x.quanta.iter().zip(&y.quanta) {
                let ax: Vec<u64> = qx.actual.iter().map(|v| v.to_bits()).collect();
                let ay: Vec<u64> = qy.actual.iter().map(|v| v.to_bits()).collect();
                assert_eq!(ax, ay, "per-quantum ground truth differs");
                assert_eq!(qx.estimates.len(), qy.estimates.len());
                for ((nx, ex), (ny, ey)) in qx.estimates.iter().zip(&qy.estimates) {
                    assert_eq!(nx, ny);
                    let bx: Vec<u64> = ex.iter().map(|v| v.to_bits()).collect();
                    let by: Vec<u64> = ey.iter().map(|v| v.to_bits()).collect();
                    assert_eq!(bx, by, "estimates differ for {nx}");
                }
            }
        }
    }

    /// Cold per-run results, computed the way the sweeps used to: one
    /// shared cache, `Runner::run_with` each.
    fn cold(runs: &[PlannedRun]) -> Vec<RunResult> {
        let cache = Arc::new(asm_core::AloneCache::new());
        runs.iter()
            .map(|r| {
                Runner::with_cache(r.config.clone(), Arc::clone(&cache)).run_with(
                    &r.apps,
                    r.cycles,
                    RunOptions::default(),
                )
            })
            .collect()
    }

    #[test]
    fn campaign_matches_cold_runs_bitwise_for_any_jobs() {
        let runs = policy_sweep(125_000);
        let reference = cold(&runs);
        for jobs in [1, 4] {
            let got = run_campaign(&runs, jobs);
            assert_bitwise_equal(&got, &reference);
        }
    }

    #[test]
    fn short_runs_skip_warmup_sharing_but_still_match() {
        // One quantum of 50k cycles never completes in 30k: no prefix to
        // share, every run goes cold through the same code path.
        let runs = policy_sweep(30_000);
        assert_bitwise_equal(&run_campaign(&runs, 2), &cold(&runs));
    }

    #[test]
    fn manifest_key_separates_cycles_configs_and_mixes() {
        let runs = policy_sweep(125_000);
        let mut keys: Vec<u64> = runs.iter().map(manifest_key).collect();
        let mut longer = policy_sweep(150_000);
        keys.extend(longer.iter().map(manifest_key));
        longer[0].apps.reverse();
        keys.push(manifest_key(&longer[0]));
        let unique: std::collections::BTreeSet<u64> = keys.iter().copied().collect();
        assert_eq!(unique.len(), keys.len(), "manifest key collision");
    }
}
