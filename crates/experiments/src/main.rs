//! CLI entry point: regenerates the paper's tables and figures.

use asm_experiments::{exps, Scale, Tier};

const USAGE: &str = "\
asm-experiments — regenerate the ASM paper's evaluation

USAGE:
    asm-experiments <experiment> [options]

EXPERIMENTS:
    fig1      CAR vs performance correlation (with a hog)
    fig2      per-benchmark error, unsampled ATS
    fig3      per-benchmark error, sampled ATS (64 sets)
    fig4      error distribution
    fig5      error with a stride prefetcher
    fig6      alone miss-latency distributions (6a and 6b)
    db        database (TPC-C/YCSB-like) workload accuracy
    mise      MISE vs ASM (section 6.4)
    fig7      error vs core count
    fig8      error vs cache capacity
    table3    error vs quantum/epoch lengths
    fig9      ASM-Cache vs NoPart/UCP/MCFQ
    fig10     ASM-Mem vs FRFCFS/PARBS/TCM
    combined  ASM-Cache-Mem vs PARBS+UCP
    fig11     ASM-QoS slowdown guarantees
    xval      cross-validate the analytic tier against cycle-accurate
    accuracy  cross-tier accuracy dashboard: ledger ground truth vs the
              ASM estimator and the analytic/sampled tiers
    all       everything above, in order (excluding xval and accuracy)

OPTIONS:
    --full           paper scale (100 workloads, 100M cycles, Q=5M) — hours
    --tiny           smoke-test scale — seconds
    --workloads N    override workload count
    --cycles N       override cycles per run
    --seed N         override master seed
    --jobs N         worker threads for sweeps (default: one per core;
                     affects scheduling only — output is byte-identical
                     for any value)
    --no-skip        disable the deterministic fast-forward and simulate
                     every cycle (slower; output is byte-identical —
                     this flag exists for benchmarking and differential
                     testing, see DESIGN.md §8)
    --tier T         simulation tier: `cycle` (event-driven, default),
                     `analytic` (reuse-distance model, ~1000x faster;
                     supported by: matrix, xval — see DESIGN.md §10), or
                     `sampled` (representative-interval sampling with
                     confidence intervals, 10x+ faster sweeps; supported
                     by: fig9, fig10, fig11, combined — DESIGN.md §12)
    --sample-intervals K  representative intervals simulated per run on
                     the sampled tier (default 4; 2 at --tiny)
    --sample-quanta L  quanta per sampling interval on the sampled tier
                     (default 1; cycles must divide into Q*L intervals)
    --alone-cache F  persist alone-run profiles in F and reuse them on
                     later invocations with the same scale (stale or
                     corrupt entries are ignored with a warning)
    --profile-cache F  persist analytic-tier reuse profiles in F (stale
                     or corrupt entries are re-extracted with a warning)
    --checkpoint-dir D  persist campaign warmup snapshots and finished-run
                     manifests under D (written atomically; kill-safe).
                     Stale or damaged artefacts are ignored with a
                     warning — output never depends on checkpoint state
    --resume         replay finished runs from D's manifests instead of
                     simulating them (byte-identical); requires
                     --checkpoint-dir
    --csv DIR        additionally write every table to DIR/<name>.csv

TELEMETRY (any of these instruments every simulated run; artefacts are
byte-identical for any --jobs value):
    --stats-json F   write a merged counter/series/latency snapshot of
                     every workload to F (schema \"asm-telemetry v1\")
    --trace F        write a Chrome trace-event JSON of the first
                     workload to F (open in Perfetto / chrome://tracing)
    --series-csv D   write per-workload time-series CSVs
                     (series,cycle,value) to D
    --series-summary print a sparkline summary of every per-quantum
                     series after the tables

ATTRIBUTION (any of these enables the conservation-checked cycle ledger
of DESIGN.md §13 on every simulated run; tables stay byte-identical):
    --attrib         print each workload's per-app stall decomposition
                     and app×app blame matrix after the tables
    --attrib-csv F   write the per-quantum ledger to F
                     (workload,quantum_end,app,component,cycles)
    --blame-json F   write per-workload blame matrices and component
                     totals to F (schema \"asm-attrib v1\")
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(experiment) = args.first().filter(|a| !a.starts_with("--")) else {
        eprint!("{USAGE}");
        std::process::exit(2);
    };

    let mut scale = Scale::reduced();
    let mut no_skip = false;
    let mut tier = None;
    let mut sink_cfg = asm_experiments::sink::SinkConfig::default();
    let mut checkpoint_dir: Option<std::path::PathBuf> = None;
    let mut resume = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => scale = Scale::full(),
            "--tiny" => scale = Scale::tiny(),
            "--no-skip" => no_skip = true,
            "--series-summary" => sink_cfg.series_summary = true,
            "--attrib" => sink_cfg.attrib = true,
            "--stats-json" | "--trace" | "--series-csv" | "--attrib-csv" | "--blame-json" => {
                let Some(path) = args.get(i + 1) else {
                    eprintln!("error: {} needs a path", args[i]);
                    std::process::exit(2);
                };
                match args[i].as_str() {
                    "--stats-json" => sink_cfg.stats_json = Some(path.into()),
                    "--trace" => sink_cfg.trace = Some(path.into()),
                    "--attrib-csv" => sink_cfg.attrib_csv = Some(path.into()),
                    "--blame-json" => sink_cfg.blame_json = Some(path.into()),
                    _ => sink_cfg.series_csv = Some(path.into()),
                }
                i += 1;
            }
            "--tier" => {
                let Some(t) = args.get(i + 1).and_then(|v| Tier::parse(v)) else {
                    eprintln!("error: --tier needs `cycle`, `analytic`, or `sampled`");
                    std::process::exit(2);
                };
                // Applied after the loop: `--full`/`--tiny` replace the
                // whole Scale and must not wipe an earlier `--tier`.
                tier = Some(t);
                i += 1;
            }
            "--alone-cache" => {
                let Some(path) = args.get(i + 1) else {
                    eprintln!("error: --alone-cache needs a file path");
                    std::process::exit(2);
                };
                asm_experiments::collect::set_alone_cache_path(path.into());
                i += 1;
            }
            "--profile-cache" => {
                let Some(path) = args.get(i + 1) else {
                    eprintln!("error: --profile-cache needs a file path");
                    std::process::exit(2);
                };
                asm_experiments::analytic::set_profile_cache_path(path.into());
                i += 1;
            }
            "--checkpoint-dir" => {
                let Some(dir) = args.get(i + 1) else {
                    eprintln!("error: --checkpoint-dir needs a directory");
                    std::process::exit(2);
                };
                checkpoint_dir = Some(dir.into());
                i += 1;
            }
            "--resume" => resume = true,
            "--csv" => {
                let Some(dir) = args.get(i + 1) else {
                    eprintln!("error: --csv needs a directory");
                    std::process::exit(2);
                };
                asm_experiments::output::set_csv_dir(dir.into());
                i += 1;
            }
            "--workloads" | "--cycles" | "--seed" | "--jobs" | "--sample-intervals"
            | "--sample-quanta" => {
                let Some(value) = args.get(i + 1).and_then(|v| v.parse::<u64>().ok()) else {
                    eprintln!("error: {} needs a numeric value", args[i]);
                    std::process::exit(2);
                };
                match args[i].as_str() {
                    "--workloads" => scale.workloads = value as usize,
                    "--cycles" => scale.cycles = value,
                    "--jobs" => scale.jobs = (value as usize).max(1),
                    "--sample-intervals" => scale.sample_intervals = (value as usize).max(1),
                    "--sample-quanta" => scale.sample_quanta = value.max(1),
                    _ => scale.seed = value,
                }
                i += 1;
            }
            other => {
                eprintln!("error: unknown option {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if no_skip {
        scale.skip = false;
    }
    if let Some(tier) = tier {
        scale.tier = tier;
    }
    if scale.tier == Tier::Analytic && !exps::supports_analytic(experiment) {
        eprintln!(
            "error: experiment '{experiment}' does not support --tier analytic \
             (supported: {})",
            exps::ANALYTIC_CAPABLE.join(", ")
        );
        std::process::exit(2);
    }
    if scale.tier == Tier::Sampled {
        if !exps::supports_sampled(experiment) {
            eprintln!(
                "error: experiment '{experiment}' does not support --tier sampled \
                 (supported: {})",
                exps::SAMPLED_CAPABLE.join(", ")
            );
            std::process::exit(2);
        }
        let interval = scale.quantum * scale.sample_quanta;
        if interval == 0 || !scale.cycles.is_multiple_of(interval) {
            eprintln!(
                "error: --tier sampled needs cycles ({}) to be a multiple of \
                 quantum*L ({} * {})",
                scale.cycles, scale.quantum, scale.sample_quanta
            );
            std::process::exit(2);
        }
    }
    asm_experiments::sink::configure(sink_cfg);
    match checkpoint_dir {
        Some(dir) => asm_experiments::plan::set_checkpoint_dir(dir, resume),
        None if resume => {
            eprintln!("error: --resume requires --checkpoint-dir");
            std::process::exit(2);
        }
        None => {}
    }

    if scale.tier == Tier::Analytic {
        println!("tier: analytic (reuse-distance model, no cycle loop)");
    }
    if scale.tier == Tier::Sampled {
        println!(
            "tier: sampled ({} intervals x {} quanta, 95% CIs)",
            scale.sample_intervals, scale.sample_quanta
        );
    }
    println!(
        "scale: {} workloads x {} cycles (Q={}, E={}, warmup {} quanta, seed {})",
        scale.workloads, scale.cycles, scale.quantum, scale.epoch, scale.warmup_quanta, scale.seed
    );
    // Schedule-only state goes to stderr: stdout (tables) must stay
    // byte-identical across --jobs values and across --no-skip.
    eprintln!(
        "jobs: {}{}",
        scale.jobs,
        if scale.skip { "" } else { ", fast-forward off" }
    );
    if !exps::run(experiment, scale) {
        eprintln!("error: unknown experiment '{experiment}'\n{USAGE}");
        std::process::exit(2);
    }
    asm_experiments::sink::finalize();
    asm_experiments::collect::save_alone_cache();
    asm_experiments::analytic::save_profile_cache();
}
