//! A deterministic scoped-thread worker pool.
//!
//! [`run_ordered`] fans a list of independent jobs out across `jobs`
//! worker threads and returns the results **in submission order**, so a
//! caller that folds the returned `Vec` sequentially produces output that
//! is byte-identical for any thread count. Thread count is *schedule-only*
//! state (see DESIGN.md §8): it decides which core computes which item and
//! in what wall-clock order, never what any item computes.
//!
//! The pool is dependency-free (`std::thread::scope` only — the workspace
//! builds offline) and lives here, in the harness crate, because `asm-lint`
//! rule R6 bans threads from the seven simulation crates.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f` over every item of `items` on up to `jobs` worker threads and
/// returns the results in item order.
///
/// `f` is called as `f(index, &items[index])`; indices are claimed from a
/// shared counter, so workers stay busy regardless of per-item cost
/// imbalance. `jobs` is clamped to `1..=items.len()`; with `jobs == 1` the
/// items run inline on the caller's thread (no spawn overhead, identical
/// results).
///
/// # Panics
///
/// If a worker's `f` panics, the panic is propagated to the caller with
/// the offending item index prefixed to the message (the merge never
/// hangs); remaining workers stop claiming new items first.
pub fn run_ordered<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let jobs = jobs.clamp(1, items.len());
    if jobs == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    // One slot per item: workers write disjoint indices, the caller drains
    // them in order afterwards. Mutex<Option<R>> per slot keeps this safe
    // without unsafe code; each lock is touched exactly twice.
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let failure: Mutex<Option<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                if abort.load(Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                match catch_unwind(AssertUnwindSafe(|| f(i, item))) {
                    Ok(r) => {
                        *slots[i].lock().expect("result slot lock cannot be poisoned") = Some(r);
                    }
                    Err(payload) => {
                        abort.store(true, Ordering::Relaxed);
                        let mut first = failure
                            .lock()
                            .expect("failure slot lock cannot be poisoned");
                        // Keep the lowest item index so the report is
                        // deterministic enough to act on.
                        match &*first {
                            Some((j, _)) if *j <= i => {}
                            _ => *first = Some((i, payload)),
                        }
                        break;
                    }
                }
            });
        }
    });

    if let Some((i, payload)) = failure
        .into_inner()
        .expect("failure slot lock cannot be poisoned")
    {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_owned())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_owned());
        panic!("parallel worker panicked on item {i}: {msg}");
    }

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot lock cannot be poisoned")
                .expect("no worker panicked, so every claimed slot was filled")
        })
        .collect()
}

/// The default worker count: one per available core. Environment-dependent
/// by design — and safe, because thread count is schedule-only state (the
/// merge order, and therefore every result, is fixed by [`run_ordered`]).
#[must_use]
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        let items: Vec<u64> = (0..50).collect();
        let out = run_ordered(8, &items, |i, &x| {
            // Stagger completion so late items often finish first.
            std::thread::sleep(std::time::Duration::from_micros((50 - i as u64) * 10));
            x * 2
        });
        assert_eq!(out, (0..50).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn jobs_one_matches_jobs_many() {
        let items: Vec<u64> = (0..32).collect();
        let seq = run_ordered(1, &items, |i, &x| x.wrapping_mul(i as u64 + 3));
        let par = run_ordered(4, &items, |i, &x| x.wrapping_mul(i as u64 + 3));
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u64> = run_ordered(4, &[], |_, _: &u64| 0);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_jobs_clamps_to_one() {
        let out = run_ordered(0, &[1u64, 2, 3], |_, &x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn worker_panic_propagates_with_item_index() {
        let items: Vec<u64> = (0..16).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_ordered(4, &items, |_, &x| {
                assert!(x != 5, "injected failure");
                x
            })
        }));
        let payload = result.expect_err("worker panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .expect("propagated panic carries a String message");
        assert!(
            msg.contains("item 5") && msg.contains("injected failure"),
            "message should name the item and cause: {msg}"
        );
    }

    #[test]
    fn sequential_path_panics_too() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_ordered(1, &[1u64], |_, _| panic!("boom in sequential path"))
        }));
        assert!(result.is_err());
    }
}
