//! Figure 10: ASM-Mem vs FRFCFS / PARBS / TCM — unfairness and performance
//! across core counts.

use asm_core::{EstimatorSet, MemPolicy, SystemConfig, ThrottlePolicy};
use asm_dram::SchedulerKind;
use asm_metrics::Table;
use asm_workloads::mix;

use crate::collect::mech_outcome;
use crate::plan::PlannedRun;
use crate::scale::Scale;

/// Core counts evaluated.
pub const CORE_COUNTS: &[usize] = &[4, 8, 16];

/// One memory-management scheme in the comparison.
#[derive(Debug, Clone, Copy)]
pub struct MemScheme {
    /// Display name.
    pub name: &'static str,
    /// Base memory scheduler.
    pub scheduler: SchedulerKind,
    /// Whether ASM epochs + slowdown-weighted assignment run (ASM-Mem).
    pub asm_mem: bool,
    /// Whether FST source throttling runs.
    pub fst_throttle: bool,
}

/// The schemes of Figure 10 (FRFCFS/PARBS/TCM/ASM-Mem), extended with the
/// ATLAS and BLISS baselines this library also implements.
pub const SCHEMES: &[MemScheme] = &[
    MemScheme {
        name: "FRFCFS",
        scheduler: SchedulerKind::FrFcfs,
        asm_mem: false,
        fst_throttle: false,
    },
    MemScheme {
        name: "FST-throttle",
        scheduler: SchedulerKind::FrFcfs,
        asm_mem: false,
        fst_throttle: true,
    },
    MemScheme {
        name: "ATLAS",
        scheduler: SchedulerKind::Atlas,
        asm_mem: false,
        fst_throttle: false,
    },
    MemScheme {
        name: "BLISS",
        scheduler: SchedulerKind::Bliss,
        asm_mem: false,
        fst_throttle: false,
    },
    MemScheme {
        name: "PARBS",
        scheduler: SchedulerKind::Parbs,
        asm_mem: false,
        fst_throttle: false,
    },
    MemScheme {
        name: "TCM",
        scheduler: SchedulerKind::Tcm,
        asm_mem: false,
        fst_throttle: false,
    },
    MemScheme {
        name: "ASM-Mem",
        scheduler: SchedulerKind::FrFcfs,
        asm_mem: true,
        fst_throttle: false,
    },
];

/// Builds the configuration for one scheme.
#[must_use]
pub fn scheme_config(scale: Scale, scheme: MemScheme) -> SystemConfig {
    let mut c = scale.base_config();
    c.scheduler = scheme.scheduler;
    if scheme.asm_mem {
        c.estimators = EstimatorSet::asm_only();
        c.epochs_enabled = true;
        c.mem_policy = MemPolicy::SlowdownWeighted;
    } else {
        c.estimators = EstimatorSet::none();
        c.epochs_enabled = false;
        c.mem_policy = MemPolicy::Uniform;
    }
    if scheme.fst_throttle {
        c.estimators.fst = true;
        c.throttle_policy = ThrottlePolicy::Fst {
            unfairness_threshold: 1.4,
        };
    }
    c
}

fn workloads_for(scale: Scale, cores: usize) -> usize {
    (scale.workloads * 4 / cores).max(2)
}

/// Runs the Figure 10 comparison.
pub fn run(scale: Scale) {
    println!("\n=== Figure 10: ASM-Mem vs FRFCFS / PARBS / TCM ===");
    let mut table = Table::new(vec![
        "cores".into(),
        "scheme".into(),
        "unfairness (max slowdown)".into(),
        "harmonic speedup".into(),
    ]);
    for &cores in CORE_COUNTS {
        let workloads = mix::binned_mixes(
            workloads_for(scale, cores),
            cores,
            scale.seed ^ (0x10 << 8) ^ cores as u64,
        );
        // The schemes differ in scheduler or estimator set, which shape
        // the trajectory from cycle 0, so their warmup keys differ and
        // nothing is fork-shared — the campaign still buys `--resume`
        // across every run of an interrupted sweep.
        let runs: Vec<PlannedRun> = SCHEMES
            .iter()
            .flat_map(|&scheme| {
                let config = scheme_config(scale, scheme);
                workloads
                    .iter()
                    .map(move |w| PlannedRun::new(config.clone(), w.clone(), scale.cycles))
            })
            .collect();
        if scale.tier == crate::scale::Tier::Sampled {
            let results = crate::sampled::run_campaign(&runs, &scale);
            for (scheme, per_scheme) in SCHEMES.iter().zip(results.chunks(workloads.len())) {
                let out = crate::sampled::sampled_outcome(per_scheme);
                table.row(vec![
                    cores.to_string(),
                    scheme.name.into(),
                    out.unfairness.cell(2),
                    out.harmonic_speedup.cell(3),
                ]);
            }
            continue;
        }
        let results = crate::plan::run_campaign(&runs, scale.jobs);
        for (scheme, per_scheme) in SCHEMES.iter().zip(results.chunks(workloads.len())) {
            let out = mech_outcome(per_scheme);
            table.row(vec![
                cores.to_string(),
                scheme.name.into(),
                format!("{:.2}", out.unfairness),
                format!("{:.3}", out.harmonic_speedup),
            ]);
        }
    }
    crate::output::emit("fig10", &table);
    println!("Expected shape: ASM-Mem achieves the lowest unfairness with comparable");
    println!("performance; its advantage grows with core count.");
}
