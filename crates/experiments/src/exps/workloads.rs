//! Prints the synthetic benchmark suite: the substitution table for the
//! paper's SPEC CPU2006 / NAS / database applications (see DESIGN.md §1).

use asm_cpu::AppProfile;
use asm_metrics::Table;
use asm_workloads::suite;

use crate::scale::Scale;

fn push_rows(table: &mut Table, suite_name: &str, profiles: &[AppProfile]) {
    for p in profiles {
        table.row(vec![
            suite_name.into(),
            p.name().into(),
            p.mem_per_kilo().to_string(),
            format!("{}", p.working_set_lines() * 64 / 1024),
            format!("{}", p.hot_lines() * 64 / 1024),
            format!("{:.0}%", p.hot_frac() * 100.0),
            p.seq_run().to_string(),
            p.mlp().to_string(),
            format!("{:.0}%", p.write_frac() * 100.0),
        ]);
    }
}

/// Prints the profile table.
pub fn run(_scale: Scale) {
    println!("\n=== Synthetic benchmark suite (stand-ins for SPEC/NAS/DB; DESIGN.md §1) ===");
    let mut table = Table::new(
        [
            "suite",
            "profile",
            "mem/kilo-instr",
            "working set (KB)",
            "hot set (KB)",
            "hot frac",
            "seq run",
            "MLP",
            "writes",
        ]
        .map(str::to_owned)
        .to_vec(),
    );
    push_rows(&mut table, "SPEC-like", &suite::spec());
    push_rows(&mut table, "NAS-like", &suite::nas());
    push_rows(&mut table, "DB-like", &suite::db());
    crate::output::emit("workloads", &table);
    println!("Reference points: L1 = 64 KB, shared LLC = 2048 KB (Table 2).");
}
