//! Figure 11: soft slowdown guarantees — ASM-QoS-X vs Naive-QoS for an
//! application of interest (`h264ref_like`), reporting every
//! application's slowdown and overall performance per scheme.

use asm_core::{CachePolicy, QosConfig};
use asm_metrics::{harmonic_speedup, Table};
use asm_simcore::AppId;
use asm_workloads::suite;

use crate::exps::fig9::policy_config;
use crate::plan::PlannedRun;
use crate::scale::Scale;

/// The slowdown bounds swept for ASM-QoS (the paper's "X" values).
pub const BOUNDS: &[f64] = &[2.5, 3.0, 3.5, 4.0];

/// Runs the Figure 11 experiment.
pub fn run(scale: Scale) {
    println!("\n=== Figure 11: ASM-QoS soft slowdown guarantees (target: h264ref_like) ===");
    let apps = vec![
        suite::by_name("h264ref_like").expect("profile"),
        suite::by_name("mcf_like").expect("profile"),
        suite::by_name("libquantum_like").expect("profile"),
        suite::by_name("sphinx3_like").expect("profile"),
    ];
    let target = AppId::new(0);

    let mut schemes: Vec<(String, CachePolicy)> = vec![
        ("NoPart".into(), CachePolicy::None),
        ("Naive-QoS".into(), CachePolicy::NaiveQos(target)),
    ];
    for &bound in BOUNDS {
        schemes.push((
            format!("ASM-QoS-{bound}"),
            CachePolicy::AsmQos(QosConfig { target, bound }),
        ));
    }

    let mut table = Table::new(vec![
        "scheme".into(),
        "h264ref".into(),
        "mcf".into(),
        "libquantum".into(),
        "sphinx3".into(),
        "harmonic speedup".into(),
    ]);
    // All six schemes differ only in cache policy on one mix: the
    // campaign warms the shared prefix once and forks it six ways (and
    // runs the continuations in parallel, where this loop was serial).
    let runs: Vec<PlannedRun> = schemes
        .iter()
        .map(|&(_, policy)| PlannedRun::new(policy_config(scale, policy), apps.clone(), scale.cycles))
        .collect();
    if scale.tier == crate::scale::Tier::Sampled {
        let results = crate::sampled::run_campaign(&runs, &scale);
        for ((name, _), r) in schemes.into_iter().zip(&results) {
            let s = &r.slowdowns;
            let hs = asm_sampling::Estimate::harmonic_speedup_of(s)
                .unwrap_or(asm_sampling::Estimate::exact(f64::NAN));
            table.row(vec![
                name,
                s[0].cell(2),
                s[1].cell(2),
                s[2].cell(2),
                s[3].cell(2),
                hs.cell(3),
            ]);
        }
    } else {
        let results = crate::plan::run_campaign(&runs, scale.jobs);
        for ((name, _), r) in schemes.into_iter().zip(&results) {
            let s = &r.whole_run_slowdowns;
            let hs = harmonic_speedup(s).unwrap_or(f64::NAN);
            table.row(vec![
                name,
                format!("{:.2}", s[0]),
                format!("{:.2}", s[1]),
                format!("{:.2}", s[2]),
                format!("{:.2}", s[3]),
                format!("{hs:.3}"),
            ]);
        }
    }
    crate::output::emit("fig11", &table);
    println!("Expected shape: Naive-QoS minimises the target's slowdown but punishes the");
    println!("other applications; ASM-QoS-X keeps the target near its bound X while the");
    println!("others' slowdowns shrink as X loosens.");
}
