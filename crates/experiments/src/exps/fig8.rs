//! Figure 8: estimation error vs shared cache capacity (1 / 2 / 4 MB),
//! 4-core workloads.

use asm_cache::CacheGeometry;
use asm_core::EstimatorSet;
use asm_metrics::Table;
use asm_workloads::mix;

use crate::collect::{collect_accuracy, pct};
use crate::scale::Scale;

/// Cache capacities evaluated (bytes).
pub const CAPACITIES: &[u64] = &[1 << 20, 2 << 20, 4 << 20];

/// Runs the Figure 8 sweep.
pub fn run(scale: Scale) {
    println!("\n=== Figure 8: error vs shared cache capacity (4-core) ===");
    let workloads = mix::random_mixes(scale.workloads, 4, scale.seed);
    let mut table = Table::new(vec![
        "cache".into(),
        "FST".into(),
        "PTCA".into(),
        "ASM".into(),
    ]);
    for &cap in CAPACITIES {
        let mut unsampled = scale.base_config();
        unsampled.llc_geometry = CacheGeometry::from_capacity(cap, 16);
        unsampled.estimators = EstimatorSet::all();
        unsampled.ats_sampled_sets = None;
        unsampled.pollution_filter_bits = 1 << 20;
        let stats_u = collect_accuracy(&unsampled, &workloads, scale.cycles, scale.warmup_quanta, scale.jobs);

        let mut sampled = scale.base_config();
        sampled.llc_geometry = CacheGeometry::from_capacity(cap, 16);
        sampled.estimators = EstimatorSet::all();
        sampled.ats_sampled_sets = Some(64);
        let stats_s = collect_accuracy(&sampled, &workloads, scale.cycles, scale.warmup_quanta, scale.jobs);

        table.row(vec![
            format!("{} MB", cap >> 20),
            pct(stats_u.mean_error("FST")),
            pct(stats_u.mean_error("PTCA")),
            pct(stats_s.mean_error("ASM")),
        ]);
    }
    crate::output::emit("fig8", &table);
    println!("Expected shape: ASM most accurate at every capacity.");
}
