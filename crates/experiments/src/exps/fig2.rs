//! Figures 2 and 3: per-benchmark slowdown-estimation error for FST, PTCA
//! and ASM — Figure 2 with an unsampled ATS (and a large, equal-overhead
//! pollution filter for FST), Figure 3 with the 64-set sampled ATS (and an
//! equal-size pollution filter).

use asm_core::EstimatorSet;
use asm_metrics::Table;
use asm_workloads::{mix, suite};

use crate::collect::{collect_accuracy, pct};
use crate::scale::Scale;

/// Runs Figure 2 (`sampled = false`) or Figure 3 (`sampled = true`).
pub fn run(scale: Scale, sampled: bool) {
    let (fig, title) = if sampled {
        ("Figure 3", "sampled ATS (64 sets), small pollution filter")
    } else {
        ("Figure 2", "unsampled ATS, equal-overhead pollution filter")
    };
    println!("\n=== {fig}: slowdown estimation accuracy — {title} ===");

    let mut config = scale.base_config();
    config.estimators = EstimatorSet::all();
    if sampled {
        config.ats_sampled_sets = Some(64);
        // Equal size to the sampled ATS: 64 sets x 16 ways x 4 B = 4 KB.
        config.pollution_filter_bits = 1 << 15;
    } else {
        config.ats_sampled_sets = None;
        // Equal overhead to the full ATS (2048 sets x 16 ways x 4 B).
        config.pollution_filter_bits = 1 << 20;
    }

    let workloads = mix::random_mixes(scale.workloads, 4, scale.seed);
    let stats = collect_accuracy(&config, &workloads, scale.cycles, scale.warmup_quanta, scale.jobs);

    let mut table = Table::new(vec![
        "benchmark".into(),
        "FST".into(),
        "PTCA".into(),
        "ASM".into(),
    ]);
    for p in suite::all() {
        let name = p.name();
        if stats.mean_error_for_app("ASM", name).is_none() {
            continue; // did not appear in the sampled workloads
        }
        table.row(vec![
            name.into(),
            pct(stats.mean_error_for_app("FST", name)),
            pct(stats.mean_error_for_app("PTCA", name)),
            pct(stats.mean_error_for_app("ASM", name)),
        ]);
    }
    table.row(vec![
        "AVERAGE".into(),
        pct(stats.mean_error("FST")),
        pct(stats.mean_error("PTCA")),
        pct(stats.mean_error("ASM")),
    ]);
    crate::output::emit(if sampled { "fig3" } else { "fig2" }, &table);
    let mut chart = asm_metrics::BarChart::new("average slowdown-estimation error (%)");
    for name in ["FST", "PTCA", "ASM"] {
        chart.bar(name, stats.mean_error(name).unwrap_or(f64::NAN));
    }
    println!("{chart}");
    println!(
        "Paper ({}): FST {} / PTCA {} / ASM {}",
        if sampled { "Fig. 3" } else { "Fig. 2" },
        if sampled { "29.4%" } else { "18.5%" },
        if sampled { "40.4%" } else { "14.7%" },
        if sampled { "9.9%" } else { "9.0%" },
    );
}
