//! §6.4: benefits of estimating shared-cache interference — MISE (memory
//! interference only) vs ASM (memory + cache), both with epoch-based
//! aggregation.

use asm_core::EstimatorSet;
use asm_metrics::Table;
use asm_workloads::mix;

use crate::collect::{collect_accuracy, pct};
use crate::scale::Scale;

/// Runs the §6.4 comparison.
pub fn run(scale: Scale) {
    println!("\n=== Section 6.4: MISE vs ASM (value of modelling cache interference) ===");
    let mut config = scale.base_config();
    config.estimators = EstimatorSet {
        asm: true,
        mise: true,
        ..EstimatorSet::none()
    };
    config.ats_sampled_sets = Some(64);

    let workloads = mix::random_mixes(scale.workloads, 4, scale.seed);
    let stats = collect_accuracy(&config, &workloads, scale.cycles, scale.warmup_quanta, scale.jobs);

    let mut table = Table::new(vec!["model".into(), "mean error".into()]);
    table.row(vec![
        "MISE (memory only)".into(),
        pct(stats.mean_error("MISE")),
    ]);
    table.row(vec![
        "ASM (memory + cache)".into(),
        pct(stats.mean_error("ASM")),
    ]);
    crate::output::emit("mise", &table);
    println!("Paper: MISE 22% vs ASM 9.9% — ASM should be lower.");
}
