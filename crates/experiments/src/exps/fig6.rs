//! Figure 6: distribution of *alone* miss service times — actually
//! measured (alone runs) vs estimated by FST, PTCA and ASM — without (6a)
//! and with (6b) ATS sampling.
//!
//! The paper uses this to explain why epoch-based aggregation works: ASM's
//! estimated distribution tracks the measured one, while per-request
//! subtraction (FST/PTCA) distorts it, especially under sampling.

use asm_core::{EstimatorSet, SystemConfig};
use asm_cpu::AppProfile;
use asm_metrics::Table;
use asm_simcore::Histogram;
use asm_workloads::{mix, suite};

use crate::scale::Scale;

/// Histogram geometry: 40-cycle (~7.5 ns at 5.3 GHz) buckets up to 1,200
/// cycles.
const BUCKET_CYCLES: f64 = 40.0;
const BUCKETS: usize = 30;

/// The most memory-intensive third of the suite (the paper uses its 30
/// most memory-intensive workloads).
fn intensive_pool() -> Vec<AppProfile> {
    let mut all = suite::all();
    all.sort_by_key(|p| std::cmp::Reverse(p.mem_per_kilo()));
    all.truncate(all.len() / 3);
    all
}

fn merged(hists: Vec<Histogram>) -> Option<Histogram> {
    hists.into_iter().reduce(|mut acc, h| {
        acc.merge(&h);
        acc
    })
}

fn run_one(scale: Scale, sampled: bool) {
    let label = if sampled {
        "6b (sampled ATS)"
    } else {
        "6a (no sampling)"
    };
    println!("\n--- Figure {label} ---");
    let mut config: SystemConfig = scale.base_config();
    config.estimators = EstimatorSet::all();
    config.ats_sampled_sets = if sampled { Some(64) } else { None };
    config.pollution_filter_bits = if sampled { 1 << 15 } else { 1 << 20 };
    config.latency_hist = Some((BUCKET_CYCLES, BUCKETS));

    let pool = intensive_pool();
    let workloads = mix::mixes_from_pool(&pool, scale.workloads.min(10), 4, scale.seed ^ 0x66);

    let runner = crate::collect::make_runner(config);
    let mut actual = Vec::new();
    let mut per_estimator: Vec<(String, Vec<Histogram>)> = Vec::new();
    // Simulate in parallel, merge histograms sequentially in workload order.
    for r in crate::collect::run_parallel_with(&runner, &workloads, scale.cycles, scale.jobs) {
        if let Some(h) = r.alone_latency_hist {
            actual.push(h);
        }
        for (name, h) in r.estimator_latency_hists {
            match per_estimator.iter_mut().find(|(n, _)| *n == name) {
                Some((_, v)) => v.push(h),
                None => per_estimator.push((name, vec![h])),
            }
        }
    }

    let actual = merged(actual);
    let estimated: Vec<(String, Option<Histogram>)> = per_estimator
        .into_iter()
        .map(|(n, v)| (n, merged(v)))
        .collect();

    let mut table = Table::new(vec![
        "latency (ns)".into(),
        "measured".into(),
        "ASM".into(),
        "FST".into(),
        "PTCA".into(),
    ]);
    let frac = |h: &Option<Histogram>, i: usize| -> String {
        match h {
            Some(h) => format!("{:.1}%", h.fractions().nth(i).unwrap_or(0.0) * 100.0),
            None => "-".to_owned(),
        }
    };
    let by_name = |name: &str| -> Option<Histogram> {
        estimated
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, h)| h.clone())
    };
    let (asm, fst, ptca) = (by_name("ASM"), by_name("FST"), by_name("PTCA"));
    // 5.3 GHz core: 1 cycle = 0.189 ns.
    let ns_per_cycle = 1.0 / 5.3;
    for i in 0..BUCKETS {
        let lo = i as f64 * BUCKET_CYCLES * ns_per_cycle;
        let hi = (i + 1) as f64 * BUCKET_CYCLES * ns_per_cycle;
        table.row(vec![
            format!("[{lo:5.1}, {hi:5.1})"),
            frac(&actual, i),
            frac(&asm, i),
            frac(&fst, i),
            frac(&ptca, i),
        ]);
    }
    crate::output::emit(if sampled { "fig6b" } else { "fig6a" }, &table);
    println!(
        "Expected shape: ASM's column tracks 'measured'; FST/PTCA deviate{}.",
        if sampled { ", PTCA most" } else { "" }
    );
}

/// Runs the Figure 6 experiment (both panels).
pub fn run(scale: Scale) {
    println!("\n=== Figure 6: alone miss-service-time distributions ===");
    run_one(scale, false);
    run_one(scale, true);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensive_pool_is_top_third() {
        let pool = intensive_pool();
        assert_eq!(pool.len(), suite::all().len() / 3);
        let min_pool = pool.iter().map(AppProfile::mem_per_kilo).min().unwrap();
        // Every excluded profile is no more intensive than the pool floor.
        for p in suite::all() {
            if !pool.iter().any(|q| q.name() == p.name()) {
                assert!(p.mem_per_kilo() <= min_pool);
            }
        }
    }
}
