//! Cross-tier accuracy dashboard (`accuracy`).
//!
//! Joins the attribution ledger's ground truth (DESIGN.md §13) against
//! every slowdown estimate the repo produces, over the interference
//! matrix's ordered victim←aggressor pairs:
//!
//! - **cycle**: the cycle-accurate simulator with the ledger enabled —
//!   the ground truth every other column is judged against, plus the
//!   exact per-victim stall decomposition;
//! - **ASM**: the online estimator's per-quantum slowdown estimates
//!   (warmup quanta skipped), against the same run's actual slowdown;
//! - **analytic**: the reuse-distance tier (DESIGN.md §10) on the same
//!   configuration;
//! - **sampled**: the representative-interval tier (DESIGN.md §12).
//!   The sampled tier returns *exact* values for a fingerprint's own
//!   configuration, so its column is measured where the tier genuinely
//!   reconstructs from medoid intervals: each pair's group plans a UCP
//!   member (the partitioned-class representative, exact by design) and
//!   an ASM-Cache member, and the dashboard scores the ASM-Cache
//!   estimate against a full cycle-accurate run of that same variant.
//!
//! The closing section localizes the analytic tier's worst documented
//! cell — the FR-FCFS starvation cliff, libquantum → cg (DESIGN.md
//! §10) — to its dominant ledger component: the unmodeled slowdown gap
//! is converted to victim cycles and covered against the component's
//! measured interference cycles, gated at ≥ 80%.
//!
//! Everything folds sequentially in sweep order over `pool::run_ordered`
//! results, so stdout is byte-identical for every `--jobs` value.

use std::sync::Arc;

use asm_core::{
    AloneCache, CachePolicy, Component, EstimatorSet, QuantumLedger, RunAttribution, RunResult,
    COMPONENTS,
};
use asm_cpu::AppProfile;
use asm_metrics::Table;

use crate::plan::PlannedRun;
use crate::scale::Scale;
use crate::{collect, pool};

/// The starvation-cliff cell of DESIGN.md §10: cg (row-conflict victim,
/// slot 0) under libquantum (streaming aggressor, slot 1).
fn is_cliff(mix: &[AppProfile]) -> bool {
    mix.len() == 2 && mix[0].name() == "cg_like" && mix[1].name() == "libquantum_like"
}

/// Benchmark display name: the suite's `_like` suffix carries no
/// information in a table of suite pairs.
fn short(name: &str) -> &str {
    name.strip_suffix("_like").unwrap_or(name)
}

/// The dashboard's sweep: every ordered interference-matrix pair. Below
/// suite scale, a smoke subset — the matrix diagonal plus the
/// starvation-cliff cell, so the localization section always has its
/// subject.
#[must_use]
pub fn sweep_mixes(scale: Scale) -> Vec<Vec<AppProfile>> {
    let mut mixes = super::matrix::ordered_pairs();
    if scale.workloads < 6 {
        let cliff = mixes.iter().find(|m| is_cliff(m)).cloned();
        mixes = mixes.into_iter().step_by(7).collect();
        mixes.extend(cliff);
    }
    mixes
}

/// The ASM estimator's whole-run slowdown estimate for `app`: the mean
/// of its per-quantum estimates, skipping warmup quanta. `None` when no
/// quantum produced a finite positive estimate.
fn asm_estimate(r: &RunResult, app: usize, warmup: usize) -> Option<f64> {
    let mut sum = 0.0;
    let mut count = 0usize;
    for q in r.quanta.iter().skip(warmup) {
        let Some(est) = q.estimates.iter().find(|(n, _)| n == "ASM") else {
            continue;
        };
        let e = est.1[app];
        if e.is_finite() && e > 0.0 {
            sum += e;
            count += 1;
        }
    }
    (count > 0).then(|| sum / count as f64)
}

/// `(dominant interference component, its cycles, total interference
/// cycles, total run cycles)` for `app`'s ledger row. Ties break toward
/// the earlier [`Component::ALL`] entry, so the answer is deterministic.
fn ledger_breakdown(a: &RunAttribution, app: usize) -> (Component, u64, u64, u64) {
    let total: u64 = a.quanta.iter().map(QuantumLedger::len).sum();
    let mut dom = Component::DramBankConflict;
    let mut dom_cycles = 0u64;
    let mut interference = 0u64;
    for c in Component::ALL {
        if !c.is_interference() {
            continue;
        }
        let cycles = a.totals[app * COMPONENTS + c.index()];
        interference += cycles;
        if cycles > dom_cycles {
            dom = c;
            dom_cycles = cycles;
        }
    }
    (dom, dom_cycles, interference, total)
}

/// Absolute relative error of `est` vs `actual`, as a table cell.
fn err_cell(est: Option<f64>, actual: f64) -> (Option<f64>, String) {
    match est {
        Some(e) if e.is_finite() && actual.is_finite() && actual > 0.0 => {
            let err = asm_metrics::estimation_error_pct(e, actual);
            (Some(err), format!("{err:.1}%"))
        }
        _ => (None, "-".to_owned()),
    }
}

fn mean(v: &[f64]) -> Option<f64> {
    (!v.is_empty()).then(|| v.iter().sum::<f64>() / v.len() as f64)
}

/// Runs the cross-tier accuracy dashboard.
pub fn run(scale: Scale) {
    println!("\n=== Cross-tier accuracy: ledger ground truth vs ASM / analytic / sampled ===");
    // Every tier below amortizes the same alone runs (the documented
    // idiom for tier-comparing harnesses); a CLI-installed
    // `--alone-cache` wins because first installation sticks.
    collect::install_alone_cache(Arc::new(AloneCache::new()));

    let mixes = sweep_mixes(scale);
    println!("sweep: {} victim\u{2190}aggressor pairs", mixes.len());

    let mut config = scale.base_config();
    config.estimators = EstimatorSet::asm_only();

    // Ground truth: the cycle-accurate tier with the attribution ledger
    // forced on (independent of the CLI's --attrib flags; the sink still
    // observes every run so those flags keep working here).
    let mut opts = crate::sink::options();
    opts.attrib = true;
    let runner = collect::make_runner(config.clone());
    let truth = pool::run_ordered(scale.jobs, &mixes, |_, w| {
        let r = runner.run_with(w, scale.cycles, opts);
        eprint!(".");
        r
    });
    eprintln!();
    for r in &truth {
        crate::sink::record(r);
    }

    // Analytic tier on the same configuration.
    let solutions = crate::analytic::solve_mixes(&config, &mixes, scale.jobs);

    // Sampled tier: per pair, a two-member partitioned-class group. UCP
    // becomes the class representative (its estimate is exact by
    // design), so the ASM-Cache member is the one the tier genuinely
    // reconstructs from K medoid intervals — that is the estimate the
    // dashboard scores, against a full run of the same variant.
    let mut ucp = config.clone();
    ucp.cache_policy = CachePolicy::Ucp;
    let mut asmc = config.clone();
    asmc.cache_policy = CachePolicy::AsmCache;
    let planned: Vec<PlannedRun> = mixes
        .iter()
        .flat_map(|m| {
            [
                PlannedRun::new(ucp.clone(), m.clone(), scale.cycles),
                PlannedRun::new(asmc.clone(), m.clone(), scale.cycles),
            ]
        })
        .collect();
    let sampled = crate::sampled::run_campaign(&planned, &scale);
    let asmc_runner = collect::make_runner(asmc);
    let asmc_truth = pool::run_ordered(scale.jobs, &mixes, |_, w| {
        let r = asmc_runner.run_with(w, scale.cycles, asm_core::RunOptions::default());
        eprint!(".");
        r
    });
    eprintln!();

    let mut table = Table::new(
        [
            "victim \u{2190} aggressor",
            "cycle",
            "ASM err",
            "analytic err",
            "sampled err*",
            "victim interference (ledger)",
        ]
        .map(str::to_owned)
        .to_vec(),
    );
    let (mut asm_errs, mut ana_errs, mut smp_errs) = (Vec::new(), Vec::new(), Vec::new());
    let mut smp_cis = Vec::new();
    for (k, m) in mixes.iter().enumerate() {
        let t = &truth[k];
        let attrib = t.attribution.as_ref().expect("attribution forced on");
        let actual = t.whole_run_slowdowns[0];
        let (asm_err, asm_cell) =
            err_cell(asm_estimate(t, 0, scale.warmup_quanta), actual);
        let (ana_err, ana_cell) = err_cell(Some(solutions[k].slowdowns[0]), actual);
        let smp = sampled[2 * k + 1].slowdowns[0];
        let (smp_err, smp_cell) =
            err_cell(Some(smp.value), asmc_truth[k].whole_run_slowdowns[0]);
        smp_cis.push(smp.ci);
        asm_errs.extend(asm_err);
        ana_errs.extend(ana_err);
        smp_errs.extend(smp_err);
        let (dom, dom_cycles, interference, total) = ledger_breakdown(attrib, 0);
        let ledger_cell = if interference == 0 {
            "none".to_owned()
        } else {
            format!(
                "{:.1}% of cycles, {:.0}% {}",
                interference as f64 / total.max(1) as f64 * 100.0,
                dom_cycles as f64 / interference as f64 * 100.0,
                dom.name(),
            )
        };
        table.row(vec![
            format!("{} \u{2190} {}", short(&m[0].name()), short(&m[1].name())),
            format!("{actual:.2}x"),
            asm_cell,
            ana_cell,
            smp_cell,
            ledger_cell,
        ]);
    }
    crate::output::emit("accuracy", &table);
    println!(
        "* sampled errors score the ASM-Cache variant of each pair against its own \
         full cycle run: the sampled tier is exact on a fingerprint's own \
         configuration (DESIGN.md \u{a7}12), so the neutral cell would measure nothing."
    );
    println!(
        "mean |err| vs cycle ground truth: ASM {}, analytic {}, sampled {} \
         (mean 95% CI half-width {:.4}; 0 would mean the tier fell back to full runs)",
        collect::pct(mean(&asm_errs)),
        collect::pct(mean(&ana_errs)),
        collect::pct(mean(&smp_errs)),
        mean(&smp_cis).unwrap_or(f64::NAN),
    );

    if let Some(k) = mixes.iter().position(|m| is_cliff(m)) {
        localize_cliff(&truth[k], solutions[k].slowdowns[0]);
    }
}

/// The acceptance claim: localize the starvation cliff's analytic error
/// (DESIGN.md §10) to a named ledger component. The slowdown error is
/// converted into victim cycles — `total × |1/s_cycle − 1/s_analytic|`,
/// the mis-modeled alone-equivalent cycle mass, a direction-neutral
/// measure (at full scale the linear row-hit-first bias term saturates
/// below the simulated starvation and the tier underestimates; at short
/// horizons the starvation has not compounded yet and the same term
/// overshoots) — then covered against the dominant component's measured
/// interference cycles.
fn localize_cliff(t: &RunResult, analytic: f64) {
    let attrib = t.attribution.as_ref().expect("attribution forced on");
    let actual = t.whole_run_slowdowns[0];
    let n = t.app_names.len();
    println!("\n=== Starvation-cliff localization: libquantum \u{2192} cg (DESIGN.md \u{a7}10) ===");
    println!(
        "victim cg: cycle {actual:.2}x vs analytic {analytic:.2}x ({})",
        collect::pct(Some(asm_metrics::estimation_error_pct(analytic, actual))),
    );
    let (dom, dom_cycles, interference, total) = ledger_breakdown(attrib, 0);
    for c in Component::ALL {
        if !c.is_interference() {
            continue;
        }
        let cycles = attrib.totals[c.index()];
        if cycles == 0 {
            continue;
        }
        println!(
            "  {:<18} {:>12} cycles  {:>5.1}% of interference",
            c.name(),
            cycles,
            cycles as f64 / interference.max(1) as f64 * 100.0,
        );
    }
    let blamed: u64 = (1..n).map(|o| attrib.blame[o]).sum();
    println!(
        "  ledger blames {:.0}% of that interference on libquantum (blame matrix row 0)",
        blamed as f64 / interference.max(1) as f64 * 100.0,
    );
    if !(actual.is_finite() && actual > 0.0 && analytic.is_finite() && analytic > 0.0) {
        println!("localization: no finite slowdowns — skipped");
        return;
    }
    // Slowdown is shared time over alone time for the same work, so the
    // tiers' disagreement corresponds to a definite victim-cycle mass:
    // the difference in the alone-equivalent length each tier implies
    // for the same shared run.
    let err_cycles = total as f64 * (1.0 / actual - 1.0 / analytic).abs();
    let runner_up = Component::ALL
        .into_iter()
        .filter(|c| c.is_interference() && *c != dom)
        .map(|c| attrib.totals[c.index()])
        .max()
        .unwrap_or(0);
    let coverage = (dom_cycles as f64 / err_cycles).min(1.0) * 100.0;
    println!(
        "mis-modeled cycle mass: {total} x |1/{actual:.2} - 1/{analytic:.2}| \
         = {:.2}M victim cycles",
        err_cycles / 1e6,
    );
    println!(
        "localization: `{}` measures {:.2}M interference cycles — covers {coverage:.0}% \
         of the mis-modeled mass (threshold 80%); the runner-up component covers \
         only {:.0}% — {}",
        dom.name(),
        dom_cycles as f64 / 1e6,
        (runner_up as f64 / err_cycles).min(1.0) * 100.0,
        if coverage >= 80.0 { "PASS" } else { "FAIL" },
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_always_contains_the_cliff_cell() {
        for scale in [Scale::tiny(), Scale::reduced(), Scale::full()] {
            let mixes = sweep_mixes(scale);
            assert!(
                mixes.iter().any(|m| is_cliff(m)),
                "no libquantum→cg cell at {:?} scale",
                scale.tier
            );
        }
        assert_eq!(sweep_mixes(Scale::reduced()).len(), 36);
        assert_eq!(sweep_mixes(Scale::tiny()).len(), 7);
    }

    #[test]
    fn err_cell_formats() {
        let (e, s) = err_cell(Some(1.1), 1.0);
        assert!((e.unwrap() - 10.0).abs() < 1e-9);
        assert_eq!(s, "10.0%");
        assert_eq!(err_cell(None, 1.0), (None, "-".to_owned()));
        assert_eq!(err_cell(Some(1.0), 0.0), (None, "-".to_owned()));
    }
}
