//! Figure 5: slowdown-estimation error with a stride prefetcher (degree 4,
//! distance 24), unsampled, with standard deviation across workloads.

use asm_core::{EstimatorSet, PrefetchConfig};
use asm_metrics::Table;
use asm_workloads::mix;

use crate::collect::{collect_accuracy, pct};
use crate::scale::Scale;

/// Runs the Figure 5 experiment.
pub fn run(scale: Scale) {
    println!("\n=== Figure 5: estimation error with a stride prefetcher (deg 4, dist 24) ===");
    let workloads = mix::random_mixes(scale.workloads, 4, scale.seed);

    let mut base = scale.base_config();
    base.estimators = EstimatorSet::all();
    base.ats_sampled_sets = None;
    base.pollution_filter_bits = 1 << 20;

    let mut with_pf = base.clone();
    with_pf.prefetcher = Some(PrefetchConfig::default());

    let stats_off = collect_accuracy(&base, &workloads, scale.cycles, scale.warmup_quanta, scale.jobs);
    let stats_on = collect_accuracy(&with_pf, &workloads, scale.cycles, scale.warmup_quanta, scale.jobs);

    let mut table = Table::new(vec![
        "estimator".into(),
        "no prefetch".into(),
        "with prefetch".into(),
        "with-pf std dev".into(),
    ]);
    for name in ["FST", "PTCA", "ASM"] {
        table.row(vec![
            name.into(),
            pct(stats_off.mean_error(name)),
            pct(stats_on.mean_error(name)),
            pct(stats_on.workload_std_dev(name)),
        ]);
    }
    crate::output::emit("fig5", &table);
    println!("Paper (with prefetching): FST 20% / PTCA 15% / ASM 7.5%");
    println!("Expected shape: ASM error stays lowest and does not degrade with prefetching.");
}
