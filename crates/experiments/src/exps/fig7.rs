//! Figure 7: estimation error vs core count (4 / 8 / 16), FST and PTCA
//! unsampled, ASM with the sampled ATS.

use asm_core::EstimatorSet;
use asm_metrics::Table;
use asm_workloads::mix;

use crate::collect::{collect_accuracy, pct, AccuracyStats};
use crate::scale::Scale;

/// Core counts evaluated.
pub const CORE_COUNTS: &[usize] = &[4, 8, 16];

/// Keeps total simulation work roughly constant across core counts (alone
/// runs scale linearly with cores).
fn workloads_for(scale: Scale, cores: usize) -> usize {
    (scale.workloads * 4 / cores).max(2)
}

fn run_count(scale: Scale, cores: usize) -> (AccuracyStats, AccuracyStats) {
    let workloads = mix::random_mixes(
        workloads_for(scale, cores),
        cores,
        scale.seed ^ cores as u64,
    );
    let mut unsampled = scale.base_config();
    unsampled.estimators = EstimatorSet::all();
    unsampled.ats_sampled_sets = None;
    unsampled.pollution_filter_bits = 1 << 20;
    let stats_u = collect_accuracy(&unsampled, &workloads, scale.cycles, scale.warmup_quanta, scale.jobs);

    let mut sampled = scale.base_config();
    sampled.estimators = EstimatorSet::all();
    sampled.ats_sampled_sets = Some(64);
    let stats_s = collect_accuracy(&sampled, &workloads, scale.cycles, scale.warmup_quanta, scale.jobs);
    (stats_u, stats_s)
}

/// Runs the Figure 7 sweep.
pub fn run(scale: Scale) {
    println!("\n=== Figure 7: error vs core count (FST/PTCA unsampled, ASM sampled) ===");
    let mut table = Table::new(vec![
        "cores".into(),
        "FST".into(),
        "FST sd".into(),
        "PTCA".into(),
        "PTCA sd".into(),
        "ASM".into(),
        "ASM sd".into(),
    ]);
    for &cores in CORE_COUNTS {
        let (u, s) = run_count(scale, cores);
        table.row(vec![
            cores.to_string(),
            pct(u.mean_error("FST")),
            pct(u.workload_std_dev("FST")),
            pct(u.mean_error("PTCA")),
            pct(u.workload_std_dev("PTCA")),
            pct(s.mean_error("ASM")),
            pct(s.workload_std_dev("ASM")),
        ]);
    }
    crate::output::emit("fig7", &table);
    println!("Expected shape: ASM lowest everywhere; all errors grow with core count;");
    println!("ASM's advantage widens as interference increases.");
}
