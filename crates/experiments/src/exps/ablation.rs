//! Ablations of the design choices DESIGN.md §5 calls out, as a printable
//! table (the `ablation` Criterion bench times the same configurations).
//!
//! Each row reports ASM's mean estimation error under one modification of
//! the default model, quantifying how much each ingredient contributes.

use asm_core::{EpochAssignment, EstimatorSet, SystemConfig};
use asm_metrics::Table;
use asm_simcore::Cycle;
use asm_workloads::mix;

use crate::collect::{collect_accuracy, pct};
use crate::scale::Scale;

fn asm_error(config: &SystemConfig, scale: Scale, cycles: Cycle) -> Option<f64> {
    let workloads = mix::random_mixes((scale.workloads / 2).max(3), 4, scale.seed ^ 0xAB);
    collect_accuracy(config, &workloads, cycles, scale.warmup_quanta, scale.jobs).mean_error("ASM")
}

/// Runs the ablation table.
pub fn run(scale: Scale) {
    println!("\n=== Ablations: what each modelling ingredient buys ===");
    let base = {
        let mut c = scale.base_config();
        c.estimators = EstimatorSet::asm_only();
        c
    };

    let mut table = Table::new(vec!["configuration".into(), "ASM mean error".into()]);

    table.row(vec![
        "default (sampled ATS 64 sets, probabilistic epochs, queueing corr.)".into(),
        pct(asm_error(&base, scale, scale.cycles)),
    ]);

    for sets in [8usize, 256] {
        let mut c = base.clone();
        c.ats_sampled_sets = Some(sets);
        table.row(vec![
            format!("ATS sampled to {sets} sets"),
            pct(asm_error(&c, scale, scale.cycles)),
        ]);
    }
    {
        let mut c = base.clone();
        c.ats_sampled_sets = None;
        table.row(vec![
            "full (unsampled) ATS".into(),
            pct(asm_error(&c, scale, scale.cycles)),
        ]);
    }
    {
        let mut c = base.clone();
        c.epoch_assignment = EpochAssignment::RoundRobin;
        table.row(vec![
            "round-robin epoch assignment".into(),
            pct(asm_error(&c, scale, scale.cycles)),
        ]);
    }
    {
        let mut c = base.clone();
        c.asm_queueing_correction = false;
        table.row(vec![
            "queueing-delay correction off".into(),
            pct(asm_error(&c, scale, scale.cycles)),
        ]);
    }

    crate::output::emit("ablation", &table);
    println!("Expected shape: sampling level barely matters (the paper's robustness");
    println!("claim); round-robin epochs are comparable (§4.2); removing the queueing");
    println!("correction costs accuracy (§4.3).");
}
