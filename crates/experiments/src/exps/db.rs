//! §6 "Accuracy with Database Workloads": TPC-C / YCSB-like mixes.
//!
//! The paper reports FST (unsampled) 27%, PTCA (unsampled) 12%, ASM
//! (sampled) 4%.

use asm_core::EstimatorSet;
use asm_metrics::Table;
use asm_workloads::{mix, suite};

use crate::collect::{collect_accuracy, pct};
use crate::scale::Scale;

/// Runs the database-workload accuracy study.
pub fn run(scale: Scale) {
    println!("\n=== Database workloads (TPC-C / YCSB-like): estimation accuracy ===");
    let pool = suite::db();
    let workloads = mix::mixes_from_pool(&pool, scale.workloads, 4, scale.seed ^ 0xDB);

    // FST/PTCA at their best (unsampled) vs ASM deployed (sampled).
    let mut unsampled = scale.base_config();
    unsampled.estimators = EstimatorSet::all();
    unsampled.ats_sampled_sets = None;
    unsampled.pollution_filter_bits = 1 << 20;
    let stats_u = collect_accuracy(&unsampled, &workloads, scale.cycles, scale.warmup_quanta, scale.jobs);

    let mut sampled = scale.base_config();
    sampled.estimators = EstimatorSet::all();
    sampled.ats_sampled_sets = Some(64);
    let stats_s = collect_accuracy(&sampled, &workloads, scale.cycles, scale.warmup_quanta, scale.jobs);

    let mut table = Table::new(vec!["model".into(), "mean error".into(), "paper".into()]);
    table.row(vec![
        "FST (unsampled)".into(),
        pct(stats_u.mean_error("FST")),
        "27%".into(),
    ]);
    table.row(vec![
        "PTCA (unsampled)".into(),
        pct(stats_u.mean_error("PTCA")),
        "12%".into(),
    ]);
    table.row(vec![
        "ASM (sampled)".into(),
        pct(stats_s.mean_error("ASM")),
        "4%".into(),
    ]);
    crate::output::emit("db", &table);
}
