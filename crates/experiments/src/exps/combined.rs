//! §7.2 "Combining ASM-Cache and ASM-Mem": the coordinated
//! ASM-Cache-Mem scheme vs the strongest prior combination (PARBS + UCP).

use asm_core::{CachePolicy, EstimatorSet, MemPolicy, SystemConfig};
use asm_dram::SchedulerKind;
use asm_metrics::Table;
use asm_workloads::mix;

use crate::collect::mech_outcome;
use crate::plan::PlannedRun;
use crate::scale::Scale;

fn asm_cache_mem(scale: Scale) -> SystemConfig {
    let mut c = scale.base_config();
    c.estimators = EstimatorSet::asm_only();
    c.epochs_enabled = true;
    c.cache_policy = CachePolicy::AsmCache;
    c.mem_policy = MemPolicy::SlowdownWeighted;
    c
}

fn parbs_ucp(scale: Scale) -> SystemConfig {
    let mut c = scale.base_config();
    c.estimators = EstimatorSet::none();
    c.epochs_enabled = false;
    c.scheduler = SchedulerKind::Parbs;
    c.cache_policy = CachePolicy::Ucp;
    c
}

fn baseline(scale: Scale) -> SystemConfig {
    let mut c = parbs_ucp(scale);
    c.scheduler = SchedulerKind::FrFcfs;
    c.cache_policy = CachePolicy::None;
    c
}

/// Runs the combined-scheme comparison (16-core, plus 8-core for context).
pub fn run(scale: Scale) {
    println!("\n=== ASM-Cache-Mem vs PARBS+UCP (combined cache + memory management) ===");
    let mut table = Table::new(vec![
        "cores".into(),
        "scheme".into(),
        "unfairness (max slowdown)".into(),
        "harmonic speedup".into(),
    ]);
    for cores in [8usize, 16] {
        let workloads = mix::binned_mixes(
            (scale.workloads * 4 / cores).max(2),
            cores,
            scale.seed ^ 0xC0DE ^ cores as u64,
        );
        let schemes = [
            ("FRFCFS+NoPart", baseline(scale)),
            ("PARBS+UCP", parbs_ucp(scale)),
            ("ASM-Cache-Mem", asm_cache_mem(scale)),
        ];
        let runs: Vec<PlannedRun> = schemes
            .iter()
            .flat_map(|(_, config)| {
                workloads
                    .iter()
                    .map(|w| PlannedRun::new(config.clone(), w.clone(), scale.cycles))
            })
            .collect();
        if scale.tier == crate::scale::Tier::Sampled {
            let results = crate::sampled::run_campaign(&runs, &scale);
            for ((name, _), per_scheme) in schemes.iter().zip(results.chunks(workloads.len())) {
                let out = crate::sampled::sampled_outcome(per_scheme);
                table.row(vec![
                    cores.to_string(),
                    (*name).into(),
                    out.unfairness.cell(2),
                    out.harmonic_speedup.cell(3),
                ]);
            }
            continue;
        }
        let results = crate::plan::run_campaign(&runs, scale.jobs);
        for ((name, _), per_scheme) in schemes.iter().zip(results.chunks(workloads.len())) {
            let out = mech_outcome(per_scheme);
            table.row(vec![
                cores.to_string(),
                (*name).into(),
                format!("{:.2}", out.unfairness),
                format!("{:.3}", out.harmonic_speedup),
            ]);
        }
    }
    crate::output::emit("combined", &table);
    println!("Paper: ASM-Cache-Mem improves fairness by 14.6% over PARBS+UCP on 16-core");
    println!("1-channel, with performance within 1%.");
}
