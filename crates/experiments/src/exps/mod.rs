//! One module per paper table/figure.

pub mod ablation;
pub mod accuracy;
pub mod channels;
pub mod combined;
pub mod db;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig2;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod matrix;
pub mod mise;
pub mod table3;
pub mod workloads;
pub mod xval;

use crate::scale::Scale;

/// All experiment names, in paper order.
pub const ALL: &[&str] = &[
    "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "db", "mise", "fig7", "fig8", "table3", "fig9",
    "fig10", "combined", "fig11",
];

/// Experiments that accept `--tier analytic`. Everything else models
/// per-quantum estimator behaviour the analytic tier deliberately does
/// not have, so the CLI rejects the combination up front (exit 2).
pub const ANALYTIC_CAPABLE: &[&str] = &["matrix", "xval"];

/// Whether `name` can run on the analytic tier.
#[must_use]
pub fn supports_analytic(name: &str) -> bool {
    ANALYTIC_CAPABLE.contains(&name)
}

/// Experiments that accept `--tier sampled`. These are the sweep-shaped
/// figures whose runs share prefix configurations, so one fingerprint
/// pass amortises over many policy variants (DESIGN.md §12). Everything
/// else is rejected up front (exit 2).
pub const SAMPLED_CAPABLE: &[&str] = &["fig9", "fig10", "fig11", "combined"];

/// Whether `name` can run on the sampled tier.
#[must_use]
pub fn supports_sampled(name: &str) -> bool {
    SAMPLED_CAPABLE.contains(&name)
}

/// Dispatches one experiment by name. Returns `false` for unknown names.
pub fn run(name: &str, scale: Scale) -> bool {
    match name {
        "fig1" => fig1::run(scale),
        "fig2" => fig2::run(scale, false),
        "fig3" => fig2::run(scale, true),
        "fig4" => fig4::run(scale),
        "fig5" => fig5::run(scale),
        "fig6" => fig6::run(scale),
        "db" => db::run(scale),
        "mise" => mise::run(scale),
        "fig7" => fig7::run(scale),
        "fig8" => fig8::run(scale),
        "table3" => table3::run(scale),
        "fig9" => fig9::run(scale),
        "fig10" => fig10::run(scale),
        "combined" => combined::run(scale),
        "fig11" => fig11::run(scale),
        "channels" => channels::run(scale),
        "ablation" => ablation::run(scale),
        "matrix" => matrix::run(scale),
        "workloads" => workloads::run(scale),
        "xval" => xval::run(scale),
        "accuracy" => accuracy::run(scale),
        "all" => {
            for n in ALL {
                run(n, scale);
            }
        }
        _ => return false,
    }
    true
}
