//! Table 3: ASM's error sensitivity to quantum (Q) and epoch (E) lengths.
//!
//! At full scale the paper's values are used (Q ∈ {1M, 5M, 10M} cycles,
//! E ∈ {1k, 10k, 50k, 100k}); the reduced default scales Q down so each
//! cell still covers several quanta.

use asm_core::EstimatorSet;
use asm_metrics::Table;
use asm_simcore::Cycle;
use asm_workloads::mix;

use crate::collect::{collect_accuracy, pct};
use crate::scale::Scale;

/// Epoch lengths swept (paper values).
pub const EPOCHS: &[Cycle] = &[1_000, 10_000, 50_000, 100_000];

/// Quantum lengths swept at the given scale.
#[must_use]
pub fn quanta_for(scale: Scale) -> Vec<Cycle> {
    if scale.quantum >= 5_000_000 {
        vec![1_000_000, 5_000_000, 10_000_000]
    } else if scale.quantum >= 1_000_000 {
        vec![500_000, 1_000_000, 2_000_000]
    } else {
        // Smoke scales (`--tiny` and below): sweep around the configured
        // quantum so the cell runs stay as small as the rest of the suite.
        // Every paper epoch divides 100k, so these remain valid configs.
        vec![scale.quantum, scale.quantum * 2]
    }
}

/// Runs the Table 3 sweep.
pub fn run(scale: Scale) {
    println!("\n=== Table 3: ASM error vs quantum and epoch lengths ===");
    let workloads = mix::random_mixes((scale.workloads / 2).max(2), 4, scale.seed);
    let mut table = Table::new(
        std::iter::once("Q \\ E".to_owned())
            .chain(EPOCHS.iter().map(ToString::to_string))
            .collect(),
    );
    for q in quanta_for(scale) {
        let mut row = vec![q.to_string()];
        for &e in EPOCHS {
            let mut config = scale.base_config();
            config.quantum = q;
            config.epoch = e;
            config.estimators = EstimatorSet::asm_only();
            config.ats_sampled_sets = Some(64);
            // Cover warmup + 4 measured quanta for every Q.
            let cycles = q * (scale.warmup_quanta as Cycle + 4);
            let stats = collect_accuracy(&config, &workloads, cycles, scale.warmup_quanta, scale.jobs);
            row.push(pct(stats.mean_error("ASM")));
        }
        table.row(row);
    }
    crate::output::emit("table3", &table);
    println!("Paper (Q=5M row): 17.1% / 9.9% / 10.6% / 11.5% — error is highest at E=1k,");
    println!("lowest near E=10k, and grows slowly with larger E and smaller Q.");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_uses_paper_quanta() {
        let q = quanta_for(Scale::full());
        assert_eq!(q, vec![1_000_000, 5_000_000, 10_000_000]);
    }

    #[test]
    fn reduced_scale_quanta_divide_by_all_epochs() {
        for q in quanta_for(Scale::reduced()) {
            for &e in EPOCHS {
                assert_eq!(q % e, 0, "epoch {e} must divide quantum {q}");
            }
        }
    }

    #[test]
    fn smoke_scale_sweeps_near_its_own_quantum() {
        let scale = Scale::tiny();
        let q = quanta_for(scale);
        assert_eq!(q, vec![scale.quantum, scale.quantum * 2]);
        for q in q {
            for &e in EPOCHS {
                assert_eq!(q % e, 0, "epoch {e} must divide quantum {q}");
            }
        }
    }
}
