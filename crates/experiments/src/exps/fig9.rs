//! Figure 9: ASM-Cache vs no partitioning, UCP and MCFQ — unfairness
//! (maximum slowdown) and performance (harmonic speedup) across core
//! counts.

use asm_core::{CachePolicy, EstimatorSet, SystemConfig};
use asm_metrics::Table;
use asm_workloads::mix;

use crate::collect::mech_outcome;
use crate::plan::PlannedRun;
use crate::scale::Scale;

/// Core counts evaluated (the paper uses 4/8/16).
pub const CORE_COUNTS: &[usize] = &[4, 8, 16];

/// Builds the configuration for one cache policy.
///
/// Every scheme (including the baselines) runs on an *identical* memory
/// substrate — FR-FCFS with uniform epoch prioritisation and the ASM
/// estimator observing — so the comparison isolates the cache-allocation
/// decision itself. (In the paper the epoch substrate perturbs
/// performance/fairness by only ~1%; our synthetic mixes are more
/// memory-intensive, where uniform epochs are themselves a mild fairness
/// mechanism, so giving them to the baselines too keeps the comparison
/// honest. The `ablation` bench quantifies the epoch substrate alone.)
#[must_use]
pub fn policy_config(scale: Scale, policy: CachePolicy) -> SystemConfig {
    let mut c = scale.base_config();
    c.cache_policy = policy;
    c.estimators = EstimatorSet::asm_only();
    c.epochs_enabled = true;
    c
}

fn workloads_for(scale: Scale, cores: usize) -> usize {
    (scale.workloads * 4 / cores).max(2)
}

/// Runs the Figure 9 comparison.
pub fn run(scale: Scale) {
    println!("\n=== Figure 9: ASM-Cache vs NoPart / UCP / MCFQ ===");
    let policies: [(&str, CachePolicy); 4] = [
        ("NoPart", CachePolicy::None),
        ("UCP", CachePolicy::Ucp),
        ("MCFQ", CachePolicy::Mcfq),
        ("ASM-Cache", CachePolicy::AsmCache),
    ];
    let mut table = Table::new(vec![
        "cores".into(),
        "scheme".into(),
        "unfairness (max slowdown)".into(),
        "harmonic speedup".into(),
    ]);
    for &cores in CORE_COUNTS {
        let workloads = mix::binned_mixes(
            workloads_for(scale, cores),
            cores,
            scale.seed ^ (0x9 << 8) ^ cores as u64,
        );
        // All four policies agree on the prefix-relevant configuration,
        // so the campaign warms each workload once and forks it into
        // every policy — the planner's showcase (DESIGN.md §11).
        let runs: Vec<PlannedRun> = policies
            .iter()
            .flat_map(|&(_, policy)| {
                let config = policy_config(scale, policy);
                workloads
                    .iter()
                    .map(move |w| PlannedRun::new(config.clone(), w.clone(), scale.cycles))
            })
            .collect();
        if scale.tier == crate::scale::Tier::Sampled {
            let results = crate::sampled::run_campaign(&runs, &scale);
            for ((name, _), per_policy) in policies.iter().zip(results.chunks(workloads.len())) {
                let out = crate::sampled::sampled_outcome(per_policy);
                table.row(vec![
                    cores.to_string(),
                    (*name).into(),
                    out.unfairness.cell(2),
                    out.harmonic_speedup.cell(3),
                ]);
            }
            continue;
        }
        let results = crate::plan::run_campaign(&runs, scale.jobs);
        for ((name, _), per_policy) in policies.iter().zip(results.chunks(workloads.len())) {
            let out = mech_outcome(per_policy);
            table.row(vec![
                cores.to_string(),
                (*name).into(),
                format!("{:.2}", out.unfairness),
                format!("{:.3}", out.harmonic_speedup),
            ]);
        }
    }
    crate::output::emit("fig9", &table);
    println!("Expected shape: ASM-Cache has the lowest unfairness at every core count");
    println!("with comparable-or-better harmonic speedup; gains grow with core count.");
}
