//! Pairwise interference matrix (the §7.5 characterisation underlying
//! migration decisions, in the style of Mars+ \[40\]'s
//! sensitivity/propensity profiling — except measured *online* by
//! co-running, which is exactly what ASM replaces with estimation).
//!
//! For every ordered pair (victim, aggressor) of a representative
//! application set, co-runs the two and reports the victim's measured
//! whole-run slowdown. Rows are victims, columns aggressors.

use asm_core::EstimatorSet;
use asm_metrics::Table;
use asm_workloads::suite;

use crate::scale::{Scale, Tier};

/// Representative applications spanning the behaviour space.
pub const APPS: &[&str] = &[
    "h264ref_like",    // moderate, cache-friendly
    "bzip2_like",      // cache-sensitive
    "ft_like",         // cache-sensitive (NAS)
    "libquantum_like", // streaming
    "mcf_like",        // irregular memory-bound
    "cg_like",         // irregular memory-bound (NAS)
];

/// All ordered (victim, aggressor) pairs, row-major: independent runs
/// flattened into one list so they fan across the pool, with an order
/// that makes the sequential table assembly identical for any job count.
/// The same 36 configurations anchor the cross-validation sweep
/// ([`crate::exps::xval`]).
#[must_use]
pub fn ordered_pairs() -> Vec<Vec<asm_cpu::AppProfile>> {
    APPS.iter()
        .flat_map(|victim| {
            APPS.iter().map(|aggressor| {
                vec![
                    suite::by_name(victim).expect("profile"),
                    suite::by_name(aggressor).expect("profile"),
                ]
            })
        })
        .collect()
}

/// Runs the pairwise interference matrix.
pub fn run(scale: Scale) {
    println!("\n=== Pairwise interference matrix (victim slowdown under one aggressor) ===");
    let pairs = ordered_pairs();
    let slowdowns: Vec<f64> = match scale.tier {
        // The CLI rejects `--tier sampled` for this experiment; a direct
        // library caller gets the cycle-accurate path.
        Tier::Cycle | Tier::Sampled => {
            let mut config = scale.base_config();
            config.estimators = EstimatorSet::none();
            config.epochs_enabled = false;
            let cycles = scale.cycles / 2;
            let runner = crate::collect::make_runner(config);
            crate::collect::run_parallel_with(&runner, &pairs, cycles, scale.jobs)
                .iter()
                .map(|r| r.whole_run_slowdowns[0])
                .collect()
        }
        Tier::Analytic => {
            let config = scale.base_config();
            crate::analytic::solve_mixes(&config, &pairs, scale.jobs)
                .iter()
                .map(|s| s.slowdowns[0])
                .collect()
        }
    };

    let mut table = Table::new(
        std::iter::once("victim \\ aggressor".to_owned())
            .chain(APPS.iter().map(|a| a.trim_end_matches("_like").to_owned()))
            .collect(),
    );
    for (vi, victim) in APPS.iter().enumerate() {
        let mut row = vec![victim.trim_end_matches("_like").to_owned()];
        for ai in 0..APPS.len() {
            row.push(format!("{:.2}", slowdowns[vi * APPS.len() + ai]));
        }
        table.row(row);
    }
    crate::output::emit("matrix", &table);
    println!("Expected shape: streaming/irregular aggressors (libquantum, mcf, cg) hurt");
    println!("everyone; cache-sensitive victims (bzip2, ft) suffer most; compute-bound");
    println!("pairings stay near 1.0.");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_apps_exist_and_span_the_spectrum() {
        let profiles: Vec<_> = APPS
            .iter()
            .map(|n| suite::by_name(n).expect("profile exists"))
            .collect();
        let min = profiles.iter().map(|p| p.mem_per_kilo()).min().unwrap();
        let max = profiles.iter().map(|p| p.mem_per_kilo()).max().unwrap();
        assert!(max >= 4 * min, "matrix apps should span intensities");
    }
}
