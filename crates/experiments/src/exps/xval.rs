//! Cross-validation of the analytic tier against the cycle-accurate
//! simulator (`xval`).
//!
//! Runs *both* tiers over the gated validation sweep — every ordered
//! pair of the interference-matrix application set (36 configurations)
//! plus two intensity-binned 4-app mixes — and over extra stratified
//! random mixes, then reports the per-workload-class disagreement
//! envelope of the per-app slowdowns. The headline number, the geometric
//! mean of `max(s_analytic, s_cycle) / min(s_analytic, s_cycle) − 1`
//! over the sweep, is gated at ≤ 10% by
//! `crates/experiments/tests/analytic_gate.rs`; the per-class envelope
//! is recorded in EXPERIMENTS.md.
//!
//! Both tiers fan across the `--jobs` pool; the error fold below runs
//! sequentially in workload order, so the emitted table is byte-identical
//! for every `--jobs` value.

use std::collections::BTreeMap;

use asm_analytic::WorkloadClass;
use asm_core::EstimatorSet;
use asm_cpu::AppProfile;
use asm_metrics::Table;
use asm_workloads::mix;

use crate::scale::Scale;

/// Per-app tier-disagreement samples, grouped by workload class.
///
/// Each sample is the symmetric relative error of one app's slowdown in
/// one mix: `max(s_a, s_c) / min(s_a, s_c) − 1` (0 = tiers agree).
#[derive(Debug, Default, Clone)]
pub struct Envelope {
    /// Samples per class display name.
    pub per_class: BTreeMap<&'static str, Vec<f64>>,
}

impl Envelope {
    /// All samples, in class display order.
    #[must_use]
    pub fn all_samples(&self) -> Vec<f64> {
        self.per_class.values().flatten().copied().collect()
    }

    /// Geometric mean of `1 + err` over the samples, minus 1 — the
    /// multiplicative average disagreement. `None` when empty.
    #[must_use]
    pub fn geomean(samples: &[f64]) -> Option<f64> {
        if samples.is_empty() {
            return None;
        }
        let s: f64 = samples.iter().map(|e| (1.0 + e).ln()).sum();
        Some((s / samples.len() as f64).exp() - 1.0)
    }

    /// Worst single-app disagreement. `None` when empty.
    #[must_use]
    pub fn worst(samples: &[f64]) -> Option<f64> {
        samples.iter().copied().fold(None, |m, e| {
            Some(m.map_or(e, |m: f64| m.max(e)))
        })
    }
}

/// Size of the full gated validation sweep: the 36 ordered
/// interference-matrix pairs plus two intensity-binned 4-app mixes.
pub const FULL_SWEEP: usize = 38;

/// The gated validation sweep at this scale: the 36 ordered
/// interference-matrix pairs plus two intensity-binned 4-app mixes
/// ([`FULL_SWEEP`] configurations). Below suite scale (`--tiny`), a
/// smoke subset: the 6 self-pairs plus one binned mix.
#[must_use]
pub fn sweep_mixes(scale: Scale) -> Vec<Vec<AppProfile>> {
    let mut mixes = super::matrix::ordered_pairs();
    if scale.workloads < 6 {
        // CI smoke: the matrix diagonal (one self-pair per app class).
        mixes = mixes.into_iter().step_by(7).collect();
        mixes.extend(mix::binned_mixes(1, 4, scale.seed));
    } else {
        mixes.extend(mix::binned_mixes(2, 4, scale.seed));
    }
    mixes
}

/// Runs both tiers over `mixes` and folds the per-app disagreement
/// envelope. Public so the gating test can enforce it directly.
#[must_use]
pub fn envelope(scale: Scale, mixes: &[Vec<AppProfile>]) -> Envelope {
    let mut config = scale.base_config();
    config.estimators = EstimatorSet::none();
    config.epochs_enabled = false;
    let cycles = scale.cycles / 2;
    let results = crate::collect::run_parallel(&config, mixes, cycles, scale.jobs);
    let solutions = crate::analytic::solve_mixes(&config, mixes, scale.jobs);
    let debug = std::env::var_os("ASM_XVAL_DEBUG").is_some();
    let mut env = Envelope::default();
    for (k, (r, s)) in results.iter().zip(&solutions).enumerate() {
        if debug {
            eprintln!("[xval] mix {k}: {}", s.app_names.join(" + "));
            for i in 0..s.slowdowns.len() {
                let car_cycle = r.quanta.iter().map(|q| q.car_shared[i]).sum::<f64>()
                    / r.quanta.len().max(1) as f64;
                eprintln!(
                    "[xval]   {:<16} {:<15} cyc {:>6.3} ana {:>6.3} | miss a/s {:.3}/{:.3} \
                     cpi a/s {:.2}/{:.2} car cyc/ana {:.4}/{:.4}",
                    s.app_names[i],
                    s.classes[i].name(),
                    r.whole_run_slowdowns[i],
                    s.slowdowns[i],
                    s.miss_alone[i],
                    s.miss_shared[i],
                    s.cpi_alone[i],
                    s.cpi_shared[i],
                    car_cycle,
                    s.car_shared[i],
                );
            }
        }
        for i in 0..s.slowdowns.len() {
            let c = r.whole_run_slowdowns[i];
            let a = s.slowdowns[i];
            if !(c.is_finite() && c > 0.0 && a.is_finite() && a > 0.0) {
                continue;
            }
            let err = a.max(c) / a.min(c) - 1.0;
            env.per_class
                .entry(s.classes[i].name())
                .or_default()
                .push(err);
        }
    }
    env
}

fn pct(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{:.1}%", v * 100.0),
        None => "-".to_owned(),
    }
}

/// `ASM_XVAL_DEBUG` diagnostic: runs each matrix app *alone* on both
/// tiers and prints measured vs modelled CAR and the implied CPI — the
/// first thing to check when recalibrating `asm_analytic::Tuning`.
fn debug_singletons(scale: Scale) {
    let mut config = scale.base_config();
    config.estimators = EstimatorSet::none();
    config.epochs_enabled = false;
    let singles: Vec<Vec<AppProfile>> = super::matrix::APPS
        .iter()
        .map(|n| vec![asm_workloads::suite::by_name(n).expect("profile")])
        .collect();
    let results = crate::collect::run_parallel(&config, &singles, scale.cycles / 2, scale.jobs);
    let solutions = crate::analytic::solve_mixes(&config, &singles, scale.jobs);
    for (r, s) in results.iter().zip(&solutions) {
        let car_cycle = r.quanta.iter().map(|q| q.car_shared[0]).sum::<f64>()
            / r.quanta.len().max(1) as f64;
        let api = s.car_alone[0] * s.cpi_alone[0];
        eprintln!(
            "[xval] alone {:<16} car cyc/ana {:.4}/{:.4} cpi cyc/ana {:.2}/{:.2} miss ana {:.3}",
            s.app_names[0],
            car_cycle,
            s.car_alone[0],
            api / car_cycle,
            s.cpi_alone[0],
            s.miss_alone[0],
        );
    }
}

/// Runs the cross-validation experiment.
pub fn run(scale: Scale) {
    println!("\n=== Cross-validation: analytic tier vs cycle-accurate (per-app slowdown) ===");
    if std::env::var_os("ASM_XVAL_DEBUG").is_some() {
        debug_singletons(scale);
    }
    let sweep = sweep_mixes(scale);
    let apps: usize = sweep.iter().map(Vec::len).sum();
    println!("sweep: {} mixes ({apps} app slots)", sweep.len());
    let env = envelope(scale, &sweep);

    // Extra stratified (intensity-binned) random mixes beyond the gated
    // sweep, to probe mixes the calibration never saw.
    let extras = mix::binned_mixes(scale.workloads.min(8), 4, scale.seed + 0x5eed);
    let extra_env = envelope(scale, &extras);

    let mut table = Table::new(
        ["mix set / class", "apps", "geomean err", "max err"]
            .map(str::to_owned)
            .to_vec(),
    );
    for class in WorkloadClass::all() {
        let Some(samples) = env.per_class.get(class.name()) else {
            continue;
        };
        table.row(vec![
            format!("sweep: {}", class.name()),
            samples.len().to_string(),
            pct(Envelope::geomean(samples)),
            pct(Envelope::worst(samples)),
        ]);
    }
    let all = env.all_samples();
    table.row(vec![
        "sweep: all".to_owned(),
        all.len().to_string(),
        pct(Envelope::geomean(&all)),
        pct(Envelope::worst(&all)),
    ]);
    let extra_all = extra_env.all_samples();
    table.row(vec![
        "random 4-app mixes".to_owned(),
        extra_all.len().to_string(),
        pct(Envelope::geomean(&extra_all)),
        pct(Envelope::worst(&extra_all)),
    ]);
    crate::output::emit("xval", &table);

    let gate = Envelope::geomean(&all).unwrap_or(f64::INFINITY);
    // Enforce exactly when the *gated suite* actually ran. Deriving this
    // from `scale.workloads` (as the gate line once did) misfires in both
    // directions: `--full --workloads 4` runs all 38 sweep configs yet
    // claimed to be informational, while the workload count never decides
    // which sweep `sweep_mixes` emits in the first place.
    if sweep.len() < FULL_SWEEP {
        println!(
            "gate: sweep geomean per-app error {} (informational — smoke \
             subset, {} of {} sweep configs; the 10% gate is enforced over \
             the full sweep, see tests/analytic_gate.rs)",
            pct(Some(gate)),
            sweep.len(),
            FULL_SWEEP,
        );
    } else {
        println!(
            "gate: sweep geomean per-app error {} over {} configs \
             (threshold 10.0%) — {}",
            pct(Some(gate)),
            sweep.len(),
            if gate <= 0.10 { "PASS" } else { "FAIL" }
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_math() {
        assert_eq!(Envelope::geomean(&[]), None);
        let g = Envelope::geomean(&[0.1, 0.1]).unwrap();
        assert!((g - 0.1).abs() < 1e-12);
        assert_eq!(Envelope::worst(&[0.05, 0.2, 0.1]), Some(0.2));
    }

    #[test]
    fn sweep_sizes() {
        assert_eq!(sweep_mixes(Scale::reduced()).len(), FULL_SWEEP);
        assert_eq!(sweep_mixes(Scale::tiny()).len(), 7);
        // The gate-enforcement decision keys on the sweep itself, so the
        // workload count (a random-mix knob) must not change it.
        let mut full = Scale::full();
        full.workloads = 4;
        assert_eq!(sweep_mixes(full).len(), 7);
        let mut reduced = Scale::reduced();
        reduced.workloads = 100;
        assert_eq!(sweep_mixes(reduced).len(), FULL_SWEEP);
    }
}
