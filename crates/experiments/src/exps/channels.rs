//! Channel-count sensitivity (Table 2 lists 1-4 channels; §7.2 reports
//! ASM-Mem's gains on a 2-channel system and §7.2's combined scheme on
//! 1/2 channels).
//!
//! For each channel count this reports (a) ASM's estimation error and (b)
//! ASM-Mem's fairness against FR-FCFS — more channels mean less bandwidth
//! contention, so both the error and the fairness gap should shrink.

use asm_core::{EstimatorSet, MemPolicy, SystemConfig};
use asm_metrics::Table;
use asm_workloads::mix;

use crate::collect::{collect_accuracy, eval_mechanism, pct};
use crate::scale::Scale;

/// Channel counts evaluated.
pub const CHANNELS: &[usize] = &[1, 2, 4];

fn config_with_channels(scale: Scale, channels: usize) -> SystemConfig {
    let mut c = scale.base_config();
    c.dram.channels = channels;
    c
}

/// Runs the channel-count sweep.
pub fn run(scale: Scale) {
    println!("\n=== Channel count sensitivity (1 / 2 / 4 channels, 8-core) ===");
    let workloads = mix::binned_mixes((scale.workloads / 2).max(2), 8, scale.seed ^ 0xC4A7);

    let mut table = Table::new(vec![
        "channels".into(),
        "ASM error".into(),
        "FRFCFS unfairness".into(),
        "ASM-Mem unfairness".into(),
        "ASM-Mem harmonic speedup".into(),
    ]);
    for &channels in CHANNELS {
        let mut accuracy_cfg = config_with_channels(scale, channels);
        accuracy_cfg.estimators = EstimatorSet::asm_only();
        let stats = collect_accuracy(&accuracy_cfg, &workloads, scale.cycles, scale.warmup_quanta, scale.jobs);

        let mut frfcfs_cfg = config_with_channels(scale, channels);
        frfcfs_cfg.estimators = EstimatorSet::none();
        frfcfs_cfg.epochs_enabled = false;
        let frfcfs = eval_mechanism(&frfcfs_cfg, &workloads, scale.cycles, scale.jobs);

        let mut asm_mem_cfg = config_with_channels(scale, channels);
        asm_mem_cfg.estimators = EstimatorSet::asm_only();
        asm_mem_cfg.mem_policy = MemPolicy::SlowdownWeighted;
        let asm_mem = eval_mechanism(&asm_mem_cfg, &workloads, scale.cycles, scale.jobs);

        table.row(vec![
            channels.to_string(),
            pct(stats.mean_error("ASM")),
            format!("{:.2}", frfcfs.unfairness),
            format!("{:.2}", asm_mem.unfairness),
            format!("{:.3}", asm_mem.harmonic_speedup),
        ]);
    }
    crate::output::emit("channels", &table);
    println!("Expected shape: contention (and so both unfairness and estimation error)");
    println!("shrinks as channels are added; ASM-Mem stays at or below FRFCFS unfairness.");
}
