//! Figure 1: cache access rate vs performance, each application co-run
//! with a hog of varying aggressiveness.
//!
//! Validates ASM's core observation (§3.1): normalised performance is
//! proportional to normalised shared-cache access rate. We report, per
//! application and hog level, performance and CAR normalised to the alone
//! run, plus the Pearson correlation between the two across levels.

use asm_core::{EstimatorSet, System, SystemConfig};
use asm_metrics::Table;
use asm_simcore::AppId;
use asm_workloads::{hog_profile, suite};

use crate::scale::Scale;

/// Hog aggressiveness levels swept.
const HOG_LEVELS: usize = 6;

fn quiet_config(scale: Scale) -> SystemConfig {
    let mut c = scale.base_config();
    c.estimators = EstimatorSet::none();
    c.epochs_enabled = false;
    c
}

/// Measures (IPC, CAR) of app slot 0 over the post-warmup portion of a run.
fn measure(sys: &System, scale: Scale) -> (f64, f64) {
    let records = sys.records();
    let measured: Vec<_> = records.iter().skip(scale.warmup_quanta).collect();
    if measured.is_empty() {
        return (f64::NAN, f64::NAN);
    }
    let cycles: f64 = measured
        .iter()
        .map(|r| (r.end_cycle - r.start_cycle) as f64)
        .sum();
    let instr: f64 = measured
        .iter()
        .map(|r| (r.retired_end[0] - r.retired_start[0]) as f64)
        .sum();
    let car: f64 = measured
        .iter()
        .map(|r| r.car_shared[0] * (r.end_cycle - r.start_cycle) as f64)
        .sum::<f64>()
        / cycles;
    (instr / cycles, car)
}

fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let vx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
    let vy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
    cov / (vx.sqrt() * vy.sqrt()).max(1e-12)
}

/// Runs the Figure 1 experiment.
pub fn run(scale: Scale) {
    println!("\n=== Figure 1: cache access rate vs performance (co-run with hog) ===");
    let config = quiet_config(scale);
    let apps = ["h264ref_like", "bzip2_like", "mcf_like"];
    let mut table = Table::new(vec![
        "app".into(),
        "hog level".into(),
        "norm CAR".into(),
        "norm perf".into(),
    ]);
    // Each (app, hog level) co-run and each alone baseline is independent:
    // fan the per-app sweeps across the pool and assemble the table
    // sequentially from the ordered results.
    let per_app = crate::pool::run_ordered(scale.jobs, &apps, |_, &name| {
        let app = suite::by_name(name).expect("known profile");
        let workload = vec![app, hog_profile(0, HOG_LEVELS)];

        // Alone baseline.
        let mut alone = System::new_alone(&workload, config.clone(), AppId::new(0));
        alone.run_for(scale.cycles);
        let (ipc_alone, car_alone) = measure(&alone, scale);

        let mut cars = Vec::new();
        let mut perfs = Vec::new();
        for level in 0..HOG_LEVELS {
            let workload = vec![
                suite::by_name(name).expect("known profile"),
                hog_profile(level, HOG_LEVELS),
            ];
            let mut sys = System::new(&workload, config.clone());
            sys.run_for(scale.cycles);
            let (ipc, car) = measure(&sys, scale);
            cars.push(car / car_alone);
            perfs.push(ipc / ipc_alone);
            eprint!(".");
        }
        (cars, perfs)
    });
    eprintln!();

    let mut correlations = Vec::new();
    for (name, (cars, perfs)) in apps.iter().zip(&per_app) {
        for level in 0..HOG_LEVELS {
            table.row(vec![
                (*name).into(),
                level.to_string(),
                format!("{:.3}", cars[level]),
                format!("{:.3}", perfs[level]),
            ]);
        }
        correlations.push((*name, pearson(cars, perfs)));
    }
    crate::output::emit("fig1", &table);
    println!("Pearson correlation (norm CAR vs norm perf), paper expectation ~1:");
    for (name, r) in correlations {
        println!("  {name}: r = {r:.3}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_of_identical_series_is_one() {
        let xs = [0.2, 0.5, 0.9];
        assert!((pearson(&xs, &xs) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pearson_of_anticorrelated_is_minus_one() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [3.0, 2.0, 1.0];
        assert!((pearson(&xs, &ys) + 1.0).abs() < 1e-9);
    }
}
