//! Figure 4: distribution of slowdown-estimation error — FST and PTCA
//! unsampled, ASM sampled (the paper's deployment configurations).

use asm_core::EstimatorSet;
use asm_metrics::Table;
use asm_workloads::mix;

use crate::collect::collect_accuracy;
use crate::scale::Scale;

/// Runs the Figure 4 experiment.
pub fn run(scale: Scale) {
    println!("\n=== Figure 4: error distribution (FST/PTCA unsampled, ASM sampled) ===");
    let workloads = mix::random_mixes(scale.workloads, 4, scale.seed);

    // Run 1: unsampled (for FST and PTCA).
    let mut unsampled = scale.base_config();
    unsampled.estimators = EstimatorSet::all();
    unsampled.ats_sampled_sets = None;
    unsampled.pollution_filter_bits = 1 << 20;
    let stats_u = collect_accuracy(&unsampled, &workloads, scale.cycles, scale.warmup_quanta, scale.jobs);

    // Run 2: sampled (for ASM).
    let mut sampled = scale.base_config();
    sampled.estimators = EstimatorSet::all();
    sampled.ats_sampled_sets = Some(64);
    sampled.pollution_filter_bits = 1 << 15;
    let stats_s = collect_accuracy(&sampled, &workloads, scale.cycles, scale.warmup_quanta, scale.jobs);

    let fst = stats_u.dist.get("FST");
    let ptca = stats_u.dist.get("PTCA");
    let asm = stats_s.dist.get("ASM");

    let mut table = Table::new(vec![
        "error range".into(),
        "FST".into(),
        "PTCA".into(),
        "ASM".into(),
    ]);
    let fraction = |d: Option<&asm_metrics::ErrorDistribution>, lo: f64, hi: f64| -> String {
        match d {
            Some(d) => format!(
                "{:.1}%",
                (d.fraction_within(hi) - d.fraction_within(lo)) * 100.0
            ),
            None => "-".to_owned(),
        }
    };
    for k in 0..10 {
        let lo = k as f64 * 10.0;
        let hi = lo + 10.0;
        table.row(vec![
            format!("[{lo:.0}%, {hi:.0}%)"),
            fraction(fst, lo, hi),
            fraction(ptca, lo, hi),
            fraction(asm, lo, hi),
        ]);
    }
    crate::output::emit("fig4", &table);

    let within20 = |d: Option<&asm_metrics::ErrorDistribution>| -> String {
        d.map_or("-".into(), |d| {
            format!("{:.1}%", d.fraction_within(20.0) * 100.0)
        })
    };
    let maxerr = |d: Option<&asm_metrics::ErrorDistribution>| -> String {
        d.and_then(asm_metrics::ErrorDistribution::max_error)
            .map_or("-".into(), |m| format!("{m:.0}%"))
    };
    println!(
        "estimates within 20% error: FST {} / PTCA {} / ASM {}  (paper: 76.25% / 79.25% / 95.25%)",
        within20(fst),
        within20(ptca),
        within20(asm),
    );
    println!(
        "maximum error: FST {} / PTCA {} / ASM {}  (paper: 133% / 87% / 36%)",
        maxerr(fst),
        maxerr(ptca),
        maxerr(asm),
    );
}
