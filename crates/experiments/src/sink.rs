//! Telemetry sink for the experiment harness.
//!
//! When any of `--stats-json`, `--trace`, `--series-csv` or
//! `--series-summary` is passed to `asm-experiments`, every workload run
//! is instrumented (see [`asm_core::RunOptions`]) and its
//! [`RunTelemetry`] snapshot is collected here. Recording happens on the
//! caller's thread **after** the parallel pool returns, in submission
//! order, so every artefact this module writes is byte-identical for any
//! `--jobs` value — the same invariant the tables already satisfy.
//!
//! Like the alone-cache and CSV plumbing, this module is process-global
//! state behind `OnceLock`/`Mutex`; that is fine here because the
//! experiments crate is *not* a simulation crate (asm-lint R6 bans shared
//! mutable state only inside the deterministic simulation core).

use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};

use asm_core::{RunOptions, RunResult, RunTelemetry};
use asm_telemetry::JsonValue;

/// 1-in-N request sampling for `--trace` memory-lifecycle events.
/// Scheduler events (epochs, quanta, repartitions) are never sampled out.
pub const TRACE_SAMPLE: u64 = 64;

/// Which telemetry artefacts the CLI asked for.
#[derive(Debug, Clone, Default)]
pub struct SinkConfig {
    /// `--stats-json FILE`: merged counter/series/latency snapshot.
    pub stats_json: Option<PathBuf>,
    /// `--trace FILE`: Chrome trace-event JSON for the first workload.
    pub trace: Option<PathBuf>,
    /// `--series-csv DIR`: one long-format CSV per workload.
    pub series_csv: Option<PathBuf>,
    /// `--series-summary`: print per-series sparklines to stdout.
    pub series_summary: bool,
}

impl SinkConfig {
    /// Whether any artefact was requested.
    #[must_use]
    pub fn any(&self) -> bool {
        self.stats_json.is_some()
            || self.trace.is_some()
            || self.series_csv.is_some()
            || self.series_summary
    }
}

static CONFIG: OnceLock<SinkConfig> = OnceLock::new();
static RECORDS: Mutex<Vec<(String, RunTelemetry)>> = Mutex::new(Vec::new());

/// Activates the sink (once per process; later calls are ignored). A
/// config requesting nothing leaves the sink inactive and every run
/// uninstrumented.
pub fn configure(cfg: SinkConfig) {
    if cfg.any() {
        let _ = CONFIG.set(cfg);
    }
}

/// Whether any telemetry artefact was requested.
#[must_use]
pub fn active() -> bool {
    CONFIG.get().is_some()
}

/// The run options every experiment should simulate under: telemetry on
/// exactly when the sink is active, request tracing only under `--trace`.
#[must_use]
pub fn options() -> RunOptions {
    match CONFIG.get() {
        Some(cfg) => RunOptions {
            telemetry: true,
            trace_sample: cfg.trace.is_some().then_some(TRACE_SAMPLE),
        },
        None => RunOptions::default(),
    }
}

/// Collects one run's telemetry. Call in workload-submission order (the
/// label embeds the arrival index); a run without telemetry is a no-op.
pub fn record(result: &RunResult) {
    let Some(t) = &result.telemetry else {
        return;
    };
    let mut records = RECORDS.lock().expect("telemetry sink poisoned");
    let label = format!("w{:03} {}", records.len(), result.app_names.join("+"));
    records.push((label, t.clone()));
}

/// Writes every requested artefact. Called once at the end of the CLI
/// run; I/O failures are reported to stderr but never abort (matching
/// the CSV exporter).
pub fn finalize() {
    let Some(cfg) = CONFIG.get() else {
        return;
    };
    let records = std::mem::take(&mut *RECORDS.lock().expect("telemetry sink poisoned"));
    if records.is_empty() {
        // Some experiments (fig1, workloads) never route a run through
        // the Runner; the artefacts are still written, just empty.
        eprintln!("[telemetry] no instrumented runs recorded");
    }
    if cfg.series_summary {
        for (label, t) in &records {
            print_series_summary(label, t);
        }
    }
    if let Some(path) = &cfg.stats_json {
        report(path, std::fs::write(path, stats_json(&records).to_json_pretty()));
    }
    if let Some(path) = &cfg.trace {
        // One workload's trace is viewable; all of them concatenated are
        // not (perfetto expects a single timeline). First in, first out.
        let json = records.first().map_or_else(
            || asm_telemetry::Tracer::off().to_json(),
            |(_, t)| t.tracer.to_json(),
        );
        report(path, std::fs::write(path, json));
    }
    if let Some(dir) = &cfg.series_csv {
        let write_all = || -> std::io::Result<()> {
            std::fs::create_dir_all(dir)?;
            for (label, t) in &records {
                let path = dir.join(format!("{}.csv", sanitize(label)));
                std::fs::write(&path, series_csv(t))?;
            }
            Ok(())
        };
        report(dir, write_all());
    }
}

fn report<T>(path: &Path, r: std::io::Result<T>) {
    match r {
        Ok(_) => eprintln!("[telemetry] wrote {}", path.display()),
        Err(e) => eprintln!("[telemetry] failed to write {}: {e}", path.display()),
    }
}

/// `label` → a safe file stem (alphanumerics kept, the rest become `_`).
fn sanitize(label: &str) -> String {
    label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// The `--stats-json` document: schema tag plus one object per workload
/// with sorted counters, the DRAM read-latency quantiles and a summary of
/// every recorded series.
fn stats_json(records: &[(String, RunTelemetry)]) -> JsonValue {
    let opt = |v: Option<f64>| v.map_or(JsonValue::Null, JsonValue::Num);
    let workloads = records
        .iter()
        .map(|(label, t)| {
            let mut counters: Vec<(String, JsonValue)> = t
                .counters
                .iter()
                .map(|(n, v)| (n.clone(), JsonValue::num_u64(*v)))
                .collect();
            counters.sort_by(|a, b| a.0.cmp(&b.0));

            let h = &t.mem_latency_hist;
            let latency = JsonValue::Obj(vec![
                ("samples".into(), JsonValue::num_u64(h.total())),
                ("mean".into(), opt(h.mean())),
                ("p50".into(), opt(h.p50())),
                ("p95".into(), opt(h.p95())),
                ("p99".into(), opt(h.p99())),
            ]);

            let series = t
                .series
                .names()
                .iter()
                .map(|name| {
                    let id = t.series.id_of(name).expect("name from names()");
                    let samples = t.series.samples(id);
                    let values: Vec<f64> = samples.iter().map(|&(_, v)| v).collect();
                    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
                    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                    let summary = JsonValue::Obj(vec![
                        ("count".into(), JsonValue::num_u64(samples.len() as u64)),
                        ("dropped".into(), JsonValue::num_u64(t.series.dropped(id))),
                        ("min".into(), opt(lo.is_finite().then_some(lo))),
                        ("max".into(), opt(hi.is_finite().then_some(hi))),
                        ("last".into(), opt(values.last().copied())),
                    ]);
                    ((*name).to_owned(), summary)
                })
                .collect();

            JsonValue::Obj(vec![
                ("label".into(), JsonValue::str(label)),
                ("counters".into(), JsonValue::Obj(counters)),
                ("dram_read_latency".into(), latency),
                ("series".into(), JsonValue::Obj(series)),
            ])
        })
        .collect();
    JsonValue::Obj(vec![
        ("schema".into(), JsonValue::str("asm-telemetry v1")),
        ("workloads".into(), JsonValue::Arr(workloads)),
    ])
}

/// Long-format CSV (`series,cycle,value`) of every sample of every
/// series, in registration then chronological order.
fn series_csv(t: &RunTelemetry) -> String {
    let mut out = String::from("series,cycle,value\n");
    for name in t.series.names() {
        let id = t.series.id_of(name).expect("name from names()");
        for (cycle, value) in t.series.samples(id) {
            use std::fmt::Write as _;
            let _ = writeln!(out, "{name},{cycle},{value}");
        }
    }
    out
}

/// One stdout block per workload: a sparkline and range per series.
/// Deterministic for any `--jobs` (records arrive in submission order).
fn print_series_summary(label: &str, t: &RunTelemetry) {
    println!("\ntelemetry series ({label}):");
    let names = t.series.names();
    let width = names.iter().map(|n| n.len()).max().unwrap_or(0);
    for name in names {
        let id = t.series.id_of(name).expect("name from names()");
        let values = t.series.values(id);
        if values.is_empty() {
            println!("  {name:<width$}  (no samples)");
            continue;
        }
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        println!(
            "  {name:<width$}  {} min {lo:.3} max {hi:.3} last {:.3} ({} samples)",
            asm_metrics::sparkline(&values),
            values.last().copied().unwrap_or(f64::NAN),
            values.len(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_keeps_only_alphanumerics() {
        assert_eq!(sanitize("w003 mcf_like+lbm_like"), "w003_mcf_like_lbm_like");
    }

    #[test]
    fn inactive_sink_yields_default_options() {
        // CONFIG is process-global, so this test only checks the inactive
        // path (the active path is covered by the integration tests that
        // spawn the binary with flags).
        if CONFIG.get().is_none() {
            let o = options();
            assert!(!o.telemetry);
            assert!(o.trace_sample.is_none());
        }
    }

    #[test]
    fn stats_json_shape_round_trips() {
        let runner = asm_core::Runner::new({
            let mut c = asm_core::SystemConfig::default();
            c.quantum = 50_000;
            c.epoch = 1_000;
            c
        });
        let apps = vec![
            asm_workloads::suite::by_name("mcf_like").unwrap(),
            asm_workloads::suite::by_name("h264ref_like").unwrap(),
        ];
        let opts = RunOptions {
            telemetry: true,
            trace_sample: Some(TRACE_SAMPLE),
        };
        let r = runner.run_with(&apps, 100_000, opts);
        let t = r.telemetry.clone().expect("telemetry");
        let records = vec![("w000 mcf_like+h264ref_like".to_owned(), t)];

        let text = stats_json(&records).to_json_pretty();
        let parsed = asm_telemetry::json::parse(&text).expect("valid JSON");
        assert_eq!(
            parsed.get("schema").and_then(JsonValue::as_str),
            Some("asm-telemetry v1")
        );
        let w = parsed
            .get("workloads")
            .and_then(JsonValue::as_arr)
            .expect("workloads array");
        assert_eq!(w.len(), 1);
        let counters = w[0].get("counters").expect("counters");
        assert!(counters.get("llc.app0.hits").is_some());
        assert!(w[0]
            .get("dram_read_latency")
            .and_then(|l| l.get("p95"))
            .is_some());

        let csv = series_csv(&records[0].1);
        assert!(csv.starts_with("series,cycle,value\n"));
        assert!(csv.contains("app0.est_slowdown,50000,"));
    }
}
